"""Ablation — inter-block redundancy removal (future work, implemented).

The paper's Section 4: "we may want to employ a standard data flow
analysis algorithm to apply optimizations across basic block
boundaries."  This bench measures that pass on a phase-structured
workload whose phases re-read shared read-only fields — the pattern
per-block redundancy removal cannot touch because the phase procedures
bound the basic blocks.
"""

from repro import ExecutionMode, OptimizationConfig, compile_program, simulate, t3d
from repro.analysis import format_table
from repro.programs import build_benchmark

#: A phase-structured workload: three phases per step all read the
#: static geometry fields GX/GY shifted the same ways.
SOURCE = """
program phases;
config n      : integer = 96;
config nsteps : integer = 60;
region R  = [1..n, 1..n];
region In = [2..n-1, 2..n-1];
direction east  = [0, 1];
direction south = [1, 0];
var GX, GY, U, V, P : [R] double;
procedure geometry();
begin
  [In] U := U + 0.1 * (GX@east - GX) + 0.1 * (GY@south - GY);
end;
procedure advect();
begin
  [In] V := V + 0.2 * U * (GX@east - GX);
end;
procedure project();
begin
  [In] P := P * 0.99 + 0.01 * (GY@south - GY) * V;
end;
procedure main();
begin
  [R] GX := index2 + 0.01 * index1;
  [R] GY := index1 - 0.01 * index2;
  for t := 1 to nsteps do
    geometry();
    advect();
    project();
  end;
end;
"""

CONFIGS = [
    ("baseline", OptimizationConfig.baseline()),
    ("rr (per block)", OptimizationConfig(rr=True)),
    ("rr + interblock", OptimizationConfig(rr=True, rr_interblock=True)),
    ("full + interblock", OptimizationConfig(rr=True, cc=True, pl=True, rr_interblock=True)),
]


def test_interblock_dataflow(benchmark, record_table):
    machine = t3d(64, "pvm")
    program = compile_program(
        SOURCE, "phases.zl", opt=OptimizationConfig(rr=True, rr_interblock=True)
    )
    benchmark.pedantic(
        lambda: simulate(program, machine, ExecutionMode.TIMING),
        rounds=3,
        iterations=1,
    )

    rows = []
    base_time = None
    for label, cfg in CONFIGS:
        prog = compile_program(SOURCE, "phases.zl", opt=cfg)
        res = simulate(prog, machine, ExecutionMode.TIMING)
        if base_time is None:
            base_time = res.time
        rows.append(
            [
                label,
                res.static_comm_count,
                res.dynamic_comm_count,
                res.time / base_time,
            ]
        )
    text = format_table(
        ["configuration", "static", "dynamic", "scaled time"],
        rows,
        title="Ablation — inter-block redundancy removal (phase workload)",
    )
    record_table("ablation_interblock", text)

    by = {row[0]: row for row in rows}
    # the phases hide cross-block redundancy from the per-block pass
    assert by["rr (per block)"][1] == by["baseline"][1]
    assert by["rr + interblock"][1] < by["rr (per block)"][1]
    assert by["rr + interblock"][2] < by["rr (per block)"][2]

    # the paper's benchmarks gain nothing: their phases write what the
    # next phase reads (the dataflow kills every availability) — measure
    # and report that honestly
    swm_rr = build_benchmark("swm", opt=OptimizationConfig(rr=True))
    swm_ib = build_benchmark(
        "swm", opt=OptimizationConfig(rr=True, rr_interblock=True)
    )
    assert len(swm_ib.all_descriptors()) <= len(swm_rr.all_descriptors())
