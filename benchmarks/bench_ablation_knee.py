"""Ablation — the combining knee.

The paper concludes combining pays up to 512 doubles (4 KB) and not
beyond, from the Figure 6 overhead curves.  This ablation validates the
rule end-to-end: a program with two combinable transfers is run with
strip sizes swept across the knee, and the combining speedup is measured
as a whole-program effect rather than read off the cost model.
"""

from repro import ExecutionMode, OptimizationConfig, compile_program, simulate, t3d
from repro.analysis import format_table


def _program(strip_doubles: int, opt):
    # two combinable transfers of `strip_doubles` each between two nodes
    m = strip_doubles
    source = f"""
    program knee;
    region Data  = [1..1, 1..{2 * m}];
    region HalfL = [1..1, 1..{m}];
    direction off = [0, {m}];
    var A, B, C, D : [Data] double;
    procedure main();
    begin
      [Data] A := index2 * 0.5;
      [Data] B := index2 * 0.25;
      for r := 1 to 400 do
        [HalfL] C := A@off * 1.0001 + 0.5;
        [HalfL] D := B@off * 1.0001 + 0.5;
      end;
    end;
    """
    return compile_program(source, "knee.zl", opt=opt)


def test_combining_knee(benchmark, record_table):
    machine = t3d(2, "pvm")

    def run_one():
        return simulate(
            _program(512, OptimizationConfig.rr_cc()),
            machine,
            ExecutionMode.TIMING,
        )

    benchmark.pedantic(run_one, rounds=3, iterations=1)

    rows = []
    for doubles in (32, 128, 512, 1024, 2048, 4096):
        t_rr = simulate(
            _program(doubles, OptimizationConfig.rr_only()),
            machine,
            ExecutionMode.TIMING,
        ).time
        t_cc = simulate(
            _program(doubles, OptimizationConfig.rr_cc()),
            machine,
            ExecutionMode.TIMING,
        ).time
        rows.append([doubles, doubles * 8, t_cc / t_rr])
    text = format_table(
        ["strip (doubles)", "bytes", "combined / uncombined time"],
        rows,
        title="Ablation — combining speedup across the 4 KB knee",
    )
    text += (
        "\n\nbelow the knee combining wins outright; at and beyond it the "
        "gain shrinks toward parity — the paper's 512-double rule."
    )
    record_table("ablation_knee", text)

    by = {row[0]: row[2] for row in rows}
    assert by[128] < 0.95  # clear win below the knee
    assert by[4096] > by[128]  # the win erodes beyond it
