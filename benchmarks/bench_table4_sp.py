"""Table 4 — SP: full counts and times for every experiment key.

The benchmark times the fully optimized SP simulation under PVM.  Unlike
the paper (whose library bug blocked SP under max-latency combining),
this harness fills in the missing Table 4 cell.
"""

from repro import ExecutionMode, OptimizationConfig, simulate, t3d
from repro.analysis import format_table
from repro.analysis.figures import table_full
from repro.programs import build_benchmark


def test_table4(benchmark, suite, record_table):
    program = build_benchmark("sp", opt=OptimizationConfig.full())
    machine = t3d(64, "pvm")
    benchmark.pedantic(
        lambda: simulate(program, machine, ExecutionMode.TIMING),
        rounds=3,
        iterations=1,
    )

    headers, rows = table_full("sp", suite)
    record_table(
        "table4_sp",
        format_table(headers, rows, title="Table 4 — sp on 64 processors"),
    )

    by = {row[0]: row for row in rows}
    scaled = {k: by[k][4] for k in by}
    # Table 4's qualitative content: every optimization pays under PVM,
    # and SHMEM degrades (inherently sequential line solves)
    assert scaled["pl"] < scaled["cc"] < scaled["rr"] < 1.0
    assert scaled["pl"] < scaled["pl_shmem"] < 1.0
    # the cell the paper could not produce
    assert scaled["pl_maxlat"] > 0
