"""Ablation — where the time goes.

Splits each benchmark's critical-processor time into computation,
communication software, and waiting, for the baseline and the fully
optimized program.  This makes the paper's verbal diagnoses quantitative:
TOMCATV's waits come from its sequential solver, SIMPLE's software share
is the largest (which is why removing and combining messages pays most
there), and pipelining converts waiting into overlap.
"""

from repro import ExecutionMode, OptimizationConfig, simulate, t3d
from repro.analysis import format_table
from repro.analysis.profile import breakdown_of, breakdown_table
from repro.programs import BENCHMARKS, build_benchmark


def test_time_breakdown(benchmark, record_table):
    machine = t3d(64, "pvm")
    program = build_benchmark("tomcatv", opt=OptimizationConfig.baseline())
    benchmark.pedantic(
        lambda: simulate(program, machine, ExecutionMode.TIMING),
        rounds=3,
        iterations=1,
    )

    results = {}
    for bench in BENCHMARKS:
        for label, cfg in [
            ("baseline", OptimizationConfig.baseline()),
            ("pl", OptimizationConfig.full()),
        ]:
            prog = build_benchmark(bench, opt=cfg)
            results[f"{bench} {label}"] = simulate(
                prog, machine, ExecutionMode.TIMING
            )

    headers, rows = breakdown_table(results)
    text = format_table(
        headers,
        rows,
        title="Ablation — critical-processor time breakdown (PVM)",
    )
    text += (
        "\n\ncolumns are fractions of the critical processor's clock; "
        "compute + comm sw + wait = 1 by construction."
    )
    record_table("ablation_breakdown", text)

    # accounting is exact
    for result in results.values():
        b = breakdown_of(result)
        assert abs(b.compute + b.comm_sw + b.wait - b.total) < 1e-9

    # optimization reduces the communication share on every benchmark
    for bench in BENCHMARKS:
        base = breakdown_of(results[f"{bench} baseline"])
        full = breakdown_of(results[f"{bench} pl"])
        assert full.comm_sw + full.wait < base.comm_sw + base.wait
