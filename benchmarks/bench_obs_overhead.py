"""Observability overhead: disabled tracing must cost < 5%.

The zero-cost-when-disabled claim is the contract that lets every hot
path in the package stay instrumented (pass loops, the simulator, the
engine's cache probes).  This benchmark times one simulation three
ways:

* **raw** — ``_Simulation(...).run()`` directly, bypassing the
  instrumented ``simulate`` wrapper entirely (the pre-instrumentation
  seed path);
* **disabled** — ``simulate()`` with no recorder installed: the guarded
  helpers take the ``is None`` branch;
* **enabled** — ``simulate()`` under a live recorder with a
  ``MemorySink``, for scale (spans, counters, and the per-run metrics
  all record).

Asserts the ISSUE bar — disabled within 5% of raw — on a min-of-N
basis (minima are robust to scheduler noise where means are not), then
benchmarks the disabled path.
"""

from __future__ import annotations

import time

from repro import ExecutionMode, OptimizationConfig, compile_program, t3d
from repro.obs import MemorySink, recording
from repro.obs import core as obs
from repro.programs import benchmark_source, small_config
from repro.runtime.executor import _Simulation

NPROCS = 16
ROUNDS = 12


def _compiled():
    return compile_program(
        benchmark_source("simple"),
        "simple.zl",
        config=small_config("simple"),
        opt=OptimizationConfig.full(),
    )


def _min_of(fn, rounds=ROUNDS):
    best = float("inf")
    for _ in range(rounds):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def test_disabled_tracing_overhead(benchmark):
    from repro import simulate

    program = _compiled()
    machine = t3d(NPROCS)
    obs.shutdown()  # make sure no recorder leaked in from another test
    assert not obs.enabled()

    def raw():
        _Simulation(program, machine, ExecutionMode.TIMING, None, None).run()

    def disabled():
        simulate(program, machine, ExecutionMode.TIMING)

    def enabled():
        simulate(program, machine, ExecutionMode.TIMING)

    # interleave-free min-of-N for each path; warm caches first
    raw()
    disabled()
    raw_s = _min_of(raw)
    disabled_s = _min_of(disabled)
    with recording(MemorySink()):
        enabled_s = _min_of(enabled)

    assert disabled_s <= raw_s * 1.05, (
        f"disabled tracing costs {(disabled_s / raw_s - 1) * 100:.1f}% "
        f"(raw {raw_s * 1e3:.2f}ms vs disabled {disabled_s * 1e3:.2f}ms); "
        "the zero-cost-when-disabled contract is broken"
    )

    benchmark.extra_info["raw_ms"] = round(raw_s * 1e3, 3)
    benchmark.extra_info["disabled_ms"] = round(disabled_s * 1e3, 3)
    benchmark.extra_info["enabled_ms"] = round(enabled_s * 1e3, 3)
    benchmark.extra_info["disabled_overhead_pct"] = round(
        (disabled_s / raw_s - 1) * 100, 2
    )
    benchmark.extra_info["enabled_overhead_pct"] = round(
        (enabled_s / raw_s - 1) * 100, 2
    )
    benchmark.pedantic(disabled, rounds=ROUNDS, iterations=1)
