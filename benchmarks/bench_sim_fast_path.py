"""Compiled TIMING fast path: the full paper study must run >= 5x faster.

Runs the whole-program study (4 benchmarks x 6 experiment keys at paper
scale, 64 simulated processors) twice with the result cache disabled:
once forced through the interpreted IR walk, once through the compiled
schedule.  Asserts the ISSUE's acceptance bar (fast path at least 5x
faster — the tentpole targets 10x and the measured runs exceed it), that
every cell engaged the compiled path, and that the results are
*bit-identical* — the fast path's whole contract.  The measured speedup
is appended to ``BENCH_sim_fast_path.json`` at the repo root as a
trajectory point.

Compilation is identical work on both sides, so the in-process compile
cache and the shared transfer-plan memo are warmed symmetrically (one
throwaway study) before either pass is timed: the comparison is
simulator-vs-simulator, not cold-vs-warm.
"""

from __future__ import annotations

import json
import time
from datetime import datetime, timezone
from pathlib import Path

from repro import run_study
from repro.engine import clear_compile_cache
from repro.programs import BENCHMARKS
from repro.runtime.transfers import PlanCache

TRAJECTORY = Path(__file__).resolve().parent.parent / "BENCH_sim_fast_path.json"

STUDY = dict(
    benchmarks=BENCHMARKS,
    nprocs=64,
    cache=False,
    jobs=1,  # serial: measure the simulator, not the pool
)


def _timed_study(**kwargs):
    t0 = time.perf_counter()
    study = run_study(**{**STUDY, **kwargs})
    return study, time.perf_counter() - t0


def _result_surface(study):
    return [
        {
            k: record["result"][k]
            for k in (
                "static_count",
                "dynamic_count",
                "execution_time",
                "total_messages",
                "total_bytes",
                "warnings",
            )
        }
        for record in study.telemetry
    ]


def test_fast_path_speedup(benchmark, record_table):
    # warm the compile cache and plan memo once, for both passes alike
    clear_compile_cache()
    PlanCache.clear_global()
    run_study(**STUDY)

    interp, interp_s = _timed_study(fast=False)
    fast, fast_s = _timed_study()

    cells = len(fast.telemetry)
    assert cells == len(BENCHMARKS) * 6

    # exactness: the compiled path reproduces the interpreted walk
    # bit-for-bit on every cell of the paper matrix
    assert _result_surface(fast) == _result_surface(interp)

    # engagement: every TIMING cell compiled, none silently interpreted
    for record in fast.telemetry:
        assert record["result"]["fastpath"] is not None
    extrapolated = sum(
        record["result"]["fastpath"]["extrapolated_trips"]
        for record in fast.telemetry
    )
    assert extrapolated > 0, "steady-state extrapolation never engaged"

    speedup = interp_s / fast_s
    assert speedup >= 5.0, (
        f"fast path below the 5x bar: interpreted {interp_s:.2f}s vs "
        f"compiled {fast_s:.2f}s ({speedup:.1f}x)"
    )

    point = {
        "date": datetime.now(timezone.utc).strftime("%Y-%m-%d"),
        "cells": cells,
        "interpreted_s": round(interp_s, 3),
        "fast_s": round(fast_s, 3),
        "speedup": round(speedup, 1),
        "extrapolated_trips": extrapolated,
    }
    trajectory = (
        json.loads(TRAJECTORY.read_text()) if TRAJECTORY.exists() else []
    )
    trajectory.append(point)
    TRAJECTORY.write_text(json.dumps(trajectory, indent=1) + "\n")

    record_table(
        "sim_fast_path",
        "Simulator fast path — full paper study, cache disabled\n"
        f"interpreted walk:  {interp_s:.2f}s\n"
        f"compiled schedule: {fast_s:.2f}s\n"
        f"speedup:           {speedup:.1f}x  (bar: >= 5x)\n"
        f"extrapolated trips: {extrapolated}",
    )

    benchmark.extra_info.update(point)
    benchmark.pedantic(
        lambda: _timed_study(benchmarks=("simple",))[0], rounds=3, iterations=1
    )
