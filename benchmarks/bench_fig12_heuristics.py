"""Figure 12 — running times under the two combining heuristics (both
with SHMEM), scaled to baseline.

The paper could not run SP under max-latency (a library bug fixed "by
the final paper"); this harness runs all four.  The benchmark times the
max-latency SP simulation — the very case the paper lost.
"""

from repro import ExecutionMode, OptimizationConfig, simulate, t3d
from repro.analysis import format_table
from repro.analysis.figures import figure12_heuristic_times, paper_value
from repro.programs import build_benchmark


def test_figure12(benchmark, suite, record_table):
    program = build_benchmark("sp", opt=OptimizationConfig.full_max_latency())
    machine = t3d(64, "shmem")
    benchmark.pedantic(
        lambda: simulate(program, machine, ExecutionMode.TIMING),
        rounds=3,
        iterations=1,
    )

    headers, rows = figure12_heuristic_times(suite)
    headers += ["paper pl+shmem", "paper max-lat"]
    for row in rows:
        base_t = paper_value(row[0], "baseline")[2]
        row.append(paper_value(row[0], "pl_shmem")[2] / base_t)
        ml = paper_value(row[0], "pl_maxlat")[2]
        row.append(ml / base_t if ml == ml else "n/a (paper bug)")
    text = format_table(
        headers,
        rows,
        title="Figure 12 — combining heuristics, scaled times (SHMEM)",
    )
    record_table("figure12_heuristic_times", text)

    # "the benchmark versions compiled for maximized combining always
    # performed better than those compiled maximized latency hiding"
    for row in rows:
        assert row[1] <= row[2] + 1e-9
