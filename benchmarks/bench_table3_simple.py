"""Table 3 — SIMPLE: full counts and times for every experiment key.

The benchmark times the fully optimized SIMPLE simulation under SHMEM —
the paper's largest one-way-communication win (running time down to
half the baseline).
"""

from repro import ExecutionMode, OptimizationConfig, simulate, t3d
from repro.analysis import format_table
from repro.analysis.figures import table_full
from repro.programs import build_benchmark


def test_table3(benchmark, suite, record_table):
    program = build_benchmark("simple", opt=OptimizationConfig.full())
    machine = t3d(64, "shmem")
    benchmark.pedantic(
        lambda: simulate(program, machine, ExecutionMode.TIMING),
        rounds=3,
        iterations=1,
    )

    headers, rows = table_full("simple", suite)
    record_table(
        "table3_simple",
        format_table(
            headers, rows, title="Table 3 — simple on 64 processors"
        ),
    )

    by = {row[0]: row for row in rows}
    # Table 3's qualitative content: huge rr gains, max-latency strictly
    # between rr and cc in both counts, every optimization pays, and
    # SHMEM is the best configuration of all
    assert by["rr"][1] < 0.6 * by["baseline"][1]
    assert by["cc"][1] < by["pl_maxlat"][1] < by["rr"][1]
    assert by["cc"][2] < by["pl_maxlat"][2] < by["rr"][2]
    scaled = {k: by[k][4] for k in by}
    assert scaled["pl"] < scaled["cc"] < scaled["rr"] < 1.0
    assert scaled["pl_shmem"] == min(scaled.values())
    assert scaled["pl_shmem"] < scaled["pl_maxlat"] < scaled["pl"]
