"""Batched many-variant evaluation: 1000 variants must run >= 10x faster.

Builds a 40 x 25 grid of cost variants (network latency x primitive
software overhead) of the 16-processor T3D, compiles SIMPLE once under
the ``pl`` key, and evaluates the grid twice: once through
``repro.simulate_many`` (one vectorized pass over the whole batch), once
as 1000 scalar ``simulate`` fast-path runs.  Asserts the ISSUE's
acceptance bar (batched at least 10x faster) and the batched evaluator's
whole contract: every row *bit-identical* — times and full per-rank
clocks — to the scalar run of that variant.  The measured point is
appended to ``BENCH_sim_fast_path.json`` at the repo root, extending the
fast-path trajectory with the batched point.

The batch is timed before the scalar loop: both sides start from the
same warmed compile/plan caches, and the thousand scalar runs would
otherwise pollute the allocator and CPU caches under the batch's feet.
"""

from __future__ import annotations

import json
import time
from datetime import datetime, timezone
from pathlib import Path

import numpy as np

from repro import SimOptions, machine_by_name, simulate, simulate_many
from repro.engine import clear_compile_cache
from repro.experiments_registry import experiment_spec
from repro.machine import apply_overrides
from repro.programs import build_benchmark, small_config
from repro.runtime.transfers import PlanCache

TRAJECTORY = Path(__file__).resolve().parent.parent / "BENCH_sim_fast_path.json"

NPROCS = 16
KEY = "pl"
LATENCIES = np.linspace(1e-6, 1e-4, 40)
FIXED_COSTS = np.linspace(1e-5, 1e-4, 25)


def _variants(base):
    return [
        apply_overrides(
            base, {"net.latency": float(lat), "prim.*.fixed": float(fix)}
        )
        for lat in LATENCIES
        for fix in FIXED_COSTS
    ]


def test_batched_speedup(benchmark, record_table):
    clear_compile_cache()
    PlanCache.clear_global()
    spec = experiment_spec(KEY)
    program = build_benchmark(
        "simple", config=small_config("simple"), opt=spec.opt
    )
    base = machine_by_name("t3d", NPROCS, spec.library)
    variants = _variants(base)
    assert len(variants) == 1000

    # warm the plan cache and one scalar run's worth of state for both
    # sides alike before either pass is timed
    simulate(program, base, options=SimOptions.timing())
    simulate_many(program, [base])

    t0 = time.perf_counter()
    batch = simulate_many(program, variants)
    batch_s = time.perf_counter() - t0

    run = batch.run(program.name)
    t0 = time.perf_counter()
    scalar = [
        simulate(program, machine, options=SimOptions.timing(fast=True))
        for machine in variants
    ]
    scalar_s = time.perf_counter() - t0

    # exactness: every row bit-identical to its scalar fast-path run
    for v, result in enumerate(scalar):
        assert float(run.times[v]) == result.time
        assert np.array_equal(run.clocks[v], result.clocks)
    assert len({float(t) for t in run.times}) > 100  # the grid diverges

    speedup = scalar_s / batch_s
    assert speedup >= 10.0, (
        f"batched evaluation below the 10x bar: scalar loop {scalar_s:.2f}s "
        f"vs batch {batch_s:.2f}s ({speedup:.1f}x)"
    )

    point = {
        "date": datetime.now(timezone.utc).strftime("%Y-%m-%d"),
        "bench": "sim_batch",
        "variants": len(variants),
        "scalar_s": round(scalar_s, 3),
        "batch_s": round(batch_s, 3),
        "speedup": round(speedup, 1),
    }
    trajectory = (
        json.loads(TRAJECTORY.read_text()) if TRAJECTORY.exists() else []
    )
    trajectory.append(point)
    TRAJECTORY.write_text(json.dumps(trajectory, indent=1) + "\n")

    record_table(
        "sim_batch",
        "Batched simulator — 1000 cost variants of SIMPLE/pl on t3d/16\n"
        f"scalar fast-path loop: {scalar_s:.2f}s\n"
        f"batched simulate_many: {batch_s:.2f}s\n"
        f"speedup:               {speedup:.1f}x  (bar: >= 10x)",
    )

    benchmark.extra_info.update(point)
    benchmark.pedantic(
        lambda: simulate_many(program, variants[:100]), rounds=3, iterations=1
    )
