"""Figure 5 — IRONMAN bindings on the Paragon and T3D."""

from repro.analysis import format_table
from repro.analysis.figures import figure5_bindings
from repro.ironman import BINDINGS, CallKind


def test_figure5(benchmark, record_table):
    def resolve_all_bindings():
        return [
            binding.primitive(kind)
            for binding in BINDINGS.values()
            for kind in CallKind
        ]

    resolved = benchmark(resolve_all_bindings)
    assert len(resolved) == 20
    headers, rows = figure5_bindings()
    record_table(
        "figure05_bindings",
        format_table(headers, rows, title="Figure 5 — IRONMAN bindings"),
    )
