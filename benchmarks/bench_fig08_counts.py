"""Figure 8 — reduction in communications from redundancy removal and
combination, static and dynamic, scaled to baseline.

The benchmark times one dynamic-count simulation (SWM under cc); the
table spans all four benchmarks from the shared study.
"""

from repro import ExecutionMode, OptimizationConfig, simulate, t3d
from repro.analysis import format_table
from repro.analysis.figures import figure8_counts, paper_value
from repro.programs import build_benchmark


def test_figure8(benchmark, suite, record_table):
    program = build_benchmark("swm", opt=OptimizationConfig.rr_cc())
    machine = t3d(64, "pvm")
    benchmark.pedantic(
        lambda: simulate(program, machine, ExecutionMode.TIMING),
        rounds=3,
        iterations=1,
    )

    headers, rows = figure8_counts(suite)
    # paper columns alongside
    headers = headers + ["paper rr dyn", "paper cc dyn"]
    for row in rows:
        bench = row[0]
        base = paper_value(bench, "baseline")
        row.append(paper_value(bench, "rr")[1] / base[1])
        row.append(paper_value(bench, "cc")[1] / base[1])
    text = format_table(
        headers,
        rows,
        title="Figure 8 — communication count reduction (scaled to baseline)",
    )
    record_table("figure08_counts", text)

    for row in rows:
        rr_s, cc_s, rr_d, cc_d = row[1:5]
        assert cc_s <= rr_s <= 1.0
        assert cc_d <= rr_d <= 1.0
