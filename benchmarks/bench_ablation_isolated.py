"""Ablation — each optimization in isolation.

The paper's experiment keys are cumulative (rr, then +cc, then +pl).
The instrumented optimizer can also apply each optimization alone, which
separates their individual contributions: combination without removal,
and pipelining without either.
"""

from repro import ExecutionMode, OptimizationConfig, simulate, t3d
from repro.analysis import format_table
from repro.programs import BENCHMARKS, build_benchmark

KEYS = [
    ("baseline", OptimizationConfig.baseline()),
    ("rr only", OptimizationConfig(rr=True)),
    ("cc only", OptimizationConfig(cc=True)),
    ("pl only", OptimizationConfig(pl=True)),
    ("rr+cc+pl", OptimizationConfig.full()),
]


def test_isolated_optimizations(benchmark, record_table):
    machine = t3d(64, "pvm")
    program = build_benchmark("simple", opt=OptimizationConfig(cc=True))
    benchmark.pedantic(
        lambda: simulate(program, machine, ExecutionMode.TIMING),
        rounds=3,
        iterations=1,
    )

    rows = []
    for bench in BENCHMARKS:
        row = [bench]
        base_time = None
        for _, cfg in KEYS:
            res = simulate(
                build_benchmark(bench, opt=cfg), machine, ExecutionMode.TIMING
            )
            if base_time is None:
                base_time = res.time
            row.append(res.time / base_time)
        rows.append(row)

    text = format_table(
        ["benchmark"] + [k for k, _ in KEYS],
        rows,
        title="Ablation — isolated optimizations (scaled times, PVM)",
    )
    text += (
        "\n\ncumulative application dominates every isolated optimization, "
        "as the paper's design assumes ('each optimization impacts "
        "performance significantly')."
    )
    record_table("ablation_isolated", text)

    for row in rows:
        base, rr, cc, pl, full = row[1:]
        assert full <= min(rr, cc, pl) + 1e-9
        assert rr <= base and cc <= base and pl <= base + 1e-9
