"""Table 1 — TOMCATV: full counts and times for every experiment key.

The benchmark times the baseline TOMCATV simulation (the most
communication-heavy configuration).
"""

from repro import ExecutionMode, OptimizationConfig, simulate, t3d
from repro.analysis import format_table
from repro.analysis.figures import table_full
from repro.programs import build_benchmark


def test_table1(benchmark, suite, record_table):
    program = build_benchmark("tomcatv", opt=OptimizationConfig.baseline())
    machine = t3d(64, "pvm")
    benchmark.pedantic(
        lambda: simulate(program, machine, ExecutionMode.TIMING),
        rounds=3,
        iterations=1,
    )

    headers, rows = table_full("tomcatv", suite)
    record_table(
        "table1_tomcatv",
        format_table(
            headers, rows, title="Table 1 — tomcatv on 64 processors"
        ),
    )

    by = {row[0]: row for row in rows}
    # Table 1's qualitative content: rr barely moves the dynamic count,
    # cc cuts it to about a third, max-latency equals rr exactly
    assert 0.95 < by["rr"][2] / by["baseline"][2] < 1.0
    assert by["cc"][2] / by["baseline"][2] < 0.4
    assert by["pl_maxlat"][1] == by["rr"][1]
    assert by["pl_maxlat"][2] == by["rr"][2]
    # time ordering of Table 1
    scaled = {k: by[k][4] for k in by}
    assert scaled["pl"] < scaled["cc"] < scaled["rr"] < scaled["baseline"]
    assert scaled["pl"] < scaled["pl_shmem"] < scaled["pl_maxlat"] < 1.0
