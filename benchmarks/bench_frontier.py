"""Frontier engine: crossover refinement + the 10^4-variant map.

Two bars from the adaptive-frontier ISSUE, measured in one test so the
trajectory gains one coherent point:

* **Refinement efficiency** — :func:`repro.sweep.run_refined_sweep`
  must localize the paper's combining knee (the per-byte cost past
  which collective combining loses to recognize-reduce on SIMPLE,
  t3d/16) to ``tol = 1e-8`` while evaluating **at most 1/5** of the
  points the equivalent dense grid would, and the bracket it reports
  must actually be narrower than the tolerance.
* **Map throughput** — a full two-axis frontier map (100 beyond-knee
  costs x 100 network latencies = 10^4 machine variants, evaluated for
  both contenders through the memoized packer and one
  ``simulate_many`` call per experiment) plus per-row crossover
  contours must complete in **single-digit seconds**.

The measured point is appended to ``BENCH_sim_fast_path.json`` at the
repo root as the third trajectory point (fast path -> batch -> frontier).
"""

from __future__ import annotations

import json
import time
from datetime import datetime, timezone
from pathlib import Path

import numpy as np

from repro import simulate_many
from repro.analysis.scaling import find_crossings
from repro.engine import clear_compile_cache
from repro.engine.jobs import MachineSpec
from repro.experiments_registry import experiment_spec
from repro.machine import pack_variant_specs
from repro.programs import build_benchmark
from repro.runtime.transfers import PlanCache
from repro.sweep import run_refined_sweep

TRAJECTORY = Path(__file__).resolve().parent.parent / "BENCH_sim_fast_path.json"

NPROCS = 16
KNEE_BYTES = 32
# one iteration: the knee is a per-iteration property, and the second
# iteration would only re-simulate the same schedule 10^4 more times
SIMPLE_SMALL = {"n": 16, "niters": 1, "ncond": 2}
AXIS = "prim.*.per_byte_beyond"
LO, HI, TOL = 0.0, 1e-6, 1e-8
MAP_XS = np.linspace(0.0, 1e-6, 100)
MAP_YS = np.geomspace(1e-6, 1e-4, 100)
MAP_KEYS = ("rr", "cc")  # the contenders whose flip draws the contour


def _map_specs():
    return [
        {
            "prim.*.knee_bytes": KNEE_BYTES,
            AXIS: float(x),
            "net.latency": float(y),
        }
        for y in MAP_YS
        for x in MAP_XS
    ]


def test_frontier_refinement_and_map(benchmark, record_table):
    clear_compile_cache()
    PlanCache.clear_global()

    # -- refinement: the combining knee to tol, cache off so every
    # evaluated point is a real batched simulation ---------------------
    t0 = time.perf_counter()
    refined = run_refined_sweep(
        axis=AXIS,
        lo=LO,
        hi=HI,
        tol=TOL,
        coarse=5,
        benchmarks="simple",
        keys=("baseline", "rr", "cc"),
        machine=MachineSpec.coerce("t3d", nprocs=NPROCS),
        overrides={"prim.*.knee_bytes": KNEE_BYTES},
        config_overrides={"simple": SIMPLE_SMALL},
        jobs=2,
        cache=False,
    )
    refine_s = time.perf_counter() - t0

    knees = [
        c
        for c in refined.crossovers
        if (c.experiment, c.reference) == ("cc", "rr")
    ]
    assert knees, refined.crossovers
    knee = knees[0]
    assert knee.x_high - knee.x_low <= TOL, knee
    assert refined.points_evaluated * 5 <= refined.dense_points, (
        f"refinement above the 1/5-dense bar: {refined.points_evaluated} "
        f"points vs {refined.dense_points} dense"
    )

    # -- the 10^4-variant map: pack once per key, one batched call per
    # contender, contours straight off the raw time grids --------------
    programs = {}
    matrices = {}
    for key in MAP_KEYS:
        spec = experiment_spec(key)
        programs[key] = build_benchmark(
            "simple", config=SIMPLE_SMALL, opt=spec.opt
        )
        matrices[key] = pack_variant_specs(
            "t3d", NPROCS, spec.library, _map_specs()
        )
    # warm compile/plan caches so the timed region is pure evaluation
    for key in MAP_KEYS:
        warm = pack_variant_specs(
            "t3d", NPROCS, experiment_spec(key).library, _map_specs()[:1]
        )
        simulate_many(programs[key], warm)

    t0 = time.perf_counter()
    times = {}
    for key in MAP_KEYS:
        batch = simulate_many(programs[key], matrices[key])
        times[key] = np.asarray(batch.run("simple").times).reshape(
            len(MAP_YS), len(MAP_XS)
        )
    contours = []
    for j, y in enumerate(MAP_YS):
        ratio = times[MAP_KEYS[0]][j] / times[MAP_KEYS[1]][j]
        crossings = find_crossings(list(zip(MAP_XS, ratio)))
        if crossings:
            contours.append((float(y), crossings[0][2]))
    map_s = time.perf_counter() - t0

    n_variants = len(MAP_XS) * len(MAP_YS)
    assert n_variants == 10_000
    assert map_s < 10.0, (
        f"10^4-variant frontier map above single-digit seconds: {map_s:.2f}s"
    )
    # the knee exists at every latency and moves with it: higher network
    # latency shelters combining, pushing its loss to higher byte costs
    assert len(contours) == len(MAP_YS)
    assert contours[-1][1] > contours[0][1]
    # the refined 1-D knee agrees with the map's contour at the base
    # machine's latency (t3d: 1.2e-5)
    base_knee = np.interp(
        1.2e-5, [y for y, _ in contours], [x for _, x in contours]
    )
    assert abs(knee.x_estimate - base_knee) < 5e-8

    point = {
        "date": datetime.now(timezone.utc).strftime("%Y-%m-%d"),
        "bench": "frontier",
        "refine_points": refined.points_evaluated,
        "dense_points": refined.dense_points,
        "refine_savings": round(refined.savings, 1),
        "refine_s": round(refine_s, 3),
        "map_variants": n_variants,
        "map_s": round(map_s, 3),
    }
    trajectory = (
        json.loads(TRAJECTORY.read_text()) if TRAJECTORY.exists() else []
    )
    trajectory.append(point)
    TRAJECTORY.write_text(json.dumps(trajectory, indent=1) + "\n")

    record_table(
        "frontier",
        "Frontier engine — SIMPLE combining knee on t3d/16\n"
        f"refined knee:   {knee.x_estimate:.6g} "
        f"(bracket [{knee.x_low:.6g}, {knee.x_high:.6g}], tol {TOL:g})\n"
        f"refinement:     {refined.points_evaluated} points vs "
        f"{refined.dense_points} dense = {refined.savings:.1f}x fewer "
        "(bar: >= 5x)\n"
        f"refine wall:    {refine_s:.2f}s over {refined.rounds} rounds\n"
        f"frontier map:   {n_variants} variants x {len(MAP_KEYS)} keys "
        f"in {map_s:.2f}s  (bar: < 10s)\n"
        f"contour:        knee {contours[0][1]:.3g} @ lat {contours[0][0]:.1e}"
        f" -> {contours[-1][1]:.3g} @ lat {contours[-1][0]:.1e}",
    )

    benchmark.extra_info.update(point)
    chunk = pack_variant_specs(
        "t3d",
        NPROCS,
        experiment_spec(MAP_KEYS[0]).library,
        _map_specs()[:1000],
    )
    benchmark.pedantic(
        lambda: simulate_many(programs[MAP_KEYS[0]], chunk),
        rounds=3,
        iterations=1,
    )
