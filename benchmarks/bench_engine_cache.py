"""Engine cache effectiveness: warm re-runs must be >= 3x faster.

Runs a reduced-scale whole-program study twice against a fresh store:
the cold pass compiles and simulates every cell, the warm pass serves
every cell from the result cache.  Asserts the ISSUE/acceptance bar
(warm at least 3x faster than cold — in practice it is orders of
magnitude) and that the cached results are *identical* to the freshly
computed ones, then benchmarks the warm path.

Parametrized over the dir and sqlite backends, so the shared-store
backend's read path is held to the same bar as the historical
directory layout.
"""

from __future__ import annotations

import time

import pytest

from repro import run_study
from repro.programs import BENCHMARKS, small_config


def _study_kwargs(cache_dir, backend):
    overrides = {name: small_config(name) for name in BENCHMARKS}
    # enough work that the cold pass dwarfs cache bookkeeping
    overrides["swm"].update(nsteps=20)
    overrides["tomcatv"].update(niters=6)
    return dict(
        benchmarks=BENCHMARKS,
        nprocs=16,
        config_overrides=overrides,
        cache_dir=cache_dir,
        cache_backend=backend,
    )

@pytest.mark.parametrize("backend", ("dir", "sqlite"))
def test_engine_cache_speedup(benchmark, tmp_path, backend):
    kwargs = _study_kwargs(tmp_path / "cache", backend)

    t0 = time.perf_counter()
    cold = run_study(**kwargs)
    cold_s = time.perf_counter() - t0
    assert cold.cache_hits == 0

    t0 = time.perf_counter()
    warm = run_study(**kwargs)
    warm_s = time.perf_counter() - t0
    assert warm.cache_hits == len(warm.outcomes) == len(BENCHMARKS) * 6

    assert dict(warm.results) == dict(cold.results)
    assert cold_s >= 3 * warm_s, (
        f"warm cache not fast enough: cold {cold_s:.3f}s vs warm {warm_s:.3f}s"
    )

    benchmark.extra_info["cold_s"] = round(cold_s, 4)
    benchmark.extra_info["warm_s"] = round(warm_s, 4)
    benchmark.extra_info["speedup"] = round(cold_s / warm_s, 1)
    benchmark.pedantic(lambda: run_study(**kwargs), rounds=3, iterations=1)
