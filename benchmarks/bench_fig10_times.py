"""Figure 10 — performance of the optimized benchmark programs:
(a) each optimization under PVM, (b) full optimization under PVM vs
SHMEM, scaled to baseline.

The benchmark times the fully optimized TOMCATV simulation.
"""

from repro import ExecutionMode, OptimizationConfig, simulate, t3d
from repro.analysis import format_table
from repro.analysis.figures import figure10a_times, figure10b_times, paper_value
from repro.programs import build_benchmark


def test_figure10(benchmark, suite, record_table):
    program = build_benchmark("tomcatv", opt=OptimizationConfig.full())
    machine = t3d(64, "pvm")
    benchmark.pedantic(
        lambda: simulate(program, machine, ExecutionMode.TIMING),
        rounds=3,
        iterations=1,
    )

    headers_a, rows_a = figure10a_times(suite)
    headers_a += ["paper rr", "paper cc", "paper pl"]
    for row in rows_a:
        base_t = paper_value(row[0], "baseline")[2]
        row.extend(
            paper_value(row[0], key)[2] / base_t for key in ("rr", "cc", "pl")
        )
    text_a = format_table(
        headers_a,
        rows_a,
        title="Figure 10(a) — scaled execution times, PVM",
    )
    record_table("figure10a_times_pvm", text_a)

    headers_b, rows_b = figure10b_times(suite)
    headers_b += ["paper pl", "paper pl+shmem"]
    for row in rows_b:
        base_t = paper_value(row[0], "baseline")[2]
        row.append(paper_value(row[0], "pl")[2] / base_t)
        row.append(paper_value(row[0], "pl_shmem")[2] / base_t)
    text_b = format_table(
        headers_b,
        rows_b,
        title="Figure 10(b) — pl vs pl with shmem",
    )
    record_table("figure10b_times_shmem", text_b)

    # the paper's headline orderings
    a = {row[0]: row for row in rows_a}
    for bench in a:
        base, rr, cc, pl = a[bench][1:5]
        assert base >= rr >= cc >= pl

    b = {row[0]: row for row in rows_b}
    for bench in ("swm", "simple"):
        assert b[bench][2] < b[bench][1], "shmem improves SWM/SIMPLE"
    for bench in ("tomcatv", "sp"):
        assert b[bench][2] > b[bench][1], "shmem degrades TOMCATV/SP"
