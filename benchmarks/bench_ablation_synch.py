"""Ablation — the prototype synchronization's polling surcharge.

The paper blames its SHMEM degradation on "unnecessarily heavy-weight"
synchronization and expects an optimized IRONMAN implementation to drop
"pl with shmem" below "pl".  Our model carries a spread-penalty knob on
``synch`` (polling interference against a still-computing partner) set
to zero by default — the degradation already emerges from the
flag-rendezvous semantics alone.  This ablation sweeps the knob to show
how a heavier prototype would have looked, and sweeps the synch fixed
cost down to project the optimized implementation the paper anticipated.
"""

import dataclasses

from repro import ExecutionMode, OptimizationConfig, simulate
from repro.analysis import format_table
from repro.machine import factories, t3d
from repro.machine.params import Machine
from repro.programs import build_benchmark


def shmem_machine(nprocs=64, synch_fixed=None, spread_penalty=None) -> Machine:
    machine = t3d(nprocs, "shmem")
    synch = machine.primitives["synch"]
    changes = {}
    if synch_fixed is not None:
        changes["fixed"] = synch_fixed
    if spread_penalty is not None:
        changes["spread_penalty"] = spread_penalty
    prims = dict(machine.primitives)
    prims["synch"] = dataclasses.replace(synch, **changes)
    return dataclasses.replace(machine, primitives=prims)


def test_synch_weight(benchmark, record_table):
    program = build_benchmark("tomcatv", opt=OptimizationConfig.full())
    pl_pvm = simulate(program, t3d(64, "pvm"), ExecutionMode.TIMING).time
    benchmark.pedantic(
        lambda: simulate(
            program, shmem_machine(), ExecutionMode.TIMING
        ),
        rounds=3,
        iterations=1,
    )

    rows = []
    default_fixed = t3d(2, "shmem").primitives["synch"].fixed
    for label, fixed, beta in [
        ("optimized synch (1us)", 1.0e-6, 0.0),
        ("half-weight synch", default_fixed / 2, 0.0),
        ("prototype (default)", None, None),
        ("prototype + polling x0.5", None, 0.5),
        ("prototype + polling x1.0", None, 1.0),
    ]:
        machine = shmem_machine(synch_fixed=fixed, spread_penalty=beta)
        t = simulate(program, machine, ExecutionMode.TIMING).time
        rows.append([label, t / pl_pvm])
    text = format_table(
        ["synch model", "tomcatv pl+shmem / pl+pvm"],
        rows,
        title="Ablation — synchronization weight (TOMCATV)",
    )
    text += (
        "\n\nthe paper expects 'pl with shmem' to drop below 'pl' once the "
        "synchronization is optimized; the 1us row projects that."
    )
    record_table("ablation_synch", text)

    values = [row[1] for row in rows]
    # monotone: heavier synchronization, worse TOMCATV
    assert values == sorted(values)
    # the optimized-synch projection beats PVM, as the paper anticipates
    assert values[0] < 1.0
