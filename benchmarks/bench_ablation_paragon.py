"""Ablation — the Paragon whole-program battery the paper dropped.

The paper: "we also found that when we performed our full battery of
tests using the benchmark suite on the Paragon, the asynchronous
primitives saw little performance improvement or, in most cases,
performance degradation.  Consequently, we will not present the Paragon
results."  This bench runs that battery anyway and confirms the finding
on the simulated Paragon: per benchmark, the fully optimized program
under isend/irecv is no faster than under csend/crecv, and the callback
primitives are strictly worse.
"""

from repro import ExecutionMode, OptimizationConfig, simulate
from repro.analysis import format_table
from repro.machine import paragon
from repro.programs import BENCHMARKS, build_benchmark

LIBRARIES = ("nx", "nx_async", "nx_callback")


def test_paragon_battery(benchmark, record_table):
    programs = {
        bench: build_benchmark(bench, opt=OptimizationConfig.full())
        for bench in BENCHMARKS
    }
    benchmark.pedantic(
        lambda: simulate(
            programs["swm"], paragon(64, "nx"), ExecutionMode.TIMING
        ),
        rounds=3,
        iterations=1,
    )

    rows = []
    for bench in BENCHMARKS:
        times = {
            lib: simulate(
                programs[bench], paragon(64, lib), ExecutionMode.TIMING
            ).time
            for lib in LIBRARIES
        }
        rows.append(
            [
                bench,
                times["nx"],
                times["nx_async"] / times["nx"],
                times["nx_callback"] / times["nx"],
            ]
        )
    text = format_table(
        ["benchmark", "csend/crecv (s)", "isend/irecv scaled", "hsend/hrecv scaled"],
        rows,
        title="Ablation — Paragon primitives, fully optimized programs "
        "(scaled to csend/crecv)",
    )
    text += (
        "\n\nthe paper's unpresented Paragon finding, reproduced: the "
        "asynchronous primitives bring little or negative benefit, the "
        "callback primitives are strictly worse."
    )
    record_table("ablation_paragon", text)

    for row in rows:
        assert row[2] >= 0.97, "async is at best marginal"
        assert row[3] > 1.0, "callback primitives degrade"
