"""Table 2 — SWM: full counts and times for every experiment key.

The benchmark times the fully optimized SWM simulation under SHMEM (the
configuration the paper highlights: "the reduced software overhead of
shmem_put enables more of the latency to be hidden").
"""

from repro import ExecutionMode, OptimizationConfig, simulate, t3d
from repro.analysis import format_table
from repro.analysis.figures import table_full
from repro.programs import build_benchmark


def test_table2(benchmark, suite, record_table):
    program = build_benchmark("swm", opt=OptimizationConfig.full())
    machine = t3d(64, "shmem")
    benchmark.pedantic(
        lambda: simulate(program, machine, ExecutionMode.TIMING),
        rounds=3,
        iterations=1,
    )

    headers, rows = table_full("swm", suite)
    record_table(
        "table2_swm",
        format_table(headers, rows, title="Table 2 — swm on 64 processors"),
    )

    by = {row[0]: row for row in rows}
    # Table 2's qualitative content: max-latency keeps cc's counts, and
    # SHMEM improves on PVM
    assert by["pl_maxlat"][1] == by["cc"][1]
    assert by["pl_maxlat"][2] == by["cc"][2]
    scaled = {k: by[k][4] for k in by}
    assert scaled["pl_shmem"] < scaled["pl"] < scaled["cc"] < scaled["rr"] < 1.0
    # the paper's two SHMEM heuristic runs differ only by noise; ours are
    # exactly equal (same counts, same placements)
    assert abs(scaled["pl_maxlat"] - scaled["pl_shmem"]) < 0.02
