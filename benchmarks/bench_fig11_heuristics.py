"""Figure 11 — communication counts under the two combining heuristics.

The benchmark times the max-latency compilation of SIMPLE (the heaviest
optimizer workload: large block count, mixed merge admissibility).
"""

from repro import OptimizationConfig
from repro.analysis import format_table
from repro.analysis.figures import figure11_heuristic_counts, paper_value
from repro.programs import build_benchmark


def test_figure11(benchmark, suite, record_table):
    benchmark(
        lambda: build_benchmark(
            "simple", opt=OptimizationConfig.full_max_latency()
        )
    )

    headers, rows = figure11_heuristic_counts(suite)
    headers += ["paper max-comb dyn", "paper max-lat dyn"]
    for row in rows:
        base = paper_value(row[0], "baseline")[1]
        row.append(paper_value(row[0], "pl")[1] / base)
        row.append(paper_value(row[0], "pl_maxlat")[1] / base)
    text = format_table(
        headers,
        rows,
        title="Figure 11 — combining heuristics, counts scaled to baseline",
    )
    record_table("figure11_heuristic_counts", text)

    by = {row[0]: row for row in rows}
    # the paper's structural findings
    assert by["tomcatv"][4] > by["tomcatv"][3], "TOMCATV: max-latency combines nothing"
    assert by["swm"][4] == by["swm"][3], "SWM: max-latency keeps every combination"
    assert by["simple"][3] < by["simple"][4] < 1.0, "SIMPLE: in between"
