"""Figure 6 — exposed communication cost vs message size.

Runs the paper's synthetic two-node benchmark through the whole stack
(generated ZL ping program, full optimization, simulated machine) for
all five primitive sets.  The benchmark times one PVM measurement point;
the recorded table carries the full sweep.
"""

import pytest

from repro.analysis import format_table
from repro.analysis.figures import figure6_overhead
from repro.machine import t3d
from repro.programs.synthetic import measured_overhead

SIZES = (8, 32, 128, 512, 1024, 2048, 4096)


def test_figure6(benchmark, record_table):
    benchmark(lambda: measured_overhead(t3d, "pvm", sizes=(512,), reps=200))

    headers, rows = figure6_overhead(sizes=SIZES, reps=500)
    text = format_table(
        headers,
        rows,
        float_fmt=".1f",
        title="Figure 6 — exposed communication cost (microseconds)",
    )
    text += (
        "\n\npaper: flat to the 512-double (4 KB) knee on every curve; "
        "SHMEM ~10% below PVM; NX async no better than csend/crecv, "
        "NX callback far worse."
    )
    record_table("figure06_overhead", text)

    # the paper's stated relationships, asserted on the measured data
    by_size = {row[0]: row[1:] for row in rows}
    csend, isendr, hsend, pvm, shmem = range(5)
    assert by_size[8][pvm] == pytest.approx(
        by_size[512][pvm], rel=1e-6
    )  # flat to the knee
    assert by_size[1024][pvm] > by_size[512][pvm]  # rising past it
    assert by_size[512][shmem] < by_size[512][pvm]  # shmem cheaper
    assert by_size[512][isendr] >= by_size[512][csend]  # async no better
    assert by_size[512][hsend] > by_size[512][csend]  # callback worse
