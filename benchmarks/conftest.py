"""Shared machinery for the benchmark harness.

``pytest benchmarks/ --benchmark-only`` regenerates every table and
figure of the paper's evaluation.  The expensive part — the
whole-program study (4 benchmarks x 6 experiment keys at paper scale,
64 simulated processors) — is submitted as a job matrix through
:func:`repro.run_study` in the ``suite`` fixture: cells fan out over
worker processes when the host has them, and land in an on-disk result
cache under ``benchmarks/.repro-cache/`` so repeated harness runs only
re-simulate what changed.  The per-figure benchmark targets time one
representative simulation each and render their tables from the shared
results.

Each regenerated table is printed and also written to
``benchmarks/results/<name>.txt``.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro import run_study
from repro.programs import BENCHMARKS

RESULTS_DIR = Path(__file__).parent / "results"
CACHE_DIR = Path(__file__).parent / ".repro-cache"


@pytest.fixture(scope="session")
def suite():
    """The paper-scale whole-program study feeding Figures 8/10/11/12 and
    Tables 1-4, via the experiment engine (parallel + cached)."""
    return run_study(
        benchmarks=BENCHMARKS,
        nprocs=64,
        jobs=min(4, os.cpu_count() or 1),
        cache_dir=CACHE_DIR,
    )


@pytest.fixture(scope="session")
def record_table():
    """Print a regenerated table and persist it under
    benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _record(name: str, text: str) -> None:
        print()
        print(text)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")

    return _record
