"""Shared machinery for the benchmark harness.

``pytest benchmarks/ --benchmark-only`` regenerates every table and
figure of the paper's evaluation.  The expensive part — the
whole-program study (4 benchmarks x 6 experiment keys at paper scale,
64 simulated processors) — runs once per session in the ``suite``
fixture; the per-figure benchmark targets time one representative
simulation each and render their tables from the shared results.

Each regenerated table is printed and also written to
``benchmarks/results/<name>.txt``.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis.experiments import run_benchmark_suite
from repro.programs import BENCHMARKS

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def suite():
    """The paper-scale whole-program study feeding Figures 8/10/11/12 and
    Tables 1-4."""
    return run_benchmark_suite(BENCHMARKS, nprocs=64)


@pytest.fixture(scope="session")
def record_table():
    """Print a regenerated table and persist it under
    benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _record(name: str, text: str) -> None:
        print()
        print(text)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")

    return _record
