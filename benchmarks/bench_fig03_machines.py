"""Figure 3 — machine parameters and communication libraries.

A descriptive table; the benchmark times machine construction (the
binding/primitive validation path).
"""

from repro.analysis import format_table
from repro.analysis.figures import figure3_machines
from repro.machine import paragon, t3d


def test_figure3(benchmark, record_table):
    def build_machines():
        return (
            paragon(2, "nx"),
            paragon(2, "nx_async"),
            paragon(2, "nx_callback"),
            t3d(64, "pvm"),
            t3d(64, "shmem"),
        )

    machines = benchmark(build_machines)
    headers, rows = figure3_machines()
    text = format_table(
        headers, rows, title="Figure 3 — machine parameters"
    )
    text += "\n\nsimulated instances:\n" + "\n".join(
        f"  {m.describe()}" for m in machines
    )
    record_table("figure03_machines", text)
