"""Figure 7 — the benchmark programs and their generated-C line counts.

The benchmark times compiling TOMCATV end-to-end (parse -> check ->
lower -> optimize -> emit).
"""

from repro import OptimizationConfig, emit_c
from repro.analysis import format_table
from repro.analysis.figures import figure7_programs
from repro.programs import build_benchmark


def test_figure7(benchmark, record_table):
    def compile_and_emit():
        program = build_benchmark("tomcatv", opt=OptimizationConfig.full())
        return emit_c(program)

    emitted = benchmark(compile_and_emit)
    assert emitted.total_lines > emitted.lines_excluding_comm

    headers, rows = figure7_programs()
    text = format_table(
        headers,
        rows,
        title="Figure 7 — benchmark programs (generated C lines, excluding "
        "communication)",
    )
    text += (
        "\n\npaper line counts are for the original full applications; "
        "ours are re-derived ZL implementations preserving the paper's "
        "communication structure (see DESIGN.md)."
    )
    record_table("figure07_programs", text)
