"""Ablation — optimization benefit vs machine size.

The paper fixes 64 processors.  Sweeping the partition size shows how
the optimizations' value moves with the surface-to-volume ratio: smaller
partitions mean larger local blocks, more computation per transferred
byte, and thinner communication savings.
"""

from repro import ExecutionMode, OptimizationConfig, simulate, t3d
from repro.analysis import format_table
from repro.programs import build_benchmark

PROCS = (4, 16, 64)


def test_scaling(benchmark, record_table):
    programs = {
        key: build_benchmark("swm", opt=cfg)
        for key, cfg in [
            ("baseline", OptimizationConfig.baseline()),
            ("pl", OptimizationConfig.full()),
        ]
    }
    benchmark.pedantic(
        lambda: simulate(
            programs["pl"], t3d(16, "pvm"), ExecutionMode.TIMING
        ),
        rounds=3,
        iterations=1,
    )

    rows = []
    for nprocs in PROCS:
        machine = t3d(nprocs, "pvm")
        base = simulate(programs["baseline"], machine, ExecutionMode.TIMING)
        full = simulate(programs["pl"], machine, ExecutionMode.TIMING)
        rows.append(
            [
                nprocs,
                base.time,
                full.time,
                full.time / base.time,
                base.dynamic_comm_count,
            ]
        )
    text = format_table(
        ["procs", "baseline (s)", "pl (s)", "pl scaled", "baseline dyn comms"],
        rows,
        title="Ablation — SWM optimization benefit vs partition size",
    )
    record_table("ablation_scaling", text)

    scaled = [row[3] for row in rows]
    # communication matters more at scale: the full optimization's
    # relative benefit grows (scaled time shrinks) with the machine
    assert scaled[-1] <= scaled[0] + 1e-9
    # and absolute times shrink with more processors
    times = [row[1] for row in rows]
    assert times == sorted(times, reverse=True)
