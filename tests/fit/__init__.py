"""Tests for machine-parameter calibration (`repro.fit`)."""
