"""Tests for machine-parameter calibration (`repro.fit`)."""

import json

import pytest

from repro import MachineError
from repro.fit import (
    FIT_SCHEMA,
    FitObservation,
    FitTarget,
    fit_machine,
    load_target,
    synthesize_target,
)

SIMPLE_N24 = {"n": 24, "niters": 2, "ncond": 2}
TRUTH = {"net.latency": 3.2e-5, "prim.*.per_byte": 2.4e-8}


def _target(**kwargs):
    kwargs.setdefault("machine", "t3d")
    kwargs.setdefault("nprocs", 16)
    kwargs.setdefault(
        "observations",
        (FitObservation("simple", "baseline", 1.0),),
    )
    return FitTarget(**kwargs)


@pytest.fixture(scope="module")
def synthetic():
    """Ground-truth observations simulated with TRUTH applied."""
    return synthesize_target(
        machine="t3d",
        nprocs=16,
        truth=TRUTH,
        benchmarks="simple",
        keys=("baseline", "cc"),
        config={"simple": SIMPLE_N24},
    )


# ---------------------------------------------------------------------------
# targets: validation and round-trip
# ---------------------------------------------------------------------------


class TestFitTarget:
    def test_no_observations_rejected(self):
        with pytest.raises(MachineError, match="no observations"):
            _target(observations=())

    def test_duplicate_cell_rejected(self):
        with pytest.raises(MachineError, match="duplicate"):
            _target(
                observations=(
                    FitObservation("simple", "baseline", 1.0),
                    FitObservation("simple", "baseline", 2.0),
                )
            )

    def test_non_positive_time_rejected(self):
        with pytest.raises(MachineError, match="non-positive"):
            _target(observations=(FitObservation("simple", "cc", 0.0),))

    def test_json_round_trip(self, tmp_path):
        target = _target(
            overrides={"prim.*.knee_bytes": 32},
            config={"simple": SIMPLE_N24},
        )
        path = target.write_json(tmp_path / "target.json")
        doc = json.loads(path.read_text())
        assert doc["schema"] == FIT_SCHEMA
        loaded = load_target(path)
        assert loaded == target

    def test_schema_mismatch_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema": 999, "observations": []}))
        with pytest.raises(MachineError, match="schema"):
            load_target(path)


class TestSynthesize:
    def test_observations_are_simulated_times(self, synthetic):
        assert len(synthetic.observations) == 2
        assert {ob.experiment for ob in synthetic.observations} == {
            "baseline",
            "cc",
        }
        assert all(ob.time > 0 for ob in synthetic.observations)

    def test_truth_moves_the_times(self):
        base = synthesize_target(
            machine="t3d",
            nprocs=16,
            truth={},
            benchmarks="simple",
            keys=("baseline",),
            config={"simple": SIMPLE_N24},
        )
        slow = synthesize_target(
            machine="t3d",
            nprocs=16,
            truth={"net.latency": 1e-3},
            benchmarks="simple",
            keys=("baseline",),
            config={"simple": SIMPLE_N24},
        )
        assert slow.observations[0].time > base.observations[0].time


# ---------------------------------------------------------------------------
# the optimizer
# ---------------------------------------------------------------------------


class TestFitMachine:
    def test_recovers_known_parameters(self, synthetic):
        """The headline acceptance test: fitting the truth paths against
        synthetic observations recovers the known values."""
        result = fit_machine(
            synthetic, sorted(TRUTH), rounds=28, samples=9
        )
        assert result.loss < 1e-6
        assert result.loss < result.initial_loss
        for path, truth in TRUTH.items():
            rel = abs(result.fitted[path] - truth) / truth
            assert rel < 0.05, f"{path}: fitted {result.fitted[path]:g} " \
                f"vs truth {truth:g} (rel {rel:.3g})"

    def test_history_is_monotone(self, synthetic):
        result = fit_machine(
            synthetic, ("net.latency",), rounds=8, samples=9
        )
        losses = [h["loss"] for h in result.history]
        assert losses == sorted(losses, reverse=True)
        assert result.evaluations >= len(result.history)

    def test_respects_bounds(self, synthetic):
        lo, hi = 1e-5, 2e-5  # truth (3.2e-5) lies outside: clamp to hi
        result = fit_machine(
            synthetic,
            ("net.latency",),
            bounds={"net.latency": (lo, hi)},
            rounds=6,
            samples=5,
        )
        assert lo <= result.fitted["net.latency"] <= hi

    def test_no_paths_rejected(self, synthetic):
        with pytest.raises(MachineError, match="at least one path"):
            fit_machine(synthetic, ())

    def test_bad_samples_rejected(self, synthetic):
        with pytest.raises(MachineError, match="samples"):
            fit_machine(synthetic, ("net.latency",), samples=2)

    def test_empty_bound_rejected(self, synthetic):
        with pytest.raises(MachineError, match="empty"):
            fit_machine(
                synthetic,
                ("net.latency",),
                bounds={"net.latency": (1e-4, 1e-5)},
            )

    def test_unknown_path_rejected(self, synthetic):
        with pytest.raises(MachineError, match="unknown override path"):
            fit_machine(synthetic, ("net.color",))


class TestFitResult:
    @pytest.fixture(scope="class")
    def result(self, synthetic):
        return fit_machine(
            synthetic, ("net.latency",), rounds=6, samples=5
        )

    def test_json_round_trip(self, result, tmp_path):
        path = result.write_json(tmp_path / "fit.json")
        doc = json.loads(path.read_text())
        assert doc["schema"] == FIT_SCHEMA
        assert doc["machine"] == "t3d" and doc["nprocs"] == 16
        assert doc["paths"] == ["net.latency"]
        assert doc["fitted"]["net.latency"] == result.fitted["net.latency"]
        assert doc["rounds"] == result.rounds
        assert doc["evaluations"] == result.evaluations
        assert doc["history"] == result.history

    def test_describe_mentions_fit(self, result):
        text = result.describe()
        assert "Fitted t3d/16" in text
        assert "net.latency" in text
