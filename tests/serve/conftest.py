"""Shared serve-test hygiene: ``ServeApp._run_logged`` installs a bare
recorder when none is live (progress streaming needs one), so every
test must start and end with tracing off or recorder state would leak
across tests."""

import pytest

from repro.obs import core as obs


@pytest.fixture(autouse=True)
def tracing_off():
    obs.shutdown()
    yield
    obs.shutdown()
