"""Progress streaming, the metrics endpoint, and the extended /stats.

The invariants under test: every job produces exactly one streamed
``job`` event plus one terminal ``done`` event; a subscriber that
connects mid-run (or after the run) still replays the full log from
the start; ``GET /metrics`` renders a parseable Prometheus exposition;
``GET /stats`` reports uptime, per-endpoint request counts, and the
``engine.dispatch.*`` counters.
"""

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.obs import MemorySink, recording
from repro.programs import small_config
from repro.serve import ProgressLog, ReproServer, ServeApp

SWM_SMALL = small_config("swm")

STUDY = {
    "benchmarks": ["swm"],
    "keys": ["baseline", "cc"],
    "nprocs": 16,
    "config_overrides": {"swm": SWM_SMALL},
}


@pytest.fixture
def server(tmp_path):
    app = ServeApp(cache_dir=tmp_path / "cache", cache_backend="sqlite")
    srv = ReproServer(app).start()
    yield srv
    srv.close()


def _get_json(url, path):
    with urllib.request.urlopen(url + path, timeout=30) as resp:
        return resp.status, json.loads(resp.read())


def _post(url, path, payload, timeout=300):
    req = urllib.request.Request(
        url + path,
        data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with urllib.request.urlopen(req, timeout=timeout) as resp:
        return resp.status, json.loads(resp.read())


def _stream(url, path, timeout=300):
    """Consume a chunked JSONL stream to its end (urllib de-chunks)."""
    events = []
    with urllib.request.urlopen(url + path, timeout=timeout) as resp:
        assert resp.headers.get("Transfer-Encoding") == "chunked"
        assert "ndjson" in resp.headers.get("Content-Type", "")
        for line in resp:
            if line.strip():
                events.append(json.loads(line))
    return events


def parse_prometheus(text):
    """A minimal Prometheus text-exposition parser: ``{name: value}``
    with label sets kept in the name; raises on malformed lines."""
    metrics = {}
    types = {}
    for line in text.splitlines():
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split()
            assert parts[0] == "#" and parts[1] == "TYPE", line
            types[parts[2]] = parts[3]
            assert parts[3] in ("counter", "gauge", "summary"), line
            continue
        name, _, value = line.rpartition(" ")
        assert name, f"malformed sample line: {line!r}"
        metrics[name] = float(value)
    return metrics, types


# ---------------------------------------------------------------------------
# ProgressLog
# ---------------------------------------------------------------------------


class TestProgressLog:
    def test_replay_and_follow_contract(self):
        log = ProgressLog("k", "study", total=2)
        log.append({"event": "job"})
        events, done = log.snapshot()
        assert [e["event"] for e in events] == ["start", "job"]
        assert not done
        tail, done = log.snapshot(2)
        assert tail == [] and not done
        log.finish({"event": "done"})
        tail, done = log.snapshot(2)
        assert [e["event"] for e in tail] == ["done"] and done

    def test_append_after_finish_is_dropped(self):
        log = ProgressLog("k", "study")
        log.finish({"event": "done"})
        log.append({"event": "job"})
        log.finish({"event": "done"})
        events, _ = log.snapshot()
        assert [e["event"] for e in events] == ["start", "done"]


# ---------------------------------------------------------------------------
# the streaming routes
# ---------------------------------------------------------------------------


def test_stream_has_one_event_per_job_and_a_terminal_done(server):
    status, doc = _post(server.url, "/v1/study", STUDY)
    assert status == 200 and doc["cells"] == 2
    events = _stream(server.url, f"/v1/progress/{doc['key']}")
    kinds = [e["event"] for e in events]
    assert kinds[0] == "start" and kinds[-1] == "done"
    jobs = [e for e in events if e["event"] == "job"]
    assert len(jobs) == doc["cells"]
    assert {(e["benchmark"], e["experiment"]) for e in jobs} == {
        ("swm", "baseline"),
        ("swm", "cc"),
    }
    assert {e["status"] for e in jobs} == {"done"}
    assert events[0]["cells"] == 2
    assert events[-1]["executed"] == 2


def test_cached_rerun_streams_cached_job_events(server):
    _post(server.url, "/v1/study", STUDY)
    status, doc = _post(server.url, "/v1/study", STUDY)
    assert status == 200 and doc["executed"] == 0
    events = _stream(server.url, f"/v1/progress/{doc['key']}")
    jobs = [e for e in events if e["event"] == "job"]
    assert len(jobs) == 2
    assert {e["status"] for e in jobs} == {"cached"}


def test_mid_run_subscriber_replays_from_the_start(server):
    """A subscriber connecting after jobs already finished still sees
    every event — the log replays from the start."""
    result = {}

    def submit():
        _, result["doc"] = _post(server.url, "/v1/study", STUDY)

    thread = threading.Thread(target=submit)
    thread.start()
    try:
        # wait until at least half the jobs (1 of 2) have streamed
        key = None
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline:
            _, index = _get_json(server.url, "/v1/progress")
            live = [s for s in index["studies"] if s["events"] >= 2]
            if live:
                key = live[0]["key"]
                break
            time.sleep(0.02)
        assert key is not None, "no study produced job events in time"
        events = _stream(server.url, f"/v1/progress/{key}")
    finally:
        thread.join()
    kinds = [e["event"] for e in events]
    assert kinds[0] == "start" and kinds[-1] == "done"
    assert sum(k == "job" for k in kinds) == result["doc"]["cells"]


def test_progress_index_and_unknown_key(server):
    _, doc = _post(server.url, "/v1/study", STUDY)
    _, index = _get_json(server.url, "/v1/progress")
    (summary,) = index["studies"]
    assert summary["key"] == doc["key"]
    assert summary["kind"] == "study"
    assert summary["done"] is True
    assert summary["cells"] == 2
    with pytest.raises(urllib.error.HTTPError) as err:
        urllib.request.urlopen(server.url + "/v1/progress/nope", timeout=30)
    assert err.value.code == 404


def test_concurrent_runs_do_not_cross_talk(server, tmp_path):
    """Two different studies running in one serving process keep their
    job events separated — each stream carries only its own cells."""
    other = dict(STUDY, keys=["pl"])
    docs = {}

    def submit(name, payload):
        _, docs[name] = _post(server.url, "/v1/study", payload)

    threads = [
        threading.Thread(target=submit, args=("a", STUDY)),
        threading.Thread(target=submit, args=("b", other)),
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    events_a = _stream(server.url, f"/v1/progress/{docs['a']['key']}")
    events_b = _stream(server.url, f"/v1/progress/{docs['b']['key']}")
    exps_a = {e["experiment"] for e in events_a if e["event"] == "job"}
    exps_b = {e["experiment"] for e in events_b if e["event"] == "job"}
    assert exps_a == {"baseline", "cc"}
    assert exps_b == {"pl"}


# ---------------------------------------------------------------------------
# /metrics
# ---------------------------------------------------------------------------


def test_metrics_endpoint_parses_and_counts_dispatch(server):
    with recording(MemorySink()):
        _post(server.url, "/v1/study", STUDY)
        with urllib.request.urlopen(server.url + "/metrics", timeout=30) as resp:
            assert resp.status == 200
            assert resp.headers["Content-Type"].startswith("text/plain")
            text = resp.read().decode()
    metrics, types = parse_prometheus(text)
    assert metrics["engine_dispatch_jobs_total"] == 2
    assert types["engine_dispatch_jobs_total"] == "counter"
    assert metrics["serve_studies_total"] == 1
    assert metrics["serve_uptime_seconds"] > 0
    assert types["serve_uptime_seconds"] == "gauge"
    assert metrics['serve_endpoint_requests_total{endpoint="POST /v1/study"}'] == 1


def test_metrics_works_without_a_recorder(server):
    with urllib.request.urlopen(server.url + "/metrics", timeout=30) as resp:
        metrics, _ = parse_prometheus(resp.read().decode())
    assert "serve_uptime_seconds" in metrics


# ---------------------------------------------------------------------------
# /stats extensions
# ---------------------------------------------------------------------------


def test_stats_reports_uptime_endpoints_and_dispatch(server):
    with recording(MemorySink()):
        _post(server.url, "/v1/study", STUDY)
        _get_json(server.url, "/healthz")
        status, doc = _get_json(server.url, "/stats")
    assert status == 200
    assert doc["uptime_s"] > 0
    assert doc["endpoints"]["POST /v1/study"] == 1
    assert doc["endpoints"]["GET /healthz"] == 1
    assert doc["dispatch"]["engine.dispatch.jobs"] == 2
    assert doc["progress"] == 1


def test_stats_normalizes_progress_stream_endpoints(server):
    _, doc = _post(server.url, "/v1/study", STUDY)
    _stream(server.url, f"/v1/progress/{doc['key']}")
    _stream(server.url, f"/v1/progress/{doc['key']}")
    _, stats = _get_json(server.url, "/stats")
    assert stats["endpoints"]["GET /v1/progress/*"] == 2
