"""The ``repro serve`` front-end: routing, in-flight dedup, caching.

The server is started in-process on an ephemeral port and driven with
stdlib ``urllib`` — the same wire a real client uses.  The invariants
under test: a second identical submission runs zero new jobs (served by
the result cache, or by joining the in-flight execution), counters
stream through :mod:`repro.obs`, and malformed requests fail with the
right status instead of killing the server.
"""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.obs import MemorySink, recording
from repro.obs import core as obs
from repro.programs import small_config
from repro.serve import ReproServer, ServeApp

SWM_SMALL = small_config("swm")

STUDY = {
    "benchmarks": ["swm"],
    "keys": ["baseline"],
    "nprocs": 16,
    "config_overrides": {"swm": SWM_SMALL},
}


@pytest.fixture
def server(tmp_path):
    app = ServeApp(cache_dir=tmp_path / "cache", cache_backend="sqlite")
    srv = ReproServer(app).start()
    yield srv
    srv.close()


def _get(url, path):
    with urllib.request.urlopen(url + path, timeout=30) as resp:
        return resp.status, json.loads(resp.read())


def _post(url, path, payload, timeout=300):
    req = urllib.request.Request(
        url + path,
        data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    try:
        with urllib.request.urlopen(req, timeout=timeout) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


def test_healthz(server):
    status, doc = _get(server.url, "/healthz")
    assert (status, doc) == (200, {"ok": True})


def test_study_roundtrip_then_cache_serves_the_rerun(server):
    with recording(MemorySink()):
        status, first = _post(server.url, "/v1/study", STUDY)
        assert status == 200
        assert first["kind"] == "study"
        assert first["cells"] == 1
        assert first["executed"] == 1
        assert not first["deduped"]
        assert first["cache"]["backend"] == "sqlite"
        (cell,) = first["results"]
        assert cell["benchmark"] == "swm"
        assert cell["experiment"] == "baseline"
        assert cell["execution_time"] > 0

        status, second = _post(server.url, "/v1/study", STUDY)
        counters = obs.counters()
    assert status == 200
    # the second identical submission runs zero new jobs
    assert second["executed"] == 0
    assert second["cache_hits"] == 1
    assert second["results"][0]["fingerprint"] == cell["fingerprint"]
    assert counters["cache.backend.hits"] >= 1
    assert counters["serve.studies"] == 2


def test_identical_inflight_submissions_dedup(server):
    results = []
    lock = threading.Lock()

    def submit():
        _, doc = _post(server.url, "/v1/study", STUDY)
        with lock:
            results.append(doc)

    with recording(MemorySink()):
        threads = [threading.Thread(target=submit) for _ in range(3)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        counters = obs.counters()

    assert len(results) == 3
    flags = sorted(doc["deduped"] for doc in results)
    # every joiner shares the one execution; with the in-flight map
    # consulted at submission, late arrivals may instead land after
    # completion and be served by the cache — either way zero re-runs
    assert counters["serve.studies"] + counters.get("serve.dedup", 0) >= 3
    assert flags.count(True) == counters.get("serve.dedup", 0)
    fingerprints = {doc["results"][0]["fingerprint"] for doc in results}
    assert len(fingerprints) == 1


def test_sweep_requests_auto_batch(server):
    payload = {
        "axes": [{"name": "net.latency", "values": [1e-6, 1e-4]}],
        "benchmarks": ["swm"],
        "keys": ["baseline"],
        "config_overrides": {"swm": SWM_SMALL},
    }
    with recording(MemorySink()):
        status, doc = _post(server.url, "/v1/sweep", payload)
        counters = obs.counters()
    assert status == 200
    assert doc["kind"] == "sweep"
    assert doc["points"] == 2
    assert doc["cells"] == 2
    # cost-only TIMING sweeps route through the batched evaluator
    assert counters["sweep.batched_cells"] == 2
    assert counters["serve.sweeps"] == 1


def test_stats_route_reports_cache_and_inflight(server):
    status, doc = _get(server.url, "/stats")
    assert status == 200
    assert doc["cache"]["backend"] == "sqlite"
    assert doc["inflight"] == 0
    assert isinstance(doc["counters"], dict)


def test_unknown_fields_rejected(server):
    status, doc = _post(server.url, "/v1/study", {"cache_dir": "/elsewhere"})
    assert status == 400
    assert "cache_dir" in doc["error"]
    assert "benchmarks" in doc["allowed"]


def test_malformed_body_rejected(server):
    req = urllib.request.Request(
        server.url + "/v1/study", data=b"{ not json", method="POST"
    )
    with pytest.raises(urllib.error.HTTPError) as err:
        urllib.request.urlopen(req, timeout=30)
    assert err.value.code == 400


def test_unknown_route_404(server):
    with pytest.raises(urllib.error.HTTPError) as err:
        urllib.request.urlopen(server.url + "/v2/nothing", timeout=30)
    assert err.value.code == 404


def test_bad_request_is_422_and_server_survives(server):
    status, doc = _post(
        server.url, "/v1/study", {"benchmarks": ["no_such_benchmark"]}
    )
    assert status == 422
    assert "no_such_benchmark" in doc["error"]
    # the server is still healthy afterwards
    assert _get(server.url, "/healthz")[0] == 200


def test_app_probes_backend_config_eagerly(tmp_path, monkeypatch):
    monkeypatch.delenv("REPRO_CACHE_URL", raising=False)
    from repro.errors import ExperimentError

    with pytest.raises(ExperimentError, match="URL"):
        ServeApp(cache_backend="http")
