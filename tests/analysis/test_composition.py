"""Tests for the optimization-composition study.

The load-bearing property is *anti-circularity*: composition factors
must be derived from independently measured single-optimization runs
(``rr``, ``cc_only``, ``pl_only``), never from ratios along the paper's
cumulative chain — those telescope, making every factor identically 1.
The golden tests pin the CSV header and ``%.6g`` cell format and the
versioned JSON schema so the emitted artifacts stay diffable.
"""

import csv
import json

import pytest

from repro.analysis.composition import (
    COMPOSITION_SCHEMA,
    DEFAULT_VARIANTS,
    CompositionCell,
    composition_rows,
    format_composition_report,
    run_composition,
    write_csv,
    write_json,
)
from repro.engine import MachineSpec, load_telemetry
from repro.errors import ExperimentError
from repro.experiments_registry import COMPOSITION_KEYS, EXPERIMENT_KEYS

BENCHES = ("jacobi", "gen_0")
CONFIGS = {
    "jacobi": {"n": 12, "niters": 2},
    "gen_0": {"n": 12, "niters": 1},
}
VARIANTS = ({}, {"net.latency": 6e-5})

EXPECTED_CSV_HEADER = (
    "benchmark,machine,nprocs,variant,overrides,"
    "t_baseline,t_rr,t_cc_only,t_pl_only,t_pl,"
    "s_rr,s_cc,s_pl,predicted,measured,factor"
)


@pytest.fixture(scope="module")
def study():
    return run_composition(
        benchmarks=BENCHES,
        machine="t3d",
        nprocs=4,
        variants=VARIANTS,
        config_overrides=CONFIGS,
        cache=False,
    )


def test_composition_keys_are_independent_by_construction():
    assert COMPOSITION_KEYS == ("baseline", "rr", "cc_only", "pl_only", "pl")
    # the single-optimization keys exist only for this study
    assert "cc_only" not in EXPERIMENT_KEYS
    assert "pl_only" not in EXPERIMENT_KEYS


def test_grid_shape(study):
    assert study.benchmarks == BENCHES
    assert study.nprocs == 4
    assert len(study.cells) == len(BENCHES) * len(VARIANTS)
    variants = {c.variant for c in study.cells}
    assert "base" in variants and len(variants) == 2
    for cell in study.cells:
        assert set(cell.times) == set(COMPOSITION_KEYS)
        assert all(t > 0 for t in cell.times.values())


def test_factors_derive_from_single_optimization_runs(study):
    """Each cell's speedups/prediction recompute exactly from its own
    times using the independent keys."""
    for c in study.cells:
        base = c.times["baseline"]
        assert c.speedup_rr == base / c.times["rr"]
        assert c.speedup_cc == base / c.times["cc_only"]
        assert c.speedup_pl == base / c.times["pl_only"]
        assert c.predicted == c.speedup_rr * c.speedup_cc * c.speedup_pl
        assert c.measured == base / c.times["pl"]
        assert c.factor == c.measured / c.predicted


def test_anti_circularity(study):
    """A chain-derived 'prediction' telescopes to the measured speedup —
    factor identically 1 for every cell.  The implementation must not do
    that: somewhere in the grid prediction and measurement genuinely
    disagree."""
    for c in study.cells:
        chain_prediction = (
            (c.times["baseline"] / c.times["rr"])      # baseline -> rr
            * (c.times["rr"] / c.times["pl"])          # rr -> combined
        )
        assert chain_prediction == pytest.approx(c.measured)
    assert any(
        abs(c.factor - 1.0) > 1e-6 for c in study.cells
    ), "every factor is exactly 1 — the computation is circular"


def test_factor_sanity_bounds(study):
    for c in study.cells:
        assert 0.2 < c.factor < 5.0, (c.benchmark, c.variant, c.factor)


def test_cell_accessor(study):
    cell = study.cell("jacobi", "base")
    assert isinstance(cell, CompositionCell)
    assert cell.machine == "t3d"
    with pytest.raises(ExperimentError, match="no composition cell"):
        study.cell("jacobi", "nonesuch")
    assert set(study.factors) == set(BENCHES)


def test_report_renders(study):
    report = format_composition_report(study)
    assert "Composition factor (measured/predicted)" in report
    assert "jacobi" in report and "gen_0" in report


# ---------------------------------------------------------------------------
# artifact goldens
# ---------------------------------------------------------------------------


def test_csv_golden(study, tmp_path):
    path = write_csv(tmp_path / "comp.csv", study)
    lines = path.read_text().splitlines()
    assert lines[0] == EXPECTED_CSV_HEADER
    assert len(lines) == 1 + len(study.cells)
    with path.open() as fh:
        rows = list(csv.DictReader(fh))
    for row, cell in zip(rows, study.cells):
        assert row["benchmark"] == cell.benchmark
        assert row["variant"] == cell.variant
        # every float cell is rendered %.6g, exactly
        assert row["factor"] == f"{cell.factor:.6g}"
        assert row["t_baseline"] == f"{cell.times['baseline']:.6g}"
        assert row["predicted"] == f"{cell.predicted:.6g}"


def test_json_golden(study, tmp_path):
    path = write_json(tmp_path / "comp.json", study)
    doc = json.loads(path.read_text())
    assert doc["schema"] == COMPOSITION_SCHEMA == 1
    assert doc["machine"] == "t3d"
    assert doc["nprocs"] == 4
    assert doc["benchmarks"] == list(BENCHES)
    assert doc["keys"] == list(COMPOSITION_KEYS)
    assert len(doc["variants"]) == 2
    assert doc["variants"][0] == {"variant": "base", "overrides": {}}
    assert doc["variants"][1]["overrides"] == {"net.latency": 6e-5}
    assert len(doc["cells"]) == len(study.cells)
    # full precision: the JSON round-trips the exact floats
    for raw, cell in zip(doc["cells"], study.cells):
        assert raw["factor"] == cell.factor
        assert raw["times"] == cell.times
    summary = doc["summary"]
    factors = [c.factor for c in study.cells]
    assert summary["factor_min"] == min(factors)
    assert summary["factor_max"] == max(factors)


def test_rows_align_with_header(study):
    headers, rows = composition_rows(study)
    assert ",".join(headers) == EXPECTED_CSV_HEADER
    assert all(len(row) == len(headers) for row in rows)


# ---------------------------------------------------------------------------
# engine plumbing and validation
# ---------------------------------------------------------------------------


def test_telemetry_roundtrip(tmp_path):
    tel = tmp_path / "tel.json"
    result = run_composition(
        benchmarks="jacobi",
        machine="t3d",
        nprocs=4,
        variants=({},),
        config_overrides=CONFIGS,
        cache=False,
        telemetry=tel,
    )
    records = load_telemetry(tel)
    assert len(records) == len(COMPOSITION_KEYS) == len(result.outcomes)
    assert {r["experiment"] for r in records} == set(COMPOSITION_KEYS)


def test_base_overrides_merge_into_variants():
    """Overrides pinned on the base spec (the CLI's --set) apply under
    every variant instead of being replaced by the variant's own."""
    pinned = MachineSpec.coerce("t3d", overrides={"net.bandwidth": 6e7})
    result = run_composition(
        benchmarks="jacobi",
        machine=pinned,
        nprocs=4,
        variants=VARIANTS,
        config_overrides=CONFIGS,
        cache=False,
    )
    for overrides in result.variants:
        assert dict(overrides)["net.bandwidth"] == 6e7


def test_default_variants_cover_base_and_high_latency():
    assert DEFAULT_VARIANTS[0] == {}
    assert DEFAULT_VARIANTS[1] == {"net.latency": 1.2e-4}


def test_empty_grid_rejected():
    with pytest.raises(ExperimentError, match="at least one benchmark"):
        run_composition(benchmarks=(), nprocs=4, cache=False)
    with pytest.raises(ExperimentError, match="at least one machine variant"):
        run_composition(
            benchmarks="jacobi", nprocs=4, variants=(), cache=False
        )


def test_duplicate_variants_rejected():
    with pytest.raises(ExperimentError, match="duplicate machine variant"):
        run_composition(
            benchmarks="jacobi",
            nprocs=4,
            variants=({}, {}),
            config_overrides=CONFIGS,
            cache=False,
        )


def test_unknown_benchmark_rejected():
    with pytest.raises(ExperimentError, match="unknown benchmark"):
        run_composition(benchmarks="linpack", nprocs=4, cache=False)
