"""Tests for the per-pass attribution report (the finer-grained Figure 8).

One module-scoped study runs the paper's full grid (four benchmarks,
six keys) at small configs; every test reads its telemetry.
"""

import pytest

from repro import run_study
from repro.analysis import (
    figure8_by_pass,
    pass_attribution,
    pipeline_report,
    report_reconciles,
)
from repro.analysis.report import format_table
from repro.programs import BENCHMARKS, small_config

NPROCS = 16


@pytest.fixture(scope="module")
def study():
    return run_study(
        benchmarks=BENCHMARKS,
        nprocs=NPROCS,
        config_overrides={b: small_config(b) for b in BENCHMARKS},
        cache=False,
    )


def _baseline_static(study, benchmark):
    for record in study.telemetry:
        if (
            record["benchmark"] == benchmark
            and record["experiment"] == "baseline"
        ):
            return record["result"]["static_count"]
    raise AssertionError(f"no baseline record for {benchmark}")


def test_every_record_reconciles(study):
    """Acceptance criterion: removal/merge totals reconcile with the
    Figure 8 static-count deltas for all four benchmarks and all six
    keys — each record's report explains exactly how its static count
    got from the naive count to the measured one."""
    assert len(study.telemetry) == len(BENCHMARKS) * 6
    for record in study.telemetry:
        assert report_reconciles(record), (
            record["benchmark"],
            record["experiment"],
        )
        report = pipeline_report(record)
        baseline = _baseline_static(study, record["benchmark"])
        assert report.planned == baseline
        assert (
            baseline - report.total_removed - report.total_merged
            == record["result"]["static_count"]
        )


def test_baseline_report_is_empty_but_counted(study):
    for record in study.telemetry:
        if record["experiment"] != "baseline":
            continue
        report = pipeline_report(record)
        assert report.signature == ()
        assert report.passes == []
        assert report.planned == report.final > 0
        assert report.blocks > 0


def test_pass_attribution_rows(study):
    headers, rows = pass_attribution(study)
    assert headers[:3] == ["benchmark", "experiment", "pass"]
    # baseline cells run no passes, so contribute no rows
    assert not [r for r in rows if r[1] == "baseline"]
    # every non-baseline cell of every benchmark is represented
    cells = {(r[0], r[1]) for r in rows}
    assert cells == {
        (b, k)
        for b in BENCHMARKS
        for k in ("rr", "cc", "pl", "pl_shmem", "pl_maxlat")
    }
    # a cell that reduced the count attributes 100% of it across passes
    for bench in BENCHMARKS:
        shares = [
            int(r[-1].rstrip("%"))
            for r in rows
            if r[0] == bench and r[1] == "pl" and r[-1]
        ]
        if shares:
            assert sum(shares) == pytest.approx(100, abs=len(shares))


def test_pass_attribution_filters(study):
    _, rows = pass_attribution(study, benchmarks=["swm"], experiments=["pl"])
    assert rows
    assert {(r[0], r[1]) for r in rows} == {("swm", "pl")}


def test_figure8_by_pass_fractions_sum_to_one(study):
    headers, rows = figure8_by_pass(study)
    assert headers == [
        "benchmark",
        "naive",
        "redundancy",
        "combining",
        "remaining",
    ]
    assert [r[0] for r in rows] == list(BENCHMARKS)
    for row in rows:
        _, naive, redundancy, combining, remaining = row
        assert naive == _baseline_static(study, row[0])
        assert redundancy + combining + remaining == pytest.approx(1.0)
        assert remaining < 1.0  # every benchmark gains something


def test_tables_render(study):
    text = format_table(*pass_attribution(study))
    assert "redundancy" in text and "share" in text
    text = format_table(*figure8_by_pass(study))
    assert "remaining" in text


def test_sources_records_list_and_document(study):
    from_study = pass_attribution(study)
    assert pass_attribution(study.telemetry) == from_study
    assert pass_attribution({"records": study.telemetry}) == from_study


def test_pre_pipeline_records_are_skipped():
    legacy = {"benchmark": "swm", "experiment": "rr", "result": {}}
    assert not report_reconciles(legacy)
    assert pipeline_report(legacy) is None
    _, rows = pass_attribution([legacy])
    assert rows == []
