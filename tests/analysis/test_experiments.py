"""Tests for the experiment harness."""

import warnings

import pytest

from repro.analysis import (
    EXPERIMENT_KEYS,
    ExperimentSpec,
    experiment_spec,
    run_experiment,
)
from repro.analysis.experiments import run_benchmark_suite
from repro.comm import OptimizationConfig
from repro.errors import ExperimentError
from repro.programs import small_config


def test_keys_match_paper_figure9():
    assert EXPERIMENT_KEYS == (
        "baseline",
        "rr",
        "cc",
        "pl",
        "pl_shmem",
        "pl_maxlat",
    )


def test_specs_are_cumulative():
    base, _, _ = experiment_spec("baseline")
    rr, _, _ = experiment_spec("rr")
    cc, _, _ = experiment_spec("cc")
    pl, _, _ = experiment_spec("pl")
    assert not base.rr and rr.rr and not rr.cc
    assert cc.rr and cc.cc and not cc.pl
    assert pl.rr and pl.cc and pl.pl


def test_shmem_keys_use_shmem_library():
    for key in ("pl_shmem", "pl_maxlat"):
        _, lib, _ = experiment_spec(key)
        assert lib == "shmem"


def test_unknown_key_rejected():
    with pytest.raises(ExperimentError, match="valid"):
        experiment_spec("super_opt")


def test_spec_is_a_named_dataclass():
    spec = experiment_spec("pl_maxlat")
    assert isinstance(spec, ExperimentSpec)
    assert spec.key == "pl_maxlat"
    assert spec.opt == OptimizationConfig.full_max_latency()
    assert spec.library == "shmem"
    assert "latency" in spec.description


def test_spec_tuple_shim_unpacks_with_deprecation():
    spec = experiment_spec("cc")
    with pytest.warns(DeprecationWarning, match="ExperimentSpec"):
        opt, library, description = spec
    assert (opt, library, description) == (
        spec.opt,
        spec.library,
        spec.description,
    )
    assert len(spec) == 3
    with pytest.warns(DeprecationWarning):
        assert spec[1] == "pvm"
    with pytest.warns(DeprecationWarning):
        assert tuple(spec) == (spec.opt, spec.library, spec.description)


def test_named_field_access_is_warning_free():
    """Only the tuple shim warns: the ExperimentSpec named-field path —
    including the pipeline factory — raises no DeprecationWarning."""
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        spec = experiment_spec("pl")
        assert spec.key == "pl"
        assert spec.opt.pl
        assert spec.library == "pvm"
        assert "pipelining" in spec.description
        assert spec.pipeline().has("pipelining")


def test_registry_module_is_the_single_source():
    """repro.analysis re-exports the shared registry objects unchanged,
    so both historical import paths resolve to the same definitions."""
    import repro.analysis as analysis
    import repro.analysis.experiments as experiments
    import repro.experiments_registry as registry

    for module in (analysis, experiments):
        assert module.EXPERIMENT_KEYS is registry.EXPERIMENT_KEYS
        assert module.ExperimentSpec is registry.ExperimentSpec
        assert module.ExperimentResult is registry.ExperimentResult
        assert module.experiment_spec is registry.experiment_spec


def test_run_experiment_returns_counts_and_time():
    res = run_experiment(
        "swm", "cc", nprocs=16, config=small_config("swm")
    )
    assert res.benchmark == "swm"
    assert res.library == "pvm"
    assert res.static_count > 0
    assert res.dynamic_count > 0
    assert res.execution_time > 0


def test_suite_grid_shape():
    results = run_benchmark_suite(
        ["swm"],
        keys=("baseline", "cc"),
        nprocs=16,
        config_overrides={"swm": small_config("swm")},
    )
    assert set(results) == {"swm"}
    assert [r.experiment for r in results["swm"]] == ["baseline", "cc"]


def test_scaled_to_baseline():
    results = run_benchmark_suite(
        ["swm"],
        keys=("baseline", "cc"),
        nprocs=16,
        config_overrides={"swm": small_config("swm")},
    )
    base, cc = results["swm"]
    assert cc.scaled_to(base) == cc.execution_time / base.execution_time
