"""Tests for execution tracing and timeline rendering."""

import pytest

from repro import ExecutionMode, OptimizationConfig, simulate, t3d
from repro.analysis.timeline import GLYPHS, render_timeline, summarize
from repro.runtime.timing import TraceEvent
from tests.conftest import compile_demo


@pytest.fixture(scope="module")
def traced():
    return simulate(
        compile_demo(OptimizationConfig.full()),
        t3d(4),
        ExecutionMode.TIMING,
        trace_rank=0,
    )


class TestTracing:
    def test_trace_absent_by_default(self):
        res = simulate(
            compile_demo(OptimizationConfig.full()), t3d(4), ExecutionMode.TIMING
        )
        assert res.trace is None

    def test_trace_present_when_requested(self, traced):
        assert traced.trace_rank == 0
        assert len(traced.trace) > 0

    def test_events_ordered_and_nonoverlapping(self, traced):
        cursor = 0.0
        for event in traced.trace:
            assert event.start >= cursor - 1e-15
            assert event.end >= event.start
            cursor = event.end

    def test_events_cover_the_clock(self, traced):
        total = sum(e.duration for e in traced.trace)
        # scalar statements are unrecorded noise; everything else is
        assert total == pytest.approx(float(traced.clocks[0]), rel=1e-2)

    def test_known_kinds_only(self, traced):
        assert {e.kind for e in traced.trace} <= set(GLYPHS)

    def test_compute_events_carry_target_labels(self, traced):
        labels = {e.label for e in traced.trace if e.kind == "compute"}
        assert "A" in labels and "C" in labels

    def test_tracing_does_not_change_results(self):
        plain = simulate(
            compile_demo(OptimizationConfig.full()), t3d(4), ExecutionMode.TIMING
        )
        traced = simulate(
            compile_demo(OptimizationConfig.full()),
            t3d(4),
            ExecutionMode.TIMING,
            trace_rank=2,
        )
        assert plain.time == traced.time
        assert plain.dynamic_comm_count == traced.dynamic_comm_count


class TestRendering:
    def test_strip_width(self, traced):
        out = render_timeline(traced.trace, width=50)
        strip = out.splitlines()[0]
        assert strip.startswith("|") and strip.endswith("|")
        assert len(strip) == 52

    def test_dominant_kind_chosen(self):
        trace = [
            TraceEvent(0.0, 0.9, "compute", "A"),
            TraceEvent(0.9, 1.0, "send", "x"),
        ]
        out = render_timeline(trace, width=10).splitlines()[0]
        assert out.count("#") == 9
        assert out.count("s") == 1

    def test_empty_trace(self):
        assert "empty" in render_timeline([])

    def test_window_selection(self):
        trace = [TraceEvent(0.0, 1.0, "compute"), TraceEvent(1.0, 2.0, "send")]
        out = render_timeline(trace, width=10, start=1.0, end=2.0)
        assert "#" not in out.splitlines()[0]

    def test_legend_present(self, traced):
        assert "#=compute" in render_timeline(traced.trace)


class TestSummary:
    def test_summarize_totals(self):
        trace = [
            TraceEvent(0.0, 1.0, "compute"),
            TraceEvent(1.0, 1.5, "compute"),
            TraceEvent(1.5, 1.6, "wait"),
        ]
        rows = summarize(trace)
        assert rows[0] == ("compute", pytest.approx(1.5), 2)
        assert rows[1][0] == "wait"

    def test_summary_matches_breakdown(self, traced):
        totals = {k: t for k, t, _ in summarize(traced.trace)}
        inst = traced.instrument
        assert totals.get("compute", 0.0) == pytest.approx(
            float(inst.compute_time[0]), rel=1e-2
        )
