"""Tests for execution tracing and timeline rendering."""

import pytest

from repro import ExecutionMode, OptimizationConfig, SimOptions, simulate, t3d
from repro.analysis.timeline import GLYPHS, render_timeline, summarize
from repro.obs import ChromeTraceSink, MemorySink
from repro.obs import core as obs
from repro.obs.sinks import SIM_PID
from repro.runtime.timing import TraceEvent
from tests.conftest import compile_demo


@pytest.fixture(scope="module")
def traced():
    return simulate(
        compile_demo(OptimizationConfig.full()),
        t3d(4),
        options=SimOptions.timing(trace_rank=0),
    )


class TestTracing:
    def test_trace_absent_by_default(self):
        res = simulate(
            compile_demo(OptimizationConfig.full()), t3d(4), ExecutionMode.TIMING
        )
        assert res.trace is None

    def test_trace_present_when_requested(self, traced):
        assert traced.trace_rank == 0
        assert len(traced.trace) > 0

    def test_events_ordered_and_nonoverlapping(self, traced):
        cursor = 0.0
        for event in traced.trace:
            assert event.start >= cursor - 1e-15
            assert event.end >= event.start
            cursor = event.end

    def test_events_cover_the_clock(self, traced):
        total = sum(e.duration for e in traced.trace)
        # scalar statements are unrecorded noise; everything else is
        assert total == pytest.approx(float(traced.clocks[0]), rel=1e-2)

    def test_known_kinds_only(self, traced):
        assert {e.kind for e in traced.trace} <= set(GLYPHS)

    def test_compute_events_carry_target_labels(self, traced):
        labels = {e.label for e in traced.trace if e.kind == "compute"}
        assert "A" in labels and "C" in labels

    def test_tracing_does_not_change_results(self):
        plain = simulate(
            compile_demo(OptimizationConfig.full()), t3d(4), ExecutionMode.TIMING
        )
        traced = simulate(
            compile_demo(OptimizationConfig.full()),
            t3d(4),
            options=SimOptions.timing(trace_rank=2),
        )
        assert plain.time == traced.time
        assert plain.dynamic_comm_count == traced.dynamic_comm_count


class TestRendering:
    def test_strip_width(self, traced):
        out = render_timeline(traced.trace, width=50)
        strip = out.splitlines()[0]
        assert strip.startswith("|") and strip.endswith("|")
        assert len(strip) == 52

    def test_dominant_kind_chosen(self):
        trace = [
            TraceEvent(0.0, 0.9, "compute", "A"),
            TraceEvent(0.9, 1.0, "send", "x"),
        ]
        out = render_timeline(trace, width=10).splitlines()[0]
        assert out.count("#") == 9
        assert out.count("s") == 1

    def test_empty_trace(self):
        assert "empty" in render_timeline([])

    def test_window_selection(self):
        trace = [TraceEvent(0.0, 1.0, "compute"), TraceEvent(1.0, 2.0, "send")]
        out = render_timeline(trace, width=10, start=1.0, end=2.0)
        assert "#" not in out.splitlines()[0]

    def test_legend_present(self, traced):
        assert "#=compute" in render_timeline(traced.trace)


class TestRenderingEdgeCases:
    def test_inverted_window_is_empty(self):
        trace = [TraceEvent(0.0, 1.0, "compute")]
        assert "empty window" in render_timeline(trace, start=2.0, end=1.0)

    def test_degenerate_window_is_empty(self):
        trace = [TraceEvent(0.0, 1.0, "compute")]
        assert "empty window" in render_timeline(trace, start=1.0, end=1.0)

    def test_zero_duration_events_render_blank_not_crash(self):
        trace = [TraceEvent(0.5, 0.5, "send"), TraceEvent(1.0, 1.0, "wait")]
        strip = render_timeline(trace, width=10).splitlines()[0]
        assert strip == "|" + " " * 10 + "|"

    def test_zero_duration_events_still_counted_in_summary(self):
        trace = [TraceEvent(0.5, 0.5, "send"), TraceEvent(0.0, 1.0, "compute")]
        rows = {k: (t, n) for k, t, n in summarize(trace)}
        assert rows["send"] == (0.0, 1)
        assert rows["compute"] == (pytest.approx(1.0), 1)

    def test_width_one_clamps_to_a_single_cell(self):
        trace = [
            TraceEvent(0.0, 0.9, "compute"),
            TraceEvent(0.9, 1.0, "send"),
        ]
        strip = render_timeline(trace, width=1).splitlines()[0]
        assert strip == "|#|"

    def test_event_past_window_end_is_clamped(self):
        trace = [TraceEvent(0.0, 10.0, "compute")]
        strip = render_timeline(trace, width=4, end=1.0).splitlines()[0]
        assert strip == "|####|"

    def test_unknown_kind_renders_placeholder(self):
        trace = [TraceEvent(0.0, 1.0, "teleport")]
        assert "?" in render_timeline(trace, width=4).splitlines()[0]

    def test_summarize_empty_trace(self):
        assert summarize([]) == []


class TestExporterRoundTrip:
    """The Perfetto exporter and the ASCII renderer must agree on what
    one rank's timeline contains."""

    @pytest.fixture()
    def exported(self, traced, tmp_path):
        sink = ChromeTraceSink(tmp_path / "trace.json")
        mem = MemorySink()
        with obs.recording(sink, mem) as rec:
            rec.bridge_rank_trace(traced.trace, rank=0)
        rows = [
            e
            for e in sink.document()["traceEvents"]
            if e["ph"] == "X" and e["pid"] == SIM_PID
        ]
        return rows, mem

    def test_event_count_matches(self, traced, exported):
        rows, mem = exported
        assert len(rows) == len(traced.trace)
        assert len(mem.of_type("rank_event")) == len(traced.trace)

    def test_ordering_and_kinds_match(self, traced, exported):
        rows, _ = exported
        assert [e["name"] for e in rows] == [e.kind for e in traced.trace]
        assert [e["ts"] for e in rows] == [
            pytest.approx(e.start * 1e6) for e in traced.trace
        ]

    def test_per_kind_totals_match_summarize(self, traced, exported):
        rows, _ = exported
        from collections import defaultdict

        exported_totals = defaultdict(float)
        for e in rows:
            exported_totals[e["name"]] += e["dur"] / 1e6
        for kind, total, _count in summarize(traced.trace):
            assert exported_totals[kind] == pytest.approx(total)


class TestSummary:
    def test_summarize_totals(self):
        trace = [
            TraceEvent(0.0, 1.0, "compute"),
            TraceEvent(1.0, 1.5, "compute"),
            TraceEvent(1.5, 1.6, "wait"),
        ]
        rows = summarize(trace)
        assert rows[0] == ("compute", pytest.approx(1.5), 2)
        assert rows[1][0] == "wait"

    def test_summary_matches_breakdown(self, traced):
        totals = {k: t for k, t, _ in summarize(traced.trace)}
        inst = traced.instrument
        assert totals.get("compute", 0.0) == pytest.approx(
            float(inst.compute_time[0]), rel=1e-2
        )
