"""Tests for table rendering."""

from repro.analysis.report import ascii_bar, format_table


def test_headers_and_alignment():
    out = format_table(["name", "value"], [["a", 1.5], ["bb", 20.25]])
    lines = out.splitlines()
    assert "name" in lines[0] and "value" in lines[0]
    assert "-+-" in lines[1]
    # numeric column right-aligned: both value cells end at same offset
    assert lines[2].rstrip().endswith("1.500")
    assert lines[3].rstrip().endswith("20.250")


def test_float_format_override():
    out = format_table(["x"], [[1.23456]], float_fmt=".1f")
    assert "1.2" in out and "1.23" not in out


def test_integers_rendered_without_decimals():
    out = format_table(["n"], [[42]])
    assert "42" in out and "42.0" not in out


def test_title_prepended():
    out = format_table(["a"], [["x"]], title="My Table")
    assert out.splitlines()[0] == "My Table"


def test_ascii_bar_proportional():
    assert len(ascii_bar(0.5, 1.0, width=10)) == 5
    assert ascii_bar(2.0, 1.0, width=10) == "#" * 10
    assert ascii_bar(0.0, 1.0) == ""
    assert ascii_bar(1.0, 0.0) == ""


def test_empty_rows_ok():
    out = format_table(["a", "b"], [])
    assert "a" in out
