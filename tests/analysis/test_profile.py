"""Tests for time-breakdown profiling."""

import numpy as np
import pytest

from repro import ExecutionMode, OptimizationConfig, simulate, t3d
from repro.analysis.profile import breakdown_of, breakdown_table
from tests.conftest import compile_demo


@pytest.fixture(scope="module")
def run():
    return simulate(
        compile_demo(OptimizationConfig.full()), t3d(4), ExecutionMode.TIMING
    )


def test_buckets_sum_to_clock_on_every_rank(run):
    inst = run.instrument
    total = inst.compute_time + inst.comm_sw_time + inst.wait_time
    assert np.allclose(total, run.clocks, rtol=1e-12, atol=1e-12)


def test_breakdown_defaults_to_critical_rank(run):
    b = breakdown_of(run)
    assert b.total == pytest.approx(run.time)


def test_breakdown_for_specific_rank(run):
    b = breakdown_of(run, rank=0)
    assert b.total == pytest.approx(float(run.clocks[0]))


def test_comm_fraction_between_zero_and_one(run):
    b = breakdown_of(run)
    assert 0.0 <= b.comm_fraction <= 1.0


def test_pure_compute_program_has_no_comm_time():
    from repro import compile_program

    src = """
    program local;
    config n : integer = 8;
    region R = [1..n, 1..n];
    var A : [R] double;
    procedure main();
    begin
      [R] A := index1 * 2.0;
      [R] A := A * A + 1.0;
    end;
    """
    prog = compile_program(src, opt=OptimizationConfig.full())
    res = simulate(prog, t3d(4), ExecutionMode.TIMING)
    b = breakdown_of(res)
    assert b.comm_sw == 0.0 and b.wait == 0.0
    assert b.compute == pytest.approx(b.total)


def test_table_shape(run):
    headers, rows = breakdown_table({"demo": run})
    assert headers[0] == "run"
    assert len(rows) == 1
    # fractions sum to 1
    assert sum(rows[0][2:]) == pytest.approx(1.0)


def test_optimization_reduces_comm_share():
    base = simulate(
        compile_demo(OptimizationConfig.baseline()), t3d(4), ExecutionMode.TIMING
    )
    full = simulate(
        compile_demo(OptimizationConfig.full()), t3d(4), ExecutionMode.TIMING
    )
    assert (
        breakdown_of(full).comm_sw + breakdown_of(full).wait
        < breakdown_of(base).comm_sw + breakdown_of(base).wait
    )
