"""Tests for the scaling analysis layer (`repro.analysis.scaling`)."""

import csv
import json

import pytest

from repro.analysis.scaling import (
    SCALING_SCHEMA,
    detect_crossovers,
    find_crossings,
    format_scaling_report,
    scaling_rows,
    speedup_curve,
    write_csv,
    write_json,
)
from repro.engine import MachineSpec
from repro.sweep import SweepAxis, run_sweep

SIMPLE_SMALL = {"n": 16, "niters": 2, "ncond": 2}


# ---------------------------------------------------------------------------
# find_crossings: the pure interpolation helper
# ---------------------------------------------------------------------------


class TestFindCrossings:
    def test_simple_rising_crossing(self):
        pts = [(0.0, 0.5), (10.0, 1.5)]
        ((x0, x1, est, r0, r1),) = find_crossings(pts)
        assert (x0, x1) == (0.0, 10.0)
        assert est == pytest.approx(5.0)
        assert (r0, r1) == (0.5, 1.5)

    def test_interpolation_is_proportional(self):
        ((_, _, est, _, _),) = find_crossings([(0.0, 0.9), (1.0, 1.3)])
        assert est == pytest.approx(0.25)

    def test_no_crossing_when_same_side(self):
        assert find_crossings([(0, 0.5), (1, 0.9), (2, 0.99)]) == []

    def test_touching_threshold_is_not_a_crossing(self):
        # dips to exactly 1.0 and retreats: never passes through
        assert find_crossings([(0, 0.5), (1, 1.0), (2, 0.5)]) == []
        assert find_crossings([(0, 1.5), (1, 1.0), (2, 1.5)]) == []

    def test_exact_grid_point_crossing(self):
        # passes *through* the threshold at a grid point: one crossing
        # estimated exactly there, bracketed by the off-threshold
        # neighbours
        ((x0, x1, est, r0, r1),) = find_crossings(
            [(0, 0.5), (1, 1.0), (2, 1.5)]
        )
        assert (x0, x1) == (0, 2)
        assert est == 1.0
        assert (r0, r1) == (0.5, 1.5)

    def test_tie_run_midpoint(self):
        # a plateau exactly on the threshold between opposite signs is
        # one crossing at the plateau's midpoint
        ((x0, x1, est, _, _),) = find_crossings(
            [(0, 1.2), (1, 1.0), (2, 1.0), (3, 1.0), (4, 0.8)]
        )
        assert (x0, x1) == (0, 4)
        assert est == 2.0

    def test_leading_and_trailing_ties_are_not_crossings(self):
        assert find_crossings([(0, 1.0), (1, 1.5)]) == []
        assert find_crossings([(0, 0.5), (1, 1.0)]) == []
        assert find_crossings([(0, 1.0), (1, 1.0)]) == []

    def test_multiple_crossings(self):
        pts = [(0, 0.5), (1, 1.5), (2, 0.5)]
        crossings = find_crossings(pts)
        assert len(crossings) == 2
        assert crossings[0][2] < crossings[1][2]

    def test_non_monotone_with_exact_ties(self):
        # up through a tie, back down through a straddle: two crossings
        pts = [(0, 0.5), (1, 1.0), (2, 1.5), (3, 0.5)]
        crossings = find_crossings(pts)
        assert len(crossings) == 2
        assert crossings[0][2] == 1.0
        assert 2.0 < crossings[1][2] < 3.0

    def test_custom_threshold(self):
        assert find_crossings([(0, 1.0), (1, 3.0)], threshold=2.0)

    def test_custom_threshold_tie(self):
        ((_, _, est, _, _),) = find_crossings(
            [(0, 1.0), (1, 2.0), (2, 3.0)], threshold=2.0
        )
        assert est == 1.0


# ---------------------------------------------------------------------------
# end-to-end over a real (tiny) sweep: the paper's combining knee
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def knee_sweep(tmp_path_factory):
    """Sweep the beyond-knee cost with the knee pinned tight: combining
    flips from win to loss as concatenated messages start paying."""
    return run_sweep(
        axes=[SweepAxis("prim.*.per_byte_beyond", (0.0, 3e-7, 1e-6))],
        benchmarks="simple",
        keys=("baseline", "rr", "cc"),
        machine=MachineSpec.coerce("t3d", nprocs=16),
        overrides={"prim.*.knee_bytes": 32},
        config_overrides={"simple": SIMPLE_SMALL},
        cache_dir=tmp_path_factory.mktemp("cache"),
        jobs=2,
    )


class TestScalingRows:
    def test_shape_and_columns(self, knee_sweep):
        headers, rows = scaling_rows(knee_sweep)
        assert headers[0] == "prim.*.per_byte_beyond"
        assert headers[1:] == [
            "benchmark",
            "experiment",
            "library",
            "variant",
            "static",
            "dynamic",
            "time",
            "vs_baseline",
            "vs_prev",
        ]
        assert len(rows) == knee_sweep.cells == 9

    def test_first_key_is_its_own_reference(self, knee_sweep):
        headers, rows = scaling_rows(knee_sweep)
        vs_base = headers.index("vs_baseline")
        for row in rows:
            if row[headers.index("experiment")] == "baseline":
                assert row[vs_base] == 1.0


class TestSpeedupCurve:
    def test_incremental_reference_defaults_to_previous_key(self, knee_sweep):
        ((group, pts),) = speedup_curve(
            knee_sweep, "prim.*.per_byte_beyond", "simple", "cc"
        )
        assert group == ()
        xs = [x for x, _ in pts]
        assert xs == sorted(xs) and len(pts) == 3
        # cc/rr ratio rises with the beyond-knee cost and crosses 1.0
        ratios = [r for _, r in pts]
        assert ratios[0] < 1.0 < ratios[-1]

    def test_unknown_experiment_raises(self, knee_sweep):
        with pytest.raises(KeyError, match="not in sweep keys"):
            speedup_curve(knee_sweep, "prim.*.per_byte_beyond", "simple", "pl")


class TestDetectCrossovers:
    def test_combining_knee_crossover_detected(self, knee_sweep):
        crossovers = detect_crossovers(knee_sweep)
        assert crossovers
        c = next(
            c for c in crossovers if (c.experiment, c.reference) == ("cc", "rr")
        )
        assert c.axis == "prim.*.per_byte_beyond"
        assert c.direction == "win->loss"
        assert c.x_low < c.x_estimate < c.x_high
        assert c.ratio_low < 1.0 < c.ratio_high

    def test_report_mentions_crossover(self, knee_sweep):
        report = format_scaling_report(knee_sweep)
        assert "Scaling sweep" in report
        assert "Crossovers" in report and "win->loss" in report


class TestEmission:
    def test_csv_round_trips(self, knee_sweep, tmp_path):
        path = write_csv(tmp_path / "scaling.csv", knee_sweep)
        with path.open() as fh:
            got = list(csv.reader(fh))
        headers, rows = scaling_rows(knee_sweep)
        assert got[0] == headers
        assert len(got) == 1 + len(rows)
        # floats are emitted as %.6g (full precision lives in the JSON)
        time_col = headers.index("time")
        for text_row, row in zip(got[1:], rows):
            assert text_row[time_col] == f"{row[time_col]:.6g}"

    def test_csv_golden_formatting(self, knee_sweep, tmp_path):
        """Every float cell renders as %.6g — byte-stable across
        platforms; ints and strings pass through untouched."""
        path = write_csv(tmp_path / "scaling.csv", knee_sweep)
        lines = path.read_text().strip().splitlines()
        assert lines[0] == (
            "prim.*.per_byte_beyond,benchmark,experiment,library,variant,"
            "static,dynamic,time,vs_baseline,vs_prev"
        )
        for line in lines[1:]:
            cells = line.split(",")
            # axis coordinate and time both pass through %.6g
            assert cells[0] == f"{float(cells[0]):.6g}"
            assert cells[7] == f"{float(cells[7]):.6g}"
            # counts stay bare integers (no float formatting applied)
            assert cells[5].isdigit() and cells[6].isdigit()
            # a %.6g artifact never carries >6 significant digits
            mantissa = cells[7].split("e")[0].replace(".", "")
            assert len(mantissa.lstrip("-").lstrip("0")) <= 6

    def test_json_schema(self, knee_sweep, tmp_path):
        path = write_json(tmp_path / "scaling.json", knee_sweep)
        doc = json.loads(path.read_text())
        assert doc["schema"] == SCALING_SCHEMA
        assert doc["axes"] == [
            {"name": "prim.*.per_byte_beyond", "values": [0.0, 3e-7, 1e-6]}
        ]
        assert doc["benchmarks"] == ["simple"]
        assert doc["keys"] == ["baseline", "rr", "cc"]
        assert len(doc["points"]) == 3
        assert all(p["nprocs"] == 16 for p in doc["points"])
        assert len(doc["rows"]) == 9
        assert doc["crossovers"]
        assert {"benchmark", "experiment", "reference", "axis", "x_estimate"} <= set(
            doc["crossovers"][0]
        )
