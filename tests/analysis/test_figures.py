"""Tests for the per-figure regeneration functions (small scale)."""

import math

import pytest

from repro.analysis import figures as fig
from repro.analysis.experiments import run_benchmark_suite
from repro.programs import small_config


@pytest.fixture(scope="module")
def suite():
    """A small-scale whole-program study over two benchmarks."""
    return run_benchmark_suite(
        ["tomcatv", "swm"],
        nprocs=16,
        config_overrides={
            "tomcatv": small_config("tomcatv"),
            "swm": small_config("swm"),
        },
    )


def test_figure3_rows():
    headers, rows = fig.figure3_machines()
    assert len(rows) == 2
    assert "Paragon" in rows[0][0] and "T3D" in rows[1][0]


def test_figure5_matches_bindings():
    headers, rows = fig.figure5_bindings()
    table = {row[0]: row[1:] for row in rows}
    assert table["SR"] == ["csend", "isend", "hsend", "pvm_send", "shmem_put"]
    assert table["DR"][0] == "no-op"


def test_figure6_rows_cover_sizes():
    headers, rows = fig.figure6_overhead(sizes=(8, 1024), reps=50)
    assert [r[0] for r in rows] == [8, 1024]
    assert len(headers) == 6


def test_figure8_scaled_counts(suite):
    headers, rows = fig.figure8_counts(suite)
    for row in rows:
        # every scaled count in (0, 1]
        assert all(0 < v <= 1 for v in row[1:])


def test_figure10a_baseline_column_is_one(suite):
    headers, rows = fig.figure10a_times(suite)
    for row in rows:
        assert row[1] == pytest.approx(1.0)


def test_figure10b_has_both_libraries(suite):
    headers, rows = fig.figure10b_times(suite)
    assert headers == ["benchmark", "pl", "pl with shmem"]
    assert all(len(r) == 3 for r in rows)


def test_figure11_maxlat_never_below_maxcomb(suite):
    headers, rows = fig.figure11_heuristic_counts(suite)
    for row in rows:
        assert row[2] >= row[1]  # static
        assert row[4] >= row[3]  # dynamic


def test_table_full_includes_paper_columns(suite):
    headers, rows = fig.table_full("tomcatv", suite)
    assert "paper scaled" in headers
    by_key = {r[0]: r for r in rows}
    assert by_key["baseline"][4] == pytest.approx(1.0)
    # the paper's SP-only NaN never leaks into tomcatv
    assert not any(isinstance(v, float) and math.isnan(v) for v in by_key["pl"])


def test_paper_values_table1():
    static, dynamic, time = fig.paper_value("tomcatv", "baseline")
    assert (static, dynamic) == (46, 40400)
    assert time == pytest.approx(2.491051)


def test_figure7_line_counts_positive():
    headers, rows = fig.figure7_programs()
    assert len(rows) == 4
    for row in rows:
        assert row[2] > 50  # our generated C is substantial
        assert row[3] > 0
