"""Tests for frontier analysis (`repro.analysis.frontier`)."""

import csv
import json

import pytest

from repro.analysis.frontier import (
    FRONTIER_SCHEMA,
    ContourPoint,
    crossover_map,
    format_frontier_report,
    format_refined_report,
    frontier_doc,
    pareto_front,
    pareto_surface,
    refined_doc,
    winner_map,
    write_frontier_csv,
    write_frontier_json,
    write_refined_json,
)
from repro.engine import MachineSpec
from repro.sweep import SweepAxis, run_refined_sweep, run_sweep

SIMPLE_SMALL = {"n": 16, "niters": 2, "ncond": 2}
X = "prim.*.per_byte_beyond"
Y = "net.latency"


@pytest.fixture(scope="module")
def grid_sweep(tmp_path_factory):
    """A small two-axis grid: the combining knee as a function of wire
    latency."""
    return run_sweep(
        axes=[
            SweepAxis(X, (0.0, 3e-7, 1e-6)),
            SweepAxis(Y, (1e-5, 5e-5)),
        ],
        benchmarks="simple",
        keys=("baseline", "rr", "cc"),
        machine=MachineSpec.coerce("t3d", nprocs=16),
        overrides={"prim.*.knee_bytes": 32},
        config_overrides={"simple": SIMPLE_SMALL},
        cache_dir=tmp_path_factory.mktemp("cache"),
        jobs=2,
    )


# ---------------------------------------------------------------------------
# pareto_front: the pure dominance helper
# ---------------------------------------------------------------------------


class TestParetoFront:
    def test_single_point_is_on_front(self):
        assert pareto_front([(1.0, 1.0)]) == [True]

    def test_dominated_point_dropped(self):
        assert pareto_front([(1.0, 1.0), (2.0, 2.0)]) == [True, False]

    def test_trade_off_keeps_both(self):
        assert pareto_front([(1.0, 2.0), (2.0, 1.0)]) == [True, True]

    def test_duplicates_all_kept(self):
        assert pareto_front([(1.0, 1.0), (1.0, 1.0)]) == [True, True]

    def test_equal_in_one_coordinate_dominates(self):
        # same x, strictly better y: the slower point falls off
        assert pareto_front([(1.0, 1.0), (1.0, 2.0)]) == [True, False]

    def test_staircase(self):
        pts = [(0.0, 3.0), (1.0, 2.0), (2.0, 1.0), (1.5, 2.5), (3.0, 0.5)]
        assert pareto_front(pts) == [True, True, True, False, True]

    def test_empty(self):
        assert pareto_front([]) == []


# ---------------------------------------------------------------------------
# maps and surfaces over a real grid
# ---------------------------------------------------------------------------


class TestCrossoverMap:
    def test_contour_per_latency(self, grid_sweep):
        contours = crossover_map(grid_sweep, X, Y)
        cc = [c for c in contours if (c.experiment, c.reference) == ("cc", "rr")]
        assert {c.y for c in cc} == {1e-5, 5e-5}
        for c in cc:
            assert isinstance(c, ContourPoint)
            assert c.benchmark == "simple"
            assert c.x_low <= c.x_estimate <= c.x_high
            assert c.ratio_low < 1.0 < c.ratio_high

    def test_knee_moves_with_latency(self, grid_sweep):
        # higher wire latency makes combining win longer: the knee's
        # x-estimate grows with y
        cc = sorted(
            (
                c
                for c in crossover_map(grid_sweep, X, Y)
                if (c.experiment, c.reference) == ("cc", "rr")
            ),
            key=lambda c: c.y,
        )
        assert cc[0].x_estimate < cc[-1].x_estimate

    def test_unknown_axis_raises(self, grid_sweep):
        with pytest.raises(KeyError, match="not in sweep axes"):
            crossover_map(grid_sweep, X, "net.bandwidth")


class TestWinnerMap:
    def test_grid_shape_and_order(self, grid_sweep):
        rows = winner_map(grid_sweep, X, Y)
        assert len(rows) == 6  # 3 x-values x 2 y-values
        assert rows == sorted(rows, key=lambda r: (r[0], r[1], r[2]))
        assert all(r[3] in grid_sweep.keys for r in rows)

    def test_winner_flips_along_x(self, grid_sweep):
        rows = winner_map(grid_sweep, X, Y)
        at_low_lat = [r[3] for r in rows if r[1] == 1e-5]
        assert at_low_lat[0] == "cc"  # free combining wins
        assert at_low_lat[-1] == "rr"  # expensive beyond-knee bytes lose


class TestParetoSurface:
    def test_front_is_nonempty_and_flagged(self, grid_sweep):
        points = pareto_surface(grid_sweep, X, benchmark="simple")
        assert points
        front = [p for p in points if p.on_front]
        assert front
        # the cheapest-and-fastest corner is always on the front
        best = min(points, key=lambda p: (p.x, p.time))
        assert any(p.x == best.x and p.time == best.time for p in front)

    def test_front_points_are_mutually_nondominated(self, grid_sweep):
        front = [
            p
            for p in pareto_surface(grid_sweep, X, benchmark="simple")
            if p.on_front
        ]
        for a in front:
            for b in front:
                assert not (
                    b.x <= a.x
                    and b.time <= a.time
                    and (b.x < a.x or b.time < a.time)
                )

    def test_single_key_filter(self, grid_sweep):
        points = pareto_surface(
            grid_sweep, X, benchmark="simple", experiment="cc"
        )
        assert {p.experiment for p in points} == {"cc"}


# ---------------------------------------------------------------------------
# emission: %.6g CSV, versioned JSON
# ---------------------------------------------------------------------------


class TestEmission:
    def test_csv_golden_formatting(self, grid_sweep, tmp_path):
        contours = crossover_map(grid_sweep, X, Y)
        path = write_frontier_csv(tmp_path / "frontier.csv", contours, X, Y)
        with path.open() as fh:
            got = list(csv.reader(fh))
        assert got[0] == ["x_axis", "y_axis"]
        assert got[1] == [X, Y]
        assert got[2] == [
            "benchmark",
            "experiment",
            "vs",
            "y",
            "x_low",
            "x_high",
            "x_estimate",
            "ratio_low",
            "ratio_high",
        ]
        assert len(got) == 3 + len(contours)
        est_col = got[2].index("x_estimate")
        for text_row, c in zip(got[3:], contours):
            assert text_row[est_col] == f"{c.x_estimate:.6g}"
            mantissa = text_row[est_col].split("e")[0].replace(".", "")
            assert len(mantissa.lstrip("-").lstrip("0")) <= 6

    def test_json_schema(self, grid_sweep, tmp_path):
        path = write_frontier_json(tmp_path / "frontier.json", grid_sweep, X, Y)
        doc = json.loads(path.read_text())
        assert doc["schema"] == FRONTIER_SCHEMA
        assert doc["x_axis"] == X and doc["y_axis"] == Y
        assert doc["threshold"] == 1.0
        assert doc["benchmarks"] == ["simple"]
        assert doc["keys"] == ["baseline", "rr", "cc"]
        assert len(doc["winners"]) == 6
        assert doc["contours"]
        # full precision: round-trips bit for bit
        contours = crossover_map(grid_sweep, X, Y)
        assert doc["contours"][0]["x_estimate"] == contours[0].x_estimate
        assert doc == frontier_doc(grid_sweep, X, Y)

    def test_report_mentions_contours_and_winners(self, grid_sweep):
        report = format_frontier_report(grid_sweep, X, Y)
        assert "Crossover contours" in report
        assert "Winner grid" in report


class TestRefinedEmission:
    @pytest.fixture(scope="class")
    def refined(self, tmp_path_factory):
        return run_refined_sweep(
            axis=X,
            lo=0.0,
            hi=1e-6,
            tol=1e-8,
            coarse=5,
            benchmarks="simple",
            keys=("baseline", "rr", "cc"),
            machine=MachineSpec.coerce("t3d", nprocs=16),
            overrides={"prim.*.knee_bytes": 32},
            config_overrides={"simple": SIMPLE_SMALL},
            cache_dir=tmp_path_factory.mktemp("refined"),
            jobs=2,
        )

    def test_refined_json_ledger(self, refined, tmp_path):
        path = write_refined_json(tmp_path / "refined.json", refined)
        doc = json.loads(path.read_text())
        assert doc["schema"] == FRONTIER_SCHEMA
        assert doc["axis"] == X
        assert doc["rounds"] == refined.rounds
        assert doc["round_fingerprints"] == refined.round_fingerprints
        assert doc["points_evaluated"] == refined.points_evaluated
        assert doc["dense_points"] == refined.dense_points
        assert doc["crossovers"] and doc["winner_flips"]
        assert doc == json.loads(json.dumps(refined_doc(refined)))

    def test_refined_report(self, refined):
        report = format_refined_report(refined)
        assert "Refined" in report and "evaluations" in report
        assert "Localized crossovers" in report
        assert "Winner flips" in report
