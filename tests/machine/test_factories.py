"""Tests for the Paragon/T3D factories: the Figure 3/6 relationships the
cost models are calibrated to preserve."""

import pytest

from repro.errors import MachineError
from repro.machine import machine_by_name, paragon, t3d
from repro.machine.factories import KNEE_BYTES, square_ish_grid


class TestGridFactorization:
    @pytest.mark.parametrize(
        "n,expected",
        [(1, (1, 1)), (2, (1, 2)), (4, (2, 2)), (16, (4, 4)), (64, (8, 8)),
         (12, (3, 4)), (7, (1, 7))],
    )
    def test_square_ish(self, n, expected):
        assert square_ish_grid(n) == expected

    def test_nonpositive_rejected(self):
        with pytest.raises(MachineError):
            square_ish_grid(0)


class TestFigure3:
    def test_paragon_parameters(self):
        m = paragon(2)
        assert m.clock_mhz == 50.0
        assert m.timer_granularity == pytest.approx(100e-9)
        assert m.library == "nx"

    def test_t3d_parameters(self):
        m = t3d(64)
        assert m.clock_mhz == 150.0
        assert m.timer_granularity == pytest.approx(150e-9)
        assert m.grid_shape == (8, 8)

    def test_paragon_library_validation(self):
        with pytest.raises(MachineError):
            paragon(2, "pvm")

    def test_t3d_library_validation(self):
        with pytest.raises(MachineError):
            t3d(64, "nx")

    def test_machine_by_name(self):
        assert machine_by_name("t3d", 16, "shmem").library == "shmem"
        assert machine_by_name("Paragon").name == "Intel Paragon"
        with pytest.raises(MachineError):
            machine_by_name("cm5")


class TestFigure6Shapes:
    """The qualitative relationships the paper measures in Figure 6."""

    def test_knee_at_512_doubles(self):
        assert KNEE_BYTES == 512 * 8
        m = t3d(2, "pvm")
        assert m.exposed_overhead(512 * 8) == m.exposed_overhead(8)
        assert m.exposed_overhead(1024 * 8) > m.exposed_overhead(512 * 8)

    def test_shmem_overhead_below_pvm(self):
        pvm = t3d(2, "pvm").exposed_overhead(1024)
        shmem = t3d(2, "shmem").exposed_overhead(1024)
        assert shmem < pvm
        # "about 10% less" as *measured* (the measured curve adds the
        # readiness-flag transit; see the synthetic-benchmark tests) —
        # the bare call-cost ratio sits a little lower
        assert 0.70 <= shmem / pvm <= 0.95

    def test_async_nx_no_better_than_csend(self):
        csend = paragon(2, "nx").exposed_overhead(1024)
        async_ = paragon(2, "nx_async").exposed_overhead(1024)
        assert async_ >= csend

    def test_callback_nx_worse_than_csend(self):
        csend = paragon(2, "nx").exposed_overhead(1024)
        callback = paragon(2, "nx_callback").exposed_overhead(1024)
        assert callback > csend * 1.3

    def test_paragon_overheads_dwarf_t3d(self):
        assert paragon(2, "nx").exposed_overhead(8) > 2 * t3d(
            2, "pvm"
        ).exposed_overhead(8)

    def test_combining_below_knee_always_wins(self):
        m = t3d(2, "pvm")
        for size in (256, 1024, 2048):
            assert m.exposed_overhead(2 * size) < 2 * m.exposed_overhead(size)

    def test_combining_beyond_knee_roughly_neutral(self):
        m = t3d(2, "pvm")
        two = 2 * m.exposed_overhead(8192)
        one = m.exposed_overhead(16384)
        assert one == pytest.approx(two, rel=0.25)

    def test_t3d_raw_latency_much_lower_than_pvm_transit(self):
        m = t3d(2, "shmem")
        assert m.network.raw < m.network.latency / 3
