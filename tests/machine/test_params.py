"""Unit tests for machine parameter models."""

import pytest

from repro.errors import MachineError
from repro.ironman.bindings import binding_for
from repro.machine.params import (
    ComputeParams,
    Machine,
    NetworkParams,
    PrimitiveCost,
    ReductionParams,
)


class TestPrimitiveCost:
    def test_flat_below_knee(self):
        p = PrimitiveCost("p", fixed=10e-6, knee_bytes=4096, per_byte_beyond=1e-9)
        assert p.sw(100) == p.sw(4096) == 10e-6

    def test_linear_beyond_knee(self):
        p = PrimitiveCost("p", fixed=10e-6, knee_bytes=4096, per_byte_beyond=1e-9)
        assert p.sw(4096 + 1000) == pytest.approx(10e-6 + 1000e-9)

    def test_per_byte_applies_everywhere(self):
        p = PrimitiveCost("p", fixed=0.0, per_byte=2e-9)
        assert p.sw(500) == pytest.approx(1e-6)

    def test_combining_neutral_beyond_knee(self):
        """per_byte_beyond ~ fixed/knee makes combining two knee-size
        messages a wash — the paper's 512-double rule."""
        p = PrimitiveCost(
            "p", fixed=12e-6, knee_bytes=4096, per_byte_beyond=12e-6 / 4096
        )
        two = 2 * p.sw(4096)
        one = p.sw(8192)
        assert one == pytest.approx(two, rel=0.01)

    def test_combining_wins_below_knee(self):
        p = PrimitiveCost("p", fixed=12e-6, knee_bytes=4096, per_byte_beyond=3e-9)
        assert p.sw(2048 * 2) < 2 * p.sw(2048)


class TestNetworkParams:
    def test_transfer_time(self):
        net = NetworkParams(latency=10e-6, bandwidth=100e6)
        assert net.transfer_time(1000) == pytest.approx(10e-6 + 1e-5)

    def test_raw_latency_defaults_to_latency(self):
        net = NetworkParams(latency=10e-6, bandwidth=100e6)
        assert net.raw == 10e-6

    def test_raw_wire_uses_raw_latency(self):
        net = NetworkParams(latency=10e-6, bandwidth=100e6, raw_latency=1e-6)
        assert net.transfer_time(0, raw_wire=True) == pytest.approx(1e-6)
        assert net.transfer_time(0, raw_wire=False) == pytest.approx(10e-6)


class TestComputeParams:
    def test_stmt_time_scales_with_work(self):
        comp = ComputeParams(flop_time=10e-9, loop_overhead=1e-6)
        assert comp.stmt_time(4, 100) == pytest.approx(1e-6 + 4 * 100 * 10e-9)


class TestReductionParams:
    def test_tree_depth(self):
        red = ReductionParams(stage_cost=10e-6)
        assert red.time(64) == pytest.approx(2 * 6 * 10e-6)
        assert red.time(65) == pytest.approx(2 * 7 * 10e-6)

    def test_single_processor(self):
        assert ReductionParams(stage_cost=10e-6).time(1) == 10e-6


class TestMachineValidation:
    def _machine(self, grid, nprocs=4, primitives=None):
        prims = primitives if primitives is not None else {
            "pvm_send": PrimitiveCost("pvm_send", 1e-6),
            "pvm_recv": PrimitiveCost("pvm_recv", 1e-6),
        }
        return Machine(
            name="m",
            clock_mhz=100,
            timer_granularity=1e-7,
            nprocs=nprocs,
            grid_shape=grid,
            library="pvm",
            binding=binding_for("pvm"),
            primitives=prims,
            network=NetworkParams(1e-6, 1e8),
            compute=ComputeParams(1e-8),
            reduction=ReductionParams(1e-5),
        )

    def test_grid_must_tile_processors(self):
        with pytest.raises(MachineError, match="does not tile"):
            self._machine((3, 2), nprocs=4)

    def test_binding_primitives_must_have_costs(self):
        with pytest.raises(MachineError, match="pvm_send"):
            self._machine((2, 2), primitives={})

    def test_noop_primitive_is_free(self):
        m = self._machine((2, 2))
        assert m.primitive("noop").sw(10_000) == 0.0

    def test_unknown_primitive_rejected(self):
        m = self._machine((2, 2))
        with pytest.raises(MachineError):
            m.primitive("csend")

    def test_exposed_overhead_sums_bound_calls(self):
        m = self._machine((2, 2))
        assert m.exposed_overhead(8) == pytest.approx(2e-6)
