"""Unit tests for the machine variant layer (`repro.machine.variants`)."""

import pytest

from repro import MachineError, paragon, t3d
from repro.machine import (
    apply_overrides,
    describe_overrides,
    normalize_overrides,
    validate_override_path,
    variant_id,
)


class TestPaths:
    def test_scalar_paths_validate(self):
        for path in (
            "net.latency",
            "net.bandwidth",
            "net.raw_latency",
            "compute.flop_time",
            "compute.loop_overhead",
            "reduction.stage_cost",
            "prim.pvm_send.fixed",
            "prim.*.knee_bytes",
        ):
            validate_override_path(path)

    @pytest.mark.parametrize(
        "path",
        ["latency", "net", "net.speed", "prim.fixed", "prim.x.y.z", "prim.*.color"],
    )
    def test_bad_paths_rejected(self, path):
        with pytest.raises(MachineError):
            validate_override_path(path)

    def test_error_lists_valid_paths(self):
        with pytest.raises(MachineError, match="net.latency"):
            validate_override_path("nonsense")


class TestNormalize:
    def test_sorted_and_typed(self):
        items = normalize_overrides(
            {"prim.*.knee_bytes": 64.0, "net.latency": 2e-6}
        )
        assert items == (("net.latency", 2e-6), ("prim.*.knee_bytes", 64))
        assert isinstance(items[1][1], int)

    def test_describe(self):
        assert describe_overrides({}) == "base"
        assert (
            describe_overrides({"net.latency": 2e-6, "prim.*.fixed": 1e-5})
            == "net.latency=2e-06,prim.*.fixed=1e-05"
        )


class TestApply:
    def test_scalar_sections(self):
        base = t3d(16)
        derived = apply_overrides(
            base,
            {
                "net.latency": 3e-6,
                "compute.flop_time": 1e-8,
                "reduction.stage_cost": 2e-5,
            },
        )
        assert derived.network.latency == 3e-6
        assert derived.compute.flop_time == 1e-8
        assert derived.reduction.stage_cost == 2e-5
        # untouched fields survive
        assert derived.network.bandwidth == base.network.bandwidth
        assert derived.network.raw_latency == base.network.raw_latency
        assert derived.compute.loop_overhead == base.compute.loop_overhead

    def test_star_applies_to_every_primitive(self):
        derived = apply_overrides(paragon(4), {"prim.*.knee_bytes": 128})
        assert all(p.knee_bytes == 128 for p in derived.primitives.values())

    def test_named_primitive_wins_over_star(self):
        derived = apply_overrides(
            t3d(4),
            {"prim.*.fixed": 1e-5, "prim.pvm_send.fixed": 9e-5},
        )
        assert derived.primitives["pvm_send"].fixed == 9e-5
        assert derived.primitives["pvm_recv"].fixed == 1e-5

    def test_empty_overrides_return_base(self):
        base = t3d(4)
        assert apply_overrides(base, {}) is base

    def test_derived_machine_simulates(self):
        # the derived machine passes Machine.__post_init__ and works
        from repro import ExecutionMode, OptimizationConfig, compile_program, simulate
        from tests.conftest import MINI_SOURCE

        program = compile_program(
            MINI_SOURCE, "mini.zl", opt=OptimizationConfig.full()
        )
        derived = apply_overrides(t3d(4), {"net.latency": 1e-7})
        base_time = simulate(program, t3d(4), ExecutionMode.TIMING).time
        fast_time = simulate(program, derived, ExecutionMode.TIMING).time
        assert fast_time < base_time


class TestVariantId:
    def test_known_shape(self):
        vid = variant_id({"net.latency": 1e-6})
        assert len(vid) == 12 and vid != "base"

    def test_value_type_does_not_matter_for_integral_fields(self):
        # 64 and 64.0 normalize to the same canonical int
        assert variant_id({"prim.*.knee_bytes": 64}) == variant_id(
            {"prim.*.knee_bytes": 64.0}
        )
