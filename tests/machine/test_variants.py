"""Unit tests for the machine variant layer (`repro.machine.variants`)."""

import pytest

from repro import MachineError, paragon, t3d
from repro.machine import (
    apply_overrides,
    describe_overrides,
    normalize_overrides,
    validate_override_path,
    variant_id,
)


class TestPaths:
    def test_scalar_paths_validate(self):
        for path in (
            "net.latency",
            "net.bandwidth",
            "net.raw_latency",
            "compute.flop_time",
            "compute.loop_overhead",
            "reduction.stage_cost",
            "prim.pvm_send.fixed",
            "prim.*.knee_bytes",
        ):
            validate_override_path(path)

    @pytest.mark.parametrize(
        "path",
        ["latency", "net", "net.speed", "prim.fixed", "prim.x.y.z", "prim.*.color"],
    )
    def test_bad_paths_rejected(self, path):
        with pytest.raises(MachineError):
            validate_override_path(path)

    def test_error_lists_valid_paths(self):
        with pytest.raises(MachineError, match="net.latency"):
            validate_override_path("nonsense")


class TestNormalize:
    def test_sorted_and_typed(self):
        items = normalize_overrides(
            {"prim.*.knee_bytes": 64.0, "net.latency": 2e-6}
        )
        assert items == (("net.latency", 2e-6), ("prim.*.knee_bytes", 64))
        assert isinstance(items[1][1], int)

    def test_describe(self):
        assert describe_overrides({}) == "base"
        assert (
            describe_overrides({"net.latency": 2e-6, "prim.*.fixed": 1e-5})
            == "net.latency=2e-06,prim.*.fixed=1e-05"
        )


class TestApply:
    def test_scalar_sections(self):
        base = t3d(16)
        derived = apply_overrides(
            base,
            {
                "net.latency": 3e-6,
                "compute.flop_time": 1e-8,
                "reduction.stage_cost": 2e-5,
            },
        )
        assert derived.network.latency == 3e-6
        assert derived.compute.flop_time == 1e-8
        assert derived.reduction.stage_cost == 2e-5
        # untouched fields survive
        assert derived.network.bandwidth == base.network.bandwidth
        assert derived.network.raw_latency == base.network.raw_latency
        assert derived.compute.loop_overhead == base.compute.loop_overhead

    def test_star_applies_to_every_primitive(self):
        derived = apply_overrides(paragon(4), {"prim.*.knee_bytes": 128})
        assert all(p.knee_bytes == 128 for p in derived.primitives.values())

    def test_named_primitive_wins_over_star(self):
        derived = apply_overrides(
            t3d(4),
            {"prim.*.fixed": 1e-5, "prim.pvm_send.fixed": 9e-5},
        )
        assert derived.primitives["pvm_send"].fixed == 9e-5
        assert derived.primitives["pvm_recv"].fixed == 1e-5

    def test_empty_overrides_return_base(self):
        base = t3d(4)
        assert apply_overrides(base, {}) is base

    def test_derived_machine_simulates(self):
        # the derived machine passes Machine.__post_init__ and works
        from repro import ExecutionMode, OptimizationConfig, compile_program, simulate
        from tests.conftest import MINI_SOURCE

        program = compile_program(
            MINI_SOURCE, "mini.zl", opt=OptimizationConfig.full()
        )
        derived = apply_overrides(t3d(4), {"net.latency": 1e-7})
        base_time = simulate(program, t3d(4), ExecutionMode.TIMING).time
        fast_time = simulate(program, derived, ExecutionMode.TIMING).time
        assert fast_time < base_time


class TestVariantId:
    def test_known_shape(self):
        vid = variant_id({"net.latency": 1e-6})
        assert len(vid) == 12 and vid != "base"

    def test_value_type_does_not_matter_for_integral_fields(self):
        # 64 and 64.0 normalize to the same canonical int
        assert variant_id({"prim.*.knee_bytes": 64}) == variant_id(
            {"prim.*.knee_bytes": 64.0}
        )


class TestPackVariantSpecs:
    def setup_method(self):
        from repro.machine import clear_pack_cache

        clear_pack_cache()

    def test_memoized_by_content(self):
        from repro.machine import pack_cache_info, pack_variant_specs

        specs = [{}, {"net.latency": 1e-6}]
        a = pack_variant_specs("t3d", 16, "pvm", specs)
        # a fresh-but-equal spec list (different dict objects) hits
        b = pack_variant_specs(
            "t3d", 16, "pvm", [dict(s) for s in specs]
        )
        assert a is b
        info = pack_cache_info()
        assert info.hits == 1 and info.misses == 1

    def test_distinct_specs_pack_distinct_matrices(self):
        from repro.machine import pack_variant_specs

        a = pack_variant_specs("t3d", 16, "pvm", [{}])
        b = pack_variant_specs("t3d", 16, "pvm", [{"net.latency": 1e-6}])
        c = pack_variant_specs("t3d", 64, "pvm", [{}])
        assert a is not b and a is not c

    def test_matches_direct_packing(self):
        from repro.machine import pack_variant_specs
        from repro.machine.factories import machine_by_name
        from repro.machine.variants import pack_variants

        overrides = [{}, {"prim.*.fixed": 8e-5}, {"net.bandwidth": 5e7}]
        base = machine_by_name("t3d", 16, "pvm")
        direct = pack_variants(
            [apply_overrides(base, o) if o else base for o in overrides]
        )
        memo = pack_variant_specs("t3d", 16, "pvm", overrides)
        assert memo.nvariants == direct.nvariants == 3
        assert memo.base.name == direct.base.name

    def test_clear_resets_statistics(self):
        from repro.machine import (
            clear_pack_cache,
            pack_cache_info,
            pack_variant_specs,
        )

        pack_variant_specs("t3d", 16, "pvm", [{}])
        clear_pack_cache()
        info = pack_cache_info()
        assert info.hits == 0 and info.misses == 0 and info.currsize == 0


class TestOverrideValue:
    def test_scalar_path_reads_current_value(self):
        from repro.machine import override_value

        machine = t3d(16)
        assert override_value(machine, "net.latency") == pytest.approx(
            machine.network.latency
        )

    def test_star_reads_largest_primitive(self):
        from repro.machine import override_value

        machine = t3d(16)
        values = [p.fixed for p in machine.primitives.values()]
        assert override_value(machine, "prim.*.fixed") == max(values)

    def test_applied_override_reads_back(self):
        from repro.machine import override_value

        derived = apply_overrides(t3d(16), {"net.latency": 7e-6})
        assert override_value(derived, "net.latency") == 7e-6

    def test_unknown_path_rejected(self):
        from repro.machine import override_value

        with pytest.raises(MachineError, match="unknown override path"):
            override_value(t3d(16), "net.color")


class TestDefaultBounds:
    def test_brackets_current_value(self):
        from repro.machine import default_bounds, override_value

        machine = t3d(16)
        lo, hi = default_bounds(machine, "net.latency")
        assert lo < override_value(machine, "net.latency") < hi

    def test_zero_value_gets_fallback(self):
        from repro.machine import default_bounds

        derived = apply_overrides(t3d(16), {"prim.*.per_byte_beyond": 0.0})
        lo, hi = default_bounds(derived, "prim.*.per_byte_beyond")
        assert lo == 0.0 and hi > 0.0

    def test_bandwidth_stays_positive(self):
        from repro.machine import default_bounds

        lo, hi = default_bounds(t3d(16), "net.bandwidth")
        assert lo > 0.0 and hi > lo

    def test_integral_bounds_are_integers(self):
        from repro.machine import default_bounds

        lo, hi = default_bounds(t3d(16), "prim.*.knee_bytes")
        assert lo == int(lo) and hi == int(hi) and hi > lo

    def test_bad_span_rejected(self):
        from repro.machine import default_bounds

        with pytest.raises(MachineError, match="span"):
            default_bounds(t3d(16), "net.latency", span=1.0)
