"""Unit tests for the region/direction algebra."""

import pytest

from repro.lang.regions import Direction, Region, bounding_region


class TestDirection:
    def test_offsets_coerced_to_int_tuple(self):
        d = Direction("d", [0.0, 1.0])
        assert d.offsets == (0, 1)
        assert isinstance(d.offsets, tuple)

    def test_rank(self):
        assert Direction("d", (1, -1, 0)).rank == 3

    def test_is_zero(self):
        assert Direction("z", (0, 0)).is_zero
        assert not Direction("e", (0, 1)).is_zero

    def test_negated(self):
        d = Direction("ne", (-1, 1)).negated()
        assert d.offsets == (1, -1)

    def test_sign(self):
        assert Direction("d", (-3, 0, 2)).sign() == (-1, 0, 1)

    def test_str_mentions_name_and_offsets(self):
        assert "east" in str(Direction("east", (0, 1)))


class TestRegionBasics:
    def test_shape_and_size(self):
        r = Region("r", (1, 1), (4, 8))
        assert r.shape == (4, 8)
        assert r.size == 32

    def test_empty_region(self):
        r = Region("r", (5,), (4,))
        assert r.is_empty
        assert r.size == 0
        assert r.shape == (0,)

    def test_rank_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Region("r", (1, 1), (4,))

    def test_bounds_iteration(self):
        r = Region("r", (2, 3), (5, 7))
        assert list(r.bounds()) == [(2, 5), (3, 7)]

    def test_str(self):
        assert str(Region("r", (1, 2), (3, 4))) == "[1..3, 2..4]"


class TestRegionAlgebra:
    def test_shift_moves_bounds(self):
        r = Region("r", (2, 2), (5, 5))
        s = r.shifted(Direction("se", (1, 1)))
        assert (s.lows, s.highs) == ((3, 3), (6, 6))

    def test_shift_rank_mismatch(self):
        with pytest.raises(ValueError):
            Region("r", (1,), (4,)).shifted(Direction("d", (0, 1)))

    def test_intersect_overlapping(self):
        a = Region("a", (1, 1), (4, 4))
        b = Region("b", (3, 0), (6, 2))
        c = a.intersect(b)
        assert (c.lows, c.highs) == ((3, 1), (4, 2))

    def test_intersect_disjoint_is_empty(self):
        a = Region("a", (1,), (2,))
        b = Region("b", (5,), (9,))
        assert a.intersect(b).is_empty

    def test_contains(self):
        outer = Region("o", (1, 1), (8, 8))
        inner = Region("i", (2, 2), (7, 7))
        assert outer.contains(inner)
        assert not inner.contains(outer)

    def test_empty_contained_in_anything(self):
        empty = Region("e", (5, 5), (4, 4))
        tiny = Region("t", (1, 1), (1, 1))
        assert tiny.contains(empty)

    def test_contains_index(self):
        r = Region("r", (1, 1), (3, 3))
        assert r.contains_index((2, 3))
        assert not r.contains_index((0, 2))

    def test_expanded(self):
        r = Region("r", (2, 2), (5, 5)).expanded(1)
        assert (r.lows, r.highs) == ((1, 1), (6, 6))

    def test_slices_within(self):
        r = Region("r", (3, 4), (5, 6))
        assert r.slices_within((1, 1)) == (slice(2, 5), slice(3, 6))


class TestBoundingRegion:
    def test_bounding_of_two(self):
        a = Region("a", (1, 5), (4, 9))
        b = Region("b", (2, 1), (6, 3))
        c = bounding_region("c", [a, b])
        assert (c.lows, c.highs) == ((1, 1), (6, 9))

    def test_bounding_skips_empty(self):
        a = Region("a", (1,), (4,))
        empty = Region("e", (9,), (3,))
        c = bounding_region("c", [a, empty])
        assert (c.lows, c.highs) == ((1,), (4,))

    def test_bounding_of_nothing_is_none(self):
        assert bounding_region("c", []) is None

    def test_bounding_mixed_rank_rejected(self):
        with pytest.raises(ValueError):
            bounding_region(
                "c", [Region("a", (1,), (2,)), Region("b", (1, 1), (2, 2))]
            )
