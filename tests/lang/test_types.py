"""Unit tests for ZL scalar types."""

import numpy as np
import pytest

from repro.lang.types import BOOLEAN, DOUBLE, INTEGER, join, type_by_name


def test_lookup_by_name():
    assert type_by_name("double") is DOUBLE
    assert type_by_name("integer") is INTEGER
    assert type_by_name("boolean") is BOOLEAN


def test_lookup_unknown_raises():
    with pytest.raises(KeyError):
        type_by_name("float128")


def test_dtypes():
    assert DOUBLE.dtype == np.dtype(np.float64)
    assert INTEGER.dtype == np.dtype(np.int64)


def test_sizes_in_bytes():
    assert DOUBLE.size_bytes == 8
    assert INTEGER.size_bytes == 8
    assert BOOLEAN.size_bytes == 1


def test_is_numeric():
    assert DOUBLE.is_numeric
    assert INTEGER.is_numeric
    assert not BOOLEAN.is_numeric


def test_join_promotes_to_double():
    assert join(INTEGER, DOUBLE) is DOUBLE
    assert join(DOUBLE, INTEGER) is DOUBLE
    assert join(DOUBLE, DOUBLE) is DOUBLE


def test_join_integers_stay_integer():
    assert join(INTEGER, INTEGER) is INTEGER


def test_join_boolean_rejected():
    with pytest.raises(TypeError):
        join(BOOLEAN, DOUBLE)
