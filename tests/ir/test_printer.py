"""Unit tests for the pseudo-C printer."""

from repro import OptimizationConfig, compile_program, emit_c

SRC = """
program demo;
config n : integer = 8;
region R  = [1..n, 1..n];
region In = [2..n-1, 2..n-1];
direction east = [0, 1];
var A, B : [R] double;
var s : double;
procedure main();
begin
  [R] A := index1 + 2.0;
  for i := 1 to 4 do
    [In] B := A@east * 0.5;
  end;
  [In] s := max<< abs(B);
  if s > 1.0 then
    [R] B := B / s;
  end;
end;
"""


def test_emits_loop_nests_for_array_statements():
    emitted = emit_c(compile_program(SRC, "demo.zl"))
    assert "for (_i1 = 1; _i1 <= 8; _i1++)" in emitted.text
    assert "A[_i1][_i2]" in emitted.text


def test_shifted_reference_offsets_in_subscripts():
    emitted = emit_c(compile_program(SRC, "demo.zl"))
    assert "A[_i1][_i2+1]" in emitted.text


def test_control_flow_rendered():
    emitted = emit_c(compile_program(SRC, "demo.zl"))
    assert "for (i = 1; i <= 4; i += 1)" in emitted.text
    assert "if ((s > 1.0))" in emitted.text


def test_comm_lines_zero_without_optimization():
    emitted = emit_c(compile_program(SRC, "demo.zl"))
    assert emitted.comm_lines == 0
    assert emitted.lines_excluding_comm == emitted.total_lines


def test_comm_calls_emitted_and_counted():
    prog = compile_program(SRC, "demo.zl", opt=OptimizationConfig.full())
    emitted = emit_c(prog)
    assert emitted.comm_lines == 4  # DR, SR, DN, SV for the one transfer
    assert "SR(A, east);" in emitted.text
    assert emitted.lines_excluding_comm == emitted.total_lines - 4


def test_lines_excluding_comm_invariant_across_configs():
    """The Figure 7 metric must not depend on the optimization level."""
    base = emit_c(compile_program(SRC, "demo.zl", opt=OptimizationConfig.baseline()))
    full = emit_c(compile_program(SRC, "demo.zl", opt=OptimizationConfig.full()))
    assert base.lines_excluding_comm == full.lines_excluding_comm


def test_declarations_include_fluff():
    emitted = emit_c(compile_program(SRC, "demo.zl"))
    # A is shifted east (fluff width 1 in dim 2): 8 + 2*1 = 10
    assert "static double A[8][10];" in emitted.text
    assert "static double B[8][8];" in emitted.text


def test_reduction_rendered():
    emitted = emit_c(compile_program(SRC, "demo.zl"))
    assert "ZL_REDUCE_MAX" in emitted.text


def test_wrap_subscripts_rendered_with_wrap_macro():
    src = """
    program w;
    config n : integer = 8;
    region R = [1..n, 1..n];
    direction east = [0, 1];
    var A, B : [R] double;
    procedure main();
    begin
      [R] A := index2;
      [R] B := A@@east;
    end;
    """
    emitted = emit_c(compile_program(src, "w.zl"))
    assert "A[_i1][ZL_WRAP(_i2+1)]" in emitted.text


def test_power_operator_rendered():
    src = """
    program p;
    config n : integer = 4;
    region R = [1..n];
    var A : [R] double;
    procedure main(); begin [R] A := A ^ 2.0; end;
    """
    emitted = emit_c(compile_program(src, "p.zl"))
    assert "**" in emitted.text or "pow" in emitted.text
