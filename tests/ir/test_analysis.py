"""Unit tests for intra-block def/use analysis."""

from repro import compile_program
from repro.ir.analysis import BlockInfo


def block_of(body):
    src = f"""
    program p;
    config n : integer = 8;
    region R  = [1..n, 1..n];
    region In = [2..n-1, 2..n-1];
    direction east = [0, 1];
    direction west = [0, -1];
    var A, B, C : [R] double;
    var s : double;
    procedure main(); begin {body} end;
    """
    prog = compile_program(src, "p.zl")
    return prog.body[0]


class TestShiftedUses:
    def test_uses_in_textual_order(self):
        info = BlockInfo(block_of("[In] B := A@east; [In] C := A@west;"))
        assert [(u.stmt_index, u.direction.name) for u in info.shifted_uses] == [
            (0, "east"),
            (1, "west"),
        ]

    def test_duplicate_in_one_statement_listed_twice(self):
        # planning dedups per statement; analysis reports raw references
        info = BlockInfo(block_of("[In] B := A@east * A@east;"))
        assert len(info.shifted_uses) == 2

    def test_reduce_operand_uses_reduce_region(self):
        info = BlockInfo(block_of("[In] s := +<< (A@east - A);"))
        (use,) = info.shifted_uses
        assert use.region.name == "In"

    def test_key_uses_offsets_not_names(self):
        block = block_of("[In] B := A@east;")
        info = BlockInfo(block)
        (use,) = info.shifted_uses
        assert use.key == ("A", (0, 1), False)


class TestWrites:
    def test_last_write_before(self):
        info = BlockInfo(
            block_of("[R] A := 1.0; [R] B := A; [R] A := 2.0; [R] C := A;")
        )
        assert info.last_write_before("A", 1) == 0
        assert info.last_write_before("A", 3) == 2
        assert info.last_write_before("C", 2) == -1

    def test_first_write_at_or_after(self):
        info = BlockInfo(block_of("[R] B := A; [R] A := 1.0;"))
        assert info.first_write_at_or_after("A", 0) == 1
        assert info.first_write_at_or_after("A", 2) == 2  # = len(core)

    def test_written_between(self):
        info = BlockInfo(
            block_of("[R] B := A; [R] A := 1.0; [R] C := A;")
        )
        assert info.written_between("A", 0, 2)
        assert not info.written_between("A", 2, 3)
        assert not info.written_between("A", 0, 1)

    def test_scalar_assign_writes_no_arrays(self):
        info = BlockInfo(block_of("s := 1.0; [R] A := s;"))
        assert info.writes[0] == set()
        assert info.writes[1] == {"A"}


class TestGrouping:
    def test_uses_by_key_groups_same_offsets(self):
        info = BlockInfo(
            block_of("[In] B := A@east; [In] C := A@east + A@west;")
        )
        groups = info.uses_by_key()
        assert len(groups[("A", (0, 1), False)]) == 2
        assert len(groups[("A", (0, -1), False)]) == 1
