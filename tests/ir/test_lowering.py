"""Unit tests for AST -> IR lowering."""

from repro import compile_program
from repro.ir import nodes as ir


def lower_src(body, decls="", config=None):
    src = f"""
    program p;
    config n : integer = 8;
    region R  = [1..n, 1..n];
    region In = [2..n-1, 2..n-1];
    direction east = [0, 1];
    direction west = [0, -1];
    var A, B, C : [R] double;
    var s, t : double;
    {decls}
    procedure main(); begin {body} end;
    """
    return compile_program(src, "p.zl", config=config)


class TestBlockFormation:
    def test_consecutive_statements_share_a_block(self):
        prog = lower_src("[R] A := 1.0; [R] B := 2.0; s := 3.0;")
        assert len(prog.body) == 1
        assert isinstance(prog.body[0], ir.Block)
        assert len(prog.body[0].stmts) == 3

    def test_region_scope_does_not_break_blocks(self):
        prog = lower_src("[R] A := 1.0; [In] B := 2.0; [R] C := 3.0;")
        assert len(prog.body) == 1

    def test_for_loop_breaks_blocks(self):
        prog = lower_src(
            "[R] A := 1.0; for i := 1 to 2 do [R] B := i; end; [R] C := 1.0;"
        )
        kinds = [type(s).__name__ for s in prog.body]
        assert kinds == ["Block", "ForLoop", "Block"]

    def test_if_breaks_blocks(self):
        prog = lower_src("[R] A := 1.0; if s > 0.0 then [R] B := 1.0; end;")
        kinds = [type(s).__name__ for s in prog.body]
        assert kinds == ["Block", "IfStmt"]

    def test_procedure_call_bounds_blocks(self):
        prog = lower_src(
            "[R] A := 1.0; init(); [R] C := 1.0;",
            decls="procedure init(); begin [R] B := 2.0; end;",
        )
        # inlined body is its own block: three blocks total
        blocks = [s for s in prog.body if isinstance(s, ir.Block)]
        assert len(blocks) == 3
        assert blocks[1].core_stmts()[0].target == "B"

    def test_nested_region_scopes_innermost_wins(self):
        prog = lower_src("[R] begin [In] A := 1.0; end;")
        stmt = prog.body[0].stmts[0]
        assert stmt.region.name == "In"


class TestExpressionLowering:
    def test_shift_ref_resolved_to_direction(self):
        prog = lower_src("[In] B := A@east;")
        stmt = prog.body[0].stmts[0]
        read = stmt.expr
        assert isinstance(read, ir.IRArrayRead)
        assert read.direction.offsets == (0, 1)

    def test_unshifted_read_has_no_direction(self):
        prog = lower_src("[R] B := A;")
        assert prog.body[0].stmts[0].expr.direction is None

    def test_index_builtin(self):
        prog = lower_src("[R] A := index2;")
        assert isinstance(prog.body[0].stmts[0].expr, ir.IRIndex)
        assert prog.body[0].stmts[0].expr.dim == 2

    def test_scalar_read(self):
        prog = lower_src("[R] A := s;")
        assert isinstance(prog.body[0].stmts[0].expr, ir.IRScalarRead)

    def test_config_read_is_scalar(self):
        prog = lower_src("[R] A := n * 1.0;")
        expr = prog.body[0].stmts[0].expr
        assert isinstance(expr.lhs, ir.IRScalarRead)
        assert expr.lhs.name == "n"

    def test_reduce_carries_region(self):
        prog = lower_src("[In] s := +<< A;")
        stmt = prog.body[0].stmts[0]
        assert isinstance(stmt, ir.ScalarAssign)
        assert isinstance(stmt.expr, ir.IRReduce)
        assert stmt.expr.region.name == "In"

    def test_fabs_normalized_to_abs(self):
        prog = lower_src("[R] A := fabs(B);")
        assert prog.body[0].stmts[0].expr.func == "abs"

    def test_flops_computed(self):
        prog = lower_src("[R] A := B * 2.0 + 1.0;")
        assert prog.body[0].stmts[0].flops == 3  # mul, add, store


class TestProgramMetadata:
    def test_arrays_carry_domain_and_fluff(self):
        prog = lower_src("[In] B := A@east - A@west;")
        domain, fluff = prog.arrays["A"]
        assert domain.shape == (8, 8)
        assert fluff == (0, 1)

    def test_scalars_listed(self):
        prog = lower_src("s := 1.0;")
        assert "s" in prog.scalars and "t" in prog.scalars

    def test_config_values_retained(self):
        prog = lower_src("[R] A := 1.0;", config={"n": 16})
        assert prog.config_values["n"] == 16

    def test_walk_blocks_covers_nested(self):
        prog = lower_src(
            "for i := 1 to 2 do [R] A := 1.0; if s > 0.0 then [R] B := 1.0; "
            "else [R] C := 1.0; end; end;"
        )
        assert len(list(prog.walk_blocks())) == 3

    def test_loop_bounds_lowered_as_scalars(self):
        prog = lower_src("for i := 1 to n do s := i; end;")
        loop = prog.body[0]
        assert isinstance(loop, ir.ForLoop)
        assert isinstance(loop.high, ir.IRScalarRead)


class TestExprHelpers:
    def test_expr_flops_counts_intrinsics_heavier(self):
        cheap = ir.IRIntrinsic("abs", [ir.IRConst(1.0)])
        costly = ir.IRIntrinsic("sqrt", [ir.IRConst(1.0)])
        assert ir.expr_flops(costly) > ir.expr_flops(cheap)

    def test_shifted_reads_in_order(self):
        prog = lower_src("[In] B := A@east * 2.0 + A@west;")
        reads = ir.shifted_reads(prog.body[0].stmts[0].expr)
        assert [r.direction.name for r in reads] == ["east", "west"]

    def test_arrays_read_includes_unshifted(self):
        prog = lower_src("[In] B := A@east + C;")
        assert ir.arrays_read(prog.body[0].stmts[0].expr) == {"A", "C"}
