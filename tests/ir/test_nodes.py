"""Unit tests for IR node helpers."""

from repro.ir import nodes as ir
from repro.ironman.calls import CallKind
from repro.lang.regions import Direction, Region

R = Region("R", (1, 1), (4, 4))
EAST = Direction("east", (0, 1))


def _desc(arrays=("A",), wrap=False):
    return ir.CommDescriptor(
        direction=EAST,
        wrap=wrap,
        entries=[ir.CommEntry(a, R) for a in arrays],
    )


class TestDescriptors:
    def test_ids_are_unique(self):
        assert _desc().id != _desc().id

    def test_is_combined(self):
        assert not _desc(("A",)).is_combined
        assert _desc(("A", "B")).is_combined

    def test_describe_mentions_arrays_and_direction(self):
        text = _desc(("A", "B")).describe()
        assert "A, B" in text and "east" in text

    def test_describe_marks_wrap(self):
        assert "@@" in _desc(wrap=True).describe()
        assert "@@" not in _desc(wrap=False).describe()


class TestBlockHelpers:
    def _block(self):
        desc = _desc()
        assign = ir.ArrayAssign(
            region=R, target="B", expr=ir.IRArrayRead("A", EAST)
        )
        return ir.Block(
            [
                ir.CommCall(CallKind.DR, desc),
                ir.CommCall(CallKind.SR, desc),
                ir.CommCall(CallKind.DN, desc),
                assign,
                ir.CommCall(CallKind.SV, desc),
            ]
        )

    def test_core_vs_comm_split(self):
        block = self._block()
        assert len(block.core_stmts()) == 1
        assert len(block.comm_calls()) == 4

    def test_descriptors_deduplicated(self):
        block = self._block()
        assert len(block.descriptors()) == 1


class TestTraversal:
    def test_walk_body_covers_nested_structures(self):
        inner = ir.Block([ir.ScalarAssign("s", ir.IRConst(1.0))])
        loop = ir.ForLoop("i", ir.IRConst(1), ir.IRConst(2), None, [inner])
        branch = ir.IfStmt(
            arms=[(ir.IRConst(True), [ir.Block([])])], orelse=[loop]
        )
        seen = list(ir.walk_body([branch]))
        kinds = [type(s).__name__ for s in seen]
        assert kinds == ["IfStmt", "Block", "ForLoop", "Block"]

    def test_program_all_descriptors_cross_block(self):
        d1, d2 = _desc(), _desc()
        prog = ir.IRProgram(
            name="p",
            body=[
                ir.Block([ir.CommCall(CallKind.SR, d1), ir.CommCall(CallKind.DN, d1)]),
                ir.ForLoop(
                    "i",
                    ir.IRConst(1),
                    ir.IRConst(2),
                    None,
                    [ir.Block([ir.CommCall(CallKind.SR, d2), ir.CommCall(CallKind.DN, d2)])],
                ),
            ],
            arrays={"A": (R, (0, 1))},
            scalars=[],
            config_values={},
        )
        assert len(prog.all_descriptors()) == 2


class TestFlops:
    def test_array_assign_flops_include_store(self):
        stmt = ir.ArrayAssign(region=R, target="B", expr=ir.IRConst(1.0))
        assert stmt.flops == 1  # just the store

    def test_explicit_flops_not_overwritten(self):
        stmt = ir.ArrayAssign(
            region=R, target="B", expr=ir.IRConst(1.0), flops=17
        )
        assert stmt.flops == 17
