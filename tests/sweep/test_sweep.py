"""Tests for the parameter-sweep subsystem (`repro.sweep`)."""

import os

import pytest

from repro import MachineError, load_telemetry
from repro.engine import Job, MachineSpec
from repro.sweep import SweepAxis, expand_axes, parse_axis, run_sweep
from repro.sweep.axes import parse_axes

SIMPLE_SMALL = {"n": 16, "niters": 2, "ncond": 2}


# ---------------------------------------------------------------------------
# axis parsing and validation
# ---------------------------------------------------------------------------


class TestParseAxis:
    def test_integers(self):
        axis = parse_axis("nprocs=4,16,64")
        assert axis.name == "nprocs"
        assert axis.values == (4, 16, 64)
        assert all(isinstance(v, int) for v in axis.values)

    def test_floats_and_scientific(self):
        axis = parse_axis("net.latency=1e-6,1.2e-5,0.0001")
        assert axis.values == (1e-6, 1.2e-5, 1e-4)

    def test_integral_float_becomes_int(self):
        assert parse_axis("prim.*.knee_bytes=1e2").values == (100,)

    @pytest.mark.parametrize(
        "text", ["nprocs", "=1,2", "nprocs=", "nprocs=1,,2", "nprocs=1,two"]
    )
    def test_malformed_specs(self, text):
        with pytest.raises(MachineError):
            parse_axis(text)

    def test_unknown_path_rejected(self):
        with pytest.raises(MachineError, match="unknown override path"):
            parse_axis("net.color=1,2")

    def test_duplicate_values_rejected(self):
        with pytest.raises(MachineError, match="repeats"):
            parse_axis("nprocs=4,4")

    def test_nprocs_must_be_positive_integers(self):
        with pytest.raises(MachineError, match="positive"):
            parse_axis("nprocs=4,0")
        with pytest.raises(MachineError, match="integers"):
            SweepAxis("nprocs", (2.5,))

    def test_duplicate_axis_names_rejected(self):
        with pytest.raises(MachineError, match="twice"):
            parse_axes(["nprocs=2,4", "nprocs=8,16"])

    def test_describe_round_trips(self):
        assert parse_axis("net.latency=1e-06,0.0001").describe() == (
            "net.latency=1e-06,0.0001"
        )


# ---------------------------------------------------------------------------
# point expansion
# ---------------------------------------------------------------------------


class TestExpandAxes:
    def test_row_major_product(self):
        points = expand_axes(
            [SweepAxis("nprocs", (4, 16)), SweepAxis("net.latency", (1e-6, 1e-5))],
            "t3d",
        )
        assert [p.coords for p in points] == [
            (("nprocs", 4), ("net.latency", 1e-6)),
            (("nprocs", 4), ("net.latency", 1e-5)),
            (("nprocs", 16), ("net.latency", 1e-6)),
            (("nprocs", 16), ("net.latency", 1e-5)),
        ]
        assert [p.machine.nprocs for p in points] == [4, 4, 16, 16]

    def test_nprocs_axis_leaves_variant_base(self):
        points = expand_axes([SweepAxis("nprocs", (4, 16))], "t3d")
        assert {p.variant for p in points} == {"base"}

    def test_override_axes_get_distinct_variants(self):
        points = expand_axes([SweepAxis("net.latency", (1e-6, 1e-5))], "t3d")
        variants = {p.variant for p in points}
        assert "base" not in variants
        assert len(variants) == 2

    def test_axis_wins_over_pinned_override(self):
        base = MachineSpec.coerce("t3d", overrides={"net.latency": 5e-5})
        points = expand_axes([SweepAxis("net.latency", (1e-6,))], base)
        assert dict(points[0].machine.overrides)["net.latency"] == 1e-6

    def test_pinned_overrides_survive_on_every_point(self):
        base = MachineSpec.coerce("t3d", overrides={"prim.*.knee_bytes": 32})
        points = expand_axes([SweepAxis("net.latency", (1e-6, 1e-5))], base)
        for p in points:
            assert dict(p.machine.overrides)["prim.*.knee_bytes"] == 32

    def test_unknown_primitive_fails_eagerly(self):
        with pytest.raises(MachineError, match="no primitive"):
            expand_axes([SweepAxis("prim.bogus.fixed", (1e-6,))], "t3d")

    def test_points_fingerprint_independently(self):
        points = expand_axes([SweepAxis("net.latency", (1e-6, 1e-5))], "t3d")
        prints = {
            Job.make("simple", "cc", machine=p.machine).fingerprint()
            for p in points
        }
        assert len(prints) == 2

    def test_empty_overrides_do_not_move_fingerprints(self):
        # pre-sweep cache entries must stay valid: a spec with no
        # overrides fingerprints identically to one that never had the
        # field
        plain = Job.make("simple", "cc", machine=MachineSpec(nprocs=16))
        swept = Job.make(
            "simple", "cc", machine=MachineSpec(nprocs=16, overrides=())
        )
        assert plain.fingerprint() == swept.fingerprint()


class TestMachineSpecValidation:
    def test_non_positive_nprocs_rejected(self):
        with pytest.raises(MachineError, match="positive"):
            MachineSpec(nprocs=0)
        with pytest.raises(MachineError, match="positive"):
            MachineSpec(nprocs=-4)

    def test_non_integer_nprocs_rejected(self):
        with pytest.raises(MachineError, match="integer"):
            MachineSpec(nprocs=2.5)
        with pytest.raises(MachineError, match="integer"):
            MachineSpec(nprocs=True)

    def test_variant_property(self):
        assert MachineSpec(nprocs=16).variant == "base"
        spec = MachineSpec.coerce("t3d", overrides={"net.latency": 1e-6})
        assert spec.variant != "base" and len(spec.variant) == 12


# ---------------------------------------------------------------------------
# run_sweep end to end (tiny grids through the real engine)
# ---------------------------------------------------------------------------


def _sweep(tmp_path, **kwargs):
    kwargs.setdefault("axes", [SweepAxis("net.latency", (1e-6, 1e-4))])
    kwargs.setdefault("benchmarks", "simple")
    kwargs.setdefault("keys", ("baseline", "cc"))
    kwargs.setdefault("machine", MachineSpec.coerce("t3d", nprocs=4))
    kwargs.setdefault("config_overrides", {"simple": SIMPLE_SMALL})
    kwargs.setdefault("cache_dir", tmp_path / "cache")
    # CI re-runs the suite with REPRO_TEST_CACHE_BACKEND=sqlite
    kwargs.setdefault(
        "cache_backend", os.environ.get("REPRO_TEST_CACHE_BACKEND") or None
    )
    kwargs.setdefault("jobs", 2)
    return run_sweep(**kwargs)


class TestRunSweep:
    def test_shape_and_slicing(self, tmp_path):
        sweep = _sweep(tmp_path)
        assert len(sweep.points) == 2
        assert sweep.cells_per_point == 2
        assert sweep.cells == 4
        for point, block in sweep.iter_points():
            assert [o.job.experiment for o in block] == ["baseline", "cc"]
            assert all(o.job.machine == point.machine for o in block)

    def test_swept_latency_moves_times(self, tmp_path):
        sweep = _sweep(tmp_path)
        lo, hi = (
            sweep.point_outcomes(i)[0].result.execution_time for i in (0, 1)
        )
        assert lo < hi  # higher latency -> slower baseline

    def test_cache_reuse_across_invocations(self, tmp_path):
        cold = _sweep(tmp_path)
        assert cold.cache_hits == 0
        warm = _sweep(tmp_path)
        assert warm.cache_hits == warm.cells
        for a, b in zip(cold.outcomes, warm.outcomes):
            assert a.result.execution_time == b.result.execution_time

    def test_growing_an_axis_only_simulates_new_points(self, tmp_path):
        _sweep(tmp_path)
        grown = _sweep(
            tmp_path, axes=[SweepAxis("net.latency", (1e-6, 1e-4, 1e-3))]
        )
        assert grown.cells == 6
        assert grown.cache_hits == 4

    def test_study_view_is_figures_compatible(self, tmp_path):
        sweep = _sweep(tmp_path)
        study = sweep.study(0)
        assert set(study.results) == {"simple"}
        assert [r.experiment for r in study.results["simple"]] == [
            "baseline",
            "cc",
        ]

    def test_telemetry_records_variants(self, tmp_path):
        out = tmp_path / "telemetry.json"
        sweep = _sweep(tmp_path, telemetry=out)
        records = load_telemetry(out)
        assert len(records) == sweep.cells
        variants = {r["machine_variant"] for r in records}
        assert len(variants) == 2 and "base" not in variants
        assert all("machine_overrides" in r for r in records)

    def test_needs_at_least_one_axis(self, tmp_path):
        with pytest.raises(MachineError, match="at least one axis"):
            run_sweep(axes=[], benchmarks="simple")


# ---------------------------------------------------------------------------
# batched routing: cost-only sweeps go through simulate_many
# ---------------------------------------------------------------------------


class TestBatchedRouting:
    def test_cost_only_sweep_batches_by_default(self, tmp_path):
        sweep = _sweep(tmp_path)
        assert all(o.record.get("batched") for o in sweep.outcomes)

    def test_batched_false_keeps_per_job_path(self, tmp_path):
        sweep = _sweep(tmp_path, batched=False)
        assert not any(o.record.get("batched") for o in sweep.outcomes)

    def test_nprocs_axis_falls_back(self, tmp_path):
        sweep = _sweep(tmp_path, axes=[SweepAxis("nprocs", (2, 4))])
        assert not any(o.record.get("batched") for o in sweep.outcomes)

    def test_single_point_falls_back(self, tmp_path):
        sweep = _sweep(tmp_path, axes=[SweepAxis("net.latency", (1e-6,))])
        assert not any(o.record.get("batched") for o in sweep.outcomes)

    def test_forced_batched_with_nprocs_axis_raises(self, tmp_path):
        with pytest.raises(MachineError, match="nprocs"):
            _sweep(tmp_path, axes=[SweepAxis("nprocs", (2, 4))], batched=True)

    def test_forced_batched_with_numeric_mode_raises(self, tmp_path):
        with pytest.raises(MachineError, match="TIMING"):
            _sweep(tmp_path, mode="numeric", batched=True)

    def test_forced_batched_with_fast_false_raises(self, tmp_path):
        with pytest.raises(MachineError, match="fast"):
            _sweep(tmp_path, fast=False, batched=True)

    def test_numeric_mode_falls_back(self, tmp_path):
        sweep = _sweep(tmp_path, mode="numeric")
        assert not any(o.record.get("batched") for o in sweep.outcomes)

    def test_batched_matches_per_job_bitwise(self, tmp_path):
        batched = _sweep(tmp_path, cache_dir=tmp_path / "a", batched=True)
        scalar = _sweep(tmp_path, cache_dir=tmp_path / "b", batched=False)
        assert batched.cells == scalar.cells
        for a, b in zip(batched.outcomes, scalar.outcomes):
            assert a.job == b.job
            assert a.result == b.result
            ra, rb = a.record["result"], b.record["result"]
            assert ra["execution_time"] == rb["execution_time"]
            assert ra["total_messages"] == rb["total_messages"]
            assert ra["total_bytes"] == rb["total_bytes"]
            assert ra["warnings"] == rb["warnings"]

    def test_cache_interop_batched_then_scalar(self, tmp_path):
        cold = _sweep(tmp_path, batched=True)
        assert cold.cache_hits == 0
        warm = _sweep(tmp_path, batched=False)
        assert warm.cache_hits == warm.cells
        for a, b in zip(cold.outcomes, warm.outcomes):
            assert a.result.execution_time == b.result.execution_time

    def test_cache_interop_scalar_then_batched(self, tmp_path):
        cold = _sweep(tmp_path, batched=False)
        assert cold.cache_hits == 0
        warm = _sweep(tmp_path, batched=True)
        assert warm.cache_hits == warm.cells
        for a, b in zip(cold.outcomes, warm.outcomes):
            assert a.result.execution_time == b.result.execution_time

    def test_growing_an_axis_batches_only_new_points(self, tmp_path):
        _sweep(tmp_path, batched=True)
        grown = _sweep(
            tmp_path,
            axes=[SweepAxis("net.latency", (1e-6, 1e-4, 1e-3))],
            batched=True,
        )
        assert grown.cells == 6
        assert grown.cache_hits == 4
        fresh = [o for o in grown.outcomes if not o.cached]
        assert all(o.record.get("batched") for o in fresh)
