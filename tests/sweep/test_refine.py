"""Tests for adaptive refinement (`repro.sweep.refine`)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import MachineError
from repro.engine import MachineSpec
from repro.sweep import RefinedSweep, SweepAxis, run_refined_sweep, run_sweep

SIMPLE_SMALL = {"n": 16, "niters": 2, "ncond": 2}
AXIS = "prim.*.per_byte_beyond"


def _refine(tmp_path, **kwargs):
    kwargs.setdefault("axis", AXIS)
    kwargs.setdefault("lo", 0.0)
    kwargs.setdefault("hi", 1e-6)
    kwargs.setdefault("tol", 1e-8)
    kwargs.setdefault("coarse", 5)
    kwargs.setdefault("benchmarks", "simple")
    kwargs.setdefault("keys", ("baseline", "rr", "cc"))
    kwargs.setdefault("machine", MachineSpec.coerce("t3d", nprocs=16))
    kwargs.setdefault("overrides", {"prim.*.knee_bytes": 32})
    kwargs.setdefault("config_overrides", {"simple": SIMPLE_SMALL})
    kwargs.setdefault("cache_dir", tmp_path / "cache")
    kwargs.setdefault("jobs", 2)
    return run_refined_sweep(**kwargs)


@pytest.fixture(scope="module")
def refined(tmp_path_factory):
    """Refine the paper's combining knee: cc flips from win to loss as
    the beyond-knee byte cost grows."""
    return _refine(tmp_path_factory.mktemp("refine"))


class TestRefinement:
    def test_localizes_crossover_to_tolerance(self, refined):
        assert isinstance(refined, RefinedSweep)
        c = next(
            c
            for c in refined.crossovers
            if (c.experiment, c.reference) == ("cc", "rr")
        )
        assert c.direction == "win->loss"
        assert c.x_high - c.x_low <= refined.tol
        assert c.x_low <= c.x_estimate <= c.x_high

    def test_winner_flip_matches_crossover(self, refined):
        (flip,) = [f for f in refined.winner_flips if f.benchmark == "simple"]
        assert (flip.from_key, flip.to_key) == ("cc", "rr")
        c = refined.crossovers[0]
        assert flip.x_low == c.x_low and flip.x_high == c.x_high

    def test_beats_dense_grid_by_5x(self, refined):
        # the tentpole claim: >= 5x fewer evaluations than the dense
        # grid at the same resolution
        assert refined.points_evaluated * 5 <= refined.dense_points
        assert refined.savings >= 5.0

    def test_round_structure(self, refined):
        assert refined.rounds == len(refined.round_values)
        assert refined.rounds == len(refined.round_fingerprints)
        assert len(refined.round_values[0]) == 5  # the coarse grid
        assert all(len(vs) >= 1 for vs in refined.round_values)
        # fingerprints are content hashes: distinct per round
        assert len(set(refined.round_fingerprints)) == refined.rounds
        assert all(
            len(fp) == 16 and int(fp, 16) >= 0
            for fp in refined.round_fingerprints
        )

    def test_merged_sweep_is_ordered_and_complete(self, refined):
        xs = [float(p.coord(AXIS)) for p in refined.sweep.points]
        assert xs == sorted(xs)
        assert len(xs) == len(set(xs))
        assert set(xs) == {v for vs in refined.round_values for v in vs}
        assert refined.sweep.cells_per_point == 3

    def test_evaluated_points_bit_identical_to_dense(self, refined, tmp_path):
        """Refinement changes *which* variants run, never *how*: a dense
        sweep over exactly the refined value set reproduces every
        execution time bit for bit."""
        values = tuple(float(p.coord(AXIS)) for p in refined.sweep.points)
        dense = run_sweep(
            axes=[SweepAxis(AXIS, values)],
            benchmarks="simple",
            keys=("baseline", "rr", "cc"),
            machine=MachineSpec.coerce("t3d", nprocs=16),
            overrides={"prim.*.knee_bytes": 32},
            config_overrides={"simple": SIMPLE_SMALL},
            cache_dir=tmp_path / "dense",
            jobs=2,
        )
        assert dense.cells == len(refined.sweep.outcomes)
        refined_times = {
            (o.job.machine.overrides, o.job.experiment): o.result.execution_time
            for o in refined.sweep.outcomes
        }
        for o in dense.outcomes:
            key = (o.job.machine.overrides, o.job.experiment)
            assert o.result.execution_time == refined_times[key]

    def test_cache_reuse_across_refinements(self, tmp_path):
        cold = _refine(tmp_path)
        warm = _refine(tmp_path)
        assert warm.round_fingerprints == cold.round_fingerprints
        assert warm.sweep.cache_hits == len(warm.sweep.outcomes)


class TestValidation:
    def test_nprocs_axis_rejected(self, tmp_path):
        with pytest.raises(MachineError, match="nprocs"):
            _refine(tmp_path, axis="nprocs")

    def test_empty_range_rejected(self, tmp_path):
        with pytest.raises(MachineError, match="empty"):
            _refine(tmp_path, lo=1e-6, hi=1e-6)

    def test_bad_tolerance_rejected(self, tmp_path):
        with pytest.raises(MachineError, match="positive"):
            _refine(tmp_path, tol=0.0)

    def test_coarse_too_small_rejected(self, tmp_path):
        with pytest.raises(MachineError, match=">= 2"):
            _refine(tmp_path, coarse=1)


class TestIntegralAxis:
    def test_knee_bisection_stays_integral(self, tmp_path):
        refined = _refine(
            tmp_path,
            axis="prim.*.knee_bytes",
            lo=8,
            hi=512,
            tol=1.0,
            coarse=3,
            overrides={"prim.*.per_byte_beyond": 5e-7},
        )
        xs = [p.coord("prim.*.knee_bytes") for p in refined.sweep.points]
        assert all(float(x) == int(x) for x in xs)
        # integer exhaustion terminates even below fractional tolerance
        assert refined.rounds <= 32


class TestDifferential:
    """Refined crossovers agree with a dense grid's to within the
    tolerance — the refinement only skips work, never changes answers."""

    @settings(max_examples=4, deadline=None)
    @given(knee=st.sampled_from((16, 32, 64)))
    def test_refined_matches_dense(self, tmp_path_factory, knee):
        tmp = tmp_path_factory.mktemp("diff")
        tol = 5e-9
        refined = _refine(
            tmp,
            tol=tol,
            overrides={"prim.*.knee_bytes": knee},
            cache_dir=tmp / "refined",
        )
        dense = run_sweep(
            axes=[
                SweepAxis(
                    AXIS, tuple(i * 1e-6 / 40 for i in range(41))
                )
            ],
            benchmarks="simple",
            keys=("baseline", "rr", "cc"),
            machine=MachineSpec.coerce("t3d", nprocs=16),
            overrides={"prim.*.knee_bytes": knee},
            config_overrides={"simple": SIMPLE_SMALL},
            cache_dir=tmp / "dense",
            jobs=2,
        )
        from repro.analysis.scaling import detect_crossovers

        dense_cross = [
            c
            for c in detect_crossovers(dense)
            if (c.experiment, c.reference) == ("cc", "rr")
        ]
        refined_cross = [
            c
            for c in refined.crossovers
            if (c.experiment, c.reference) == ("cc", "rr")
        ]
        assert len(refined_cross) == len(dense_cross)
        for rc, dc in zip(refined_cross, dense_cross):
            # the dense grid brackets the truth within its own step; the
            # refined estimate must land inside that bracket (padded by
            # the refinement tolerance)
            assert dc.x_low - tol <= rc.x_estimate <= dc.x_high + tol


@pytest.mark.slow
class TestFullMatrixDifferential:
    """The tier-2 sweep: every benchmark, the full message-passing key
    chain, refined vs dense."""

    @pytest.mark.parametrize("bench", ["simple", "tomcatv", "swm", "sp"])
    def test_refined_matches_dense(self, bench, tmp_path):
        from repro.analysis.scaling import detect_crossovers
        from repro.programs import small_config

        config = {bench: small_config(bench)}
        tol = 1e-8
        refined = run_refined_sweep(
            axis=AXIS,
            lo=0.0,
            hi=1e-6,
            tol=tol,
            coarse=9,
            benchmarks=bench,
            keys=("baseline", "rr", "cc"),
            machine=MachineSpec.coerce("t3d", nprocs=16),
            overrides={"prim.*.knee_bytes": 32},
            config_overrides=config,
            cache_dir=tmp_path / "refined",
            jobs=2,
        )
        dense = run_sweep(
            axes=[SweepAxis(AXIS, tuple(i * 1e-6 / 100 for i in range(101)))],
            benchmarks=bench,
            keys=("baseline", "rr", "cc"),
            machine=MachineSpec.coerce("t3d", nprocs=16),
            overrides={"prim.*.knee_bytes": 32},
            config_overrides=config,
            cache_dir=tmp_path / "dense",
            jobs=2,
        )
        dense_cross = detect_crossovers(dense)
        for rc in refined.crossovers:
            matches = [
                dc
                for dc in dense_cross
                if (dc.benchmark, dc.experiment, dc.reference)
                == (rc.benchmark, rc.experiment, rc.reference)
                and dc.x_low - tol <= rc.x_estimate <= dc.x_high + tol
            ]
            assert matches, (
                f"refined crossover {rc} not bracketed by dense grid"
            )
