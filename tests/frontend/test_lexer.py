"""Unit tests for the ZL lexer."""

import pytest

from repro.errors import LexError
from repro.frontend.lexer import tokenize
from repro.frontend.tokens import TokenKind


def kinds(text):
    return [t.kind for t in tokenize(text)]


def values(text):
    return [t.value for t in tokenize(text)[:-1]]


class TestBasics:
    def test_empty_input_yields_eof(self):
        toks = tokenize("")
        assert len(toks) == 1
        assert toks[0].kind is TokenKind.EOF

    def test_whitespace_only(self):
        assert kinds("  \t\n  ") == [TokenKind.EOF]

    def test_identifier(self):
        toks = tokenize("Xy_3")
        assert toks[0].kind is TokenKind.IDENT
        assert toks[0].value == "Xy_3"

    def test_keywords_case_insensitive(self):
        assert kinds("PROGRAM Begin end")[:3] == [
            TokenKind.PROGRAM,
            TokenKind.BEGIN,
            TokenKind.END,
        ]

    def test_keyword_prefix_is_identifier(self):
        toks = tokenize("beginner")
        assert toks[0].kind is TokenKind.IDENT


class TestNumbers:
    def test_integer(self):
        toks = tokenize("1234")
        assert toks[0].kind is TokenKind.INTLIT
        assert toks[0].value == 1234

    def test_float(self):
        toks = tokenize("3.25")
        assert toks[0].kind is TokenKind.FLOATLIT
        assert toks[0].value == 3.25

    def test_float_with_exponent(self):
        assert tokenize("1.5e-3")[0].value == 1.5e-3
        assert tokenize("2E4")[0].value == 2e4

    def test_range_not_decimal(self):
        # "1..n" must lex as INT DOTDOT IDENT, not a malformed float
        assert kinds("1..n")[:3] == [
            TokenKind.INTLIT,
            TokenKind.DOTDOT,
            TokenKind.IDENT,
        ]

    def test_leading_dot_float(self):
        toks = tokenize(".5")
        assert toks[0].kind is TokenKind.FLOATLIT
        assert toks[0].value == 0.5


class TestOperators:
    @pytest.mark.parametrize(
        "text,kind",
        [
            (":=", TokenKind.ASSIGN),
            ("..", TokenKind.DOTDOT),
            ("<<", TokenKind.REDUCE),
            ("<=", TokenKind.LE),
            (">=", TokenKind.GE),
            ("!=", TokenKind.NE),
            ("<", TokenKind.LT),
            (">", TokenKind.GT),
            ("=", TokenKind.EQ),
            ("@", TokenKind.AT),
            ("+", TokenKind.PLUS),
            ("-", TokenKind.MINUS),
            ("*", TokenKind.STAR),
            ("/", TokenKind.SLASH),
            ("^", TokenKind.CARET),
            (";", TokenKind.SEMI),
            (":", TokenKind.COLON),
            (",", TokenKind.COMMA),
            ("(", TokenKind.LPAREN),
            (")", TokenKind.RPAREN),
            ("[", TokenKind.LBRACKET),
            ("]", TokenKind.RBRACKET),
        ],
    )
    def test_single_operator(self, text, kind):
        assert kinds(text)[0] is kind

    def test_shift_expression(self):
        assert kinds("A@east")[:3] == [
            TokenKind.IDENT,
            TokenKind.AT,
            TokenKind.IDENT,
        ]

    def test_reduce_expression(self):
        ks = kinds("max<< abs(x)")
        assert ks[0] is TokenKind.IDENT
        assert ks[1] is TokenKind.REDUCE

    def test_unknown_character_raises_with_location(self):
        with pytest.raises(LexError) as exc:
            tokenize("a $ b", filename="f.zl")
        assert "f.zl:1:3" in str(exc.value)


class TestComments:
    def test_line_comment(self):
        assert kinds("a -- comment here\nb") == [
            TokenKind.IDENT,
            TokenKind.IDENT,
            TokenKind.EOF,
        ]

    def test_block_comment(self):
        assert kinds("a /* ignore\nme */ b") == [
            TokenKind.IDENT,
            TokenKind.IDENT,
            TokenKind.EOF,
        ]

    def test_unterminated_block_comment(self):
        with pytest.raises(LexError):
            tokenize("a /* never closed")

    def test_minus_minus_is_comment_not_two_minus(self):
        assert kinds("a--b\nc") == [TokenKind.IDENT, TokenKind.IDENT, TokenKind.EOF]


class TestLocations:
    def test_line_and_column_tracking(self):
        toks = tokenize("ab\n  cd")
        assert (toks[0].location.line, toks[0].location.column) == (1, 1)
        assert (toks[1].location.line, toks[1].location.column) == (2, 3)

    def test_filename_recorded(self):
        toks = tokenize("x", filename="prog.zl")
        assert toks[0].location.filename == "prog.zl"
