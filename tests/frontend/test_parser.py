"""Unit tests for the ZL parser."""

import pytest

from repro.errors import ParseError
from repro.frontend import ast, parse


def parse_expr(text):
    """Parse an expression by embedding it in a scalar assignment."""
    prog = parse(
        f"program p; var x : double; procedure main(); begin x := {text}; end;"
    )
    stmt = prog.procedures["main"].body[0]
    assert isinstance(stmt, ast.Assign)
    return stmt.value


def parse_stmts(text):
    prog = parse(f"program p; procedure main(); begin {text} end;")
    return prog.procedures["main"].body


MINIMAL = "program p; procedure main(); begin end;"


class TestProgramStructure:
    def test_minimal_program(self):
        prog = parse(MINIMAL)
        assert prog.name == "p"
        assert prog.procedures["main"].body == []

    def test_missing_main_rejected(self):
        with pytest.raises(ParseError, match="main"):
            parse("program p; procedure other(); begin end;")

    def test_duplicate_procedure_rejected(self):
        with pytest.raises(ParseError, match="duplicate"):
            parse(
                "program p; procedure main(); begin end; "
                "procedure main(); begin end;"
            )

    def test_declarations_collected(self):
        prog = parse(
            """
            program p;
            config n : integer = 4;
            region R = [1..n];
            direction up = [-1];
            var A : [R] double;
            var s : double;
            procedure main(); begin end;
            """
        )
        assert [c.name for c in prog.configs] == ["n"]
        assert [r.name for r in prog.regions] == ["R"]
        assert [d.name for d in prog.directions] == ["up"]
        assert len(prog.variables) == 2

    def test_garbage_after_declarations(self):
        with pytest.raises(ParseError):
            parse(MINIMAL + " 42")


class TestDeclarations:
    def test_region_multi_dim(self):
        prog = parse(
            "program p; region R = [1..4, 0..n-1, 2..2]; "
            "procedure main(); begin end;"
        )
        assert len(prog.regions[0].ranges) == 3

    def test_direction_negative_offsets(self):
        prog = parse(
            "program p; direction nw = [-1, -1]; procedure main(); begin end;"
        )
        assert prog.directions[0].offsets == [-1, -1]

    def test_direction_positive_sign_allowed(self):
        prog = parse(
            "program p; direction se = [+1, +1]; procedure main(); begin end;"
        )
        assert prog.directions[0].offsets == [1, 1]

    def test_var_list_with_region(self):
        prog = parse(
            "program p; region R = [1..4]; var A, B, C : [R] double; "
            "procedure main(); begin end;"
        )
        decl = prog.variables[0]
        assert decl.names == ["A", "B", "C"]
        assert decl.region == "R"

    def test_scalar_var_without_region(self):
        prog = parse("program p; var s, t : integer; procedure main(); begin end;")
        assert prog.variables[0].region is None

    def test_config_with_default(self):
        prog = parse(
            "program p; config n : integer = 2 * 8; procedure main(); begin end;"
        )
        assert isinstance(prog.configs[0].default, ast.BinOp)


class TestStatements:
    def test_assignment(self):
        (stmt,) = parse_stmts("x := 1;")
        assert isinstance(stmt, ast.Assign)
        assert stmt.target == "x"

    def test_region_scoped_statement(self):
        (stmt,) = parse_stmts("[R] x := 1;")
        assert isinstance(stmt, ast.RegionScope)
        assert stmt.region == "R"
        assert isinstance(stmt.body[0], ast.Assign)

    def test_region_scoped_block(self):
        (stmt,) = parse_stmts("[R] begin x := 1; y := 2; end;")
        assert isinstance(stmt, ast.RegionScope)
        assert len(stmt.body) == 2

    def test_for_loop(self):
        (stmt,) = parse_stmts("for i := 1 to 10 do x := i; end;")
        assert isinstance(stmt, ast.For)
        assert stmt.var == "i"
        assert stmt.step is None

    def test_for_loop_with_step(self):
        (stmt,) = parse_stmts("for i := 10 to 1 by -1 do x := i; end;")
        assert isinstance(stmt.step, ast.UnOp)

    def test_repeat_until(self):
        (stmt,) = parse_stmts("repeat x := x + 1; until x > 4;")
        assert isinstance(stmt, ast.Repeat)
        assert isinstance(stmt.cond, ast.BinOp)

    def test_if_then_end(self):
        (stmt,) = parse_stmts("if x > 0 then y := 1; end;")
        assert isinstance(stmt, ast.If)
        assert len(stmt.arms) == 1
        assert stmt.orelse == []

    def test_if_elsif_else(self):
        (stmt,) = parse_stmts(
            "if a then x := 1; elsif b then x := 2; else x := 3; end;"
        )
        assert len(stmt.arms) == 2
        assert len(stmt.orelse) == 1

    def test_procedure_call(self):
        (stmt,) = parse_stmts("init();")
        assert isinstance(stmt, ast.CallStmt)
        assert stmt.proc == "init"

    def test_missing_semicolon(self):
        with pytest.raises(ParseError):
            parse_stmts("x := 1")


class TestExpressions:
    def test_precedence_mul_over_add(self):
        e = parse_expr("1 + 2 * 3")
        assert isinstance(e, ast.BinOp) and e.op == "+"
        assert isinstance(e.rhs, ast.BinOp) and e.rhs.op == "*"

    def test_parentheses_override(self):
        e = parse_expr("(1 + 2) * 3")
        assert e.op == "*"
        assert e.lhs.op == "+"

    def test_left_associativity(self):
        e = parse_expr("1 - 2 - 3")
        assert e.op == "-"
        assert isinstance(e.lhs, ast.BinOp) and e.lhs.op == "-"

    def test_unary_minus(self):
        e = parse_expr("-a * b")
        assert e.op == "*"
        assert isinstance(e.lhs, ast.UnOp)

    def test_power_right_associative(self):
        e = parse_expr("a ^ b ^ c")
        assert e.op == "^"
        assert isinstance(e.rhs, ast.BinOp) and e.rhs.op == "^"

    def test_relational(self):
        e = parse_expr("a + 1 <= b")
        assert e.op == "<="

    def test_boolean_connectives(self):
        e = parse_expr("a > 0 and not (b < 0) or c = 1")
        assert e.op == "or"
        assert e.lhs.op == "and"

    def test_shift_reference(self):
        e = parse_expr("A@east")
        assert isinstance(e, ast.ShiftRef)
        assert (e.array, e.direction) == ("A", "east")

    def test_intrinsic_call(self):
        e = parse_expr("max(a, b)")
        assert isinstance(e, ast.Call)
        assert len(e.args) == 2

    def test_reduce_plus(self):
        e = parse_expr("+<< A")
        assert isinstance(e, ast.Reduce)
        assert e.op == "+"

    def test_reduce_max_with_operand(self):
        e = parse_expr("max<< abs(A@east - A)")
        assert isinstance(e, ast.Reduce)
        assert e.op == "max"
        assert isinstance(e.operand, ast.Call)

    def test_reduce_inside_arithmetic(self):
        e = parse_expr("0.5 * (+<< A)")
        assert e.op == "*"
        assert isinstance(e.rhs, ast.Reduce)

    def test_literals(self):
        assert isinstance(parse_expr("true"), ast.BoolLit)
        assert isinstance(parse_expr("3"), ast.IntLit)
        assert isinstance(parse_expr("3.5"), ast.FloatLit)

    def test_error_reports_location(self):
        with pytest.raises(ParseError) as exc:
            parse_expr("1 + ;")
        assert exc.value.location is not None
