"""Boundary regressions from the generator fuzz campaign.

The differential fuzz campaign over the seeded program generator (120
seeds x 6 profiles, plus edge profiles on non-square processor grids)
surfaced no front-end or optimizer crashes.  What it *did* establish is
a set of boundary behaviors the generator's validity argument leans on;
these minimized cases pin them so a front-end change that breaks one
fails here with an obvious reproduction, not as a fuzz flake:

* config overrides can shrink ``n`` below the generated interior
  margin — that must surface as a clean :class:`SemanticError` (an
  empty-region diagnostic carrying the source position), never a
  traceback from deeper layers;
* the margin rule ``interior = [1+m .. n-m]`` admits exactly the
  single-point interior at ``n = 2m + 1`` — the smallest ``n`` that
  must still compile and simulate;
* generated loop variables come from a reserved ``i<N>`` pool, so a
  declared scalar of the same shape must still be rejected as
  shadowing when a user writes the collision by hand.
"""

import pytest

from repro import OptimizationConfig, SimOptions, compile_program, simulate, t3d
from repro.errors import SemanticError
from repro.programs.generate import generate_program, generate_source


@pytest.mark.parametrize("n", [4, 3, 2, 1, 0, -1])
def test_config_shrunk_below_margin_is_a_clean_semantic_error(n):
    """Overriding n under the generated margin (e.g. ``repro compose
    --bench gen_0 --config n=4``) must diagnose the empty region, with
    position info, instead of crashing in lowering or the runtime."""
    with pytest.raises(SemanticError, match="empty"):
        generate_program(0, config={"n": n})


def test_single_point_interior_still_runs():
    """n = 2 * margin + 1 leaves a one-cell interior — the boundary the
    empty-region check must not reject (default profile: margin 2)."""
    program = generate_program(0, config={"n": 5, "niters": 1})
    result = simulate(program, t3d(4, "pvm"), options=SimOptions.timing())
    assert result.time > 0


def test_generated_loop_var_pool_cannot_shadow():
    """The generator draws loop variables from a reserved ``i<N>`` pool;
    the semantic checker is what makes that reservation sound."""
    source = generate_source(0)
    assert "var i1" not in source
    clash = source.replace(
        "var s0, s1, c0, c1, chk : double;",
        "var s0, s1, c0, c1, chk, i1 : double;",
    )
    with pytest.raises(SemanticError, match="shadow"):
        compile_program(clash, "clash.zl", opt=OptimizationConfig.baseline())
