"""Unit tests for semantic analysis."""

import pytest

from repro.errors import SemanticError
from repro.frontend import analyze, parse


def check(source, config=None):
    return analyze(parse(source), config)


def expect_error(source, match, config=None):
    with pytest.raises(SemanticError, match=match):
        check(source, config)


PREAMBLE = """
program p;
config n : integer = 8;
region R  = [1..n, 1..n];
region In = [2..n-1, 2..n-1];
direction east = [0, 1];
direction west = [0, -1];
var A, B : [R] double;
var s : double;
"""


def prog(body, decls=""):
    return PREAMBLE + decls + f" procedure main(); begin {body} end;"


class TestConfigs:
    def test_default_used(self):
        info = check(prog("[R] A := 0.0;"))
        assert info.config_values["n"] == 8

    def test_override_applies_to_regions(self):
        info = check(prog("[R] A := 0.0;"), {"n": 32})
        assert info.region("R").shape == (32, 32)

    def test_override_unknown_name_rejected(self):
        expect_error(prog("[R] A := 0.0;"), "undeclared", {"m": 4})

    def test_config_depends_on_earlier_config(self):
        src = """
        program p;
        config n : integer = 4;
        config m : integer = n * 2;
        region R = [1..m];
        var A : [R] double;
        procedure main(); begin [R] A := 1.0; end;
        """
        info = check(src)
        assert info.config_values["m"] == 8

    def test_non_integer_config_value_rejected(self):
        src = "program p; config n : integer = 2.5; procedure main(); begin end;"
        expect_error(src, "integer")

    def test_assignment_to_config_rejected(self):
        expect_error(prog("n := 9;"), "config")


class TestRegionsAndDirections:
    def test_empty_region_rejected(self):
        src = "program p; region R = [5..2]; procedure main(); begin end;"
        expect_error(src, "empty")

    def test_zero_direction_rejected(self):
        src = "program p; direction z = [0, 0]; procedure main(); begin end;"
        expect_error(src, "zero")

    def test_region_bounds_must_be_constant(self):
        src = (
            "program p; var s : double; region R = [1..s];"
            " procedure main(); begin end;"
        )
        expect_error(src, "constant|config")

    def test_duplicate_names_across_namespaces(self):
        src = (
            "program p; region R = [1..4]; direction R = [1];"
            " procedure main(); begin end;"
        )
        expect_error(src, "duplicate")


class TestArrayStatements:
    def test_array_statement_requires_region_scope(self):
        expect_error(prog("A := 0.0;"), "region scope")

    def test_scope_must_fit_array_domain(self):
        decls = "region Big = [0..n+1, 0..n+1];"
        expect_error(prog("[Big] A := 0.0;", decls), "not contained")

    def test_shift_escaping_domain_rejected(self):
        # reading A@east over all of R touches column n+1
        expect_error(prog("[R] B := A@east;"), "outside the array's domain")

    def test_shift_within_domain_accepted(self):
        check(prog("[In] B := A@east;"))

    def test_rank_mismatch_between_scope_and_array(self):
        decls = "region L = [1..n]; var V : [L] double;"
        expect_error(prog("[R] V := 0.0;", decls), "rank")

    def test_direction_rank_must_match_array(self):
        decls = "direction up3 = [1, 0, 0];"
        expect_error(prog("[In] B := A@up3;", decls), "rank")

    def test_undeclared_direction(self):
        expect_error(prog("[In] B := A@nowhere;"), "undeclared direction")

    def test_undeclared_array_in_shift(self):
        expect_error(prog("[In] B := Z@east;"), "undeclared array")

    def test_index_builtin_rank_checked(self):
        decls = "region L = [1..n]; var V : [L] double;"
        expect_error(prog("[L] V := index2;", decls), "rank-1")

    def test_index_builtin_accepted(self):
        check(prog("[R] A := index1 + index2;"))

    def test_reduce_inside_array_statement_rejected(self):
        expect_error(prog("[R] A := +<< B;"), "reductions are not allowed")


class TestScalarStatements:
    def test_array_in_scalar_context_rejected(self):
        expect_error(prog("s := A;"), "scalar context")

    def test_shift_in_scalar_context_rejected(self):
        expect_error(prog("s := A@east;"), "scalar context|shifted")

    def test_reduce_needs_region_scope(self):
        expect_error(prog("s := +<< A;"), "region scope")

    def test_reduce_with_scope_accepted(self):
        check(prog("[R] s := +<< A;"))

    def test_reduce_operand_with_shift_accepted(self):
        check(prog("[In] s := max<< abs(A@east - A);"))

    def test_assignment_to_region_rejected(self):
        expect_error(prog("R := 1.0;"), "cannot assign")

    def test_unknown_function_rejected(self):
        expect_error(prog("s := frobnicate(1.0);"), "unknown function")

    def test_wrong_arity_rejected(self):
        expect_error(prog("s := sqrt(1.0, 2.0);"), "arguments")


class TestProceduresAndLoops:
    def test_recursion_rejected(self):
        src = (
            "program p; procedure main(); begin other(); end; "
            "procedure other(); begin main(); end;"
        )
        expect_error(src, "recursive")

    def test_call_to_undeclared_procedure(self):
        expect_error(prog("nothere();"), "undeclared procedure")

    def test_loop_variable_usable_in_body(self):
        check(prog("for i := 1 to 4 do s := i * 2.0; end;"))

    def test_loop_variable_shadowing_rejected(self):
        expect_error(prog("for s := 1 to 4 do A := 0.0; end;"), "shadows")

    def test_nested_loop_same_variable_rejected(self):
        expect_error(
            prog("for i := 1 to 2 do for i := 1 to 2 do s := 1.0; end; end;"),
            "shadows",
        )

    def test_loop_variable_out_of_scope_after_loop(self):
        expect_error(
            prog("for i := 1 to 2 do s := 1.0; end; s := i;"), "undeclared"
        )


class TestFluffWidths:
    def test_fluff_tracks_max_offset(self):
        src = PREAMBLE + (
            "direction far = [0, 2]; region In2 = [1..n, 1..n-2]; "
            "procedure main(); begin "
            "[In] B := A@east; "
            "[In2] B := A@far; end;"
        )
        info = check(src)
        assert info.fluff_widths["A"] == (0, 2)
        assert info.fluff_widths["B"] == (0, 0)

    def test_shift_uses_recorded_unique(self):
        info = check(prog("[In] B := A@east + A@east - A@west;"))
        assert ("A", "east") in info.shift_uses
        assert info.shift_uses.count(("A", "east")) == 1
