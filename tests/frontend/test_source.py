"""Unit tests for source bookkeeping."""

from repro.frontend.source import SourceFile, SourceLocation, UNKNOWN_LOCATION


def test_location_renders_file_line_col():
    loc = SourceLocation("prog.zl", 3, 7)
    assert str(loc) == "prog.zl:3:7"


def test_unknown_location_is_harmless():
    assert UNKNOWN_LOCATION.line == 0


def test_line_text():
    src = SourceFile("first\nsecond\nthird", "f.zl")
    assert src.line_text(2) == "second"
    assert src.line_text(99) == ""
    assert src.line_text(0) == ""


def test_snippet_has_caret_at_column():
    src = SourceFile("abcdef", "f.zl")
    snippet = src.snippet(src.location(1, 3))
    line, caret = snippet.splitlines()
    assert line == "abcdef"
    assert caret.index("^") == 2


def test_location_factory_uses_filename():
    src = SourceFile("x", "name.zl")
    assert src.location(1, 1).filename == "name.zl"
