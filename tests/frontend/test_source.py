"""Unit tests for source bookkeeping."""

import pytest

from repro.frontend.source import (
    SourceFile,
    SourceLocation,
    UNKNOWN_LOCATION,
    parse_config_assignments,
    parse_config_value,
)


def test_location_renders_file_line_col():
    loc = SourceLocation("prog.zl", 3, 7)
    assert str(loc) == "prog.zl:3:7"


def test_unknown_location_is_harmless():
    assert UNKNOWN_LOCATION.line == 0


def test_line_text():
    src = SourceFile("first\nsecond\nthird", "f.zl")
    assert src.line_text(2) == "second"
    assert src.line_text(99) == ""
    assert src.line_text(0) == ""


def test_snippet_has_caret_at_column():
    src = SourceFile("abcdef", "f.zl")
    snippet = src.snippet(src.location(1, 3))
    line, caret = snippet.splitlines()
    assert line == "abcdef"
    assert caret.index("^") == 2


def test_location_factory_uses_filename():
    src = SourceFile("x", "name.zl")
    assert src.location(1, 1).filename == "name.zl"


# ---------------------------------------------------------------------------
# config-assignment parsing (shared by the CLI and run_study)
# ---------------------------------------------------------------------------


def test_parse_config_value_int_stays_int():
    assert parse_config_value("64") == 64
    assert isinstance(parse_config_value("64"), int)
    assert parse_config_value("-3") == -3


def test_parse_config_value_floats_and_scientific_notation():
    assert parse_config_value("0.5") == 0.5
    assert parse_config_value("1e-6") == 1e-6
    assert parse_config_value("2.5E3") == 2500.0
    assert parse_config_value("-1e2") == -100.0


def test_parse_config_value_rejects_garbage():
    with pytest.raises(ValueError, match="bad config value"):
        parse_config_value("sixty-four")


def test_parse_config_assignments():
    assert parse_config_assignments(["n=16", "eps=1e-6"]) == {
        "n": 16,
        "eps": 1e-6,
    }
    assert parse_config_assignments(None) == {}
    assert parse_config_assignments(["n = 8"]) == {"n": 8}


def test_parse_config_assignments_rejects_bad_pairs():
    with pytest.raises(ValueError, match="name=value"):
        parse_config_assignments(["n:4"])
    with pytest.raises(ValueError, match="name=value"):
        parse_config_assignments(["=4"])
