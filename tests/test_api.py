"""Tests of the top-level public API (the README quickstart contract)."""

import pytest

import repro


def test_all_exports_resolve():
    for name in repro.__all__:
        assert hasattr(repro, name), name


def test_quickstart_from_module_docstring():
    source = """
    program demo;
    config n : integer = 16;
    region R  = [1..n, 1..n];
    region In = [2..n-1, 2..n-1];
    direction east = [0, 1];  direction west = [0, -1];
    var A, B : [R] double;
    procedure main();
    begin
      [R] A := index1 + index2;
      [In] B := 0.5 * (A@east + A@west);
    end;
    """
    program = repro.compile_program(
        source, opt=repro.OptimizationConfig.full()
    )
    result = repro.simulate(program, repro.t3d(16))
    assert result.dynamic_comm_count == 2


def test_compile_program_default_name():
    program = repro.compile_program(
        "program p; procedure main(); begin end;"
    )
    assert program.name == "p"


def test_error_hierarchy():
    assert issubclass(repro.ParseError, repro.ReproError)
    assert issubclass(repro.SemanticError, repro.ReproError)
    assert issubclass(repro.RuntimeFault, repro.ReproError)

    with pytest.raises(repro.ReproError):
        repro.compile_program("program p; procedure main(); begin x := ; end;")


def test_version_string():
    assert repro.__version__.count(".") == 2
