"""The cache-backend contract, executed against every backend.

Each backend (dir, sqlite, http, null) must honor the same semantics:
fingerprint-addressed round trips, schema/fingerprint mismatches read
as misses, atomic ``put`` under concurrent writers (a reader sees an
old record, a new record, or a clean miss — never a torn document),
and ``stats``/``prune`` maintenance.  The concurrency tests hammer one
shared store from multiple *processes*, which is exactly how two engine
runs share a backend.
"""

import json
from concurrent.futures import ProcessPoolExecutor

import pytest

from repro.engine import (
    RECORD_SCHEMA,
    CacheBackend,
    CacheServer,
    DirCache,
    HttpCache,
    NullCache,
    SqliteCache,
    make_cache,
)
from repro.errors import ExperimentError

#: every storing backend; null joins for the protocol-shape tests only
STORES = ("dir", "sqlite", "http")

FP_A = "ab" * 32
FP_B = "cd" * 32


def _record(fingerprint, payload="x", size=1):
    return {
        "schema": RECORD_SCHEMA,
        "fingerprint": fingerprint,
        "payload": payload * size,
    }


@pytest.fixture(params=STORES)
def backend(request, tmp_path):
    """One of each storing backend over a fresh store; http serves a
    sqlite store from a background thread."""
    if request.param == "http":
        server = CacheServer(SqliteCache(tmp_path)).start()
        yield HttpCache(server.url)
        server.close()
    else:
        yield make_cache(True, tmp_path, backend=request.param)


# ---------------------------------------------------------------------------
# protocol shape and selection
# ---------------------------------------------------------------------------


def test_every_backend_satisfies_the_protocol(tmp_path):
    server = CacheServer(DirCache(tmp_path / "served")).start()
    try:
        for impl in (
            DirCache(tmp_path / "d"),
            SqliteCache(tmp_path / "s"),
            HttpCache(server.url),
            NullCache(),
        ):
            assert isinstance(impl, CacheBackend)
            assert impl.kind in ("dir", "sqlite", "http", "null")
            desc = impl.describe()
            assert set(desc) == {"backend", "location"}
            assert desc["backend"] == impl.kind
    finally:
        server.close()


def test_make_cache_selection(tmp_path, monkeypatch):
    monkeypatch.delenv("REPRO_CACHE_URL", raising=False)
    assert make_cache(False, tmp_path).kind == "null"
    assert make_cache(True, tmp_path).kind == "dir"
    assert make_cache(True, tmp_path, backend="sqlite").kind == "sqlite"
    assert make_cache(True, None, url="http://x:1").kind == "http"
    monkeypatch.setenv("REPRO_CACHE_URL", "http://env:1")
    implied = make_cache(True, tmp_path)
    assert implied.kind == "http" and implied.url == "http://env:1"
    with pytest.raises(ExperimentError, match="unknown cache backend"):
        make_cache(True, tmp_path, backend="redis")


def test_http_backend_requires_a_url(tmp_path, monkeypatch):
    monkeypatch.delenv("REPRO_CACHE_URL", raising=False)
    with pytest.raises(ExperimentError, match="URL"):
        make_cache(True, tmp_path, backend="http")


def test_null_backend_stores_nothing():
    null = NullCache()
    null.put(FP_A, _record(FP_A))
    assert null.get(FP_A) is None
    assert null.stats().entries == 0
    assert null.prune() == 0


# ---------------------------------------------------------------------------
# the storage contract, per backend
# ---------------------------------------------------------------------------


def test_roundtrip_and_overwrite(backend):
    assert backend.get(FP_A) is None
    record = _record(FP_A)
    backend.put(FP_A, record)
    assert backend.get(FP_A) == record
    replacement = _record(FP_A, payload="y")
    backend.put(FP_A, replacement)
    assert backend.get(FP_A) == replacement


def test_wrong_fingerprint_reads_as_miss(backend):
    backend.put(FP_B, _record(FP_A))  # filed under the wrong key
    assert backend.get(FP_B) is None


def test_other_schema_reads_as_miss(backend):
    backend.put(FP_A, dict(_record(FP_A), schema=RECORD_SCHEMA + 1))
    assert backend.get(FP_A) is None


def test_stats_census(backend):
    assert backend.stats().entries == 0
    backend.put(FP_A, _record(FP_A))
    backend.put(FP_B, dict(_record(FP_B), schema=RECORD_SCHEMA - 1))
    stats = backend.stats()
    assert stats.entries == 2
    assert stats.bytes > 0
    assert stats.schemas[RECORD_SCHEMA] == 1
    assert stats.schemas[RECORD_SCHEMA - 1] == 1
    assert stats.backend == backend.kind
    assert "2 entries" in stats.describe()


def test_prune_by_schema(backend):
    backend.put(FP_A, _record(FP_A))
    backend.put(FP_B, dict(_record(FP_B), schema=RECORD_SCHEMA - 1))
    assert backend.prune(schema=RECORD_SCHEMA - 1) == 1
    assert backend.stats().entries == 1
    assert backend.get(FP_A) is not None


def test_prune_by_age(backend):
    backend.put(FP_A, _record(FP_A))
    # a just-written record is younger than a day
    assert backend.prune(older_than=86400.0) == 0
    # and everything matches the no-filter prune
    assert backend.prune() == 1
    assert backend.stats().entries == 0


def test_http_unreachable_server_degrades_to_misses():
    # no listener on a fresh ephemeral-range port: reads miss, writes
    # are counted best-effort failures, stats come back empty
    dead = HttpCache("http://127.0.0.1:9", timeout=0.2)
    assert dead.get(FP_A) is None
    dead.put(FP_A, _record(FP_A))  # must not raise
    assert dead.stats().entries == 0
    assert dead.prune() == 0


# ---------------------------------------------------------------------------
# concurrent writers: two engine runs sharing one backend
# ---------------------------------------------------------------------------


def _open_backend(kind, location):
    if kind == "http":
        return HttpCache(location)
    return make_cache(True, location, backend=kind)


def _hammer_writer(kind, location, fingerprint, payload, rounds):
    """One writer process: repeatedly overwrite the shared fingerprint
    with a large single-payload record."""
    store = _open_backend(kind, location)
    record = _record(fingerprint, payload=payload, size=2000)
    for _ in range(rounds):
        store.put(fingerprint, record)
    return payload


def _hammer_reader(kind, location, fingerprint, rounds):
    """One reader process: every observed record must be exactly one
    writer's document — never a mixture, never a partial parse."""
    store = _open_backend(kind, location)
    seen = set()
    for _ in range(rounds):
        record = store.get(fingerprint)
        if record is None:
            continue  # a clean miss mid-write is within the contract
        payload = record["payload"]
        assert payload in ("a" * 2000, "b" * 2000), "torn record observed"
        assert record["schema"] == RECORD_SCHEMA
        seen.add(payload[0])
    return seen


@pytest.mark.parametrize("kind", STORES)
def test_concurrent_writers_never_tear_records(kind, tmp_path):
    server = None
    if kind == "http":
        server = CacheServer(SqliteCache(tmp_path)).start()
        location = server.url
    else:
        location = str(tmp_path)
    rounds = 150
    try:
        with ProcessPoolExecutor(max_workers=3) as pool:
            writers = [
                pool.submit(_hammer_writer, kind, location, FP_A, p, rounds)
                for p in ("a", "b")
            ]
            reader = pool.submit(_hammer_reader, kind, location, FP_A, rounds)
            for f in writers:
                f.result(timeout=120)
            reader.result(timeout=120)  # raises on any torn observation
        final = _open_backend(kind, location).get(FP_A)
        assert final is not None
        assert final["payload"] in ("a" * 2000, "b" * 2000)
    finally:
        if server is not None:
            server.close()


def _study_through(kind, location, cache_dir):
    from repro import run_study
    from repro.programs import small_config

    return run_study(
        benchmarks=("swm",),
        keys=("baseline",),
        nprocs=16,
        config_overrides={"swm": small_config("swm")},
        cache_dir=cache_dir,
        cache_backend=kind,
        cache_url=location if kind == "http" else None,
    )


@pytest.mark.parametrize("kind", ("sqlite", "http"))
def test_two_engine_runs_share_one_backend(kind, tmp_path):
    """The second engine run over a shared store is served entirely from
    the first run's records, for the multi-writer backends."""
    server = None
    if kind == "http":
        server = CacheServer(SqliteCache(tmp_path / "store")).start()
        location = server.url
    else:
        location = None
    try:
        cold = _study_through(kind, location, tmp_path / "store")
        warm = _study_through(kind, location, tmp_path / "store")
    finally:
        if server is not None:
            server.close()
    assert cold.cache_hits == 0
    assert warm.cache_hits == len(warm.outcomes) == 1
    assert dict(warm.results) == dict(cold.results)
    assert warm.cache_info["backend"] == kind


def test_backend_parity_with_dircache(tmp_path):
    """A study through sqlite produces records byte-identical to the
    DirCache study (fingerprints and result payloads untouched by the
    storage layer)."""
    through_dir = _study_through("dir", None, tmp_path / "d")
    through_sql = _study_through("sqlite", None, tmp_path / "s")
    strip = lambda r: {  # noqa: E731 - the volatile, host-local fields
        k: v
        for k, v in r.items()
        if k not in ("timings", "started_at", "worker_pid", "compile_cache")
    }
    assert [strip(r) for r in through_dir.telemetry] == [
        strip(r) for r in through_sql.telemetry
    ]


def test_telemetry_envelope_carries_backend_attribution(tmp_path):
    out = tmp_path / "telemetry.json"
    study = _study_through("sqlite", None, tmp_path / "store")
    study.write_telemetry(out)
    doc = json.loads(out.read_text())
    assert doc["cache"]["backend"] == "sqlite"
    assert doc["cache"]["location"].endswith("cache.sqlite")
