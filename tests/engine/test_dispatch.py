"""The dispatch layer: local/sharded parity, work stealing, fault
tolerance.

The sharded dispatcher must be invisible in the results — byte-identical
records, same fingerprints, same cache — while surviving per-job
failures (retry with backoff) and dead workers (the shard falls back to
the coordinator).  :class:`FaultSpec` makes both recovery paths
deterministic: ``action="raise"`` poisons a cell's first attempts,
``action="exit"`` kills the pool worker outright.
"""

import pytest

from repro import run_study
from repro.engine import (
    ExperimentEngine,
    FaultSpec,
    LocalDispatcher,
    MachineSpec,
    ShardedDispatcher,
    build_matrix,
    make_dispatcher,
)
from repro.errors import ExperimentError
from repro.obs import MemorySink, recording
from repro.obs import core as obs
from repro.programs import small_config

SWM_SMALL = small_config("swm")


def _matrix(keys=("baseline", "cc")):
    return build_matrix(
        ["swm"],
        keys=keys,
        machine=MachineSpec(nprocs=16),
        config_overrides={"swm": SWM_SMALL},
    )


def _strip(record):
    """Drop the volatile host-local fields; everything else must be
    byte-identical across dispatchers."""
    return {
        k: v
        for k, v in record.items()
        if k not in ("timings", "started_at", "worker_pid", "compile_cache")
    }


# ---------------------------------------------------------------------------
# coercion
# ---------------------------------------------------------------------------


def test_make_dispatcher_coercion():
    assert make_dispatcher(None, 2).kind == "local"
    assert make_dispatcher("local", None).kind == "local"
    assert make_dispatcher("sharded", 4).kind == "sharded"
    ready = ShardedDispatcher(workers=2, shards=3)
    assert make_dispatcher(ready, None) is ready
    with pytest.raises(ExperimentError, match="unknown dispatcher"):
        make_dispatcher("slurm", None)
    with pytest.raises(ExperimentError, match="Dispatcher"):
        make_dispatcher(42, None)


def test_dispatcher_rejects_bad_shape():
    with pytest.raises(ExperimentError, match="workers"):
        ShardedDispatcher(workers=0)
    with pytest.raises(ExperimentError, match="shards"):
        ShardedDispatcher(shards=0)
    with pytest.raises(ExperimentError, match="max_retries"):
        ShardedDispatcher(max_retries=-1)
    with pytest.raises(ExperimentError, match="workers"):
        LocalDispatcher(workers=0)


def test_shards_are_contiguous_and_capped():
    jobs = _matrix(keys=("baseline", "cc", "pl"))
    d = ShardedDispatcher(workers=2, shards=2)
    shards = d._split(jobs)
    assert [len(s) for s in shards] == [2, 1]
    assert [i for shard in shards for i, _ in shard] == [0, 1, 2]
    # shard count never exceeds the job count
    assert len(ShardedDispatcher(shards=64)._split(jobs)) == 3


# ---------------------------------------------------------------------------
# parity: sharded results are indistinguishable from local ones
# ---------------------------------------------------------------------------


def test_sharded_matches_local_byte_for_byte():
    jobs = _matrix()
    local = LocalDispatcher().dispatch(jobs)
    sharded = ShardedDispatcher(workers=1, shards=2, backoff=0).dispatch(jobs)
    assert [_strip(r) for r in local] == [_strip(r) for r in sharded]
    assert [r["fingerprint"] for r in sharded] == [
        j.fingerprint() for j in jobs
    ]


def test_sharded_pool_matches_local_byte_for_byte():
    jobs = _matrix(keys=("baseline", "cc", "pl"))
    local = LocalDispatcher().dispatch(jobs)
    sharded = ShardedDispatcher(workers=2, shards=3, backoff=0).dispatch(jobs)
    assert [_strip(r) for r in local] == [_strip(r) for r in sharded]


def test_study_through_sharded_dispatcher(tmp_path):
    local = run_study(
        benchmarks=("swm",), keys=("baseline", "cc"), nprocs=16,
        config_overrides={"swm": SWM_SMALL}, cache_dir=tmp_path / "a",
    )
    sharded = run_study(
        benchmarks=("swm",), keys=("baseline", "cc"), nprocs=16,
        config_overrides={"swm": SWM_SMALL}, cache_dir=tmp_path / "b",
        dispatcher="sharded",
    )
    assert dict(local.results) == dict(sharded.results)
    # and a sharded run warms the cache for a local one
    warm = run_study(
        benchmarks=("swm",), keys=("baseline", "cc"), nprocs=16,
        config_overrides={"swm": SWM_SMALL}, cache_dir=tmp_path / "b",
    )
    assert warm.cache_hits == 2


def test_empty_dispatch():
    assert LocalDispatcher().dispatch([]) == []
    assert ShardedDispatcher().dispatch([]) == []


# ---------------------------------------------------------------------------
# fault tolerance
# ---------------------------------------------------------------------------


def test_injected_fault_is_retried_and_counted():
    jobs = _matrix(keys=("baseline",))
    d = ShardedDispatcher(
        workers=1,
        backoff=0,
        faults=[FaultSpec(benchmark="swm", experiment="baseline", times=2)],
    )
    with recording(MemorySink()):
        records = d.dispatch(jobs)
        counters = obs.counters()
    assert records[0]["fingerprint"] == jobs[0].fingerprint()
    assert counters["engine.dispatch.retries"] == 2
    assert "engine.dispatch.failures" not in counters


def test_retries_exhausted_raises_naming_the_cell():
    jobs = _matrix(keys=("baseline",))
    d = ShardedDispatcher(
        workers=1, backoff=0, max_retries=1, faults=[FaultSpec(times=99)]
    )
    with recording(MemorySink()):
        with pytest.raises(
            ExperimentError, match=r"injected fault for \(swm, baseline"
        ):
            d.dispatch(jobs)
        counters = obs.counters()
    assert counters["engine.dispatch.failures"] == 1


def test_dead_worker_shard_is_retried_in_the_coordinator():
    """``action="exit"`` kills a pool worker mid-shard (a dead host);
    the coordinator must re-run that shard's jobs and still return a
    complete, correct record list."""
    jobs = _matrix()
    d = ShardedDispatcher(
        workers=2,
        shards=2,
        backoff=0,
        faults=[
            FaultSpec(benchmark="swm", experiment="cc", times=1, action="exit")
        ],
    )
    with recording(MemorySink()):
        records = d.dispatch(jobs)
        counters = obs.counters()
    assert counters["engine.dispatch.dead_shards"] >= 1
    assert counters["engine.dispatch.retries"] >= 1
    clean = LocalDispatcher().dispatch(jobs)
    assert [_strip(r) for r in records] == [_strip(r) for r in clean]


def test_exit_fault_degrades_to_raise_when_serial():
    """Outside a pool worker the exit action must not kill the test
    process — it raises instead, then the retry succeeds."""
    jobs = _matrix(keys=("baseline",))
    d = ShardedDispatcher(
        workers=1, backoff=0, faults=[FaultSpec(times=1, action="exit")]
    )
    records = d.dispatch(jobs)
    assert records[0]["benchmark"] == "swm"


def test_fault_spec_matching():
    job = _matrix(keys=("baseline",))[0]
    assert FaultSpec().matches(job)
    assert FaultSpec(benchmark="swm").matches(job)
    assert not FaultSpec(benchmark="sp").matches(job)
    assert not FaultSpec(experiment="cc").matches(job)


# ---------------------------------------------------------------------------
# distributed observability: worker capture, job events, counter parity
# ---------------------------------------------------------------------------


def test_pool_worker_spans_are_stitched_into_the_coordinator_trace():
    jobs = _matrix(keys=("baseline", "cc", "pl"))
    sink = MemorySink()
    with recording(sink) as rec:
        records = ShardedDispatcher(workers=2, shards=3, backoff=0).dispatch(
            jobs
        )
    # the worker capture payload is popped before records reach anyone
    assert all("obs" not in r for r in records)
    worker_spans = [
        r
        for r in sink.records
        if r["type"] == "span" and "worker_pid" in r
    ]
    assert worker_spans, "worker-side spans must ship back to the coordinator"
    assert {r["trace"] for r in worker_spans} == {rec.trace_id}
    # every job runs under a worker-side "job" span (compile spans only
    # appear when the forked worker's compile cache is cold)
    assert {r["name"] for r in worker_spans} >= {"job"}
    assert sum(r["name"] == "job" for r in worker_spans) == len(jobs)
    # worker span ids are globally unique: no id collides across pids
    ids = [r["id"] for r in sink.records if r["type"] == "span"]
    assert len(ids) == len(set(ids))


def test_dispatch_emits_one_job_event_per_job():
    jobs = _matrix(keys=("baseline", "cc", "pl"))
    for dispatcher in (
        LocalDispatcher(),
        LocalDispatcher(workers=2),
        ShardedDispatcher(workers=2, shards=3, backoff=0),
    ):
        sink = MemorySink()
        with recording(sink):
            dispatcher.dispatch(jobs)
        events = [r for r in sink.records if r.get("name") == "engine.job"]
        assert len(events) == len(jobs), dispatcher.kind
        assert {e["attrs"]["status"] for e in events} == {"done"}
        assert {
            (e["attrs"]["benchmark"], e["attrs"]["experiment"]) for e in events
        } == {(j.benchmark, j.experiment) for j in jobs}


def test_retry_emits_retry_events_and_still_one_done():
    jobs = _matrix(keys=("baseline",))
    d = ShardedDispatcher(
        workers=1,
        backoff=0,
        faults=[FaultSpec(benchmark="swm", experiment="baseline", times=2)],
    )
    sink = MemorySink()
    with recording(sink):
        d.dispatch(jobs)
    retries = [r for r in sink.records if r.get("name") == "engine.job.retry"]
    done = [r for r in sink.records if r.get("name") == "engine.job"]
    assert len(retries) == 2
    assert {r["attrs"]["reason"] for r in retries} == {"error"}
    assert len(done) == 1 and done[0]["attrs"]["status"] == "done"


def test_worker_counters_merge_into_the_coordinator_registry():
    jobs = _matrix(keys=("baseline", "cc", "pl"))
    with recording(MemorySink()):
        LocalDispatcher().dispatch(jobs)
        inline = obs.counters()
    with recording(MemorySink()):
        ShardedDispatcher(workers=2, shards=3, backoff=0).dispatch(jobs)
        pooled = obs.counters()
    sim_inline = {k: v for k, v in inline.items() if k.startswith("sim.")}
    sim_pooled = {k: v for k, v in pooled.items() if k.startswith("sim.")}
    assert sim_inline and sim_inline == sim_pooled


def test_counter_parity_local_vs_sharded_on_the_paper_matrix():
    """The regression gate: the same simulator work happens (and is
    counted) no matter which dispatcher ran it, across the full paper
    matrix.  Only ``sim.*`` counters are comparable — compile-cache
    counters legitimately differ per worker process."""
    from repro.programs import BENCHMARKS

    cfg = {b: small_config(b) for b in BENCHMARKS}

    def sim_counters(**kw):
        with recording(MemorySink()):
            run_study(
                benchmarks=BENCHMARKS,
                nprocs=16,
                config_overrides=cfg,
                cache=False,
                **kw,
            )
            return {
                k: v for k, v in obs.counters().items() if k.startswith("sim.")
            }

    local = sim_counters()
    sharded = sim_counters(dispatcher="sharded", jobs=2)
    assert local and local == sharded


def test_dispatch_counters_flow_through_the_engine(tmp_path):
    engine = ExperimentEngine(
        cache_dir=tmp_path, dispatcher=ShardedDispatcher(workers=1, backoff=0)
    )
    with recording(MemorySink()):
        engine.run(_matrix())
        counters = obs.counters()
    assert counters["engine.dispatch.jobs"] == 2
    assert counters["engine.dispatch.shards"] >= 1
    assert counters["engine.result_cache.miss"] == 2
    assert counters["cache.backend.stores"] == 2
