"""Tests for the parallel cached experiment engine.

Setting ``REPRO_TEST_CACHE_BACKEND=sqlite`` (CI does) re-runs the suite
with studies stored through that backend instead of the directory
layout; dir-layout-specific tests skip themselves.
"""

import json
import os
import subprocess
import sys

import pytest

from repro import run_study
from repro.analysis.experiments import run_benchmark_suite
from repro.engine import (
    RECORD_SCHEMA,
    ExperimentEngine,
    Job,
    MachineSpec,
    ResultCache,
    build_matrix,
    clear_compile_cache,
    load_telemetry,
)
from repro.errors import ExperimentError
from repro.programs import small_config

SWM_SMALL = small_config("swm")

#: the backend the study-running tests store through (CI sweeps this)
TEST_BACKEND = os.environ.get("REPRO_TEST_CACHE_BACKEND") or None

dir_backend_only = pytest.mark.skipif(
    TEST_BACKEND not in (None, "dir"),
    reason="exercises the dir backend's on-disk layout",
)


def _study(cache_dir, **kwargs):
    kwargs.setdefault("benchmarks", ("swm",))
    kwargs.setdefault("keys", ("baseline", "cc"))
    kwargs.setdefault("nprocs", 16)
    kwargs.setdefault("config_overrides", {"swm": SWM_SMALL})
    kwargs.setdefault("cache_dir", cache_dir)
    kwargs.setdefault("cache_backend", TEST_BACKEND)
    return run_study(**kwargs)


# ---------------------------------------------------------------------------
# job model and fingerprints
# ---------------------------------------------------------------------------


def test_matrix_is_benchmark_major_key_ordered():
    jobs = build_matrix(["swm", "sp"], keys=("baseline", "cc"))
    assert [(j.benchmark, j.experiment) for j in jobs] == [
        ("swm", "baseline"),
        ("swm", "cc"),
        ("sp", "baseline"),
        ("sp", "cc"),
    ]


def test_fingerprint_is_stable_and_content_sensitive():
    job = Job.make("swm", "cc", config=SWM_SMALL, machine=MachineSpec(nprocs=16))
    assert job.fingerprint() == job.fingerprint()
    # every axis of the matrix moves the fingerprint
    assert job.fingerprint() != Job.make(
        "swm", "pl", config=SWM_SMALL, machine=MachineSpec(nprocs=16)
    ).fingerprint()
    assert job.fingerprint() != Job.make(
        "swm", "cc", config=SWM_SMALL, machine=MachineSpec(nprocs=64)
    ).fingerprint()
    assert job.fingerprint() != Job.make(
        "swm", "cc", config=dict(SWM_SMALL, nsteps=99), machine=MachineSpec(nprocs=16)
    ).fingerprint()


def test_pl_and_pl_shmem_share_a_compile_but_not_a_fingerprint():
    pl = Job.make("swm", "pl", machine=MachineSpec(nprocs=16))
    sh = Job.make("swm", "pl_shmem", machine=MachineSpec(nprocs=16))
    # different cells (library differs) ...
    assert pl.fingerprint() != sh.fingerprint()
    assert pl.effective_library() == "pvm"
    assert sh.effective_library() == "shmem"


def test_engine_rejects_bad_worker_count():
    with pytest.raises(ExperimentError, match="jobs"):
        ExperimentEngine(jobs=0)


def test_fingerprint_covers_the_pass_pipeline():
    # the resolved pipeline signature is a fingerprint axis: keys whose
    # configs differ only in combining heuristic hash differently
    pl = Job.make("swm", "pl_shmem", machine=MachineSpec(nprocs=16))
    ml = Job.make("swm", "pl_maxlat", machine=MachineSpec(nprocs=16))
    assert pl.fingerprint() != ml.fingerprint()


def test_engine_does_not_import_analysis():
    """The registry split means ``repro.engine`` stands alone: importing
    it must not drag in ``repro.analysis`` (the old deferred-import
    cycle)."""
    code = (
        "import sys; import repro.engine; "
        "bad = [m for m in sys.modules if m.startswith('repro.analysis')]; "
        "assert not bad, bad"
    )
    subprocess.run([sys.executable, "-c", code], check=True)


def test_source_sha_tracks_source_content(monkeypatch):
    """Redefining a benchmark's source inside one process must yield a
    fresh hash (the old per-name lru_cache served stale fingerprints)."""
    from repro.engine import jobs as jobs_mod

    monkeypatch.setattr(jobs_mod, "benchmark_source", lambda name: "v1")
    first = jobs_mod.source_sha("swm")
    monkeypatch.setattr(jobs_mod, "benchmark_source", lambda name: "v2")
    second = jobs_mod.source_sha("swm")
    assert first != second
    # and identical text still memoizes to the same hash
    assert second == jobs_mod.source_sha("swm")


# ---------------------------------------------------------------------------
# result cache
# ---------------------------------------------------------------------------


def test_cache_miss_then_hit(tmp_path):
    cold = _study(tmp_path)
    assert cold.cache_hits == 0
    assert all(not o.cached for o in cold.outcomes)

    warm = _study(tmp_path)
    assert warm.cache_hits == len(warm.outcomes) == 2
    assert all(o.record["cache_hit"] for o in warm.outcomes)
    # cached results reconstruct the exact ExperimentResult values
    assert dict(warm.results) == dict(cold.results)


def test_no_cache_never_writes(tmp_path):
    root = tmp_path / "cache"
    study = _study(root, cache=False)
    assert study.cache_hits == 0
    assert not root.exists()
    # and a second no-cache run recomputes rather than hitting anything
    again = _study(root, cache=False)
    assert again.cache_hits == 0


@dir_backend_only
def test_corrupt_cache_entry_is_a_miss(tmp_path):
    _study(tmp_path)
    entries = list(tmp_path.rglob("*.json"))
    assert len(entries) == 2
    entries[0].write_text("{ not json")
    entries[1].write_text(json.dumps({"schema": -1}))
    study = _study(tmp_path)
    assert study.cache_hits == 0
    assert len(study.outcomes) == 2


def test_cache_record_roundtrip(tmp_path):
    from repro.engine.cache import RECORD_SCHEMA

    cache = ResultCache(tmp_path)
    assert cache.get("ab" * 32) is None
    record = {"schema": RECORD_SCHEMA, "fingerprint": "ab" * 32, "x": 1.5}
    cache.put("ab" * 32, record)
    assert cache.get("ab" * 32) == record
    # a record filed under the wrong fingerprint is rejected
    cache.put("cd" * 32, record)
    assert cache.get("cd" * 32) is None


# ---------------------------------------------------------------------------
# parallel execution
# ---------------------------------------------------------------------------


def test_parallel_matches_serial(tmp_path):
    serial = _study(tmp_path / "a", cache=False)
    parallel = _study(tmp_path / "b", cache=False, jobs=2)
    assert dict(serial.results) == dict(parallel.results)


def test_parallel_populates_shared_cache(tmp_path):
    _study(tmp_path, jobs=2)
    warm = _study(tmp_path, jobs=2)
    assert warm.cache_hits == 2


# ---------------------------------------------------------------------------
# study facade and telemetry
# ---------------------------------------------------------------------------


def test_run_study_is_keyword_only():
    with pytest.raises(TypeError):
        run_study(("swm",))  # noqa: positional on purpose


def test_study_result_behaves_like_the_suite_dict(tmp_path):
    study = _study(tmp_path)
    assert set(study) == {"swm"}
    assert len(study) == 1
    assert "swm" in study
    assert [r.experiment for r in study["swm"]] == ["baseline", "cc"]
    assert dict(study.items())["swm"] is study["swm"]


def test_legacy_suite_api_unchanged_shape(tmp_path):
    results = run_benchmark_suite(
        ["swm"],
        keys=("baseline", "cc"),
        nprocs=16,
        config_overrides={"swm": SWM_SMALL},
    )
    assert isinstance(results, dict)
    assert [r.experiment for r in results["swm"]] == ["baseline", "cc"]
    base, cc = results["swm"]
    assert cc.execution_time < base.execution_time


def test_telemetry_records_and_file(tmp_path):
    out = tmp_path / "telemetry.json"
    study = _study(tmp_path / "cache", telemetry=out)
    assert len(study.telemetry) == 2
    rec = study.telemetry[0]
    assert rec["benchmark"] == "swm"
    assert rec["experiment"] == "baseline"
    assert rec["nprocs"] == 16
    assert rec["result"]["dynamic_count"] > 0
    assert rec["result"]["total_messages"] > 0
    assert rec["result"]["total_bytes"] > 0
    assert rec["timings"]["simulate_s"] > 0
    assert rec["timings"]["total_s"] >= rec["timings"]["simulate_s"]

    # the envelope is versioned by the same constant as the records it
    # wraps (they used to disagree: the envelope was frozen at 1)
    doc = json.loads(out.read_text())
    assert doc["schema"] == RECORD_SCHEMA
    assert [r["experiment"] for r in doc["records"]] == ["baseline", "cc"]
    assert all(r["schema"] == RECORD_SCHEMA for r in doc["records"])


def test_load_telemetry_round_trips(tmp_path):
    out = tmp_path / "telemetry.json"
    study = _study(tmp_path / "cache", telemetry=out)
    assert load_telemetry(out) == study.telemetry


def test_load_telemetry_rejects_unknown_envelope_schema(tmp_path):
    out = tmp_path / "telemetry.json"
    _study(tmp_path / "cache", telemetry=out)
    doc = json.loads(out.read_text())
    doc["schema"] = RECORD_SCHEMA + 1
    out.write_text(json.dumps(doc))
    with pytest.raises(ExperimentError, match="schema"):
        load_telemetry(out)


def test_load_telemetry_rejects_drifted_record_schema(tmp_path):
    out = tmp_path / "telemetry.json"
    _study(tmp_path / "cache", telemetry=out)
    doc = json.loads(out.read_text())
    doc["records"][0]["schema"] = RECORD_SCHEMA + 1
    out.write_text(json.dumps(doc))
    with pytest.raises(ExperimentError, match="record"):
        load_telemetry(out)


def test_load_telemetry_rejects_non_envelope_json(tmp_path):
    out = tmp_path / "telemetry.json"
    out.write_text(json.dumps([{"schema": RECORD_SCHEMA}]))
    with pytest.raises(ExperimentError, match="not a telemetry document"):
        load_telemetry(out)


def test_telemetry_carries_reconciling_pipeline_report(tmp_path):
    from repro.comm import PipelineReport

    study = _study(tmp_path)
    base_rec, cc_rec = study.telemetry
    report = PipelineReport.from_dict(cc_rec["pipeline"])
    assert report.signature == ("redundancy", "combining[max_combining]")
    assert report.reconciles()
    assert report.final == cc_rec["result"]["static_count"]
    # planned is the naive count: the baseline cell's static count
    assert report.planned == base_rec["result"]["static_count"]
    assert report.total_removed > 0 and report.total_merged > 0

    # a cache hit serves the identical report back
    warm = _study(tmp_path)
    assert warm.telemetry[1]["pipeline"] == cc_rec["pipeline"]


def test_compile_cache_shares_frontend_work(tmp_path):
    # serial run: the second key of the same benchmark reuses the lowered
    # program, and cc follows baseline so only optimize re-runs
    clear_compile_cache()
    study = _study(tmp_path, cache=False)
    first, second = study.telemetry
    assert not first["compile_cache"]["lowered_hit"]
    assert second["compile_cache"]["lowered_hit"]
    assert first["timings"]["compile_s"] > 0
    assert second["timings"]["compile_s"] == 0.0


def test_config_overrides_accept_assignment_strings(tmp_path):
    pairs = [f"{k}={v}" for k, v in SWM_SMALL.items()]
    from_strings = _study(tmp_path / "a", config_overrides={"swm": pairs})
    from_dict = _study(tmp_path / "b", config_overrides={"swm": SWM_SMALL})
    assert dict(from_strings.results) == dict(from_dict.results)


# ---------------------------------------------------------------------------
# fast path wiring
# ---------------------------------------------------------------------------


def test_fingerprint_ignores_fast_selection():
    # the compiled path is bit-identical to the interpreted walk, so
    # both must share one cache entry
    fps = {
        Job.make("swm", "cc", fast=fast).fingerprint()
        for fast in (None, True, False)
    }
    assert len(fps) == 1


def test_records_carry_fastpath_counters(tmp_path):
    study = _study(tmp_path, cache=False)
    for record in study.telemetry:
        fastpath = record["result"]["fastpath"]
        assert fastpath is not None
        assert set(fastpath) == {
            "extrapolated_trips", "extrapolated_loops", "fallbacks"
        }


def test_fast_false_runs_interpreted_with_identical_results(tmp_path):
    fast = _study(tmp_path / "a", cache=False)
    interp = _study(tmp_path / "b", cache=False, fast=False)
    for f_rec, i_rec in zip(fast.telemetry, interp.telemetry):
        assert i_rec["result"]["fastpath"] is None
        for field in ("execution_time", "dynamic_count", "static_count",
                      "total_messages", "total_bytes"):
            assert f_rec["result"][field] == i_rec["result"][field]


def test_worker_failure_names_the_job(tmp_path):
    jobs = [Job.make("swm", "baseline", config={"no_such_knob": 1})]
    engine = ExperimentEngine(cache=False)
    with pytest.raises(ExperimentError, match=r"\(swm, baseline, pvm\)"):
        engine.run(jobs)


def test_pool_failure_names_the_job(tmp_path):
    good = Job.make("swm", "baseline", machine=MachineSpec(nprocs=16),
                    config=SWM_SMALL)
    bad = Job.make("swm", "cc", machine=MachineSpec(nprocs=16),
                   config=dict(SWM_SMALL, no_such_knob=1))
    engine = ExperimentEngine(jobs=2, cache=False)
    with pytest.raises(ExperimentError, match=r"\(swm, cc, pvm\)"):
        engine.run([good, bad])
