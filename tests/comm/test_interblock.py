"""Tests for inter-block redundancy removal (the paper's future-work
dataflow extension)."""

import numpy as np
import pytest

from repro import (
    ExecutionMode,
    OptimizationConfig,
    compile_program,
    reference_run,
    simulate,
    t3d,
)
from repro.errors import OptimizationError

HEADER = """
program ib;
config n : integer = 12;
region R   = [1..n, 1..n];
region In  = [2..n-1, 2..n-1];
region Sub = [3..n-2, 3..n-2];
direction east = [0, 1];
direction west = [0, -1];
var A, B, C, D : [R] double;
"""


def compiled(procs_and_main, rr_interblock=True, cc=False, pl=False):
    cfg = OptimizationConfig(
        rr=True, cc=cc, pl=pl, rr_interblock=rr_interblock
    )
    return compile_program(HEADER + procs_and_main, "ib.zl", opt=cfg)


def static(prog):
    return len(prog.all_descriptors())


TWO_PHASE = """
procedure p1(); begin [In] B := A@east; end;
procedure p2(); begin [In] C := A@east * 0.5; end;
procedure main();
begin
  [R] A := index1 + index2 * 0.1;
  p1();
  p2();
end;
"""


class TestRemoval:
    def test_cross_block_repeat_removed(self):
        with_ib = compiled(TWO_PHASE, rr_interblock=True)
        without = compiled(TWO_PHASE, rr_interblock=False)
        assert static(without) == 2
        assert static(with_ib) == 1

    def test_write_between_blocks_kills(self):
        src = """
        procedure p1(); begin [In] B := A@east; end;
        procedure p2(); begin [In] A := B; end;
        procedure p3(); begin [In] C := A@east; end;
        procedure main();
        begin
          [R] A := index1;
          p1(); p2(); p3();
        end;
        """
        assert static(compiled(src)) == 2

    def test_covering_region_required(self):
        # the earlier transfer covers only Sub; the later use over the
        # larger In would read fluff the first transfer never delivered
        src = """
        procedure p1(); begin [Sub] B := A@east; end;
        procedure p2(); begin [In] C := A@east; end;
        procedure main();
        begin
          [R] A := index1;
          p1(); p2();
        end;
        """
        assert static(compiled(src)) == 2

    def test_smaller_later_use_covered(self):
        src = """
        procedure p1(); begin [In] B := A@east; end;
        procedure p2(); begin [Sub] C := A@east; end;
        procedure main();
        begin
          [R] A := index1;
          p1(); p2();
        end;
        """
        assert static(compiled(src)) == 1

    def test_loop_boundary_conservative(self):
        # the transfer before the loop is not assumed available inside it
        src = """
        procedure main();
        begin
          [R] A := index1;
          [In] B := A@east;
          for t := 1 to 2 do
            [In] C := A@east;
          end;
        end;
        """
        assert static(compiled(src)) == 2

    def test_blocks_inside_one_loop_iteration_share(self):
        src = """
        procedure p1(); begin [In] B := A@east; end;
        procedure p2(); begin [In] C := A@east + B; end;
        procedure main();
        begin
          [R] A := index1;
          for t := 1 to 3 do
            p1(); p2();
            [In] A := A * 0.99 + C * 0.01;
          end;
        end;
        """
        assert static(compiled(src)) == 1

    def test_requires_rr(self):
        with pytest.raises(OptimizationError, match="rr"):
            OptimizationConfig(rr=False, rr_interblock=True)

    def test_describe_mentions_extension(self):
        cfg = OptimizationConfig(rr=True, rr_interblock=True)
        assert "ib" in cfg.describe()


class TestCorrectness:
    @pytest.mark.parametrize("lib", ["pvm", "shmem"])
    def test_numerics_preserved(self, lib):
        src = """
        procedure p1(); begin [In] B := A@east - A@west; end;
        procedure p2(); begin [In] C := A@east * 0.5 + A@west * 0.25; end;
        procedure main();
        begin
          [R] A := index1 * 0.3 + index2;
          for t := 1 to 4 do
            p1(); p2();
            [In] A := A * 0.9 + 0.05 * (B + C);
          end;
        end;
        """
        ref = reference_run(compile_program(HEADER + src, "ib.zl"))
        prog = compiled(src, cc=True, pl=True)
        res = simulate(prog, t3d(4, lib), ExecutionMode.NUMERIC)
        for name in "ABC":
            assert np.allclose(res.array(name), ref.array(name))

    def test_dynamic_counts_drop(self):
        src = """
        procedure p1(); begin [In] B := A@east; end;
        procedure p2(); begin [In] C := A@east + B; end;
        procedure main();
        begin
          [R] A := index1;
          for t := 1 to 5 do
            p1(); p2();
          end;
        end;
        """
        with_ib = simulate(
            compiled(src, rr_interblock=True), t3d(4), ExecutionMode.TIMING
        )
        without = simulate(
            compiled(src, rr_interblock=False), t3d(4), ExecutionMode.TIMING
        )
        assert with_ib.dynamic_comm_count < without.dynamic_comm_count
