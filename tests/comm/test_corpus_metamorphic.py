"""Metamorphic optimizer properties over the whole program corpus.

The corpus is the paper's four benchmarks' little siblings: the three
classic kernels plus a batch of seeded generated programs.  Three
relations must hold for *every* member:

* every one of the 18 legal pass pipelines runs verifier-clean and its
  :class:`~repro.comm.PipelineReport` exactly reconciles the static
  count delta;
* along the paper's cumulative chain (baseline -> rr -> cc -> pl) the
  static and dynamic transfer counts are monotone non-increasing — an
  "optimization" that adds communication is a bug wherever it appears;
* pipelining never changes transfer *counts* at all (it only moves
  sends earlier), so the cc -> pl step is count-neutral by identity.
"""

import pytest

from repro import OptimizationConfig, SimOptions, compile_program, simulate, t3d
from repro.comm import optimize_with_report, static_comm_count
from repro.programs import KERNELS, benchmark_source, small_config
from repro.programs.generate import GEN_SMALL_CONFIG, generate_source
from tests.property.test_pipeline_properties import LEGAL_CONFIGS

GENERATED = tuple(f"gen_{seed}" for seed in range(6))
CORPUS = KERNELS + GENERATED

#: The paper's cumulative chain, weakest to strongest.
CHAIN = (
    ("baseline", OptimizationConfig.baseline()),
    ("rr", OptimizationConfig.rr_only()),
    ("cc", OptimizationConfig.rr_cc()),
    ("pl", OptimizationConfig.full()),
)


def _source_and_config(name):
    if name in KERNELS:
        return benchmark_source(name), small_config(name)
    return generate_source(int(name.split("_")[1])), dict(GEN_SMALL_CONFIG)


@pytest.mark.parametrize("name", CORPUS)
def test_every_legal_pipeline_is_verifier_clean(name):
    """All 18 legal pipelines run with the post-pass verifier enabled,
    and each report accounts for the whole static-count delta."""
    source, config = _source_and_config(name)
    lowered = compile_program(source, f"{name}.zl", config=config)
    naive = static_comm_count(
        compile_program(
            source, f"{name}.zl", config=config,
            opt=OptimizationConfig.baseline(),
        )
    )
    for opt in LEGAL_CONFIGS:
        program, report = optimize_with_report(lowered, opt, verify=True)
        assert report.planned == naive, opt.pipeline().describe()
        assert report.final == static_comm_count(program)
        assert report.reconciles(), f"{name}: {opt.pipeline().describe()}"


@pytest.mark.parametrize("name", CORPUS)
def test_cumulative_chain_counts_are_monotone(name):
    """baseline >= rr >= cc >= pl in both static and dynamic transfer
    counts, and the cc -> pl step is exactly count-neutral."""
    source, config = _source_and_config(name)
    machine = t3d(4, "pvm")
    static, dynamic = [], []
    for _, opt in CHAIN:
        program = compile_program(source, f"{name}.zl", config=config, opt=opt)
        result = simulate(program, machine, options=SimOptions.timing())
        static.append(result.static_comm_count)
        dynamic.append(result.dynamic_comm_count)
    for prev, cur in zip(static, static[1:]):
        assert cur <= prev, f"{name}: static counts not monotone: {static}"
    for prev, cur in zip(dynamic, dynamic[1:]):
        assert cur <= prev, f"{name}: dynamic counts not monotone: {dynamic}"
    assert static[3] == static[2], f"{name}: pipelining changed static counts"
    assert dynamic[3] == dynamic[2], f"{name}: pipelining changed dynamic counts"


def test_corpus_is_not_optimization_neutral():
    """At least part of the corpus must give each pass real work;
    otherwise the monotone property above is vacuous."""
    shrunk_by_rr = shrunk_by_cc = 0
    for name in CORPUS:
        source, config = _source_and_config(name)
        counts = {
            key: static_comm_count(
                compile_program(source, f"{name}.zl", config=config, opt=opt)
            )
            for key, opt in CHAIN[:3]
        }
        shrunk_by_rr += counts["rr"] < counts["baseline"]
        shrunk_by_cc += counts["cc"] < counts["rr"]
    assert shrunk_by_rr >= 2
    assert shrunk_by_cc >= 2
