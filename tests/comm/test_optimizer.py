"""Unit tests for the optimization driver and materialization."""

import pytest

from repro import OptimizationConfig, compile_program, optimize, static_comm_count
from repro.errors import OptimizationError
from repro.ir.nodes import Block, CommCall, ForLoop
from repro.ironman.calls import CallKind

SRC = """
program p;
config n : integer = 8;
region R  = [1..n, 1..n];
region In = [2..n-1, 2..n-1];
direction east = [0, 1];
direction west = [0, -1];
var A, B, C, D, E : [R] double;
procedure main();
begin
  [R] B := 1.0;
  [In] A := B@east;
  [In] C := B@east;
  [In] D := E@east;
  for t := 1 to 3 do
    [In] A := A + 0.5 * (B@west - B);
  end;
end;
"""


def counts_for(config):
    prog = compile_program(SRC, "p.zl", opt=config)
    return static_comm_count(prog)


class TestConfigKeys:
    def test_baseline_has_no_optimizations(self):
        cfg = OptimizationConfig.baseline()
        assert not (cfg.rr or cfg.cc or cfg.pl)

    def test_full_enables_all(self):
        cfg = OptimizationConfig.full()
        assert cfg.rr and cfg.cc and cfg.pl
        assert cfg.combine_heuristic == "max_combining"

    def test_max_latency_key(self):
        cfg = OptimizationConfig.full_max_latency()
        assert cfg.combine_heuristic == "max_latency"

    def test_describe(self):
        assert OptimizationConfig.baseline().describe() == "baseline"
        assert OptimizationConfig.full().describe() == "rr+cc+pl"
        assert "maxlat" in OptimizationConfig.full_max_latency().describe()

    def test_invalid_heuristic_rejected_at_construction(self):
        with pytest.raises(OptimizationError):
            OptimizationConfig(cc=True, combine_heuristic="bogus")


class TestStaticCounts:
    def test_figure1_progression(self):
        # main block: baseline 3, rr 2, cc 1 — exactly the paper's Figure 1
        base = counts_for(OptimizationConfig.baseline())
        rr = counts_for(OptimizationConfig.rr_only())
        cc = counts_for(OptimizationConfig.rr_cc())
        assert base == 3 + 1  # + B@west in the loop
        assert rr == 2 + 1
        assert cc == 1 + 1

    def test_pipelining_does_not_change_counts(self):
        assert counts_for(OptimizationConfig.rr_cc()) == counts_for(
            OptimizationConfig.full()
        )

    def test_counts_monotone_nonincreasing(self):
        seq = [
            counts_for(OptimizationConfig.baseline()),
            counts_for(OptimizationConfig.rr_only()),
            counts_for(OptimizationConfig.rr_cc()),
        ]
        assert seq == sorted(seq, reverse=True)

    def test_maxlat_between_rr_and_cc(self):
        rr = counts_for(OptimizationConfig.rr_only())
        cc = counts_for(OptimizationConfig.rr_cc())
        ml = counts_for(OptimizationConfig.full_max_latency())
        assert cc <= ml <= rr


class TestMaterialization:
    def test_every_transfer_has_all_four_calls(self):
        prog = compile_program(SRC, "p.zl", opt=OptimizationConfig.full())
        for block in prog.walk_blocks():
            for desc in block.descriptors():
                kinds = [
                    call.kind
                    for call in block.comm_calls()
                    if call.desc.id == desc.id
                ]
                assert sorted(k.name for k in kinds) == ["DN", "DR", "SR", "SV"]

    def test_call_order_within_block(self):
        prog = compile_program(SRC, "p.zl", opt=OptimizationConfig.full())
        for block in prog.walk_blocks():
            seen = {}
            for pos, stmt in enumerate(block.stmts):
                if isinstance(stmt, CommCall):
                    seen.setdefault(stmt.desc.id, {})[stmt.kind] = pos
            for calls in seen.values():
                assert calls[CallKind.DR] <= calls[CallKind.SR]
                assert calls[CallKind.SR] < calls[CallKind.DN]
                assert calls[CallKind.DN] < calls[CallKind.SV]

    def test_core_statements_preserved_in_order(self):
        plain = compile_program(SRC, "p.zl")
        full = compile_program(SRC, "p.zl", opt=OptimizationConfig.full())
        for b_plain, b_full in zip(plain.walk_blocks(), full.walk_blocks()):
            assert [
                getattr(s, "target", None) for s in b_plain.core_stmts()
            ] == [getattr(s, "target", None) for s in b_full.core_stmts()]

    def test_loop_structure_preserved(self):
        prog = compile_program(SRC, "p.zl", opt=OptimizationConfig.full())
        kinds = [type(s).__name__ for s in prog.body]
        assert kinds == ["Block", "ForLoop"]
        loop = prog.body[1]
        assert isinstance(loop, ForLoop)
        assert isinstance(loop.body[0], Block)

    def test_double_optimization_rejected(self):
        prog = compile_program(SRC, "p.zl", opt=OptimizationConfig.full())
        with pytest.raises(OptimizationError, match="communication-free"):
            optimize(prog, OptimizationConfig.baseline())

    def test_baseline_emits_calls_adjacent_to_use(self):
        prog = compile_program(SRC, "p.zl", opt=OptimizationConfig.baseline())
        block = next(prog.walk_blocks())
        # in naive code all four calls of a transfer are contiguous
        stmts = block.stmts
        for i, stmt in enumerate(stmts):
            if isinstance(stmt, CommCall) and stmt.kind is CallKind.DR:
                group = stmts[i : i + 4]
                assert [
                    s.kind for s in group if isinstance(s, CommCall)
                ] == [CallKind.DR, CallKind.SR, CallKind.DN, CallKind.SV]
