"""Unit tests for redundant communication removal."""

from repro import compile_program
from repro.comm.planning import plan_naive
from repro.comm.redundancy import remove_redundant


def plan_of(body):
    src = f"""
    program p;
    config n : integer = 8;
    region R  = [1..n, 1..n];
    region In = [2..n-1, 2..n-1];
    region Top = [2..4, 2..n-1];
    direction east = [0, 1];
    direction west = [0, -1];
    var A, B, C, D : [R] double;
    procedure main(); begin {body} end;
    """
    prog = compile_program(src, "p.zl")
    plan = plan_naive(prog.body[0])
    removed = remove_redundant(plan)
    return plan, removed


def test_repeat_read_removed():
    plan, removed = plan_of("[In] B := A@east; [In] C := A@east;")
    assert removed == 1
    assert len(plan.comms) == 1


def test_write_between_blocks_removal():
    plan, removed = plan_of(
        "[In] B := A@east; [In] A := A * 2.0; [In] C := A@east;"
    )
    assert removed == 0
    assert len(plan.comms) == 2


def test_different_offsets_not_redundant():
    plan, removed = plan_of("[In] B := A@east; [In] C := A@west;")
    assert removed == 0


def test_different_arrays_not_redundant():
    plan, removed = plan_of("[In] C := A@east; [In] D := B@east;")
    assert removed == 0


def test_chain_of_reads_folds_to_one(etc=None):
    plan, removed = plan_of(
        "[In] B := A@east; [In] C := A@east; [In] D := A@east;"
    )
    assert removed == 2
    assert len(plan.comms) == 1
    assert plan.comms[0].members[0].all_uses == [0, 1, 2]


def test_survivor_region_bounds_all_uses():
    plan, removed = plan_of("[Top] B := A@east; [In] C := A@east;")
    assert removed == 1
    region = plan.comms[0].members[0].use_region
    # bounding region of Top=[2..4,2..7] and In=[2..7,2..7]
    assert (region.lows, region.highs) == ((2, 2), (7, 7))


def test_removal_after_write_then_repeat():
    plan, removed = plan_of(
        "[In] B := A@east; [In] A := B; [In] C := A@east; [In] D := A@east;"
    )
    # first pair broken by the write; second pair folds
    assert removed == 1
    assert len(plan.comms) == 2


def test_paper_figure1_example():
    """Figure 1(b): the second communication of B is redundant."""
    plan, removed = plan_of(
        "[R] B := 1.0;"
        "[In] A := B@east;"
        "[In] C := B@east;"
        "[In] D := A@east;"
    )
    assert removed == 1
    arrays = [c.members[0].array for c in plan.comms]
    assert arrays == ["B", "A"]
