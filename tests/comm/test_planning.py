"""Unit tests for naive communication planning (the baseline)."""

from repro import compile_program
from repro.comm.planning import direction_communicates, plan_naive
from repro.lang.regions import Direction


def block_of(body, decls=""):
    src = f"""
    program p;
    config n : integer = 8;
    region R  = [1..n, 1..n];
    region In = [2..n-1, 2..n-1];
    direction east = [0, 1];
    direction west = [0, -1];
    direction e2   = [0, 1];
    var A, B, C : [R] double;
    var s : double;
    {decls}
    procedure main(); begin {body} end;
    """
    return compile_program(src, "p.zl").body[0]


class TestDirectionCommunicates:
    def test_axis_shift_communicates(self):
        assert direction_communicates(Direction("e", (0, 1)), 2)

    def test_rank3_local_dim_shift_is_free(self):
        assert not direction_communicates(Direction("z", (0, 0, 1)), 3)

    def test_rank3_mixed_shift_communicates(self):
        assert direction_communicates(Direction("xz", (1, 0, 1)), 3)

    def test_rank1_shift(self):
        assert direction_communicates(Direction("up", (1,)), 1)


class TestPlanNaive:
    def test_one_comm_per_reference_per_statement(self):
        plan = plan_naive(block_of("[In] B := A@east; [In] C := A@east;"))
        assert len(plan.comms) == 2  # naive: every statement re-communicates

    def test_duplicate_reference_in_statement_planned_once(self):
        plan = plan_naive(block_of("[In] B := A@east * A@east;"))
        assert len(plan.comms) == 1

    def test_same_offsets_different_name_planned_once_per_statement(self):
        plan = plan_naive(block_of("[In] B := A@east + A@e2;"))
        assert len(plan.comms) == 1

    def test_ready_is_after_last_write(self):
        plan = plan_naive(block_of("[R] A := 1.0; [In] B := A@east;"))
        (comm,) = plan.comms
        assert comm.ready == 1
        assert comm.use == 1

    def test_ready_zero_when_never_written(self):
        plan = plan_naive(block_of("[R] B := 1.0; [In] B := A@east;"))
        (comm,) = plan.comms
        assert comm.ready == 0
        assert comm.use == 1
        assert comm.distance == 1

    def test_plan_is_legal(self):
        plan = plan_naive(
            block_of("[R] A := 1.0; [In] B := A@east; [R] A := 2.0; [In] C := A@west;")
        )
        assert all(c.is_legal for c in plan.comms)

    def test_use_region_recorded(self):
        plan = plan_naive(block_of("[In] B := A@east;"))
        (comm,) = plan.comms
        assert comm.members[0].use_region.name == "In"

    def test_scalar_reduce_operand_planned(self):
        plan = plan_naive(block_of("[In] s := +<< (A@east - A);"))
        assert len(plan.comms) == 1
