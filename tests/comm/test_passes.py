"""Unit tests for the pass protocol, registry, pipeline, and report."""

import pytest

from repro import compile_program
from repro.comm import (
    CommPass,
    OptimizationConfig,
    PassPipeline,
    PassStats,
    PipelineReport,
    make_pass,
    optimize_with_report,
    register_pass,
    registered_passes,
    static_comm_count,
)
from repro.comm.passes import (
    CombiningPass,
    InterblockPass,
    PipeliningPass,
    RedundancyPass,
    verify_block,
    verify_plan,
)
from repro.comm.planning import plan_naive
from repro.errors import OptimizationError
from repro.experiments_registry import EXPERIMENT_KEYS, experiment_spec
from repro.ir.nodes import CommCall
from repro.ironman.calls import CallKind
from tests.conftest import DEMO_SOURCE


PAPER_PASSES = {"redundancy", "interblock", "combining", "pipelining"}


class TestRegistry:
    def test_paper_passes_registered(self):
        registry = registered_passes()
        assert set(registry) == PAPER_PASSES
        assert all(issubclass(cls, CommPass) for cls in registry.values())

    def test_registry_snapshot_is_a_copy(self):
        snap = registered_passes()
        snap.clear()
        assert set(registered_passes()) == PAPER_PASSES

    def test_make_pass_by_name(self):
        p = make_pass("combining", heuristic="max_latency")
        assert isinstance(p, CombiningPass)
        assert p.signature() == "combining[max_latency]"

    def test_make_pass_unknown_name(self):
        with pytest.raises(OptimizationError, match="registered"):
            make_pass("loop_fusion")

    def test_register_requires_a_name(self):
        class Nameless(CommPass):
            pass

        with pytest.raises(OptimizationError, match="no name"):
            register_pass(Nameless)

    def test_register_rejects_duplicates(self):
        class Impostor(CommPass):
            name = "redundancy"

        with pytest.raises(OptimizationError, match="already registered"):
            register_pass(Impostor)
        assert registered_passes()["redundancy"] is RedundancyPass

    def test_invalid_combining_heuristic(self):
        with pytest.raises(OptimizationError, match="heuristic"):
            CombiningPass("bogus")

    def test_describe_is_one_line(self):
        for cls in registered_passes().values():
            text = cls().describe()
            assert text and "\n" not in text


class TestConfigFactory:
    """OptimizationConfig.pipeline() compiles the paper's keys."""

    EXPECTED = {
        "baseline": (),
        "rr": ("redundancy",),
        "cc": ("redundancy", "combining[max_combining]"),
        "pl": ("redundancy", "combining[max_combining]", "pipelining"),
        "pl_shmem": ("redundancy", "combining[max_combining]", "pipelining"),
        "pl_maxlat": ("redundancy", "combining[max_latency]", "pipelining"),
    }

    def test_every_experiment_key_signature(self):
        for key in EXPERIMENT_KEYS:
            assert (
                experiment_spec(key).pipeline().signature() == self.EXPECTED[key]
            ), key

    def test_interblock_rides_behind_redundancy(self):
        cfg = OptimizationConfig(rr=True, rr_interblock=True)
        assert cfg.pipeline().signature() == ("redundancy", "interblock")

    def test_describe(self):
        assert OptimizationConfig.baseline().pipeline().describe() == "(empty)"
        assert (
            OptimizationConfig.full().pipeline().describe()
            == "redundancy -> combining[max_combining] -> pipelining"
        )

    def test_has(self):
        pipeline = OptimizationConfig.full().pipeline()
        assert pipeline.has("combining")
        assert not pipeline.has("interblock")


class TestLegality:
    def test_duplicate_pass_rejected(self):
        with pytest.raises(OptimizationError, match="twice"):
            PassPipeline([RedundancyPass(), RedundancyPass()])

    def test_interblock_requires_redundancy(self):
        with pytest.raises(OptimizationError, match="requires"):
            PassPipeline([InterblockPass()])

    def test_interblock_before_redundancy_rejected(self):
        with pytest.raises(OptimizationError, match="requires"):
            PassPipeline([InterblockPass(), RedundancyPass()])

    def test_combining_before_removal_rejected(self):
        with pytest.raises(OptimizationError, match="before"):
            PassPipeline([CombiningPass(), RedundancyPass()])

    def test_terminal_pass_must_be_last(self):
        with pytest.raises(OptimizationError, match="terminal"):
            PassPipeline([PipeliningPass(), RedundancyPass()])

    def test_soft_ordering_allows_combining_alone(self):
        # ``after`` only binds when the predecessor is present
        pipeline = PassPipeline([CombiningPass()])
        assert pipeline.signature() == ("combining[max_combining]",)


class TestReport:
    def test_stats_add_rejects_name_mismatch(self):
        with pytest.raises(OptimizationError, match="merge stats"):
            PassStats("redundancy").add(PassStats("combining"))

    def test_paper_keys_reconcile_on_demo(self):
        lowered = compile_program(DEMO_SOURCE, "demo.zl")
        baseline_count = static_comm_count(
            compile_program(
                DEMO_SOURCE, "demo.zl", opt=OptimizationConfig.baseline()
            )
        )
        for key in EXPERIMENT_KEYS:
            spec = experiment_spec(key)
            program, report = optimize_with_report(
                lowered, spec.opt, verify=True
            )
            assert report.signature == spec.pipeline().signature()
            assert report.blocks > 0
            assert report.planned == baseline_count
            assert report.final == static_comm_count(program)
            assert report.reconciles(), key

    def test_redundancy_and_combining_both_fire_on_demo(self):
        lowered = compile_program(DEMO_SOURCE, "demo.zl")
        _, report = optimize_with_report(lowered, OptimizationConfig.full())
        assert report.stats_for("redundancy").removed > 0
        assert report.stats_for("combining").merged > 0
        assert report.stats_for("combining").distance_gained <= 0
        assert report.stats_for("pipelining").distance_gained >= 0
        assert report.stats_for("inlining") is None
        assert all(s.wall_s >= 0.0 for s in report.passes)

    def test_pipelining_reports_hoisting_distance(self):
        # B is ready after the first statement but only used two
        # statements later: pipelining hoists DR/SR across the gap and
        # the report shows the span it opened
        source = """
program hoist;
config n : integer = 8;
region R  = [1..n, 1..n];
region In = [1..n, 1..n-1];
direction east = [0, 1];
var A, B, C : [R] double;
procedure main();
begin
  [R] B := index1 + index2;
  [R] C := index1 - index2;
  [In] A := B@east;
end;
"""
        lowered = compile_program(source, "hoist.zl")
        _, report = optimize_with_report(
            lowered, OptimizationConfig(rr=True, pl=True)
        )
        assert report.stats_for("pipelining").distance_gained > 0

    def test_report_dict_roundtrip(self):
        lowered = compile_program(DEMO_SOURCE, "demo.zl")
        _, report = optimize_with_report(
            lowered, OptimizationConfig.full_max_latency()
        )
        data = report.as_dict()
        assert PipelineReport.from_dict(data) == report
        # and the dict form is JSON-safe
        import json

        assert json.loads(json.dumps(data)) == data


class TestVerifier:
    def _comm_block(self):
        program = compile_program(
            DEMO_SOURCE, "demo.zl", opt=OptimizationConfig.full()
        )
        for block in program.walk_blocks():
            if block.comm_calls():
                return block
        raise AssertionError("demo program has no communicating block")

    def test_verify_block_accepts_optimized_output(self):
        program = compile_program(
            DEMO_SOURCE, "demo.zl", opt=OptimizationConfig.full()
        )
        for block in program.walk_blocks():
            verify_block(block)

    def test_verify_block_catches_missing_call(self):
        block = self._comm_block()
        dropped = next(
            s
            for s in block.stmts
            if isinstance(s, CommCall) and s.kind is CallKind.SV
        )
        block.stmts.remove(dropped)
        with pytest.raises(OptimizationError, match="missing"):
            verify_block(block)

    def test_verify_block_catches_duplicate_call(self):
        block = self._comm_block()
        dup = next(s for s in block.stmts if isinstance(s, CommCall))
        block.stmts.append(dup)
        with pytest.raises(OptimizationError, match="duplicate"):
            verify_block(block)

    def test_verify_plan_catches_empty_transfer(self):
        lowered = compile_program(DEMO_SOURCE, "demo.zl")
        plan = next(
            p
            for p in (plan_naive(b) for b in lowered.walk_blocks())
            if p.comms
        )
        plan.comms[0].members.clear()
        with pytest.raises(OptimizationError, match="no members"):
            verify_plan(plan)
