"""Unit tests for communication pipelining and call placement."""

from repro import compile_program
from repro.comm.pipelining import place_calls
from repro.comm.planning import plan_naive
from repro.comm.redundancy import remove_redundant


def placements_of(body, pipelining=True):
    src = f"""
    program p;
    config n : integer = 8;
    region R  = [1..n, 1..n];
    region In = [2..n-1, 2..n-1];
    direction east = [0, 1];
    var A, B, C, D, E : [R] double;
    procedure main(); begin {body} end;
    """
    prog = compile_program(src, "p.zl")
    plan = plan_naive(prog.body[0])
    remove_redundant(plan)
    return place_calls(plan, pipelining)


def test_unpipelined_calls_sit_at_first_use():
    (p,) = placements_of("[R] A := 1.0; [R] B := 2.0; [In] C := A@east;", False)
    assert (p.dr, p.sr, p.dn) == (2, 2, 2)


def test_pipelined_send_hoists_to_ready_point():
    (p,) = placements_of("[R] A := 1.0; [R] B := 2.0; [In] C := A@east;", True)
    assert (p.dr, p.sr) == (1, 1)  # just after A's write
    assert p.dn == 2


def test_pipelined_send_hoists_to_block_top_when_never_written():
    (p,) = placements_of("[R] B := 1.0; [R] C := 2.0; [In] D := A@east;", True)
    assert p.sr == 0
    assert p.dn == 2


def test_sv_before_next_write_of_source():
    (p,) = placements_of("[In] C := A@east; [In] A := C;", True)
    assert p.sv == 1  # before the statement that overwrites A


def test_sv_at_block_end_when_source_never_overwritten():
    (p,) = placements_of("[In] C := A@east; [In] D := C;", True)
    assert p.sv == 2  # == len(core)


def test_dn_never_after_sv():
    for pipelining in (False, True):
        placements = placements_of(
            "[In] C := A@east; [In] D := B@east; [In] A := C; [In] B := D;",
            pipelining,
        )
        for p in placements:
            assert p.sr <= p.dn <= p.sv


def test_paper_figure1_pipelining_shape():
    """Figure 1(d): send(B) right after B := f(); receive before use."""
    placements = placements_of(
        "[R] B := 1.0; [In] A := B@east; [In] C := B@east; [In] D := E@east;",
        True,
    )
    by_array = {p.comm.arrays()[0]: p for p in placements}
    assert by_array["B"].sr == 1  # hoisted to just after B := f()
    assert by_array["B"].dn == 1  # first use
    assert by_array["E"].sr == 0  # E never written: top of block
    assert by_array["E"].dn == 3
