"""Unit tests for communication combination and its two heuristics."""

import pytest

from repro import compile_program
from repro.comm.combining import combine
from repro.comm.planning import plan_naive
from repro.comm.redundancy import remove_redundant
from repro.errors import OptimizationError


def plan_of(body, heuristic="max_combining", rr=True):
    src = f"""
    program p;
    config n : integer = 8;
    region R  = [1..n, 1..n];
    region In = [2..n-1, 2..n-1];
    direction east = [0, 1];
    direction west = [0, -1];
    var A, B, C, D, E : [R] double;
    procedure main(); begin {body} end;
    """
    prog = compile_program(src, "p.zl")
    plan = plan_naive(prog.body[0])
    if rr:
        remove_redundant(plan)
    merged = combine(plan, heuristic)
    return plan, merged


class TestMaxCombining:
    def test_same_direction_different_arrays_merge(self):
        plan, merged = plan_of("[In] C := A@east; [In] D := B@east;")
        assert merged == 1
        assert len(plan.comms) == 1
        assert sorted(plan.comms[0].arrays()) == ["A", "B"]

    def test_different_directions_do_not_merge(self):
        plan, merged = plan_of("[In] C := A@east; [In] D := B@west;")
        assert merged == 0

    def test_same_statement_references_merge(self):
        plan, merged = plan_of("[In] C := A@east + B@east;")
        assert merged == 1

    def test_write_between_makes_merge_illegal(self):
        # B's data is only ready after C's use: can't share one transfer
        plan, merged = plan_of(
            "[In] C := A@east; [In] B := C * 2.0; [In] D := B@east;"
        )
        assert merged == 0

    def test_same_array_never_merges_with_itself(self):
        plan, merged = plan_of(
            "[In] C := A@east; [In] A := C; [In] D := A@east;", rr=True
        )
        # two A@east transfers with a write between: distinct data
        assert merged == 0
        assert len(plan.comms) == 2

    def test_three_way_merge(self):
        plan, merged = plan_of(
            "[In] D := A@east; [In] E := B@east; [In] C := A@east + B@east;"
        )
        # after rr the third statement's refs fold into the first two
        assert merged == 1
        assert len(plan.comms) == 1

    def test_paper_figure1_combination(self):
        """Figure 1(c): B and E combine into a single transfer."""
        plan, merged = plan_of(
            "[R] B := 1.0;"
            "[In] A := B@east;"
            "[In] C := B@east;"
            "[In] D := E@east;"
        )
        assert merged == 1
        assert len(plan.comms) == 1
        assert sorted(plan.comms[0].arrays()) == ["B", "E"]

    def test_merged_transfer_placement_points(self):
        plan, _ = plan_of("[R] A := 1.0; [In] C := A@east; [In] D := B@east;")
        (comm,) = plan.comms
        assert comm.ready == 1  # A written at stmt 0
        assert comm.use == 1  # C's statement


class TestMaxLatency:
    def test_same_statement_group_still_merges(self):
        plan, merged = plan_of("[In] C := A@east + B@east;", "max_latency")
        assert merged == 1

    def test_cross_statement_group_rejected(self):
        plan, merged = plan_of(
            "[In] C := A@east; [In] D := B@east;", "max_latency"
        )
        assert merged == 0

    def test_identical_spans_merge(self):
        # neither array written in the block (ready 0), both first used at
        # statement 1: identical spans, merging loses nothing
        plan, merged = plan_of(
            "[R] D := 1.0; [In] C := A@east + B@east;", "max_latency"
        )
        assert merged == 1

    def test_unequal_ready_points_rejected(self):
        # A becomes ready at 1, B at 0: B would lose hiding distance
        plan, merged = plan_of(
            "[R] A := 1.0; [In] C := A@east + B@east;", "max_latency"
        )
        assert merged == 0

    def test_nested_but_unequal_spans_rejected(self):
        # A's span is [0,1], B's span is [0,2]: merging would shrink B's
        # hiding distance from 2 to 1
        plan, merged = plan_of(
            "[R] D := 1.0; [In] C := A@east; [In] E := B@east;", "max_latency"
        )
        assert merged == 0

    def test_merged_count_never_below_max_combining(self):
        body = (
            "[In] C := A@east; [In] D := B@east; "
            "[In] E := A@west + B@west;"
        )
        plan_mc, _ = plan_of(body, "max_combining")
        plan_ml, _ = plan_of(body, "max_latency")
        assert len(plan_ml.comms) >= len(plan_mc.comms)


class TestVolumeAndErrors:
    def test_combining_preserves_member_count(self):
        """Combining reduces messages, not volume: total entries constant."""
        body = "[In] C := A@east; [In] D := B@east; [In] E := A@west;"
        plan, _ = plan_of(body)
        assert sum(len(c.members) for c in plan.comms) == 3

    def test_unknown_heuristic_rejected(self):
        with pytest.raises(OptimizationError, match="heuristic"):
            plan_of("[In] C := A@east;", "maximal")

    def test_comms_sorted_by_use_after_combining(self):
        plan, _ = plan_of(
            "[In] C := B@west; [In] D := A@east; [In] E := B@east;"
        )
        uses = [c.use for c in plan.comms]
        assert uses == sorted(uses)
