"""Unit tests for static count helpers."""

from repro import OptimizationConfig, compile_program
from repro.comm.counts import (
    per_block_counts,
    static_call_count,
    static_comm_count,
    static_message_volume_entries,
)
from repro.ironman.calls import CallKind

SRC = """
program p;
config n : integer = 8;
region R  = [1..n, 1..n];
region In = [2..n-1, 2..n-1];
direction east = [0, 1];
var A, B, C : [R] double;
procedure main();
begin
  [In] C := A@east;
  [In] C := C + B@east;
  work();
end;
procedure work();
begin
  [In] C := C * 0.5 + A@east;
end;
"""


def test_static_count_is_descriptor_count():
    prog = compile_program(SRC, "p.zl", opt=OptimizationConfig.baseline())
    assert static_comm_count(prog) == 3


def test_call_counts_equal_comm_count_per_kind():
    prog = compile_program(SRC, "p.zl", opt=OptimizationConfig.full())
    n = static_comm_count(prog)
    calls = static_call_count(prog)
    assert calls == {kind: n for kind in CallKind}


def test_combined_transfer_counts_once_but_keeps_entries():
    base = compile_program(SRC, "p.zl", opt=OptimizationConfig.baseline())
    cc = compile_program(SRC, "p.zl", opt=OptimizationConfig.rr_cc())
    assert static_comm_count(cc) < static_comm_count(base)
    # combining moves the same data: entry totals match rr output
    rr = compile_program(SRC, "p.zl", opt=OptimizationConfig.rr_only())
    assert static_message_volume_entries(cc) == static_message_volume_entries(rr)


def test_per_block_counts():
    prog = compile_program(SRC, "p.zl", opt=OptimizationConfig.baseline())
    blocks = per_block_counts(prog)
    # the call site splits main's statements from work's body
    assert [count for _, count in blocks] == [2, 1]
