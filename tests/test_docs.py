"""Documentation consistency checks: the docs must not rot."""

import re
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent


def _read(name: str) -> str:
    return (ROOT / name).read_text()


def test_readme_quickstart_runs():
    readme = _read("README.md")
    match = re.search(r"```python\n(.*?)```", readme, re.S)
    assert match, "README has no python quickstart block"
    namespace = {}
    code = match.group(1).replace("print(", "_ = (")
    exec(compile(code, "README.md", "exec"), namespace)  # noqa: S102
    assert namespace["result"].dynamic_comm_count > 0


def test_language_doc_zl_snippets_lex():
    from repro.frontend.lexer import tokenize

    doc = _read("docs/LANGUAGE.md")
    for block in re.findall(r"```\n(.*?)```", doc, re.S):
        if "..." in block.replace("..", "", 0) and " ... " in block:
            continue  # prose ellipsis, not ZL
        if ":=" in block or "region" in block:
            tokenize(block)  # must not raise


def test_design_md_module_references_exist():
    import importlib

    design = _read("DESIGN.md")
    for name in set(re.findall(r"`(repro(?:\.\w+)+)`", design)):
        modpath = name
        try:
            importlib.import_module(modpath)
            continue
        except ImportError:
            pass
        # might be module.attr
        mod, _, attr = modpath.rpartition(".")
        module = importlib.import_module(mod)
        assert hasattr(module, attr), f"DESIGN.md references missing {name}"


def test_experiments_md_covers_every_figure_and_table():
    text = _read("EXPERIMENTS.md")
    for item in (
        "Figure 3",
        "Figure 5",
        "Figure 6",
        "Figure 7",
        "Figure 8",
        "Figures 10",
        "Figure 11",
        "Figure 12",
        "Tables 1",
    ):
        assert item in text, f"EXPERIMENTS.md missing {item}"


def test_benchmarks_exist_for_every_listed_target():
    design = _read("DESIGN.md")
    for target in re.findall(r"`benchmarks/(bench_\w+\.py)`", design):
        assert (ROOT / "benchmarks" / target).exists(), target


def test_examples_listed_in_readme_exist():
    readme = _read("README.md")
    for example in re.findall(r"examples/(\w+\.py)", readme):
        assert (ROOT / "examples" / example).exists(), example
