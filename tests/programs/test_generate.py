"""Differential fuzz suite for the seeded ZL program generator.

Every generated program must (a) compile through the real front end,
(b) run bit-identically on the compiled TIMING fast path and the
interpreted oracle, (c) produce batched ``simulate_many`` rows equal to
per-variant scalar ``simulate`` calls, and (d) compute — under full
optimization, distributed — exactly what the sequential reference
computes.  Hypothesis drives seeds and feature profiles; every failure
message carries a copy-pasteable ``python -m repro generate <seed>
--check`` repro line.

The byte-stability golden pins ``generate_source(0)``'s hash: the
engine fingerprints generated programs by source text, so an accidental
generator change silently invalidates every cached ``gen_<seed>``
result.  Changing the generator is allowed — but must be deliberate
(update the hash here and expect cache misses).
"""

import hashlib

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    ExecutionMode,
    OptimizationConfig,
    SimOptions,
    reference_run,
    simulate,
    simulate_many,
    t3d,
)
from repro.errors import ExperimentError
from repro.machine import apply_overrides, paragon
from repro.programs.generate import (
    DEFAULT_PROFILE,
    GeneratorProfile,
    corpus,
    generate_program,
    generate_source,
    generated_name,
    generated_seed,
)

#: Pinned content hash of ``generate_source(0)`` — see module docstring.
GEN_0_SHA256 = "de13e118c93e91fc6a21c9d44d48bc182755d25b5b64a0fb6691f264a01aa95c"


def _repro_line(seed, profile=None):
    """The copy-pasteable reproduction command for a failing seed."""
    flags = ""
    if profile is not None and profile != DEFAULT_PROFILE:
        flags = "".join(
            f" --profile {name}={getattr(profile, name)}"
            for name in (
                "arrays", "scalars", "directions", "max_offset", "phases",
                "statements", "terms", "reduction_prob", "wrap_prob",
                "scope_block_prob", "repeat_prob", "branch_prob",
                "inner_loop_prob", "n", "niters",
            )
            if getattr(profile, name) != getattr(DEFAULT_PROFILE, name)
        )
    return f"python -m repro generate {seed}{flags} --check"


seeds = st.integers(min_value=0, max_value=10_000)


@st.composite
def profiles(draw):
    """Small but featureful profiles (generation stays cheap)."""
    max_offset = draw(st.integers(1, 3))
    return GeneratorProfile(
        arrays=draw(st.integers(2, 4)),
        scalars=draw(st.integers(1, 3)),
        directions=draw(st.integers(1, 6)),
        max_offset=max_offset,
        phases=draw(st.integers(1, 3)),
        statements=draw(st.integers(1, 5)),
        terms=draw(st.integers(1, 4)),
        reduction_prob=draw(st.sampled_from((0.0, 0.3, 1.0))),
        wrap_prob=draw(st.sampled_from((0.0, 0.2, 1.0))),
        scope_block_prob=draw(st.sampled_from((0.0, 0.5, 1.0))),
        repeat_prob=draw(st.sampled_from((0.0, 0.25, 1.0))),
        branch_prob=draw(st.sampled_from((0.0, 0.5, 1.0))),
        inner_loop_prob=draw(st.sampled_from((0.0, 0.5, 1.0))),
        n=draw(st.sampled_from((2 * max_offset + 4, 12, 16))),
        niters=draw(st.integers(1, 2)),
    )


# ---------------------------------------------------------------------------
# determinism and naming
# ---------------------------------------------------------------------------


def test_seed_zero_source_is_byte_stable():
    source = generate_source(0)
    assert hashlib.sha256(source.encode()).hexdigest() == GEN_0_SHA256, (
        "generate_source(0) changed — deliberate generator changes must "
        "update GEN_0_SHA256 (and will invalidate cached gen_* results)"
    )


@given(seeds, st.none() | profiles())
def test_generation_is_deterministic(seed, profile):
    assert generate_source(seed, profile) == generate_source(seed, profile)


def test_distinct_seeds_distinct_programs():
    sources = {generate_source(s) for s in range(20)}
    assert len(sources) == 20


def test_name_seed_roundtrip():
    for seed in (0, 1, 7, 999_999_999):
        assert generated_seed(generated_name(seed)) == seed
    for bogus in ("gen_", "gen_-1", "gen_1.5", "jacobi", "gen_1234567890",
                  "Gen_3", "gen_3x"):
        assert generated_seed(bogus) is None


def test_invalid_seeds_rejected():
    for bad in (-1, 1.5, "3", True):
        with pytest.raises(ExperimentError):
            generate_source(bad)
        with pytest.raises(ExperimentError):
            generated_name(bad)


def test_corpus_maps_names_to_sources():
    batch = corpus(range(3))
    assert set(batch) == {"gen_0", "gen_1", "gen_2"}
    assert all(f"program {name}" in src for name, src in batch.items())


# ---------------------------------------------------------------------------
# profile validation
# ---------------------------------------------------------------------------


@pytest.mark.parametrize(
    "kwargs",
    [
        {"arrays": 1},
        {"scalars": 0},
        {"directions": 0},
        {"max_offset": 0},
        {"phases": 0},
        {"statements": 0},
        {"terms": 0},
        {"niters": 0},
        {"reduction_prob": -0.1},
        {"wrap_prob": 1.5},
        {"branch_prob": 2.0},
        {"n": 5},                      # interior too small for max_offset=2
        {"max_offset": 3, "n": 9},     # n < 2 * max_offset + 4
        {"arrays": 2.5},
    ],
)
def test_bad_profiles_rejected(kwargs):
    with pytest.raises(ExperimentError):
        GeneratorProfile(**kwargs)


def test_minimum_viable_profile_generates():
    profile = GeneratorProfile(
        arrays=2, scalars=1, directions=1, max_offset=1, phases=1,
        statements=1, terms=1, n=6, niters=1,
    )
    program = generate_program(3, profile)
    assert program.config_values["n"] == 6


# ---------------------------------------------------------------------------
# differential properties (hypothesis-driven)
# ---------------------------------------------------------------------------


@given(seeds)
@settings(max_examples=10, deadline=None)
def test_fast_path_matches_oracle(seed):
    """Compiled TIMING fast path == interpreted oracle, bit for bit."""
    machine = t3d(4, "pvm")
    for opt in (OptimizationConfig.baseline(), OptimizationConfig.full()):
        program = generate_program(seed, opt=opt)
        fast = simulate(program, machine, options=SimOptions.timing(fast=True))
        slow = simulate(program, machine, options=SimOptions.timing(fast=False))
        assert fast.time == slow.time, _repro_line(seed)
        assert np.array_equal(fast.clocks, slow.clocks), _repro_line(seed)
        assert fast.static_comm_count == slow.static_comm_count
        assert fast.dynamic_comm_count == slow.dynamic_comm_count


@given(seeds, profiles())
@settings(max_examples=10, deadline=None)
def test_profiled_fast_path_matches_oracle(seed, profile):
    machine = t3d(4, "pvm")
    program = generate_program(seed, profile, opt=OptimizationConfig.full())
    fast = simulate(program, machine, options=SimOptions.timing(fast=True))
    slow = simulate(program, machine, options=SimOptions.timing(fast=False))
    assert fast.time == slow.time, _repro_line(seed, profile)
    assert np.array_equal(fast.clocks, slow.clocks), _repro_line(seed, profile)


@given(seeds)
@settings(max_examples=8, deadline=None)
def test_batched_rows_match_scalar_simulate(seed):
    """Each ``simulate_many`` variant row equals the scalar ``simulate``
    on the correspondingly overridden machine."""
    base = t3d(4, "pvm")
    override_sets = ({}, {"net.latency": 6e-5}, {"net.bandwidth": 6e7})
    machines = [apply_overrides(base, o) for o in override_sets]
    program = generate_program(seed, opt=OptimizationConfig.full())
    batch = simulate_many(program, machines)
    run = batch.run(generated_name(seed))
    for column, machine in enumerate(machines):
        scalar = simulate(program, machine, options=SimOptions.timing())
        assert run.times[column] == scalar.time, _repro_line(seed)
        assert np.array_equal(run.clocks[column], scalar.clocks), _repro_line(seed)
    assert run.static_comm_count == scalar.static_comm_count
    assert run.dynamic_comm_count == scalar.dynamic_comm_count


@given(seeds)
@settings(max_examples=6, deadline=None)
def test_optimized_numerics_match_reference(seed):
    """Fully optimized, distributed execution computes what the
    machine-free sequential reference computes."""
    ref = reference_run(generate_program(seed, opt=OptimizationConfig.baseline()))
    program = generate_program(seed, opt=OptimizationConfig.full())
    res = simulate(program, t3d(4, "pvm"), ExecutionMode.NUMERIC)
    for array in sorted(ref.arrays):
        assert np.allclose(
            res.array(array), ref.array(array), rtol=1e-12, atol=1e-12
        ), f"{array} diverged; {_repro_line(seed)}"


# ---------------------------------------------------------------------------
# dense matrix (nightly / -m slow)
# ---------------------------------------------------------------------------


@pytest.mark.slow
@pytest.mark.parametrize("seed", range(25))
def test_dense_differential_matrix(seed):
    """25 seeds x both machines x {baseline, full}: fast == oracle and
    optimized numerics == reference."""
    for machine in (t3d(4, "pvm"), paragon(4, "nx")):
        for opt in (OptimizationConfig.baseline(), OptimizationConfig.full()):
            program = generate_program(seed, opt=opt)
            fast = simulate(program, machine, options=SimOptions.timing(fast=True))
            slow = simulate(program, machine, options=SimOptions.timing(fast=False))
            assert fast.time == slow.time, _repro_line(seed)
            assert np.array_equal(fast.clocks, slow.clocks), _repro_line(seed)
    ref = reference_run(generate_program(seed, opt=OptimizationConfig.baseline()))
    res = simulate(
        generate_program(seed, opt=OptimizationConfig.full()),
        t3d(4, "pvm"),
        ExecutionMode.NUMERIC,
    )
    for array in sorted(ref.arrays):
        assert np.allclose(
            res.array(array), ref.array(array), rtol=1e-12, atol=1e-12
        ), f"{array} diverged; {_repro_line(seed)}"
