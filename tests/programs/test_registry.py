"""Tests for the benchmark registry and program metadata."""

import pytest

from repro import OptimizationConfig, emit_c
from repro.errors import ExperimentError
from repro.programs import (
    BENCHMARKS,
    benchmark_source,
    build_benchmark,
    small_config,
)
from repro.programs.registry import default_config


def test_benchmarks_in_figure7_order():
    assert BENCHMARKS == ("tomcatv", "swm", "simple", "sp")


def test_unknown_benchmark_rejected():
    with pytest.raises(ExperimentError, match="valid"):
        build_benchmark("linpack")


@pytest.mark.parametrize("name", BENCHMARKS)
def test_source_is_self_titled(name):
    source = benchmark_source(name)
    assert f"program {name}" in source


@pytest.mark.parametrize("name", BENCHMARKS)
def test_small_config_is_reduced(name):
    small = small_config(name)
    full = default_config(name)
    assert set(small) == set(full)
    assert all(small[k] <= full[k] for k in small)


@pytest.mark.parametrize("name", BENCHMARKS)
def test_small_config_compiles_and_emits(name):
    prog = build_benchmark(
        name, config=small_config(name), opt=OptimizationConfig.full()
    )
    emitted = emit_c(prog)
    assert emitted.total_lines > 50
    assert emitted.comm_lines > 0


def test_config_overrides_merge_with_defaults():
    prog = build_benchmark("swm", config={"nsteps": 5})
    assert prog.config_values["nsteps"] == 5
    assert prog.config_values["n"] == default_config("swm")["n"]
