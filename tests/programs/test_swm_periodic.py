"""Tests for the periodic SWM variant."""

import numpy as np
import pytest

from repro import ExecutionMode, OptimizationConfig, reference_run, simulate, t3d
from repro.programs import swm_periodic


def test_every_transfer_is_periodic():
    prog = swm_periodic.build(
        config=swm_periodic.SMALL_CONFIG, opt=OptimizationConfig.full()
    )
    descs = prog.all_descriptors()
    assert descs
    assert all(d.wrap for d in descs)


@pytest.mark.parametrize("lib", ["pvm", "shmem"])
def test_numerics_match_reference(lib):
    base = swm_periodic.build(config=swm_periodic.SMALL_CONFIG)
    ref = reference_run(base)
    prog = swm_periodic.build(
        config=swm_periodic.SMALL_CONFIG, opt=OptimizationConfig.full()
    )
    res = simulate(prog, t3d(16, lib), ExecutionMode.NUMERIC)
    for name in ("P", "U", "V"):
        assert np.allclose(res.array(name), ref.array(name))


def test_every_rank_participates_in_every_transfer():
    """On the torus there are no edge processors: the per-rank dynamic
    counts are identical everywhere."""
    prog = swm_periodic.build(
        config=swm_periodic.SMALL_CONFIG, opt=OptimizationConfig.full()
    )
    res = simulate(prog, t3d(16), ExecutionMode.TIMING)
    assert res.dynamic_comms.min() == res.dynamic_comms.max() > 0


def test_torus_moves_more_messages_than_bounded_mesh():
    """A periodic axis transfer involves every processor pair around the
    ring (16 messages on a 4x4 mesh), where the bounded variant's edge
    column has no partner (12 messages)."""
    from repro.programs import swm

    periodic = simulate(
        swm_periodic.build(
            config=swm_periodic.SMALL_CONFIG, opt=OptimizationConfig.full()
        ),
        t3d(16),
        ExecutionMode.TIMING,
    )
    bounded = simulate(
        swm.build(config=swm.SMALL_CONFIG, opt=OptimizationConfig.full()),
        t3d(16),
        ExecutionMode.TIMING,
    )
    per_transfer_periodic = (
        periodic.instrument.total_messages / periodic.instrument.dynamic_comms.max()
    )
    per_transfer_bounded = (
        bounded.instrument.total_messages / bounded.instrument.dynamic_comms.max()
    )
    assert per_transfer_periodic > per_transfer_bounded


def test_maxlat_still_keeps_every_combination():
    """The phase structure is unchanged, so the SWM heuristic signature
    carries over to the torus."""
    cc = swm_periodic.build(
        config=swm_periodic.SMALL_CONFIG, opt=OptimizationConfig.rr_cc()
    )
    ml = swm_periodic.build(
        config=swm_periodic.SMALL_CONFIG,
        opt=OptimizationConfig.full_max_latency(),
    )
    assert len(ml.all_descriptors()) == len(cc.all_descriptors())
