"""Tests for the classic-kernel corpus (jacobi, rbgs, multigrid).

Each kernel earns its place by exercising one optimizer axis the
paper's four benchmarks under-cover, and these tests pin that
*optimization signature* as exact static-transfer counts so a
regression in the corresponding pass shows up as a changed number, not
a vague slowdown:

=============  =====================================================
kernel         signature
=============  =====================================================
``jacobi``     redundancy removal halves the count (the residual
               re-reads the whole stencil in-block); combining and
               pipelining change nothing further
``rbgs``       rr removes only the frozen-coefficient re-reads and
               combining then merges the per-neighbour ``C@d``/``A@d``
               pairs — both passes contribute, separably
``multigrid``  intra-block rr finds *nothing* (every block reads each
               (array, direction) once); same-statement combining
               halves the count across three stencil strides
=============  =====================================================
"""

import numpy as np
import pytest

from repro import (
    ExecutionMode,
    OptimizationConfig,
    SimOptions,
    emit_c,
    reference_run,
    simulate,
    t3d,
)
from repro.comm import static_comm_count
from repro.programs import (
    BENCHMARKS,
    KERNELS,
    available_benchmarks,
    benchmark_source,
    build_benchmark,
    default_config,
    small_config,
    validate_benchmark,
)
from repro.errors import ExperimentError

#: static transfer counts per kernel under each optimization level
#: (small configs; counts are config-independent for these kernels)
SIGNATURES = {
    #           baseline  rr  rr+cc  cc_only
    "jacobi":    (8,       4,  4,     8),
    "rbgs":      (16,     12,  8,     8),
    "multigrid": (48,     48, 24,    24),
}


def _static(name, opt):
    return static_comm_count(
        build_benchmark(name, config=small_config(name), opt=opt)
    )


def test_kernels_registered_after_benchmarks():
    assert KERNELS == ("jacobi", "rbgs", "multigrid")
    assert available_benchmarks() == BENCHMARKS + KERNELS
    for name in KERNELS:
        assert validate_benchmark(name) == name


def test_unknown_name_error_lists_kernels_and_gen():
    with pytest.raises(ExperimentError, match="jacobi.*gen_<seed>"):
        validate_benchmark("heat3d")


@pytest.mark.parametrize("name", KERNELS)
def test_source_is_self_titled(name):
    assert f"program {name}" in benchmark_source(name)


@pytest.mark.parametrize("name", KERNELS)
def test_small_config_is_reduced(name):
    small = small_config(name)
    full = default_config(name)
    assert set(small) == set(full)
    assert all(small[k] <= full[k] for k in small)


@pytest.mark.parametrize("name", KERNELS)
def test_small_config_compiles_and_communicates(name):
    prog = build_benchmark(
        name, config=small_config(name), opt=OptimizationConfig.full()
    )
    emitted = emit_c(prog)
    assert emitted.comm_lines > 0


@pytest.mark.parametrize("name", sorted(SIGNATURES))
def test_optimization_signature(name):
    baseline, rr, rr_cc, cc_only = SIGNATURES[name]
    assert _static(name, OptimizationConfig.baseline()) == baseline
    assert _static(name, OptimizationConfig.rr_only()) == rr
    assert _static(name, OptimizationConfig.rr_cc()) == rr_cc
    assert _static(name, OptimizationConfig(cc=True)) == cc_only


def test_jacobi_rr_is_the_whole_win():
    """Combining and pipelining add nothing on top of rr — jacobi
    isolates the redundancy-removal pass."""
    assert _static("jacobi", OptimizationConfig.full()) == SIGNATURES["jacobi"][1]


def test_multigrid_rr_alone_finds_nothing():
    """Every multigrid block reads each (array, direction) exactly once,
    so intra-block rr must be a no-op — combining does all the work."""
    assert _static("multigrid", OptimizationConfig.rr_only()) == SIGNATURES["multigrid"][0]


def test_multigrid_declares_three_stride_levels():
    source = benchmark_source("multigrid")
    for stride in (1, 2, 4):
        assert f"[-{stride},  0]" in source


@pytest.mark.parametrize("name", KERNELS)
def test_fast_path_matches_oracle(name):
    machine = t3d(4, "pvm")
    program = build_benchmark(
        name, config=small_config(name), opt=OptimizationConfig.full()
    )
    fast = simulate(program, machine, options=SimOptions.timing(fast=True))
    slow = simulate(program, machine, options=SimOptions.timing(fast=False))
    assert fast.time == slow.time
    assert np.array_equal(fast.clocks, slow.clocks)


@pytest.mark.parametrize("name", KERNELS)
def test_optimized_numerics_match_reference(name):
    config = small_config(name)
    ref = reference_run(
        build_benchmark(name, config=config, opt=OptimizationConfig.baseline())
    )
    res = simulate(
        build_benchmark(name, config=config, opt=OptimizationConfig.full()),
        t3d(4, "pvm"),
        ExecutionMode.NUMERIC,
    )
    for array in sorted(ref.arrays):
        assert np.allclose(
            res.array(array), ref.array(array), rtol=1e-12, atol=1e-12
        ), f"{name}: {array} diverged"


def test_kernels_have_genuine_optimization_headroom():
    """Every kernel's full-pipeline time beats its baseline on the T3D —
    the composition study needs non-degenerate speedups to measure."""
    machine = t3d(16, "pvm")
    for name in KERNELS:
        config = small_config(name)
        t = {}
        for key, opt in (
            ("baseline", OptimizationConfig.baseline()),
            ("full", OptimizationConfig.full()),
        ):
            program = build_benchmark(name, config=config, opt=opt)
            t[key] = simulate(
                program, machine, options=SimOptions.timing()
            ).time
        assert t["full"] < t["baseline"], name
