"""Tests for the synthetic overhead benchmark (Figure 6)."""

import pytest

from repro.machine import paragon, t3d
from repro.programs.synthetic import (
    analytic_overhead,
    measured_overhead,
    ping_source,
)


class TestPingProgram:
    def test_generated_source_compiles_and_moves_right_bytes(self):
        from repro import ExecutionMode, OptimizationConfig, compile_program, simulate

        prog = compile_program(
            ping_source(64, 512, 10, with_comm=True),
            "ping.zl",
            opt=OptimizationConfig.full(),
        )
        res = simulate(prog, t3d(2, "pvm"), ExecutionMode.TIMING)
        # 10 reps x 2 transfers x 64 doubles x 8 bytes
        assert res.instrument.total_bytes == 10 * 2 * 64 * 8

    def test_control_program_has_no_communication(self):
        from repro import ExecutionMode, OptimizationConfig, compile_program, simulate

        prog = compile_program(
            ping_source(64, 512, 10, with_comm=False),
            "ping.zl",
            opt=OptimizationConfig.full(),
        )
        res = simulate(prog, t3d(2, "pvm"), ExecutionMode.TIMING)
        assert res.dynamic_comm_count == 0


class TestMeasuredMatchesAnalytic:
    @pytest.mark.parametrize(
        "factory,lib",
        [
            (t3d, "pvm"),
            (paragon, "nx"),
            (paragon, "nx_async"),
            (paragon, "nx_callback"),
        ],
    )
    def test_message_passing_exact(self, factory, lib):
        sizes = (8, 512, 2048)
        measured = measured_overhead(factory, lib, sizes, reps=100)
        analytic = analytic_overhead(factory, lib, sizes)
        for m, a in zip(measured, analytic):
            assert m.exposed_seconds == pytest.approx(a.exposed_seconds, rel=0.02)

    def test_shmem_close_with_flag_transit(self):
        # the measured shmem curve adds the raw-latency flag transit
        sizes = (8, 2048)
        measured = measured_overhead(t3d, "shmem", sizes, reps=100)
        analytic = analytic_overhead(t3d, "shmem", sizes)
        raw = t3d(2, "shmem").network.raw
        for m, a in zip(measured, analytic):
            assert m.exposed_seconds == pytest.approx(
                a.exposed_seconds + raw, rel=0.05
            )


class TestFigure6Properties:
    def test_knee_in_measured_curve(self):
        points = measured_overhead(t3d, "pvm", (128, 512, 1024), reps=100)
        assert points[0].exposed_seconds == pytest.approx(
            points[1].exposed_seconds, rel=1e-6
        )
        assert points[2].exposed_seconds > points[1].exposed_seconds

    def test_shmem_below_pvm_at_small_sizes(self):
        pvm = measured_overhead(t3d, "pvm", (64,), reps=100)[0]
        shm = measured_overhead(t3d, "shmem", (64,), reps=100)[0]
        assert shm.exposed_seconds < pvm.exposed_seconds
        # "about 10% less"
        assert shm.exposed_seconds / pvm.exposed_seconds == pytest.approx(
            0.9, abs=0.05
        )
