"""Tests for the four whole-program benchmarks.

Every benchmark, under every optimization configuration and both T3D
libraries, must produce numerics identical to the sequential reference —
the load-bearing correctness property of the whole reproduction — and
must exhibit the count structure the paper's tables are built on.
"""

import numpy as np
import pytest

from repro import ExecutionMode, OptimizationConfig, reference_run, simulate, t3d
from repro.programs import BENCHMARKS, build_benchmark, small_config

CONFIGS = {
    "baseline": OptimizationConfig.baseline(),
    "rr": OptimizationConfig.rr_only(),
    "cc": OptimizationConfig.rr_cc(),
    "pl": OptimizationConfig.full(),
    "pl_maxlat": OptimizationConfig.full_max_latency(),
}

#: representative arrays to compare per benchmark
CHECK_ARRAYS = {
    "tomcatv": ("X", "Y", "RX", "RY"),
    "swm": ("P", "U", "V"),
    "simple": ("E", "P", "T", "RXc"),
    "sp": ("U1", "U3", "U5", "R1"),
}


@pytest.fixture(scope="module")
def references():
    return {
        name: reference_run(build_benchmark(name, config=small_config(name)))
        for name in BENCHMARKS
    }


@pytest.mark.parametrize("bench", BENCHMARKS)
@pytest.mark.parametrize("key", list(CONFIGS))
@pytest.mark.parametrize("lib", ["pvm", "shmem"])
def test_numerics_match_reference(bench, key, lib, references):
    prog = build_benchmark(bench, config=small_config(bench), opt=CONFIGS[key])
    res = simulate(prog, t3d(16, lib), ExecutionMode.NUMERIC)
    ref = references[bench]
    for array in CHECK_ARRAYS[bench]:
        assert np.allclose(
            res.array(array), ref.array(array), rtol=1e-10, atol=1e-10
        ), f"{bench}/{key}/{lib}: array {array} diverged"


@pytest.mark.parametrize("bench", BENCHMARKS)
def test_static_count_progression(bench):
    """baseline >= rr >= maxlat >= cc, with strict gains at each paper-
    relevant step."""
    counts = {}
    for key in ("baseline", "rr", "cc", "pl", "pl_maxlat"):
        prog = build_benchmark(bench, config=small_config(bench), opt=CONFIGS[key])
        counts[key] = len(prog.all_descriptors())
    assert counts["baseline"] > counts["rr"] > counts["cc"]
    assert counts["pl"] == counts["cc"]
    assert counts["cc"] <= counts["pl_maxlat"] <= counts["rr"]


@pytest.mark.parametrize("bench", BENCHMARKS)
def test_dynamic_count_progression(bench):
    dyn = {}
    for key in ("baseline", "rr", "cc", "pl_maxlat"):
        prog = build_benchmark(bench, config=small_config(bench), opt=CONFIGS[key])
        dyn[key] = simulate(
            prog, t3d(16), ExecutionMode.TIMING
        ).dynamic_comm_count
    assert dyn["baseline"] >= dyn["rr"] >= dyn["pl_maxlat"] >= dyn["cc"]
    assert dyn["baseline"] > dyn["cc"]


class TestTomcatvStructure:
    def test_maxlat_combines_nothing(self):
        """The paper's Table 1: pl-with-max-latency counts equal rr's."""
        rr = build_benchmark(
            "tomcatv", config=small_config("tomcatv"), opt=CONFIGS["rr"]
        )
        ml = build_benchmark(
            "tomcatv", config=small_config("tomcatv"), opt=CONFIGS["pl_maxlat"]
        )
        assert len(ml.all_descriptors()) == len(rr.all_descriptors())

    def test_paper_scale_counts(self):
        """At paper scale the engineered per-iteration ratios hold:
        rr/baseline ~ 0.97 and cc/baseline ~ 1/3 (Table 1: 0.970, 0.327)."""
        base = simulate(
            build_benchmark("tomcatv", opt=CONFIGS["baseline"]),
            t3d(64),
            ExecutionMode.TIMING,
        ).dynamic_comm_count
        rr = simulate(
            build_benchmark("tomcatv", opt=CONFIGS["rr"]),
            t3d(64),
            ExecutionMode.TIMING,
        ).dynamic_comm_count
        cc = simulate(
            build_benchmark("tomcatv", opt=CONFIGS["cc"]),
            t3d(64),
            ExecutionMode.TIMING,
        ).dynamic_comm_count
        assert rr / base == pytest.approx(0.97, abs=0.01)
        assert cc / base == pytest.approx(1 / 3, abs=0.02)


class TestSwmStructure:
    def test_maxlat_keeps_every_combination(self):
        """The paper's Table 2: max-latency counts equal max-combining's."""
        cc = build_benchmark("swm", config=small_config("swm"), opt=CONFIGS["cc"])
        ml = build_benchmark(
            "swm", config=small_config("swm"), opt=CONFIGS["pl_maxlat"]
        )
        assert len(ml.all_descriptors()) == len(cc.all_descriptors())


class TestSimpleStructure:
    def test_maxlat_strictly_between(self):
        """The paper's Table 3: max-latency sits strictly between rr and
        cc, statically and dynamically."""
        cfg = small_config("simple")
        counts = {}
        for key in ("rr", "cc", "pl_maxlat"):
            prog = build_benchmark("simple", config=cfg, opt=CONFIGS[key])
            counts[key] = len(prog.all_descriptors())
        assert counts["cc"] < counts["pl_maxlat"] < counts["rr"]


class TestSpStructure:
    def test_z_sweeps_generate_no_communication(self):
        """SP's defining property on a 2-D mesh: the local third dimension
        never communicates."""
        prog = build_benchmark("sp", config=small_config("sp"), opt=CONFIGS["baseline"])
        for desc in prog.all_descriptors():
            offsets = desc.direction.offsets
            assert offsets[0] != 0 or offsets[1] != 0

    def test_maxlat_runs_for_sp(self):
        """The paper could not run SP under max-latency (library bug);
        the reproduction can."""
        prog = build_benchmark("sp", config=small_config("sp"), opt=CONFIGS["pl_maxlat"])
        res = simulate(prog, t3d(16), ExecutionMode.TIMING)
        assert res.time > 0


@pytest.mark.parametrize("bench", BENCHMARKS)
def test_shmem_direction_matches_paper(bench):
    """Figure 10(b): SHMEM helps SWM and SIMPLE, hurts TOMCATV and SP.
    Checked at paper scale (the structural property needs the full mesh)."""
    prog = build_benchmark(bench, opt=CONFIGS["pl"])
    t_pvm = simulate(prog, t3d(64, "pvm"), ExecutionMode.TIMING).time
    t_shm = simulate(prog, t3d(64, "shmem"), ExecutionMode.TIMING).time
    if bench in ("swm", "simple"):
        assert t_shm < t_pvm
    else:
        assert t_shm > t_pvm
