"""Tests of the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import main
from tests.conftest import MINI_SOURCE


@pytest.fixture
def mini_file(tmp_path):
    path = tmp_path / "mini.zl"
    path.write_text(MINI_SOURCE)
    return str(path)


def test_compile_prints_pseudo_c(mini_file, capsys):
    assert main(["compile", mini_file]) == 0
    out = capsys.readouterr().out
    assert "SR(A, east);" in out
    assert "excluding communication" in out


def test_compile_respects_config_override(mini_file, capsys):
    main(["compile", mini_file, "--config", "n=4"])
    out = capsys.readouterr().out
    assert "_i1 <= 4" in out


def test_run_reports_counts(mini_file, capsys):
    assert main(["run", mini_file, "--procs", "4"]) == 0
    out = capsys.readouterr().out
    assert "dynamic comms" in out
    assert "Cray T3D" in out


def test_run_numeric_mode(mini_file, capsys):
    assert main(["run", mini_file, "--procs", "4", "--numeric"]) == 0


def test_run_on_paragon(mini_file, capsys):
    assert main(["run", mini_file, "--machine", "paragon", "--procs", "2"]) == 0
    out = capsys.readouterr().out
    assert "Paragon" in out


def test_figure6_subcommand(capsys):
    assert main(["figure6", "--reps", "20"]) == 0
    out = capsys.readouterr().out
    assert "pvm" in out and "shmem" in out


def test_bad_config_syntax(mini_file):
    with pytest.raises(SystemExit):
        main(["compile", mini_file, "--config", "n:4"])
