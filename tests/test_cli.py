"""Tests of the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import main
from tests.conftest import MINI_SOURCE


@pytest.fixture
def mini_file(tmp_path):
    path = tmp_path / "mini.zl"
    path.write_text(MINI_SOURCE)
    return str(path)


def test_compile_prints_pseudo_c(mini_file, capsys):
    assert main(["compile", mini_file]) == 0
    out = capsys.readouterr().out
    assert "SR(A, east);" in out
    assert "excluding communication" in out


def test_compile_respects_config_override(mini_file, capsys):
    main(["compile", mini_file, "--config", "n=4"])
    out = capsys.readouterr().out
    assert "_i1 <= 4" in out


def test_run_reports_counts(mini_file, capsys):
    assert main(["run", mini_file, "--procs", "4"]) == 0
    out = capsys.readouterr().out
    assert "dynamic comms" in out
    assert "Cray T3D" in out


def test_run_numeric_mode(mini_file, capsys):
    assert main(["run", mini_file, "--procs", "4", "--numeric"]) == 0


def test_run_on_paragon(mini_file, capsys):
    assert main(["run", mini_file, "--machine", "paragon", "--procs", "2"]) == 0
    out = capsys.readouterr().out
    assert "Paragon" in out


def test_figure6_subcommand(capsys):
    assert main(["figure6", "--reps", "20"]) == 0
    out = capsys.readouterr().out
    assert "pvm" in out and "shmem" in out


def test_bad_config_syntax(mini_file):
    with pytest.raises(SystemExit):
        main(["compile", mini_file, "--config", "n:4"])


def test_config_accepts_scientific_notation(mini_file, capsys):
    # 1e1 == 10: an integral float is a valid integer-config override
    # (this used to crash in --config parsing before reaching the front end)
    assert main(["compile", mini_file, "--config", "n=1e1"]) == 0
    out = capsys.readouterr().out
    assert "_i1 <= 10" in out


def test_bad_config_value_exits_cleanly(mini_file):
    with pytest.raises(SystemExit, match="config value"):
        main(["compile", mini_file, "--config", "n=ten"])


def test_experiments_engine_flags(tmp_path, capsys):
    cache_dir = tmp_path / "cache"
    telemetry = tmp_path / "telemetry.json"
    argv = [
        "experiments",
        "--bench", "swm",
        "--procs", "16",
        "--config", "n=16",
        "--config", "nsteps=3",
        "--jobs", "2",
        "--cache-dir", str(cache_dir),
        "--telemetry", str(telemetry),
    ]
    assert main(argv) == 0
    cold = capsys.readouterr().out
    assert "Figure 8" in cold and "Table 1 — swm" in cold
    assert telemetry.exists()
    assert cache_dir.exists()

    # warm re-run over the cache renders byte-identical tables
    assert main(argv) == 0
    assert capsys.readouterr().out == cold


def test_passes_lists_the_registry(capsys):
    assert main(["passes"]) == 0
    out = capsys.readouterr().out
    for name in ("redundancy", "interblock", "combining", "pipelining"):
        assert name in out
    assert "requires redundancy" in out
    assert "terminal" in out


def test_passes_dumps_a_key_pipeline(capsys):
    assert main(["passes", "--key", "pl_maxlat"]) == 0
    out = capsys.readouterr().out
    assert "redundancy -> combining[max_latency] -> pipelining" in out

    assert main(["passes", "--key", "baseline"]) == 0
    assert "(empty)" in capsys.readouterr().out


def test_experiments_explain_appends_attribution(tmp_path, capsys):
    assert main([
        "experiments", "--bench", "swm", "--procs", "16",
        "--config", "n=16", "--config", "nsteps=2",
        "--no-cache", "--cache-dir", str(tmp_path), "--explain",
    ]) == 0
    out = capsys.readouterr().out
    assert "Figure 8, by pass" in out
    assert "Per-pass attribution" in out
    assert "combining" in out and "share" in out


def test_experiments_no_cache_leaves_no_cache_dir(tmp_path, capsys):
    cache_dir = tmp_path / "cache"
    assert main([
        "experiments", "--bench", "swm", "--procs", "16",
        "--config", "n=16", "--config", "nsteps=2",
        "--no-cache", "--cache-dir", str(cache_dir),
    ]) == 0
    assert not cache_dir.exists()
