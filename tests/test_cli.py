"""Tests of the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import main
from tests.conftest import MINI_SOURCE


@pytest.fixture
def mini_file(tmp_path):
    path = tmp_path / "mini.zl"
    path.write_text(MINI_SOURCE)
    return str(path)


def test_compile_prints_pseudo_c(mini_file, capsys):
    assert main(["compile", mini_file]) == 0
    out = capsys.readouterr().out
    assert "SR(A, east);" in out
    assert "excluding communication" in out


def test_compile_respects_config_override(mini_file, capsys):
    main(["compile", mini_file, "--config", "n=4"])
    out = capsys.readouterr().out
    assert "_i1 <= 4" in out


def test_run_reports_counts(mini_file, capsys):
    assert main(["run", mini_file, "--procs", "4"]) == 0
    out = capsys.readouterr().out
    assert "dynamic comms" in out
    assert "Cray T3D" in out


def test_run_numeric_mode(mini_file, capsys):
    assert main(["run", mini_file, "--procs", "4", "--numeric"]) == 0


def test_run_on_paragon(mini_file, capsys):
    assert main(["run", mini_file, "--machine", "paragon", "--procs", "2"]) == 0
    out = capsys.readouterr().out
    assert "Paragon" in out


def test_figure6_subcommand(capsys):
    assert main(["figure6", "--reps", "20"]) == 0
    out = capsys.readouterr().out
    assert "pvm" in out and "shmem" in out


def test_bad_config_syntax(mini_file):
    with pytest.raises(SystemExit):
        main(["compile", mini_file, "--config", "n:4"])


def test_config_accepts_scientific_notation(mini_file, capsys):
    # 1e1 == 10: an integral float is a valid integer-config override
    # (this used to crash in --config parsing before reaching the front end)
    assert main(["compile", mini_file, "--config", "n=1e1"]) == 0
    out = capsys.readouterr().out
    assert "_i1 <= 10" in out


def test_bad_config_value_exits_cleanly(mini_file):
    with pytest.raises(SystemExit, match="config value"):
        main(["compile", mini_file, "--config", "n=ten"])


def test_experiments_engine_flags(tmp_path, capsys):
    cache_dir = tmp_path / "cache"
    telemetry = tmp_path / "telemetry.json"
    argv = [
        "experiments",
        "--bench", "swm",
        "--procs", "16",
        "--config", "n=16",
        "--config", "nsteps=3",
        "--jobs", "2",
        "--cache-dir", str(cache_dir),
        "--telemetry", str(telemetry),
    ]
    assert main(argv) == 0
    cold = capsys.readouterr().out
    assert "Figure 8" in cold and "Table 1 — swm" in cold
    assert telemetry.exists()
    assert cache_dir.exists()

    # warm re-run over the cache renders byte-identical tables
    assert main(argv) == 0
    assert capsys.readouterr().out == cold


def test_passes_lists_the_registry(capsys):
    assert main(["passes"]) == 0
    out = capsys.readouterr().out
    for name in ("redundancy", "interblock", "combining", "pipelining"):
        assert name in out
    assert "requires redundancy" in out
    assert "terminal" in out


def test_passes_dumps_a_key_pipeline(capsys):
    assert main(["passes", "--key", "pl_maxlat"]) == 0
    out = capsys.readouterr().out
    assert "redundancy -> combining[max_latency] -> pipelining" in out

    assert main(["passes", "--key", "baseline"]) == 0
    assert "(empty)" in capsys.readouterr().out


def test_experiments_explain_appends_attribution(tmp_path, capsys):
    assert main([
        "experiments", "--bench", "swm", "--procs", "16",
        "--config", "n=16", "--config", "nsteps=2",
        "--no-cache", "--cache-dir", str(tmp_path), "--explain",
    ]) == 0
    out = capsys.readouterr().out
    assert "Figure 8, by pass" in out
    assert "Per-pass attribution" in out
    assert "combining" in out and "share" in out


def test_trace_writes_perfetto_and_jsonl(tmp_path, capsys):
    import json

    trace = tmp_path / "trace.json"
    jsonl = tmp_path / "events.jsonl"
    assert main([
        "trace", "swm", "--out", str(trace), "--jsonl", str(jsonl),
        "--procs", "4", "--ranks", "2",
        "--config", "n=16", "--config", "nsteps=2",
    ]) == 0
    out = capsys.readouterr().out
    assert "trace written" in out and "bridged timelines" in out

    doc = json.loads(trace.read_text())
    events = doc["traceEvents"]
    span_names = {e["name"] for e in events if e["ph"] == "X" and e["pid"] == 1}
    assert "compile" in span_names
    assert any(n.startswith("pass:") for n in span_names)
    counter_names = {e["name"] for e in events if e["ph"] == "C"}
    assert "engine.result_cache.miss" in counter_names
    # bridged per-rank timelines land under their own process
    assert {e["tid"] for e in events if e["ph"] == "X" and e["pid"] == 2} == {0, 1}
    assert doc["otherData"]["metrics"]["counters"]["engine.result_cache.miss"] == 6

    lines = [json.loads(line) for line in jsonl.read_text().splitlines()]
    assert {r["type"] for r in lines} >= {"span", "counter", "rank_event", "metrics"}


def test_trace_leaves_tracing_disabled_after(tmp_path):
    from repro.obs import core as obs

    assert main([
        "trace", "swm", "--out", str(tmp_path / "t.json"),
        "--procs", "4", "--ranks", "1",
        "--config", "n=16", "--config", "nsteps=2",
    ]) == 0
    assert not obs.enabled()


COMPARE_SCALE = [
    "--bench", "swm", "--procs", "4",
    "--config", "n=16", "--config", "nsteps=2",
]


def test_compare_update_then_clean_rerun(tmp_path, capsys):
    baseline = tmp_path / "baselines" / "swm.json"
    cache = ["--cache-dir", str(tmp_path / "cache")]
    assert main(
        ["compare", "--baseline", str(baseline), "--update"]
        + COMPARE_SCALE + cache
    ) == 0
    assert "baseline updated" in capsys.readouterr().out

    # identical rerun: exit 0, no drift; benchmarks/shape come from the
    # baseline itself (no --bench/--procs needed)
    code = main(
        ["compare", "--baseline", str(baseline),
         "--config", "n=16", "--config", "nsteps=2"] + cache
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "no drift from baseline" in out


def test_compare_detects_count_drift(tmp_path, capsys):
    import json

    baseline = tmp_path / "swm.json"
    cache = ["--cache-dir", str(tmp_path / "cache")]
    assert main(
        ["compare", "--baseline", str(baseline), "--update"]
        + COMPARE_SCALE + cache
    ) == 0
    capsys.readouterr()

    doc = json.loads(baseline.read_text())
    doc["benchmarks"]["swm"]["pl"]["total_messages"] += 7
    baseline.write_text(json.dumps(doc))
    code = main(
        ["compare", "--baseline", str(baseline),
         "--config", "n=16", "--config", "nsteps=2"] + cache
    )
    out = capsys.readouterr().out
    assert code == 1
    assert "swm/pl: total_messages" in out


def test_compare_missing_baseline_needs_update(tmp_path):
    with pytest.raises(SystemExit, match="does not exist"):
        main(["compare", "--baseline", str(tmp_path / "nope.json")]
             + COMPARE_SCALE)


def test_compare_rejects_corrupt_baseline(tmp_path):
    bad = tmp_path / "bad.json"
    bad.write_text("{ nope")
    with pytest.raises(SystemExit, match="not valid JSON"):
        main(["compare", "--baseline", str(bad)] + COMPARE_SCALE)


def test_experiments_no_cache_leaves_no_cache_dir(tmp_path, capsys):
    cache_dir = tmp_path / "cache"
    assert main([
        "experiments", "--bench", "swm", "--procs", "16",
        "--config", "n=16", "--config", "nsteps=2",
        "--no-cache", "--cache-dir", str(cache_dir),
    ]) == 0
    assert not cache_dir.exists()


# ---------------------------------------------------------------------------
# sweep subcommand
# ---------------------------------------------------------------------------

SWEEP_SCALE = [
    "--bench", "simple",
    "--keys", "baseline", "cc",
    "--nprocs", "4",
    "--config", "n=16", "--config", "niters=2", "--config", "ncond=2",
    "--jobs", "2",
]


def test_sweep_smoke_and_golden(tmp_path, capsys):
    import csv
    import json

    csv_path = tmp_path / "scaling.csv"
    json_path = tmp_path / "scaling.json"
    argv = [
        "sweep", "--axis", "net.latency=1e-6,1e-4",
        "--csv", str(csv_path), "--json", str(json_path),
        "--cache-dir", str(tmp_path / "cache"),
    ] + SWEEP_SCALE
    assert main(argv) == 0
    out = capsys.readouterr().out
    assert "sweep: 2 points x 2 cells" in out
    assert "Scaling sweep" in out
    assert "scaling CSV written" in out and "scaling JSON written" in out

    with csv_path.open() as fh:
        rows = list(csv.reader(fh))
    assert rows[0] == [
        "net.latency", "benchmark", "experiment", "library", "variant",
        "static", "dynamic", "time", "vs_baseline", "vs_prev",
    ]
    assert len(rows) == 5  # header + 2 points x 2 keys

    doc = json.loads(json_path.read_text())
    assert doc["schema"] == 1
    assert doc["axes"] == [{"name": "net.latency", "values": [1e-6, 1e-4]}]
    assert doc["keys"] == ["baseline", "cc"]
    assert len(doc["rows"]) == 4


def test_sweep_default_cache_reuses_results(tmp_path, capsys):
    cache = ["--cache-dir", str(tmp_path / "cache")]
    argv = ["sweep", "--axis", "nprocs=2,4"] + SWEEP_SCALE + cache
    assert main(argv) == 0
    assert "4 cache hits" not in capsys.readouterr().out
    assert main(argv) == 0
    assert "4 cells, 4 cache hits, 0 simulated" in capsys.readouterr().out


def test_sweep_no_cache_reruns(tmp_path, capsys):
    cache_dir = tmp_path / "cache"
    argv = (
        ["sweep", "--axis", "nprocs=2,4", "--no-cache",
         "--cache-dir", str(cache_dir)]
        + SWEEP_SCALE
    )
    assert main(argv) == 0
    out = capsys.readouterr().out
    assert "0 cache hits, 4 simulated" in out
    assert not cache_dir.exists()


def test_sweep_bad_axis_exits_cleanly(tmp_path):
    with pytest.raises(SystemExit, match="sweep:"):
        main(["sweep", "--axis", "net.color=1,2"] + SWEEP_SCALE)
    with pytest.raises(SystemExit, match="sweep:"):
        main(["sweep", "--axis", "nprocs=0,4"] + SWEEP_SCALE)


def test_sweep_nprocs_zero_exits_cleanly(tmp_path):
    with pytest.raises(SystemExit, match="positive"):
        main([
            "sweep", "--axis", "net.latency=1e-6,1e-4",
            "--bench", "simple", "--nprocs", "0",
        ])


def test_experiments_nprocs_zero_exits_cleanly(tmp_path):
    with pytest.raises(SystemExit, match="positive"):
        main([
            "experiments", "--bench", "simple", "--nprocs", "0",
            "--config", "n=16", "--config", "niters=2", "--config", "ncond=2",
            "--no-cache", "--cache-dir", str(tmp_path),
        ])


# ---------------------------------------------------------------------------
# unified flags: --set / --nprocs / --batched across subcommands
# ---------------------------------------------------------------------------


def test_sweep_batched_flags(tmp_path, capsys):
    cache = ["--cache-dir", str(tmp_path / "a")]
    argv = ["sweep", "--axis", "net.latency=1e-6,1e-4", "--batched"]
    assert main(argv + SWEEP_SCALE + cache) == 0
    out = capsys.readouterr().out
    assert "4 cells" in out
    cache = ["--cache-dir", str(tmp_path / "b")]
    argv = ["sweep", "--axis", "net.latency=1e-6,1e-4", "--no-batched"]
    assert main(argv + SWEEP_SCALE + cache) == 0
    assert "4 cells" in capsys.readouterr().out


def test_sweep_batched_with_nprocs_axis_exits_cleanly(tmp_path):
    with pytest.raises(SystemExit, match="sweep:.*nprocs"):
        main(
            ["sweep", "--axis", "nprocs=2,4", "--batched",
             "--cache-dir", str(tmp_path / "cache")]
            + SWEEP_SCALE
        )


def test_experiments_set_override_moves_times(tmp_path, capsys):
    base = [
        "experiments", "--bench", "simple", "--nprocs", "4",
        "--config", "n=16", "--config", "niters=2", "--config", "ncond=2",
        "--no-cache", "--cache-dir", str(tmp_path),
    ]
    assert main(base) == 0
    plain = capsys.readouterr().out
    assert main(base + ["--set", "net.latency=0.01"]) == 0
    slowed = capsys.readouterr().out
    assert plain != slowed


def test_experiments_bad_set_exits_cleanly(tmp_path):
    with pytest.raises(SystemExit, match="--set"):
        main([
            "experiments", "--bench", "simple",
            "--set", "net.latency:0.01",
        ])


def test_trace_accepts_set_and_nprocs(tmp_path, capsys):
    out = tmp_path / "trace.json"
    argv = [
        "trace", "simple", "--out", str(out),
        "--nprocs", "4", "--ranks", "1",
        "--set", "net.latency=1e-5",
        "--config", "n=16", "--config", "niters=2", "--config", "ncond=2",
    ]
    assert main(argv) == 0
    assert out.exists()
    assert "bridged timelines:  1 ranks" in capsys.readouterr().out


def test_experiments_sqlite_backend_and_sharded_dispatch(tmp_path, capsys):
    argv = [
        "experiments",
        "--bench", "swm",
        "--procs", "16",
        "--config", "n=16", "--config", "nsteps=3",
        "--cache-dir", str(tmp_path / "cache"),
        "--cache-backend", "sqlite",
        "--dispatch", "sharded",
    ]
    assert main(argv) == 0
    cold = capsys.readouterr().out
    assert "Figure 8" in cold
    assert (tmp_path / "cache" / "cache.sqlite").exists()
    # warm re-run over the sqlite store renders byte-identical tables
    assert main(argv) == 0
    assert capsys.readouterr().out == cold


def test_shards_flag_requires_sharded_dispatch(tmp_path):
    with pytest.raises(SystemExit, match="--dispatch sharded"):
        main([
            "experiments", "--bench", "swm", "--shards", "4",
            "--cache-dir", str(tmp_path / "cache"),
        ])


def test_cache_stats_and_prune(tmp_path, capsys):
    cache_dir = str(tmp_path / "cache")
    assert main([
        "experiments", "--bench", "swm", "--procs", "16",
        "--config", "n=16", "--config", "nsteps=3",
        "--cache-dir", cache_dir, "--cache-backend", "sqlite",
    ]) == 0
    capsys.readouterr()

    assert main([
        "cache", "stats", "--cache-dir", cache_dir,
        "--cache-backend", "sqlite",
    ]) == 0
    out = capsys.readouterr().out
    assert "sqlite backend" in out and "6 entries" in out

    # prune refuses to empty the store without an explicit filter
    with pytest.raises(SystemExit, match="--older-than"):
        main([
            "cache", "prune", "--cache-dir", cache_dir,
            "--cache-backend", "sqlite",
        ])
    assert main([
        "cache", "prune", "--cache-dir", cache_dir,
        "--cache-backend", "sqlite", "--older-than", "7d",
    ]) == 0
    assert "pruned 0 records" in capsys.readouterr().out
    assert main([
        "cache", "prune", "--cache-dir", cache_dir,
        "--cache-backend", "sqlite", "--all",
    ]) == 0
    assert "pruned 6 records" in capsys.readouterr().out


def test_cache_prune_rejects_bad_duration(tmp_path):
    with pytest.raises(SystemExit):
        main([
            "cache", "prune", "--cache-dir", str(tmp_path),
            "--older-than", "fortnight",
        ])


# ---------------------------------------------------------------------------
# distributed tracing and live progress (repro trace / repro top)
# ---------------------------------------------------------------------------


def test_trace_sharded_dispatch_stitches_one_trace(tmp_path, capsys):
    import json

    trace = tmp_path / "trace.json"
    jsonl = tmp_path / "events.jsonl"
    assert main([
        "trace", "swm", "--out", str(trace), "--jsonl", str(jsonl),
        "--procs", "4", "--ranks", "1",
        "--config", "n=16", "--config", "nsteps=2",
        "--dispatch", "sharded", "--shards", "2", "--jobs", "2",
    ]) == 0
    out = capsys.readouterr().out
    assert "trace id:" in out
    assert "dispatch:           sharded (2 shards, 6 dispatched jobs)" in out

    records = [json.loads(line) for line in jsonl.read_text().splitlines()]
    spans = [r for r in records if r["type"] == "span"]
    # one trace id across coordinator and every pool worker
    assert len({r["trace"] for r in spans}) == 1
    worker_spans = [r for r in spans if "worker_pid" in r]
    assert len({r["worker_pid"] for r in worker_spans}) >= 1
    assert sum(r["name"] == "job" for r in worker_spans) == 6
    # every span's parent chain reaches the root "trace" span
    by_id = {r["id"]: r for r in spans}
    root = next(r for r in spans if r["name"] == "trace")
    for span in spans:
        seen = set()
        while span.get("parent"):
            assert span["parent"] not in seen
            seen.add(span["parent"])
            span = by_id[span["parent"]]
        assert span["id"] == root["id"]

    # the Perfetto document shows each worker as its own process
    doc = json.loads(trace.read_text())
    names = {
        e["args"]["name"]
        for e in doc["traceEvents"]
        if e.get("ph") == "M" and e.get("name") == "process_name"
    }
    assert "host" in names
    assert any(n.startswith("worker ") for n in names)


def test_trace_with_http_cache_captures_server_spans(tmp_path, capsys):
    import json

    from repro.engine import CacheServer, SqliteCache

    server = CacheServer(SqliteCache(tmp_path / "cache")).start()
    jsonl = tmp_path / "events.jsonl"
    try:
        assert main([
            "trace", "swm", "--out", str(tmp_path / "t.json"),
            "--jsonl", str(jsonl),
            "--procs", "4", "--ranks", "1",
            "--config", "n=16", "--config", "nsteps=2",
            "--cache-backend", "http", "--cache-url", server.url,
        ]) == 0
    finally:
        server.close()
    capsys.readouterr()
    records = [json.loads(line) for line in jsonl.read_text().splitlines()]
    spans = [r for r in records if r["type"] == "span"]
    names = {r["name"] for r in spans}
    assert {"cache.http.get", "cache.http.put", "cache.server.get",
            "cache.server.put"} <= names
    assert len({r["trace"] for r in spans}) == 1


def test_top_streams_a_finished_study(tmp_path, capsys):
    import json
    import urllib.request

    from repro.programs import small_config
    from repro.serve import ReproServer, ServeApp

    app = ServeApp(cache_dir=tmp_path / "cache", cache_backend="sqlite")
    server = ReproServer(app).start()
    try:
        payload = {
            "benchmarks": ["swm"],
            "keys": ["baseline", "cc"],
            "nprocs": 16,
            "config_overrides": {"swm": small_config("swm")},
        }
        req = urllib.request.Request(
            server.url + "/v1/study",
            data=json.dumps(payload).encode(),
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        with urllib.request.urlopen(req, timeout=300) as resp:
            doc = json.loads(resp.read())

        # base-URL mode: finds the newest study and replays it
        assert main(["top", server.url]) == 0
        out = capsys.readouterr().out
        assert "watching study" in out
        assert out.count(" done\n") >= 1 or "baseline" in out
        assert "done: 2 cells, 2 executed, 0 cache hits" in out

        # direct stream-URL mode
        assert main(["top", f"{server.url}/v1/progress/{doc['key']}"]) == 0
        assert "done: 2 cells" in capsys.readouterr().out
    finally:
        from repro.obs import core as obs

        server.close()
        obs.shutdown()


def test_top_fails_cleanly_when_unreachable(capsys):
    assert main(["top", "http://127.0.0.1:9", "--timeout", "1"]) == 1
    assert "cannot reach" in capsys.readouterr().err


def test_frontier_refine_localizes_crossover(tmp_path, capsys):
    assert main([
        "frontier",
        "--refine", "prim.*.per_byte_beyond=0:1e-6",
        "--tol", "1e-8",
        "--coarse", "5",
        "--nprocs", "16",
        "--bench", "simple",
        "--keys", "baseline", "rr", "cc",
        "--set", "prim.*.knee_bytes=32",
        "--config", "n=16", "--config", "niters=2", "--config", "ncond=2",
        "--cache-dir", str(tmp_path / "cache"),
        "--json", str(tmp_path / "refined.json"),
        "--csv", str(tmp_path / "refined.csv"),
    ]) == 0
    out = capsys.readouterr().out
    assert "Refined prim.*.per_byte_beyond" in out
    assert "Localized crossovers" in out
    assert "win->loss" in out
    assert (tmp_path / "refined.json").exists()
    assert (tmp_path / "refined.csv").exists()


def test_frontier_dense_two_axis_map(tmp_path, capsys):
    assert main([
        "frontier",
        "--axis", "prim.*.per_byte_beyond=0,5e-7,1e-6",
        "--axis", "net.latency=1e-5,5e-5",
        "--nprocs", "16",
        "--bench", "simple",
        "--keys", "baseline", "cc",
        "--config", "n=16", "--config", "niters=2", "--config", "ncond=2",
        "--cache-dir", str(tmp_path / "cache"),
    ]) == 0
    out = capsys.readouterr().out
    assert "Winner grid" in out


def test_frontier_requires_exactly_one_mode(tmp_path):
    with pytest.raises(SystemExit):
        main(["frontier", "--bench", "simple"])
    with pytest.raises(SystemExit):
        main([
            "frontier",
            "--refine", "net.latency=0:1",
            "--tol", "1e-3",
            "--axis", "net.latency=1,2",
            "--axis", "net.bandwidth=1e8,2e8",
        ])


def test_fit_synthetic_recovers_latency(tmp_path, capsys):
    assert main([
        "fit",
        "--synthetic", "net.latency=3.2e-5",
        "--nprocs", "16",
        "--keys", "baseline",
        "--config", "n=16", "--config", "niters=2", "--config", "ncond=2",
        "--rounds", "10",
        "--json", str(tmp_path / "fit.json"),
        "--write-target", str(tmp_path / "target.json"),
    ]) == 0
    out = capsys.readouterr().out
    assert "Fitted t3d/16" in out
    assert "Recovery vs synthetic ground truth" in out
    assert (tmp_path / "fit.json").exists()
    assert (tmp_path / "target.json").exists()


def test_fit_from_target_file(tmp_path, capsys):
    assert main([
        "fit",
        "--synthetic", "net.latency=3.2e-5",
        "--nprocs", "16",
        "--keys", "baseline",
        "--config", "n=16", "--config", "niters=2", "--config", "ncond=2",
        "--rounds", "2",
        "--write-target", str(tmp_path / "target.json"),
    ]) == 0
    capsys.readouterr()
    assert main([
        "fit", str(tmp_path / "target.json"),
        "--fit", "net.latency",
        "--rounds", "4",
    ]) == 0
    assert "Fitted t3d/16" in capsys.readouterr().out


def test_fit_rejects_target_plus_synthetic(tmp_path):
    with pytest.raises(SystemExit):
        main([
            "fit", str(tmp_path / "nope.json"),
            "--synthetic", "net.latency=1e-5",
        ])


# ---------------------------------------------------------------------------
# generate / compose (the synthetic-corpus and composition-study commands)
# ---------------------------------------------------------------------------


def test_generate_prints_deterministic_source(capsys):
    assert main(["generate", "7"]) == 0
    first = capsys.readouterr().out
    assert "program gen_7;" in first
    assert main(["generate", "7"]) == 0
    assert capsys.readouterr().out == first


def test_generate_check_passes(capsys):
    assert main(["generate", "1", "--check"]) == 0
    assert "ok gen_1" in capsys.readouterr().out


def test_generate_batch_to_directory(tmp_path, capsys):
    out = tmp_path / "corpus"
    assert main(["generate", "4", "--count", "3", "--out", str(out)]) == 0
    assert sorted(p.name for p in out.iterdir()) == [
        "gen_4.zl", "gen_5.zl", "gen_6.zl"
    ]
    assert "program gen_5;" in (out / "gen_5.zl").read_text()


def test_generate_profile_steers_output(capsys):
    assert main(["generate", "0", "--profile", "phases=3",
                 "--profile", "n=12"]) == 0
    out = capsys.readouterr().out
    assert "config n      : integer = 12;" in out
    assert "procedure phase2" in out


def test_generate_rejects_bad_profile():
    with pytest.raises(SystemExit, match="unknown field"):
        main(["generate", "0", "--profile", "bogus=3"])
    with pytest.raises(SystemExit, match="expects int"):
        main(["generate", "0", "--profile", "phases=many"])
    with pytest.raises(SystemExit):
        main(["generate", "0", "--profile", "arrays=1"])


def test_generate_rejects_negative_seed():
    with pytest.raises(SystemExit, match="non-negative"):
        main(["generate", "-3"])


def test_compose_over_kernels_and_generated(tmp_path, capsys):
    csv_path = tmp_path / "comp.csv"
    json_path = tmp_path / "comp.json"
    assert main([
        "compose", "--small", "--nprocs", "4",
        "--bench", "jacobi", "--bench", "rbgs",
        "--gen", "1", "--gen-seed", "2",
        "--variant", "net.latency=6e-5",
        "--no-cache",
        "--csv", str(csv_path), "--json", str(json_path),
    ]) == 0
    out = capsys.readouterr().out
    assert "Composition study — 3 programs x 2 variants" in out
    assert "Composition factor (measured/predicted)" in out
    assert "gen_2" in out
    header = csv_path.read_text().splitlines()[0]
    assert header.startswith("benchmark,machine,nprocs,variant,overrides,t_baseline")
    import json as _json

    doc = _json.loads(json_path.read_text())
    assert doc["schema"] == 1
    assert doc["benchmarks"] == ["jacobi", "rbgs", "gen_2"]


def test_compose_rejects_unknown_benchmark(capsys):
    with pytest.raises(SystemExit):
        main(["compose", "--bench", "linpack"])


def test_study_commands_accept_kernels_and_gen_names(tmp_path, capsys):
    # the --bench relaxation: sweep takes a kernel, with composition keys
    assert main([
        "sweep", "--axis", "nprocs=4,8",
        "--bench", "jacobi", "--keys", "baseline", "cc_only",
        "--config", "n=12", "--config", "niters=1",
        "--no-cache",
    ]) == 0
    out = capsys.readouterr().out
    assert "jacobi" in out and "cc_only" in out


def test_passes_explains_composition_keys(capsys):
    assert main(["passes", "--key", "cc_only"]) == 0
    out = capsys.readouterr().out
    assert "combining communication alone" in out
    assert "combining[max_combining]" in out

    assert main(["passes", "--key", "pl_only"]) == 0
    assert "pipelining" in capsys.readouterr().out


def test_experiments_renders_measured_only_table_for_corpus_names(
    tmp_path, capsys
):
    # regression: table_full crashed with KeyError('gen_1') for any
    # benchmark the paper has no table for — kernels and generated
    # programs must render measured-only tables instead
    assert main([
        "experiments", "--bench", "gen_1", "--nprocs", "4",
        "--config", "n=12", "--config", "niters=1",
        "--cache-dir", str(tmp_path / "cache"),
    ]) == 0
    out = capsys.readouterr().out
    assert "Table 1 — gen_1" in out
    assert "scaled" in out
    assert "paper static" not in out
