"""Tests for baseline snapshots and regression diffs."""

import json

import pytest

from repro import BaselineError, run_study
from repro.obs import (
    BASELINE_SCHEMA,
    diff_baseline,
    format_drifts,
    load_baseline,
    snapshot_study,
    write_baseline,
)
from repro.programs import small_config


@pytest.fixture(scope="module")
def study(tmp_path_factory):
    return run_study(
        benchmarks=("swm",),
        keys=("baseline", "cc"),
        nprocs=16,
        config_overrides={"swm": small_config("swm")},
        cache_dir=tmp_path_factory.mktemp("cache"),
    )


@pytest.fixture
def snapshot(study):
    return snapshot_study(study, note="test")


class TestSnapshot:
    def test_shape(self, snapshot):
        assert snapshot["schema"] == BASELINE_SCHEMA
        assert snapshot["kind"] == "repro-baseline"
        assert snapshot["machine"] == "t3d"
        assert snapshot["nprocs"] == 16
        assert snapshot["note"] == "test"
        cell = snapshot["benchmarks"]["swm"]["cc"]
        assert set(cell) == {
            "static_count",
            "dynamic_count",
            "total_messages",
            "total_bytes",
            "execution_time",
            "sim.fastpath.compiled",
            "sim.fastpath.extrapolated_trips",
            "sim.fastpath.fallbacks",
        }

    def test_fastpath_engagement_is_pinned(self, snapshot):
        # a TIMING study runs the compiled path by default; the baseline
        # records that fact so a silent disengagement drifts
        cell = snapshot["benchmarks"]["swm"]["cc"]
        assert cell["sim.fastpath.compiled"] == 1
        changed = json.loads(json.dumps(snapshot))
        changed["benchmarks"]["swm"]["cc"]["sim.fastpath.compiled"] = 0
        drifts = diff_baseline(changed, snapshot)
        assert [d.field for d in drifts] == ["sim.fastpath.compiled"]

    def test_empty_study_rejected(self):
        class Empty:
            telemetry = []

        with pytest.raises(BaselineError, match="empty"):
            snapshot_study(Empty())


class TestRoundTrip:
    def test_write_load_diff_is_clean(self, tmp_path, snapshot):
        path = write_baseline(tmp_path / "sub" / "b.json", snapshot)
        loaded = load_baseline(path)
        assert diff_baseline(snapshot, loaded) == []

    def test_load_rejects_bad_json(self, tmp_path):
        path = tmp_path / "b.json"
        path.write_text("{ not json")
        with pytest.raises(BaselineError, match="not valid JSON"):
            load_baseline(path)

    def test_load_rejects_missing_file(self, tmp_path):
        with pytest.raises(BaselineError, match="cannot read"):
            load_baseline(tmp_path / "missing.json")

    def test_load_rejects_foreign_documents(self, tmp_path):
        path = tmp_path / "b.json"
        path.write_text(json.dumps({"schema": 2, "records": []}))
        with pytest.raises(BaselineError, match="not a repro baseline"):
            load_baseline(path)

    def test_load_rejects_future_schema(self, tmp_path, snapshot):
        path = write_baseline(
            tmp_path / "b.json", dict(snapshot, schema=BASELINE_SCHEMA + 1)
        )
        with pytest.raises(BaselineError, match="schema"):
            load_baseline(path)


def _copy(snapshot):
    return json.loads(json.dumps(snapshot))


class TestDiff:
    def test_count_drift_is_exact(self, snapshot):
        current = _copy(snapshot)
        current["benchmarks"]["swm"]["cc"]["total_messages"] += 1
        (drift,) = diff_baseline(current, snapshot)
        assert (drift.benchmark, drift.experiment) == ("swm", "cc")
        assert drift.field == "total_messages"
        assert "expected" in drift.describe()

    def test_time_within_tolerance_passes(self, snapshot):
        current = _copy(snapshot)
        cell = current["benchmarks"]["swm"]["cc"]
        cell["execution_time"] *= 1.03
        assert diff_baseline(current, snapshot, time_tolerance=0.05) == []

    def test_time_outside_tolerance_drifts(self, snapshot):
        current = _copy(snapshot)
        cell = current["benchmarks"]["swm"]["cc"]
        cell["execution_time"] *= 1.08
        drifts = diff_baseline(current, snapshot, time_tolerance=0.05)
        assert [d.field for d in drifts] == ["execution_time"]

    def test_missing_cell_drifts(self, snapshot):
        current = _copy(snapshot)
        del current["benchmarks"]["swm"]["cc"]
        drifts = diff_baseline(current, snapshot)
        assert [(d.experiment, d.field) for d in drifts] == [("cc", "cell")]

    def test_missing_benchmark_drifts(self, snapshot):
        current = _copy(snapshot)
        current["benchmarks"] = {}
        (drift,) = diff_baseline(current, snapshot)
        assert (drift.benchmark, drift.actual) == ("swm", "missing")

    def test_machine_shape_drifts(self, snapshot):
        current = dict(_copy(snapshot), nprocs=64)
        drifts = diff_baseline(current, snapshot)
        assert [(d.field, d.expected, d.actual) for d in drifts] == [
            ("nprocs", 16, 64)
        ]

    def test_baseline_may_cover_a_subset(self, snapshot):
        baseline = _copy(snapshot)
        del baseline["benchmarks"]["swm"]["cc"]
        # the run has extra cells the baseline never recorded: fine
        assert diff_baseline(snapshot, baseline) == []

    def test_format_drifts(self, snapshot):
        assert format_drifts([]) == "no drift from baseline"
        current = _copy(snapshot)
        current["benchmarks"]["swm"]["cc"]["static_count"] += 1
        out = format_drifts(diff_baseline(current, snapshot))
        assert out.startswith("1 drift from baseline:")
        assert "swm/cc: static_count" in out
