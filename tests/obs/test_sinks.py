"""Tests for the JSONL and Chrome trace-event sinks."""

import json

import pytest

from repro.obs import ChromeTraceSink, JsonlSink, MemorySink
from repro.obs import core as obs
from repro.obs.sinks import HOST_PID, SIM_PID
from repro.runtime.timing import TraceEvent


@pytest.fixture(autouse=True)
def tracing_off():
    obs.shutdown()
    yield
    obs.shutdown()


class TestJsonl:
    def test_one_json_object_per_line(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with obs.recording(JsonlSink(path)):
            with obs.span("compile", source="x.zl"):
                obs.add("c", 2)
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        # counter emits inside the span, span on exit, metrics at close
        assert [r["type"] for r in lines] == ["counter", "span", "metrics"]
        assert lines[1]["attrs"] == {"source": "x.zl"}

    def test_empty_trace_leaves_a_valid_empty_log(self, tmp_path):
        path = tmp_path / "events.jsonl"
        sink = JsonlSink(path)
        sink.close()
        assert path.exists() and path.read_text() == ""

    def test_unserializable_attrs_fall_back_to_str(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with obs.recording(JsonlSink(path)):
            obs.event("x", where=object())
        record = json.loads(path.read_text().splitlines()[0])
        assert "object object" in record["attrs"]["where"]


class TestChromeTrace:
    def _run(self, tmp_path):
        path = tmp_path / "trace.json"
        sink = ChromeTraceSink(path)
        with obs.recording(sink) as rec:
            with obs.span("compile", source="x.zl"):
                obs.add("engine.result_cache.miss")
            obs.event("warning", message="m")
            obs.gauge("g", 2.5)
            rec.bridge_rank_trace(
                [TraceEvent(0.0, 0.25, "compute", "A")], rank=1
            )
        return path, json.loads(path.read_text())

    def test_writes_a_loadable_document_on_close(self, tmp_path):
        _, doc = self._run(tmp_path)
        assert set(doc) == {"traceEvents", "displayTimeUnit", "otherData"}
        assert doc["otherData"]["generator"] == "repro.obs"

    def test_span_becomes_complete_event_in_microseconds(self, tmp_path):
        _, doc = self._run(tmp_path)
        (span,) = [e for e in doc["traceEvents"] if e["name"] == "compile"]
        assert span["ph"] == "X"
        assert (span["pid"], span["tid"]) == (HOST_PID, 0)
        assert span["dur"] >= 0
        assert span["args"] == {"source": "x.zl"}

    def test_counters_and_gauges_become_counter_tracks(self, tmp_path):
        _, doc = self._run(tmp_path)
        tracks = {e["name"]: e for e in doc["traceEvents"] if e["ph"] == "C"}
        assert tracks["engine.result_cache.miss"]["args"] == {"value": 1}
        assert tracks["g"]["args"] == {"value": 2.5}

    def test_events_become_instants(self, tmp_path):
        _, doc = self._run(tmp_path)
        (instant,) = [e for e in doc["traceEvents"] if e["ph"] == "i"]
        assert instant["name"] == "warning"
        assert instant["args"] == {"message": "m"}

    def test_rank_events_get_their_own_process(self, tmp_path):
        _, doc = self._run(tmp_path)
        (ev,) = [
            e
            for e in doc["traceEvents"]
            if e["ph"] == "X" and e.get("pid") == SIM_PID
        ]
        assert (ev["tid"], ev["name"]) == (1, "compute")
        assert ev["ts"] == 0.0 and ev["dur"] == pytest.approx(0.25e6)

    def test_metadata_names_processes_and_rank_threads(self, tmp_path):
        _, doc = self._run(tmp_path)
        meta = {
            (e["pid"], e.get("tid"), e["name"]): e["args"]["name"]
            for e in doc["traceEvents"]
            if e["ph"] == "M"
        }
        assert meta[(HOST_PID, None, "process_name")] == "host"
        assert meta[(SIM_PID, 1, "thread_name")] == "rank 1"

    def test_final_metrics_land_in_other_data(self, tmp_path):
        _, doc = self._run(tmp_path)
        metrics = doc["otherData"]["metrics"]
        assert metrics["counters"]["engine.result_cache.miss"] == 1
        assert metrics["counters"]["sim.trace.rank1.events"] == 1

    def test_document_available_before_close(self):
        sink = ChromeTraceSink("/nonexistent/never-written.json")
        sink.emit({"type": "event", "name": "x", "ts": 0.0})
        doc = sink.document()
        assert any(e["ph"] == "i" for e in doc["traceEvents"])


class TestJsonlFlushEvery:
    def test_rejects_nonpositive(self, tmp_path):
        with pytest.raises(ValueError, match="flush_every"):
            JsonlSink(tmp_path / "e.jsonl", flush_every=0)

    def test_line_buffered_mode_is_readable_before_close(self, tmp_path):
        path = tmp_path / "e.jsonl"
        sink = JsonlSink(path, flush_every=1)
        try:
            sink.emit({"type": "event", "name": "a", "ts": 0.0})
            sink.emit({"type": "event", "name": "b", "ts": 1.0})
            # flushed per record: both lines visible while still open
            lines = [json.loads(l) for l in path.read_text().splitlines()]
            assert [r["name"] for r in lines] == ["a", "b"]
        finally:
            sink.close()

    def test_default_buffering_flushes_only_at_close(self, tmp_path):
        path = tmp_path / "e.jsonl"
        sink = JsonlSink(path)
        try:
            sink.emit({"type": "event", "name": "a", "ts": 0.0})
            assert path.read_text() == ""  # small record: still buffered
        finally:
            sink.close()
        assert json.loads(path.read_text())["name"] == "a"

    def test_batched_flush_interval(self, tmp_path):
        path = tmp_path / "e.jsonl"
        sink = JsonlSink(path, flush_every=3)
        try:
            for i in range(5):
                sink.emit({"type": "event", "name": str(i), "ts": 0.0})
            assert len(path.read_text().splitlines()) == 3  # one flush at 3
        finally:
            sink.close()
        assert len(path.read_text().splitlines()) == 5

    def test_killed_writer_leaves_valid_jsonl(self, tmp_path):
        """SIGKILL a process streaming through ``flush_every=1`` — every
        fully flushed line must parse (the final line may be cut)."""
        import os
        import signal
        import subprocess
        import sys
        import time

        path = tmp_path / "killed.jsonl"
        code = (
            "import itertools, sys\n"
            "from repro.obs import JsonlSink\n"
            "from repro.obs import core as obs\n"
            f"obs.configure(JsonlSink({str(path)!r}, flush_every=1))\n"
            "for i in itertools.count():\n"
            "    obs.event('tick', i=i, payload='x' * 64)\n"
        )
        proc = subprocess.Popen(
            [sys.executable, "-c", code],
            env=dict(os.environ, PYTHONPATH="src"),
            cwd=os.path.dirname(os.path.dirname(os.path.dirname(__file__))),
        )
        try:
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                if path.exists() and path.stat().st_size > 4096:
                    break
                time.sleep(0.05)
            else:
                pytest.fail("writer produced no output in time")
        finally:
            proc.send_signal(signal.SIGKILL)
            proc.wait(timeout=30)
        lines = path.read_text().splitlines()
        assert len(lines) > 10
        complete = lines if path.read_text().endswith("\n") else lines[:-1]
        records = [json.loads(line) for line in complete]  # all parse
        # and the stream is the contiguous event sequence, nothing lost
        assert [r["attrs"]["i"] for r in records] == list(range(len(records)))


class TestQueueSink:
    def test_unfiltered_passes_everything(self):
        from repro.obs import QueueSink

        got = []

        class Q:
            def put(self, r):
                got.append(r)

        with obs.recording(QueueSink(Q())):
            obs.add("c")
            obs.event("e")
        assert [r["type"] for r in got] == ["counter", "event", "metrics"]

    def test_type_and_trace_filters(self):
        from repro.obs import QueueSink

        got = []

        class Q:
            def put(self, r):
                got.append(r)

        sink = QueueSink(Q(), types=("event",), trace="run1")
        with obs.recording(sink):
            obs.event("wrong-trace")
            with obs.bind_trace("run1"):
                obs.add("counter-filtered")
                obs.event("kept")
        assert [r["name"] for r in got] == ["kept"]

    def test_feeds_a_real_queue(self):
        import queue

        from repro.obs import QueueSink

        q = queue.Queue()
        with obs.recording(QueueSink(q, types=("event",))):
            obs.event("x")
        assert q.get_nowait()["name"] == "x"


class TestFanOut:
    def test_all_sinks_receive_every_record(self, tmp_path):
        mem = MemorySink()
        jsonl = JsonlSink(tmp_path / "e.jsonl")
        with obs.recording(mem, jsonl):
            obs.add("c")
        lines = (tmp_path / "e.jsonl").read_text().splitlines()
        assert len(lines) == len(mem.records) == 2  # counter + metrics


class TestConcurrency:
    def test_threaded_emission_stays_valid_jsonl(self, tmp_path):
        """Background emitters (the HTTP cache server, progress
        streams) share the recorder with the host thread; fan-out
        serializes, so the log stays one valid JSON object per line."""
        import threading

        path = tmp_path / "events.jsonl"
        recorder = obs.configure(JsonlSink(path))

        def hammer(tag):
            for i in range(200):
                recorder.event(f"{tag}.tick", i=i)

        threads = [
            threading.Thread(target=hammer, args=(f"t{n}",))
            for n in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        obs.shutdown()
        lines = path.read_text().splitlines()
        records = [json.loads(line) for line in lines]
        assert sum(r["type"] == "event" for r in records) == 800

    def test_sink_churn_never_skips_a_stable_sink(self):
        """Run-scoped sinks attach/detach while other runs emit (the
        serve progress pattern).  A bare list.remove during an emit
        iteration can shift a later sink over the iterator's cursor and
        silently drop its record — add_sink/remove_sink must serialize
        against emit so the stable sink sees every event."""
        import threading

        recorder = obs.configure()
        stable = MemorySink()
        recorder.add_sink(stable)
        stop = threading.Event()

        def churn():
            # keep a transient sink cycling *before* the stable one in
            # the list, maximizing the remove-under-iteration window
            while not stop.is_set():
                transient = MemorySink()
                with recorder._emit_lock:
                    recorder.sinks.insert(0, transient)
                recorder.remove_sink(transient)

        churner = threading.Thread(target=churn)
        churner.start()
        try:
            for i in range(2000):
                recorder.event("tick", i=i)
        finally:
            stop.set()
            churner.join()
            obs.shutdown()
        ticks = [r for r in stable.records if r.get("name") == "tick"]
        assert len(ticks) == 2000

    def test_emit_after_close_is_dropped(self, tmp_path):
        sink = JsonlSink(tmp_path / "late.jsonl")
        sink.emit({"type": "event", "name": "a"})
        sink.close()
        sink.emit({"type": "event", "name": "late"})  # no raise
        records = [
            json.loads(line)
            for line in (tmp_path / "late.jsonl").read_text().splitlines()
        ]
        assert [r["name"] for r in records] == ["a"]

    def test_fork_does_not_duplicate_buffered_records(self, tmp_path):
        """A forked child inherits the sink's unflushed buffer; the
        before-fork flush leaves it nothing to write twice."""
        import multiprocessing

        path = tmp_path / "events.jsonl"
        recorder = obs.configure(JsonlSink(path))
        for i in range(50):
            recorder.event("parent.tick", i=i)  # sits in the buffer
        ctx = multiprocessing.get_context("fork")
        proc = ctx.Process(target=obs.discard)
        proc.start()
        proc.join()
        assert proc.exitcode == 0
        obs.shutdown()
        records = [
            json.loads(line) for line in path.read_text().splitlines()
        ]
        assert sum(r.get("name") == "parent.tick" for r in records) == 50
