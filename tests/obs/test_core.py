"""Tests for the recorder: spans, metrics, and the global switch."""

import pytest

from repro.obs import (
    MemorySink,
    Metrics,
    Recorder,
    recording,
)
from repro.obs import core as obs
from repro.runtime.timing import TraceEvent


@pytest.fixture(autouse=True)
def tracing_off():
    """Every test starts and ends with tracing disabled."""
    obs.shutdown()
    yield
    obs.shutdown()


class TestDisabled:
    def test_disabled_by_default(self):
        assert not obs.enabled()
        assert obs.current() is None

    def test_null_span_is_shared_and_inert(self):
        a = obs.span("compile")
        b = obs.span("simulate", nprocs=64)
        assert a is b  # one stateless object, no allocation per site
        with a:
            pass

    def test_helpers_are_noops_when_disabled(self):
        obs.event("x")
        obs.add("c", 3)
        obs.gauge("g", 1.5)
        obs.observe("h", 0.1)
        assert obs.counters() == {}
        assert obs.bridge_rank_trace([TraceEvent(0.0, 1.0, "compute")], 0) == 0

    def test_shutdown_when_off_returns_none(self):
        assert obs.shutdown() is None


class TestMetrics:
    def test_counters_accumulate(self):
        m = Metrics()
        m.add("a")
        m.add("a", 4)
        assert m.counters == {"a": 5}

    def test_gauge_keeps_last(self):
        m = Metrics()
        m.set_gauge("g", 1)
        m.set_gauge("g", 7)
        assert m.gauges == {"g": 7.0}

    def test_histogram_summary(self):
        m = Metrics()
        for v in (3.0, 1.0, 2.0):
            m.observe("h", v)
        assert m.histograms["h"] == {"count": 3, "sum": 6.0, "min": 1.0, "max": 3.0}

    def test_snapshot_is_a_copy(self):
        m = Metrics()
        m.add("a")
        snap = m.snapshot()
        m.add("a")
        assert snap["counters"] == {"a": 1}


class TestRecorder:
    def test_span_records_nesting_depth(self):
        sink = MemorySink()
        with recording(sink):
            with obs.span("outer"):
                with obs.span("inner"):
                    pass
        # inner exits (and emits) first
        inner, outer = sink.spans()
        assert (inner["name"], inner["depth"]) == ("inner", 1)
        assert (outer["name"], outer["depth"]) == ("outer", 0)
        assert outer["dur"] >= inner["dur"]
        assert outer["ts"] <= inner["ts"]

    def test_span_attrs_and_error_flag(self):
        sink = MemorySink()
        with recording(sink):
            with pytest.raises(ValueError):
                with obs.span("work", benchmark="swm"):
                    raise ValueError("boom")
        (span,) = sink.spans("work")
        assert span["attrs"] == {"benchmark": "swm"}
        assert span["error"] == "ValueError"

    def test_counter_records_delta_and_running_total(self):
        sink = MemorySink()
        with recording(sink):
            obs.add("hits")
            obs.add("hits", 2)
        first, second = sink.of_type("counter")
        assert (first["delta"], first["value"]) == (1, 1)
        assert (second["delta"], second["value"]) == (2, 3)
        assert sink.counter_total("hits") == 3

    def test_zero_delta_add_is_skipped(self):
        sink = MemorySink()
        with recording(sink):
            obs.add("hits", 0)
        assert sink.of_type("counter") == []

    def test_final_metrics_record_emitted_on_close(self):
        sink = MemorySink()
        with recording(sink):
            obs.add("c", 2)
            obs.gauge("g", 1.0)
            obs.observe("h", 0.5)
        (final,) = sink.of_type("metrics")
        assert final["metrics"]["counters"] == {"c": 2}
        assert final["metrics"]["gauges"] == {"g": 1.0}
        assert final["metrics"]["histograms"]["h"]["count"] == 1

    def test_close_is_idempotent(self):
        sink = MemorySink()
        rec = Recorder([sink])
        rec.add("c")
        assert rec.close() == rec.close()
        assert len(sink.of_type("metrics")) == 1

    def test_bridge_rank_trace_forwards_model_time(self):
        sink = MemorySink()
        trace = [
            TraceEvent(0.0, 1.5, "compute", "A"),
            TraceEvent(1.5, 2.0, "send", "x"),
        ]
        with recording(sink) as rec:
            assert rec.bridge_rank_trace(trace, rank=3) == 2
        events = sink.of_type("rank_event")
        assert [e["kind"] for e in events] == ["compute", "send"]
        assert events[0] == {
            "type": "rank_event",
            "rank": 3,
            "kind": "compute",
            "label": "A",
            "ts": 0.0,
            "dur": 1.5,
            "trace": rec.trace_id,
        }
        assert rec.metrics.counters["sim.trace.rank3.events"] == 2


class TestSwitch:
    def test_configure_enables_and_shutdown_disables(self):
        sink = MemorySink()
        rec = obs.configure(sink)
        assert obs.current() is rec and obs.enabled()
        obs.add("c")
        snap = obs.shutdown()
        assert snap["counters"] == {"c": 1}
        assert not obs.enabled()

    def test_configure_closes_the_previous_recorder(self):
        first = MemorySink()
        obs.configure(first)
        obs.configure(MemorySink())
        assert len(first.of_type("metrics")) == 1  # closed, not leaked
        obs.shutdown()

    def test_recording_scopes_the_switch(self):
        with recording(MemorySink()):
            assert obs.enabled()
        assert not obs.enabled()

    def test_recording_survives_mid_scope_replacement(self):
        inner = MemorySink()
        with recording(MemorySink()):
            obs.configure(inner)  # someone else took over mid-scope
        # the scope closed its own recorder and left the usurper alone
        assert obs.enabled()
        obs.shutdown()
        assert len(inner.of_type("metrics")) == 1
