"""Tests for distributed tracing: context propagation, worker capture
stitching, server-side span adoption, and the Prometheus renderer."""

import json

import pytest

from repro.obs import MemorySink
from repro.obs import core as obs
from repro.obs import distributed
from repro.obs.distributed import TraceContext, render_prometheus


@pytest.fixture(autouse=True)
def tracing_off():
    obs.shutdown()
    obs.reset_warnings()
    yield
    obs.shutdown()
    obs.reset_warnings()


class TestTraceContext:
    def test_header_round_trip(self):
        ctx = TraceContext(trace_id="abc123", span_id="deadbeef:7")
        assert TraceContext.from_header(ctx.header()) == ctx

    def test_header_without_span(self):
        ctx = TraceContext(trace_id="abc123")
        assert ctx.header() == "abc123/"
        assert TraceContext.from_header(ctx.header()) == ctx

    @pytest.mark.parametrize("value", [None, "", "no-slash", "/onlyspan"])
    def test_malformed_headers_parse_to_none(self, value):
        assert TraceContext.from_header(value) is None

    def test_propagation_context_tracks_open_span(self):
        assert distributed.propagation_context() is None
        rec = obs.configure(MemorySink())
        ctx = distributed.propagation_context()
        assert ctx == TraceContext(trace_id=rec.trace_id, span_id=None)
        with rec.span("dispatch") as sp:
            ctx = distributed.propagation_context()
            assert ctx.trace_id == rec.trace_id
            assert ctx.span_id == sp.id


class TestSpanIdentity:
    def test_span_ids_are_unique_and_parented(self):
        sink = MemorySink()
        with obs.recording(sink):
            with obs.span("outer"):
                with obs.span("inner"):
                    pass
        spans = {r["name"]: r for r in sink.records if r["type"] == "span"}
        assert spans["outer"]["id"] != spans["inner"]["id"]
        assert spans["inner"]["parent"] == spans["outer"]["id"]
        assert "parent" not in spans["outer"]

    def test_top_level_span_parents_under_recorder_parent(self):
        sink = MemorySink()
        rec = obs.configure(sink, trace_id="t1", parent_span="root:1")
        with rec.span("job"):
            pass
        obs.shutdown()
        span = next(r for r in sink.records if r["type"] == "span")
        assert span["parent"] == "root:1"
        assert span["trace"] == "t1"

    def test_every_record_carries_the_trace_id(self):
        sink = MemorySink()
        with obs.recording(sink) as rec:
            obs.add("c")
            obs.event("e")
        assert all(r["trace"] == rec.trace_id for r in sink.records)

    def test_bind_trace_overrides_per_context(self):
        sink = MemorySink()
        with obs.recording(sink):
            with obs.bind_trace("run42", "parent:9"):
                obs.event("inside")
                with obs.span("work"):
                    pass
            obs.event("outside")
        by_name = {
            r.get("name"): r for r in sink.records if r["type"] != "metrics"
        }
        assert by_name["inside"]["trace"] == "run42"
        assert by_name["work"]["trace"] == "run42"
        assert by_name["work"]["parent"] == "parent:9"
        assert by_name["outside"]["trace"] != "run42"


class TestMetricsMerge:
    def test_counters_add_gauges_overwrite_histograms_combine(self):
        a = obs.Metrics()
        a.add("jobs", 2)
        a.set_gauge("g", 1.0)
        a.observe("h", 1.0)
        a.observe("h", 5.0)
        b = obs.Metrics()
        b.add("jobs", 3)
        b.add("only_b")
        b.set_gauge("g", 9.0)
        b.observe("h", 0.5)
        a.merge(b.snapshot())
        assert a.counters == {"jobs": 5, "only_b": 1}
        assert a.gauges == {"g": 9.0}
        assert a.histograms["h"] == {"count": 3, "sum": 6.5, "min": 0.5, "max": 5.0}

    def test_merge_into_empty_copies(self):
        a = obs.Metrics()
        b = obs.Metrics()
        b.observe("h", 2.0)
        a.merge(b.snapshot())
        assert a.histograms == {"h": {"count": 1, "sum": 2.0, "min": 2.0, "max": 2.0}}


class TestWorkerCapture:
    def test_no_capture_without_worker_init(self):
        assert distributed.begin_job_capture() is None

    def test_no_capture_when_a_recorder_is_live(self):
        distributed.worker_init("t1", "root:1")
        try:
            obs.configure(MemorySink())
            assert distributed.begin_job_capture() is None
        finally:
            distributed._WORKER_CONTEXT = None

    def test_worker_init_discards_an_inherited_recorder(self):
        # a forked pool worker inherits the coordinator's recorder; the
        # initializer must drop it (without flushing the parent's sinks)
        # so per-job captures start clean
        sink = MemorySink()
        obs.configure(sink)
        try:
            distributed.worker_init("t1", "root:1")
            assert not obs.enabled()
            assert all(r["type"] != "metrics" for r in sink.records)
            capture = distributed.begin_job_capture()
            assert capture is not None
            capture.finish()
        finally:
            distributed._WORKER_CONTEXT = None

    def test_capture_payload_carries_records_and_metrics(self):
        distributed.worker_init("coord-trace", "root:1")
        try:
            capture = distributed.begin_job_capture()
            with obs.span("job", benchmark="swm"):
                obs.add("sim.steps", 3)
            payload = capture.finish()
        finally:
            distributed._WORKER_CONTEXT = None
        assert not obs.enabled()  # the throwaway recorder is gone
        assert payload["pid"] > 0
        assert payload["metrics"]["counters"] == {"sim.steps": 3}
        span = next(r for r in payload["records"] if r["type"] == "span")
        assert span["trace"] == "coord-trace"
        assert span["parent"] == "root:1"
        # the metrics summary record travels via the registry, not records
        assert all(r["type"] != "metrics" for r in payload["records"])
        json.dumps(payload)  # must ride home inside a JSON job record

    def test_absorb_pops_and_stitches(self):
        distributed.worker_init("t", "root:1")
        try:
            capture = distributed.begin_job_capture()
            with obs.span("job"):
                obs.add("sim.steps")
            payload = capture.finish()
        finally:
            distributed._WORKER_CONTEXT = None
        sink = MemorySink()
        with obs.recording(sink) as rec:
            record = {"result": 1, "obs": payload}
            assert distributed.absorb(record) > 0
            assert "obs" not in record  # popped before caching/return
            assert rec.metrics.counters["sim.steps"] == 1
        stitched = next(r for r in sink.records if r["type"] == "span")
        assert stitched["worker_pid"] == payload["pid"]
        assert stitched["trace"] == "t"

    def test_absorb_without_payload_or_recorder_is_harmless(self):
        assert distributed.absorb(None) == 0
        assert distributed.absorb({"result": 1}) == 0
        assert distributed.absorb({"obs": {"records": [{"type": "event", "ts": 0}]}}) == 0

    def test_merge_worker_rebases_timestamps(self):
        sink = MemorySink()
        with obs.recording(sink) as rec:
            payload = {
                "pid": 1234,
                "wall_epoch": rec.wall_epoch + 10.0,
                "records": [{"type": "event", "name": "x", "ts": 0.5}],
                "metrics": {},
            }
            assert rec.merge_worker(payload) == 1
        stitched = next(r for r in sink.records if r.get("name") == "x")
        assert stitched["ts"] == pytest.approx(10.5)
        assert stitched["worker_pid"] == 1234


class TestWarnOnce:
    def test_deduplicates_per_process(self):
        sink = MemorySink()
        with obs.recording(sink):
            assert obs.warn_once("cache down", backend="http")
            assert not obs.warn_once("cache down")
            assert obs.warn_once("other thing")
        warnings = [r for r in sink.records if r.get("name") == "warning"]
        assert [w["attrs"]["message"] for w in warnings] == [
            "cache down",
            "other thing",
        ]

    def test_dedup_survives_tracing_off(self):
        assert not obs.warn_once("early")  # off: not emitted, but recorded
        with obs.recording(MemorySink()) as rec:
            assert not obs.warn_once("early")
        obs.reset_warnings()
        with obs.recording(MemorySink()):
            assert obs.warn_once("early")


class TestServerSpan:
    def test_noop_when_not_recording(self):
        with distributed.server_span("cache.server.get", "t/abc:1"):
            pass  # must not raise

    def test_adopts_caller_context(self):
        sink = MemorySink()
        with obs.recording(sink):
            with distributed.server_span(
                "cache.server.get", "caller-trace/abc:1", path="/records/x"
            ):
                pass
        span = next(r for r in sink.records if r["type"] == "span")
        assert span["trace"] == "caller-trace"
        assert span["parent"] == "abc:1"
        assert span["attrs"]["path"] == "/records/x"

    def test_plain_local_span_without_header(self):
        sink = MemorySink()
        with obs.recording(sink) as rec:
            with distributed.server_span("cache.server.get", None):
                pass
        span = next(r for r in sink.records if r["type"] == "span")
        assert span["trace"] == rec.trace_id


class TestHttpCacheTracing:
    def test_client_sends_trace_header_and_server_spans_adopt_it(self, tmp_path):
        from repro.engine import CacheServer, HttpCache, SqliteCache

        server = CacheServer(SqliteCache(tmp_path)).start()
        sink = MemorySink()
        try:
            with obs.recording(sink) as rec:
                cache = HttpCache(server.url)
                with rec.span("dispatch") as dispatch:
                    cache.get("0" * 40)
                server.close()  # joins handler threads: server spans land
            spans = {r["name"]: r for r in sink.records if r["type"] == "span"}
            # the in-process server handler recorded under the caller's
            # trace, parented beneath the client's open span chain
            assert spans["cache.server.get"]["trace"] == rec.trace_id
            client = spans["cache.http.get"]
            assert spans["cache.server.get"]["parent"] == client["id"]
            assert client["parent"] == dispatch.id
        finally:
            server.close()

    def test_unreachable_server_degrades_with_one_warning(self):
        from repro.engine import HttpCache

        sink = MemorySink()
        with obs.recording(sink) as rec:
            cache = HttpCache("http://127.0.0.1:9", timeout=0.2)
            assert cache.get("0" * 40) is None
            cache.put("0" * 40, {"schema": 1})
            assert cache.get("1" * 40) is None
            counters = rec.metrics.counters
            assert counters["cache.backend.degraded"] == 3
            assert counters["cache.backend.misses"] == 2
        warnings = [r for r in sink.records if r.get("name") == "warning"]
        assert len(warnings) == 1
        assert "degrading to misses" in warnings[0]["attrs"]["message"]
        assert warnings[0]["attrs"]["backend"] == "http"

    def test_http_404_is_a_plain_miss_not_degraded(self, tmp_path):
        from repro.engine import CacheServer, HttpCache, SqliteCache

        server = CacheServer(SqliteCache(tmp_path)).start()
        try:
            with obs.recording(MemorySink()) as rec:
                assert HttpCache(server.url).get("0" * 40) is None
                server.close()
                assert "cache.backend.degraded" not in rec.metrics.counters
                # one client-side miss; the in-process server's sqlite
                # backend shares the recorder and counts its own miss too
                assert rec.metrics.counters["cache.backend.misses"] == 2
        finally:
            server.close()


class TestEndToEndStitching:
    def test_sharded_study_with_http_cache_is_one_trace(self, tmp_path):
        """The tentpole acceptance path: coordinator, pool workers, and
        the cache server all land in one trace under the root span."""
        from repro import run_study
        from repro.engine import CacheServer, SqliteCache
        from repro.programs import small_config

        server = CacheServer(SqliteCache(tmp_path)).start()
        sink = MemorySink()
        try:
            with obs.recording(sink) as rec:
                with rec.span("trace") as root:
                    run_study(
                        benchmarks=("swm",),
                        keys=("baseline", "cc"),
                        nprocs=16,
                        config_overrides={"swm": small_config("swm")},
                        cache_url=server.url,
                        cache_backend="http",
                        dispatcher="sharded",
                        jobs=2,
                    )
                    server.close()  # joins handler threads inside the root
        finally:
            server.close()
        spans = [r for r in sink.records if r["type"] == "span"]
        assert {r["trace"] for r in spans} == {rec.trace_id}
        names = {r["name"] for r in spans}
        assert "cache.server.get" in names and "cache.server.put" in names
        assert any("worker_pid" in r for r in spans if r["name"] == "job")
        # every span reaches the root by walking parents
        by_id = {r["id"]: r for r in spans}

        def climbs_to_root(span):
            seen = set()
            while span.get("parent"):
                if span["parent"] in seen:
                    return False
                seen.add(span["parent"])
                span = by_id.get(span["parent"])
                if span is None:
                    return False
            return span["id"] == root.id or span["name"] == "trace"

        assert all(climbs_to_root(r) for r in spans if r["id"] != root.id)
        # exactly one terminal engine.job event per job
        events = [r for r in sink.records if r.get("name") == "engine.job"]
        assert len(events) == 2


class TestRenderPrometheus:
    def test_counters_get_total_suffix(self):
        text = render_prometheus({"counters": {"engine.dispatch.jobs": 6}})
        assert "# TYPE engine_dispatch_jobs_total counter" in text
        assert "engine_dispatch_jobs_total 6" in text
        assert text.endswith("\n")

    def test_gauges_and_histograms(self):
        text = render_prometheus(
            {
                "gauges": {"queue.depth": 2.5},
                "histograms": {
                    "job.secs": {"count": 3, "sum": 1.5, "min": 0.1, "max": 1.0}
                },
            }
        )
        assert "queue_depth 2.5" in text
        assert "# TYPE job_secs summary" in text
        assert "job_secs_count 3" in text
        assert "job_secs_sum 1.5" in text
        assert "job_secs_min 0.1" in text
        assert "job_secs_max 1.0" in text

    def test_names_are_sanitized(self):
        text = render_prometheus({"counters": {"9bad name-x": 1}})
        assert "_9bad_name_x_total 1" in text

    def test_empty_snapshot_renders_empty(self):
        assert render_prometheus({}) == ""
