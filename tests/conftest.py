"""Shared fixtures: small ZL programs and machines used across the suite.

Also pins the hypothesis settings profiles: ``ci`` (the default) is
fixed-seed and deadline-free so tier-1 runs are deterministic and never
flake on machine load; ``nightly`` spends more examples.  Select with
``HYPOTHESIS_PROFILE=nightly pytest ...``.
"""

from __future__ import annotations

import os

import pytest
from hypothesis import HealthCheck, settings

from repro import OptimizationConfig, compile_program, paragon, t3d

settings.register_profile(
    "ci",
    derandomize=True,
    deadline=None,
    max_examples=25,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.register_profile(
    "nightly",
    deadline=None,
    max_examples=200,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "ci"))

#: A minimal but representative program: setup, a stencil loop with
#: redundant/combinable/pipelinable communication, a reduction, a branch.
DEMO_SOURCE = """
program demo;

config n     : integer = 16;
config steps : integer = 4;

region R  = [1..n, 1..n];
region In = [2..n-1, 2..n-1];

direction east  = [ 0,  1];
direction west  = [ 0, -1];
direction north = [-1,  0];
direction south = [ 1,  0];

var A, B, C, D : [R] double;
var err : double;

procedure init();
begin
  [R] A := index1 * 0.25 + index2 * index2 * 0.01;
  [R] B := index2 - 0.5 * index1;
  [R] C := 0.0;
  [R] D := 0.0;
end;

procedure main();
begin
  init();
  for t := 1 to steps do
    [In] C := A@east - A@west;
    [In] D := B@east + 0.5 * B@west;
    [In] A := A + 0.25 * (C + D) + 0.125 * (A@east - A@west);
    [In] B := B + 0.1 * C;
  end;
  [In] err := max<< abs(C);
  if err > 100.0 then
    [In] C := C * (100.0 / err);
  end;
end;
"""

#: Tiny single-statement program for focused unit tests.
MINI_SOURCE = """
program mini;
config n : integer = 8;
region R  = [1..n, 1..n];
region In = [1..n, 1..n-1];
direction east = [0, 1];
var A, B : [R] double;
procedure main();
begin
  [R] A := index1 * 10.0 + index2;
  [In] B := A@east;
end;
"""


@pytest.fixture
def demo_source() -> str:
    return DEMO_SOURCE


@pytest.fixture
def mini_source() -> str:
    return MINI_SOURCE


@pytest.fixture
def demo_lowered():
    """The demo program, lowered but communication-free."""
    return compile_program(DEMO_SOURCE, "demo.zl")


@pytest.fixture
def demo_optimized():
    """The demo program under full optimization."""
    return compile_program(DEMO_SOURCE, "demo.zl", opt=OptimizationConfig.full())


@pytest.fixture
def mini_lowered():
    return compile_program(MINI_SOURCE, "mini.zl")


@pytest.fixture
def t3d4():
    """A 2x2 T3D partition (PVM)."""
    return t3d(4, "pvm")


@pytest.fixture
def t3d4_shmem():
    return t3d(4, "shmem")


@pytest.fixture
def t3d16():
    """A 4x4 T3D partition (PVM)."""
    return t3d(16, "pvm")


@pytest.fixture
def paragon2():
    return paragon(2, "nx")


def compile_demo(opt=None, **config):
    """Helper used by many tests: compile DEMO_SOURCE with overrides."""
    return compile_program(DEMO_SOURCE, "demo.zl", config=config or None, opt=opt)
