"""Property-based tests of the pass pipeline itself.

The optimizer's legality model claims that every *legal* subset of the
four paper passes has exactly one legal order, and that running any of
those pipelines preserves program semantics while its
:class:`~repro.comm.PipelineReport` exactly explains the static-count
delta.  These tests enumerate all 18 legal pipelines (3 removal states x
3 combining states x 2 placement states) against random ZL programs.
"""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings

from repro import (
    ExecutionMode,
    OptimizationConfig,
    compile_program,
    reference_run,
    simulate,
    t3d,
)
from repro.comm import PassPipeline, optimize_with_report, static_comm_count
from repro.errors import OptimizationError
from tests.property.test_optimizer_properties import (
    ARRAYS,
    FOOTER,
    HEADER,
    program_bodies,
)

PASS_ORDER = ("redundancy", "interblock", "combining", "pipelining")


def _legal_configs():
    """Every legal pass subset, as the OptimizationConfig compiling to it."""
    configs = []
    for rr, interblock in ((False, False), (True, False), (True, True)):
        for heuristic in (None, "max_combining", "max_latency"):
            for pl in (False, True):
                configs.append(
                    OptimizationConfig(
                        rr=rr,
                        rr_interblock=interblock,
                        cc=heuristic is not None,
                        combine_heuristic=heuristic or "max_combining",
                        pl=pl,
                    )
                )
    return configs


LEGAL_CONFIGS = _legal_configs()


def test_legal_subset_count():
    assert len(LEGAL_CONFIGS) == 18
    assert len({c.pipeline().signature() for c in LEGAL_CONFIGS}) == 18


def test_every_legal_subset_has_exactly_one_legal_order():
    """The canonical order constructs; every other permutation of the
    same passes is rejected at construction time."""
    for config in LEGAL_CONFIGS:
        pipeline = config.pipeline()
        names = [p.name for p in pipeline.passes]
        assert names == [n for n in PASS_ORDER if n in names]
        for perm in itertools.permutations(pipeline.passes):
            permuted = [p.name for p in perm]
            if permuted == names:
                continue
            with pytest.raises(OptimizationError):
                PassPipeline(perm)


@given(program_bodies())
@settings(max_examples=15, deadline=None)
def test_every_legal_pipeline_matches_reference(body):
    """Semantics: all 18 pipelines compute what the sequential reference
    computes, on random stencil programs."""
    source = HEADER + body + FOOTER
    ref = reference_run(compile_program(source, "fuzz.zl"))
    for config in LEGAL_CONFIGS:
        program = compile_program(source, "fuzz.zl", opt=config)
        res = simulate(program, t3d(4, "pvm"), ExecutionMode.NUMERIC)
        for array in ARRAYS:
            assert np.allclose(
                res.array(array), ref.array(array), rtol=1e-12, atol=1e-12
            ), f"{config.pipeline().describe()}: {array} diverged\n{source}"


@given(program_bodies())
@settings(max_examples=15, deadline=None)
def test_every_report_reconciles_with_static_counts(body):
    """Instrumentation: for every pipeline, planned equals the naive
    static count, final equals the optimized static count, and the
    per-pass removal/merge totals account for the whole delta — with the
    post-pass verifier enabled throughout."""
    source = HEADER + body + FOOTER
    lowered = compile_program(source, "fuzz.zl")
    naive = static_comm_count(
        compile_program(source, "fuzz.zl", opt=OptimizationConfig.baseline())
    )
    for config in LEGAL_CONFIGS:
        program, report = optimize_with_report(lowered, config, verify=True)
        assert report.signature == config.pipeline().signature()
        assert report.planned == naive
        assert report.final == static_comm_count(program)
        assert report.reconciles(), config.pipeline().describe()
