"""Property-based tests of the machine cost models and variant layer.

These pin the structural facts the sweep subsystem leans on: the
piecewise-linear overhead model is monotone and continuous at its knee,
the mesh factorization is exact and most-square, and deriving a variant
never mutates the calibrated base machine.
"""

from __future__ import annotations

import math

from hypothesis import given
from hypothesis import strategies as st

import pytest

from repro import MachineError, paragon, t3d
from repro.machine import (
    PrimitiveCost,
    apply_overrides,
    normalize_overrides,
    square_ish_grid,
    variant_id,
)

# ---------------------------------------------------------------------------
# PrimitiveCost.sw
# ---------------------------------------------------------------------------

costs = st.builds(
    PrimitiveCost,
    name=st.just("p"),
    fixed=st.floats(0.0, 1e-3, allow_nan=False, allow_infinity=False),
    per_byte=st.floats(0.0, 1e-6, allow_nan=False, allow_infinity=False),
    knee_bytes=st.integers(0, 1 << 16),
    per_byte_beyond=st.floats(0.0, 1e-6, allow_nan=False, allow_infinity=False),
)


@given(prim=costs, n=st.integers(0, 1 << 20), step=st.integers(1, 1 << 12))
def test_sw_is_non_decreasing(prim, n, step):
    assert prim.sw(n + step) >= prim.sw(n)


@given(prim=costs)
def test_sw_is_continuous_at_the_knee(prim):
    """Approaching the knee from either side converges to sw(knee):
    the beyond-the-knee term switches on with zero jump."""
    k = prim.knee_bytes
    at = prim.sw(k)
    below = prim.sw(max(0, k - 1))
    above = prim.sw(k + 1)
    scale = max(abs(at), 1.0)
    assert abs(at - below) <= (prim.per_byte + 1e-12) * scale + 1e-12
    assert abs(above - at) <= (
        prim.per_byte + prim.per_byte_beyond + 1e-12
    ) * scale + 1e-12


@given(prim=costs, n=st.integers(0, 1 << 20))
def test_sw_matches_closed_form(prim, n):
    expected = (
        prim.fixed
        + prim.per_byte * n
        + prim.per_byte_beyond * max(0, n - prim.knee_bytes)
    )
    assert prim.sw(n) == pytest.approx(expected, rel=1e-12, abs=0.0)


@given(prim=costs, n=st.integers(0, 1 << 20))
def test_sw_below_knee_has_no_beyond_term(prim, n):
    clipped = min(n, prim.knee_bytes)
    assert prim.sw(clipped) == pytest.approx(
        prim.fixed + prim.per_byte * clipped, rel=1e-12, abs=0.0
    )


# ---------------------------------------------------------------------------
# square_ish_grid
# ---------------------------------------------------------------------------


@given(n=st.integers(1, 4096))
def test_grid_tiles_exactly_and_is_most_square(n):
    rows, cols = square_ish_grid(n)
    assert rows * cols == n
    assert 1 <= rows <= cols
    # most-square: no larger divisor of n fits below sqrt(n)
    for d in range(rows + 1, int(math.isqrt(n)) + 1):
        assert n % d != 0


@given(n=st.integers(-100, 0))
def test_grid_rejects_non_positive_counts(n):
    with pytest.raises(MachineError, match="positive"):
        square_ish_grid(n)


def test_grid_known_factorizations():
    assert square_ish_grid(1) == (1, 1)
    assert square_ish_grid(12) == (3, 4)
    assert square_ish_grid(16) == (4, 4)
    assert square_ish_grid(17) == (1, 17)  # prime -> a row
    assert square_ish_grid(64) == (8, 8)


# ---------------------------------------------------------------------------
# variant derivation
# ---------------------------------------------------------------------------

_SCALARS = [
    "net.latency",
    "net.bandwidth",
    "compute.flop_time",
    "reduction.stage_cost",
    "prim.*.fixed",
    "prim.*.knee_bytes",
    "prim.*.per_byte_beyond",
]

def _value_for(path):
    if path.endswith(".knee_bytes"):
        return st.integers(1, 1 << 16)
    return st.one_of(
        st.floats(1e-9, 1e-3, allow_nan=False, allow_infinity=False),
        st.integers(1, 1 << 16),
    )


override_sets = st.lists(
    st.sampled_from(_SCALARS), min_size=1, max_size=4, unique=True
).flatmap(
    lambda paths: st.fixed_dictionaries({p: _value_for(p) for p in paths})
)


def _snapshot(machine):
    return (
        machine.network,
        machine.compute,
        machine.reduction,
        dict(machine.primitives),
    )


@given(overrides=override_sets, base=st.sampled_from(["t3d", "paragon"]))
def test_apply_overrides_never_mutates_base(overrides, base):
    machine = t3d(16) if base == "t3d" else paragon(4)
    before = _snapshot(machine)
    derived = apply_overrides(machine, overrides)
    assert _snapshot(machine) == before
    assert derived is not machine
    # and the override landed where it was aimed
    for path, value in normalize_overrides(overrides):
        if path == "net.latency":
            assert derived.network.latency == value
        elif path.startswith("prim.*."):
            field = path.rsplit(".", 1)[1]
            assert all(
                getattr(p, field) == value
                for p in derived.primitives.values()
            )


@given(overrides=override_sets)
def test_variant_id_is_order_independent_and_stable(overrides):
    items = list(overrides.items())
    forward = variant_id(dict(items))
    backward = variant_id(dict(reversed(items)))
    assert forward == backward
    assert forward != "base"
    assert len(forward) == 12
    int(forward, 16)  # hex


def test_variant_id_of_empty_set_is_base():
    assert variant_id({}) == "base"


@given(overrides=override_sets)
def test_distinct_overrides_distinct_ids(overrides):
    path, value = next(iter(overrides.items()))
    nudged = dict(overrides)
    nudged[path] = value + 1
    assert variant_id(overrides) != variant_id(nudged)


def test_apply_overrides_rejects_unknown_primitive():
    with pytest.raises(MachineError, match="no primitive"):
        apply_overrides(t3d(4), {"prim.bogus.fixed": 1e-6})


def test_apply_overrides_rejects_unknown_path():
    with pytest.raises(MachineError, match="unknown override path"):
        apply_overrides(t3d(4), {"net.color": 3})


def test_apply_overrides_rejects_bad_values():
    with pytest.raises(MachineError, match="finite"):
        apply_overrides(t3d(4), {"net.latency": float("inf")})
    with pytest.raises(MachineError, match="non-negative"):
        apply_overrides(t3d(4), {"net.latency": -1.0})
    with pytest.raises(MachineError, match="positive"):
        apply_overrides(t3d(4), {"net.bandwidth": 0})
    with pytest.raises(MachineError, match="integral"):
        apply_overrides(t3d(4), {"prim.*.knee_bytes": 32.5})
