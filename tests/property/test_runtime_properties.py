"""Property-based tests of the runtime substrate (layout + timing)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import ExecutionMode, OptimizationConfig, compile_program, simulate, t3d
from repro.lang.regions import Region
from repro.runtime.grid import ProcessorGrid
from repro.runtime.layout import ProblemLayout, split_extent


@given(
    lo=st.integers(-50, 50),
    size=st.integers(0, 200),
    parts=st.integers(1, 16),
)
def test_split_extent_partitions_exactly(lo, size, parts):
    hi = lo + size - 1
    pieces = split_extent(lo, hi, parts)
    assert len(pieces) == parts
    total = sum(max(0, h - l + 1) for l, h in pieces)
    assert total == max(0, size)
    # contiguous and ordered
    cursor = lo
    for l, h in pieces:
        if h >= l:
            assert l == cursor
            cursor = h + 1
    # balanced: sizes differ by at most one
    sizes = [max(0, h - l + 1) for l, h in pieces]
    assert max(sizes) - min(sizes) <= 1


@given(
    rows=st.integers(1, 4),
    cols=st.integers(1, 4),
    n=st.integers(4, 24),
)
@settings(max_examples=60)
def test_every_cell_has_exactly_one_owner(rows, cols, n):
    grid = ProcessorGrid(rows, cols)
    domain = Region("R", (1, 1), (n, n))
    layout = ProblemLayout(grid, {"A": domain})
    covered = np.zeros((n, n), dtype=int)
    for p in grid.ranks():
        owned = layout.owned(2, p).intersect(domain)
        if not owned.is_empty:
            covered[owned.slices_within(domain.lows)] += 1
    assert (covered == 1).all()


_SRC = """
program p;
config n : integer = 12;
config k : integer = 2;
region R  = [1..n, 1..n];
region In = [2..n-1, 2..n-1];
direction east = [0, 1];
direction south = [1, 0];
var A, B : [R] double;
procedure main();
begin
  [R] A := index1 + 0.3 * index2;
  for t := 1 to k do
    [In] B := A@east + A@south;
    [In] A := A * 0.75 + B * 0.125;
  end;
end;
"""


@given(nprocs=st.sampled_from([1, 2, 4, 9, 16]))
@settings(max_examples=10, deadline=None)
def test_numerics_independent_of_mesh(nprocs):
    prog = compile_program(_SRC, "p.zl", opt=OptimizationConfig.full())
    single = simulate(prog, t3d(1), ExecutionMode.NUMERIC).array("A")
    multi = simulate(prog, t3d(nprocs), ExecutionMode.NUMERIC).array("A")
    assert np.allclose(single, multi, rtol=1e-13, atol=1e-13)


@given(nprocs=st.sampled_from([2, 4, 16]))
@settings(max_examples=6, deadline=None)
def test_time_deterministic_per_mesh(nprocs):
    prog = compile_program(_SRC, "p.zl", opt=OptimizationConfig.full())
    a = simulate(prog, t3d(nprocs), ExecutionMode.TIMING).time
    b = simulate(prog, t3d(nprocs), ExecutionMode.TIMING).time
    assert a == b
