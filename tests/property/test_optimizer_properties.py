"""Property-based tests of the communication optimizer.

The central property of the whole reproduction: **for any program, any
optimization configuration, any mesh, and either library, the
distributed simulation computes exactly what the sequential reference
computes.**  Random ZL programs are generated as sequences of stencil
statements over a small array pool (with loops and interleaved writes so
redundancy/combination legality is genuinely exercised); a transfer
wrongly removed, merged, or misplaced shows up as stale fluff and a
numeric mismatch.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    ExecutionMode,
    OptimizationConfig,
    compile_program,
    reference_run,
    simulate,
    t3d,
)
from repro.comm.counts import (
    static_comm_count,
    static_message_volume_entries,
)

ARRAYS = ["A", "B", "C", "D"]
DIRECTIONS = ["east", "west", "north", "south", "ne", "sw"]

HEADER = """
program fuzz;
config n : integer = 12;
region R  = [1..n, 1..n];
region In = [2..n-1, 2..n-1];
direction east  = [ 0,  1];
direction west  = [ 0, -1];
direction north = [-1,  0];
direction south = [ 1,  0];
direction ne    = [-1,  1];
direction sw    = [ 1, -1];
var A, B, C, D : [R] double;
var s : double;
procedure main();
begin
  [R] A := index1 * 0.37 + index2 * 0.11;
  [R] B := index2 * 0.29 - index1 * 0.05;
  [R] C := 0.5 + index1 * 0.01;
  [R] D := 1.0 - index2 * 0.02;
"""

FOOTER = "end;\n"


@st.composite
def stencil_statement(draw):
    """One whole-array statement mixing shifted, wrapped and plain
    reads."""
    target = draw(st.sampled_from(ARRAYS))
    nterms = draw(st.integers(min_value=1, max_value=3))
    terms = []
    for _ in range(nterms):
        array = draw(st.sampled_from(ARRAYS))
        kind = draw(st.sampled_from(["plain", "shift", "wrap"]))
        if kind == "shift":
            direction = draw(st.sampled_from(DIRECTIONS))
            ref = f"{array}@{direction}"
        elif kind == "wrap":
            direction = draw(st.sampled_from(DIRECTIONS))
            ref = f"{array}@@{direction}"
        else:
            ref = array
        coef = draw(st.sampled_from(["0.5", "0.25", "1.0", "0.1"]))
        terms.append(f"{coef} * {ref}")
    rhs = " + ".join(terms)
    return f"  [In] {target} := {rhs};"


@st.composite
def program_bodies(draw):
    nstmts = draw(st.integers(min_value=1, max_value=7))
    lines = [draw(stencil_statement()) for _ in range(nstmts)]
    if draw(st.booleans()):
        # wrap a suffix of the statements in a loop: dynamic repetition
        cut = draw(st.integers(min_value=0, max_value=len(lines) - 1))
        trips = draw(st.integers(min_value=1, max_value=3))
        body = lines[cut:]
        lines = lines[:cut] + [f"  for t := 1 to {trips} do"] + body + ["  end;"]
    return "\n".join(lines) + "\n"


CONFIGS = [
    OptimizationConfig.baseline(),
    OptimizationConfig.rr_only(),
    OptimizationConfig.rr_cc(),
    OptimizationConfig.full(),
    OptimizationConfig.full_max_latency(),
    OptimizationConfig(rr=False, cc=True),  # combination without removal
    OptimizationConfig(rr=False, cc=False, pl=True),  # pipelining alone
    OptimizationConfig(rr=True, rr_interblock=True),  # cross-block dataflow
    OptimizationConfig(
        rr=True, cc=True, pl=True, rr_interblock=True
    ),  # everything at once
]


@given(program_bodies())
@settings(max_examples=40, deadline=None)
def test_all_configs_match_reference(body):
    source = HEADER + body + FOOTER
    ref = reference_run(compile_program(source, "fuzz.zl"))
    for config in CONFIGS:
        prog = compile_program(source, "fuzz.zl", opt=config)
        for lib in ("pvm", "shmem"):
            res = simulate(prog, t3d(4, lib), ExecutionMode.NUMERIC)
            for array in ARRAYS:
                assert np.allclose(
                    res.array(array),
                    ref.array(array),
                    rtol=1e-12,
                    atol=1e-12,
                ), f"{config.describe()}/{lib}: {array} diverged\n{source}"


@given(program_bodies())
@settings(max_examples=40, deadline=None)
def test_count_monotonicity(body):
    """Each optimization can only reduce the static transfer count, and
    pipelining never changes it."""
    source = HEADER + body + FOOTER
    counts = {}
    for config in CONFIGS[:5] + [CONFIGS[7]]:
        counts[config.describe()] = static_comm_count(
            compile_program(source, "fuzz.zl", opt=config)
        )
    assert counts["rr"] <= counts["baseline"]
    assert counts["rr+cc"] <= counts["rr"]
    assert counts["rr+cc+pl"] == counts["rr+cc"]
    assert counts["rr+cc"] <= counts["rr+cc(maxlat)+pl"] <= counts["rr"]
    assert counts["rr+ib"] <= counts["rr"]


@given(program_bodies())
@settings(max_examples=30, deadline=None)
def test_combining_preserves_volume(body):
    """Combination reduces messages but not data: member-entry totals are
    invariant between rr and rr+cc."""
    source = HEADER + body + FOOTER
    rr = compile_program(source, "fuzz.zl", opt=OptimizationConfig.rr_only())
    cc = compile_program(source, "fuzz.zl", opt=OptimizationConfig.rr_cc())
    assert static_message_volume_entries(cc) == static_message_volume_entries(rr)


@given(program_bodies())
@settings(max_examples=20, deadline=None)
def test_timing_mode_counts_equal_numeric_mode(body):
    source = HEADER + body + FOOTER
    prog = compile_program(source, "fuzz.zl", opt=OptimizationConfig.full())
    num = simulate(prog, t3d(4), ExecutionMode.NUMERIC)
    tim = simulate(prog, t3d(4), ExecutionMode.TIMING)
    assert num.dynamic_comm_count == tim.dynamic_comm_count
    assert num.time == tim.time
