"""Property-based tests for the region algebra."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lang.regions import Direction, Region, bounding_region

dims = st.integers(min_value=1, max_value=3)


@st.composite
def regions(draw, rank=None):
    r = rank if rank is not None else draw(dims)
    lows, highs = [], []
    for _ in range(r):
        lo = draw(st.integers(min_value=-20, max_value=20))
        hi = draw(st.integers(min_value=lo, max_value=lo + 25))
        lows.append(lo)
        highs.append(hi)
    return Region("r", tuple(lows), tuple(highs))


@st.composite
def directions(draw, rank):
    offsets = tuple(
        draw(st.integers(min_value=-3, max_value=3)) for _ in range(rank)
    )
    return Direction("d", offsets)


@given(regions())
def test_size_is_product_of_extents(r):
    prod = 1
    for e in r.shape:
        prod *= e
    assert r.size == prod


@given(st.data())
def test_shift_preserves_size(data):
    r = data.draw(regions())
    d = data.draw(directions(r.rank))
    assert r.shifted(d).size == r.size


@given(st.data())
def test_shift_roundtrip(data):
    r = data.draw(regions())
    d = data.draw(directions(r.rank))
    back = r.shifted(d).shifted(d.negated())
    assert (back.lows, back.highs) == (r.lows, r.highs)


@given(st.data())
def test_intersection_commutative_and_contained(data):
    rank = data.draw(dims)
    a = data.draw(regions(rank))
    b = data.draw(regions(rank))
    ab = a.intersect(b)
    ba = b.intersect(a)
    assert (ab.lows, ab.highs) == (ba.lows, ba.highs)
    if not ab.is_empty:
        assert a.contains(ab) and b.contains(ab)


@given(st.data())
def test_intersection_idempotent(data):
    a = data.draw(regions())
    aa = a.intersect(a)
    assert (aa.lows, aa.highs) == (a.lows, a.highs)


@given(st.data())
def test_bounding_contains_all(data):
    rank = data.draw(dims)
    rs = [data.draw(regions(rank)) for _ in range(data.draw(st.integers(1, 4)))]
    bound = bounding_region("b", rs)
    for r in rs:
        assert bound.contains(r)


@given(st.data())
@settings(max_examples=50)
def test_expanded_contains_original(data):
    r = data.draw(regions())
    w = data.draw(st.integers(min_value=0, max_value=3))
    assert r.expanded(w).contains(r)


@given(st.data())
def test_contains_transitive(data):
    rank = data.draw(dims)
    a = data.draw(regions(rank))
    b = data.draw(regions(rank))
    c = data.draw(regions(rank))
    if a.contains(b) and b.contains(c):
        assert a.contains(c)
