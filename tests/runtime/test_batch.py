"""Differential suite for the batched many-variant evaluator.

``simulate_many``'s contract mirrors the scalar fast path's: every row
of the batch must be *bit-identical* to running that variant alone —
through the compiled fast path, which is itself bit-identical to the
interpreted walk (``test_fastpath``).  These tests enforce the contract
across the paper matrix, under hypothesis-generated variant sets, and on
a dense 512-variant grid (``-m slow``), plus the entry point's argument
validation and result emission.
"""

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    ExecutionMode,
    SimOptions,
    compile_program,
    machine_by_name,
    simulate,
    simulate_many,
)
from repro.errors import MachineError, RuntimeFault
from repro.experiments_registry import EXPERIMENT_KEYS, experiment_spec
from repro.machine import apply_overrides
from repro.programs import BENCHMARKS, build_benchmark, small_config

NPROCS = 16


def machine_for(name):
    def build(key):
        spec = experiment_spec(key)
        library = "nx" if name == "paragon" else spec.library
        return machine_by_name(name, NPROCS, library)

    return build


STEADY_SRC = """
program steady;
config n : integer = 16;
config k : integer = 30;
region R  = [1..n, 1..n];
region In = [2..n-1, 2..n-1];
direction east = [0, 1];
direction west = [0, -1];
var A, B : [R] double;
var s : double;
procedure main();
begin
  [R] A := index1 + index2;
  for t := 1 to k do
    [In] B := 0.5 * (A@east + A@west);
    [In] A := A * 0.9 + B * 0.1;
    [In] s := +<< A;
  end;
end;
"""

REPEAT_SRC = """
program rep;
config n : integer = 16;
region R  = [1..n, 1..n];
region In = [2..n-1, 2..n-1];
direction east = [0, 1];
var A, B : [R] double;
var s : double;
procedure main();
begin
  [R] A := 1.0;
  repeat
    [In] B := A@east;
    [In] A := A + B * 0.1;
    [In] s := +<< A;
  until s > 0.5;
end;
"""

_PROGRAMS = {}


def _steady_program(key):
    """STEADY_SRC under one experiment key's optimization config — the
    bare ``compile_program`` form inserts no communication at all, so
    every batched test would pass vacuously without ``opt=``."""
    if key not in _PROGRAMS:
        _PROGRAMS[key] = compile_program(
            STEADY_SRC, "steady.zl", opt=experiment_spec(key).opt
        )
    return _PROGRAMS[key]


# A spread of overrides that together exercise every dispatch path the
# batched engine vectorizes: wire cost, raw DR latency, software
# overhead (flat and past the knee), rendezvous spread surcharge, and
# compute rate.
DIVERSE_OVERRIDES = [
    {},
    {"net.latency": 1e-6, "net.bandwidth": 5e7},
    {"net.raw_latency": 9e-5},
    {"prim.*.fixed": 8e-5, "prim.*.spread_penalty": 5e-6},
    {"prim.*.knee_bytes": 32, "prim.*.per_byte_beyond": 1e-6},
    {"compute.flop_time": 2e-8, "compute.loop_overhead": 1e-6},
]


def _variants(base, override_sets):
    return [apply_overrides(base, o) if o else base for o in override_sets]


def scalar_fast(program, machine, **kwargs):
    return simulate(
        program, machine, options=SimOptions.timing(fast=True, **kwargs)
    )


def scalar_interp(program, machine, **kwargs):
    return simulate(
        program, machine, options=SimOptions.timing(fast=False, **kwargs)
    )


def assert_row_parity(run, v, scalar):
    """Row ``v`` of a ``BatchRun`` must be bitwise equal to the scalar
    result of that variant (times, clocks, counts, warnings, scalars)."""
    assert float(run.times[v]) == scalar.time
    assert np.array_equal(run.clocks[v], scalar.clocks)
    assert run.static_comm_count == scalar.static_comm_count
    assert run.dynamic_comm_count == scalar.dynamic_comm_count
    # the shared quantities are variant-independent by construction, so
    # the batch's single instrument must match every variant's
    bi, si = run.instrument, scalar.instrument
    assert np.array_equal(bi.dynamic_comms, si.dynamic_comms)
    assert np.array_equal(bi.messages, si.messages)
    assert np.array_equal(bi.bytes_moved, si.bytes_moved)
    assert bi.reductions == si.reductions
    assert run.warnings == scalar.warnings
    assert run.scalars == scalar.scalars


class TestPaperMatrixParity:
    """Every benchmark x experiment key x machine, base plus two
    variants, bit-identical to per-variant scalar fast runs."""

    @pytest.mark.parametrize("machine_name", ["t3d", "paragon"])
    @pytest.mark.parametrize("key", EXPERIMENT_KEYS)
    @pytest.mark.parametrize("bench", BENCHMARKS)
    def test_parity(self, bench, key, machine_name):
        spec = experiment_spec(key)
        program = build_benchmark(bench, config=small_config(bench), opt=spec.opt)
        base = machine_for(machine_name)(key)
        variants = _variants(base, [{}, DIVERSE_OVERRIDES[1], DIVERSE_OVERRIDES[3]])
        batch = simulate_many(program, variants)
        run = batch.run(program.name)
        for v, machine in enumerate(variants):
            assert_row_parity(run, v, scalar_fast(program, machine))


class TestDiverseVariantParity:
    def test_all_dispatch_paths(self):
        """One batch over variants hitting every vectorized cost path,
        against both the scalar fast path and the interpreted walk."""
        key = "pl"
        program = _steady_program(key)
        base = machine_for("t3d")(key)
        variants = _variants(base, DIVERSE_OVERRIDES)
        batch = simulate_many(program, variants)
        run = batch.run(program.name)
        # the variants must actually diverge, or parity is vacuous
        assert len({float(t) for t in run.times}) > 2
        assert run.dynamic_comm_count > 0
        for v, machine in enumerate(variants):
            assert_row_parity(run, v, scalar_fast(program, machine))
            interp = scalar_interp(program, machine)
            assert float(run.times[v]) == interp.time
            assert np.array_equal(run.clocks[v], interp.clocks)

    def test_multiple_programs(self):
        """Each program is a row group; rows stay per-variant exact."""
        programs = [_steady_program("pl"), _steady_program("cc")]
        # distinct names are required; recompile the cc one under a name
        programs[1] = compile_program(
            STEADY_SRC.replace("program steady;", "program steady2;"),
            "steady2.zl",
            opt=experiment_spec("cc").opt,
        )
        base = machine_for("t3d")("pl")
        variants = _variants(base, DIVERSE_OVERRIDES[:3])
        batch = simulate_many(programs, variants)
        assert batch.benchmarks == ("steady", "steady2")
        assert batch.times.shape == (2, 3)
        for program in programs:
            run = batch.run(program.name)
            for v, machine in enumerate(variants):
                assert_row_parity(run, v, scalar_fast(program, machine))

    def test_steady_state_extrapolation_engages(self):
        program = _steady_program("pl")
        base = machine_for("t3d")("pl")
        batch = simulate_many(program, _variants(base, DIVERSE_OVERRIDES))
        fp = batch.run(program.name).fastpath
        assert fp is not None
        assert fp.extrapolated_loops >= 1
        assert fp.extrapolated_trips >= 20

    def test_repeat_cap_warning_parity(self):
        program = compile_program(
            REPEAT_SRC, "rep.zl", opt=experiment_spec("pl").opt
        )
        base = machine_for("t3d")("pl")
        variants = _variants(base, DIVERSE_OVERRIDES[:4])
        batch = simulate_many(
            program, variants, options=SimOptions.timing(repeat_cap=50)
        )
        run = batch.run(program.name)
        assert any("capped" in w for w in run.warnings)
        for v, machine in enumerate(variants):
            assert_row_parity(
                run, v, scalar_fast(program, machine, repeat_cap=50)
            )


_pos_float = st.floats(
    1e-8, 1e-4, allow_nan=False, allow_infinity=False, allow_subnormal=False
)

variant_overrides = st.fixed_dictionaries(
    {},
    optional={
        "net.latency": _pos_float,
        "net.bandwidth": st.floats(
            1e6, 1e9, allow_nan=False, allow_infinity=False, allow_subnormal=False
        ),
        "net.raw_latency": _pos_float,
        "prim.*.fixed": _pos_float,
        "prim.*.knee_bytes": st.integers(16, 16384),
        "prim.*.per_byte_beyond": st.floats(
            0, 1e-6, allow_nan=False, allow_infinity=False, allow_subnormal=False
        ),
        "prim.*.spread_penalty": st.floats(
            0, 1e-5, allow_nan=False, allow_infinity=False, allow_subnormal=False
        ),
    },
)


class TestHypothesisDifferential:
    """Batched vs scalar fast vs interpreted on generated variant sets."""

    @given(
        override_sets=st.lists(variant_overrides, min_size=1, max_size=5),
        machine_name=st.sampled_from(["t3d", "paragon"]),
        key=st.sampled_from(EXPERIMENT_KEYS),
    )
    @settings(max_examples=25, deadline=None)
    def test_batch_matches_both_scalar_paths(
        self, override_sets, machine_name, key
    ):
        program = _steady_program(key)
        base = machine_for(machine_name)(key)
        variants = _variants(base, override_sets)
        batch = simulate_many(program, variants)
        run = batch.run(program.name)
        for v, machine in enumerate(variants):
            fast = scalar_fast(program, machine)
            assert_row_parity(run, v, fast)
            interp = scalar_interp(program, machine)
            assert float(run.times[v]) == interp.time
            assert np.array_equal(run.clocks[v], interp.clocks)


class TestValidation:
    def test_mixed_nprocs_rejected(self):
        program = _steady_program("pl")
        variants = [machine_by_name("t3d", 16, "pvm"), machine_by_name("t3d", 4, "pvm")]
        with pytest.raises(MachineError, match="cost-only"):
            simulate_many(program, variants)

    def test_mixed_machines_rejected(self):
        program = _steady_program("pl")
        variants = [
            machine_by_name("t3d", 16, "pvm"),
            machine_by_name("paragon", 16, "nx"),
        ]
        with pytest.raises(MachineError):
            simulate_many(program, variants)

    def test_numeric_mode_rejected(self):
        program = _steady_program("pl")
        with pytest.raises(RuntimeFault, match="NUMERIC"):
            simulate_many(
                program,
                [machine_by_name("t3d", 16, "pvm")],
                options=SimOptions(mode=ExecutionMode.NUMERIC),
            )

    def test_trace_rank_rejected(self):
        program = _steady_program("pl")
        with pytest.raises(RuntimeFault, match="trace"):
            simulate_many(
                program,
                [machine_by_name("t3d", 16, "pvm")],
                options=SimOptions.timing(trace_rank=0),
            )

    def test_fast_false_rejected(self):
        program = _steady_program("pl")
        with pytest.raises(RuntimeFault, match="interpreted"):
            simulate_many(
                program,
                [machine_by_name("t3d", 16, "pvm")],
                options=SimOptions.timing(fast=False),
            )

    def test_no_variants_rejected(self):
        with pytest.raises((MachineError, RuntimeFault)):
            simulate_many(_steady_program("pl"), [])

    def test_variant_ids_length_mismatch(self):
        program = _steady_program("pl")
        with pytest.raises(RuntimeFault, match="variant ids"):
            simulate_many(
                program,
                [machine_by_name("t3d", 16, "pvm")],
                variant_ids=["a", "b"],
            )

    def test_duplicate_program_names(self):
        program = _steady_program("pl")
        with pytest.raises(RuntimeFault, match="duplicate"):
            simulate_many(
                [program, program], [machine_by_name("t3d", 16, "pvm")]
            )


class TestResultSurface:
    @pytest.fixture(scope="class")
    def batch(self):
        program = _steady_program("pl")
        base = machine_for("t3d")("pl")
        return simulate_many(
            program,
            _variants(base, DIVERSE_OVERRIDES[:3]),
            variant_ids=["base", "fastnet", "rawdr"],
        )

    def test_accessors(self, batch):
        assert batch.nvariants == 3
        assert batch.variant_ids == ("base", "fastnet", "rawdr")
        times = batch.times_for("steady")
        assert times.shape == (3,)
        assert batch.time("steady", "fastnet") == float(times[1])

    def test_write_csv(self, batch, tmp_path):
        path = batch.write_csv(tmp_path / "batch.csv")
        lines = path.read_text().strip().splitlines()
        assert lines[0] == "benchmark,variant,time"
        assert len(lines) == 1 + 3
        bench, vid, t = lines[1].split(",")
        assert (bench, vid) == ("steady", "base")
        assert t == f"{batch.time('steady', 'base'):.6g}"

    def test_write_json_roundtrips_full_precision(self, batch, tmp_path):
        path = batch.write_json(tmp_path / "batch.json")
        payload = json.loads(path.read_text())
        assert payload["schema"] == 1
        assert payload["variants"] == ["base", "fastnet", "rawdr"]
        assert payload["times"]["steady"] == [float(t) for t in batch.times[0]]


@pytest.mark.slow
class TestDenseGrid:
    def test_512_variant_grid_bit_equal(self):
        """An 8x8x8 grid over latency x software overhead x bandwidth —
        every one of the 512 rows bit-equal to its scalar fast run."""
        program = _steady_program("pl")
        base = machine_for("t3d")("pl")
        lats = np.linspace(1e-6, 1e-4, 8)
        fixes = np.linspace(1e-5, 1e-4, 8)
        bands = np.linspace(2e7, 4e8, 8)
        overrides = [
            {
                "net.latency": float(lat),
                "prim.*.fixed": float(fix),
                "net.bandwidth": float(bw),
            }
            for lat in lats
            for fix in fixes
            for bw in bands
        ]
        assert len(overrides) == 512
        variants = _variants(base, overrides)
        batch = simulate_many(program, variants)
        run = batch.run(program.name)
        assert len({float(t) for t in run.times}) > 100
        for v, machine in enumerate(variants):
            scalar = scalar_fast(program, machine)
            assert float(run.times[v]) == scalar.time
            assert np.array_equal(run.clocks[v], scalar.clocks)


# ---------------------------------------------------------------------------
# the incremental-append evaluator
# ---------------------------------------------------------------------------


class TestBatchEvaluator:
    def test_incremental_append_bit_identity(self):
        """Appending variant batches against shared lowered state gives
        the same rows as standalone scalar runs, bit for bit."""
        from repro.runtime import BatchEvaluator

        program = _steady_program("cc")
        base = machine_for("t3d")("cc")
        ev = BatchEvaluator(program, base)
        first = _variants(base, DIVERSE_OVERRIDES[:3])
        second = _variants(base, DIVERSE_OVERRIDES[3:])
        run1 = ev.evaluate(first)
        run2 = ev.evaluate(second)
        assert ev.calls == 2
        assert ev.variants_evaluated == len(DIVERSE_OVERRIDES)
        for v, machine in enumerate(first):
            assert_row_parity(run1, v, scalar_fast(program, machine))
        for v, machine in enumerate(second):
            assert_row_parity(run2, v, scalar_fast(program, machine))

    def test_matches_one_shot_simulate_many(self):
        from repro.runtime import BatchEvaluator

        program = _steady_program("rr")
        base = machine_for("t3d")("rr")
        variants = _variants(base, DIVERSE_OVERRIDES)
        ev_run = BatchEvaluator(program, base).evaluate(variants)
        one_shot = simulate_many(program, variants).run(program.name)
        assert np.array_equal(ev_run.times, one_shot.times)
        assert np.array_equal(ev_run.clocks, one_shot.clocks)

    def test_mismatched_variant_base_rejected(self):
        from repro.runtime import BatchEvaluator

        program = _steady_program("cc")
        ev = BatchEvaluator(program, machine_for("t3d")("cc"))
        other = machine_for("paragon")("cc")
        with pytest.raises(RuntimeFault, match="this evaluator was built"):
            ev.evaluate([other])

    def test_process_cache_reuses_by_identity(self):
        from repro.runtime import batch_evaluator, clear_batch_evaluators

        program = _steady_program("cc")
        base = machine_for("t3d")("cc")
        clear_batch_evaluators()
        try:
            ev = batch_evaluator(program, base)
            assert batch_evaluator(program, base) is ev
            # a different repeat_cap is different lowered state
            assert batch_evaluator(program, base, repeat_cap=7) is not ev
            clear_batch_evaluators()
            assert batch_evaluator(program, base) is not ev
        finally:
            clear_batch_evaluators()

    def test_simulate_many_routes_through_cached_evaluator(self):
        from repro.runtime import batch_evaluator, clear_batch_evaluators

        program = _steady_program("cc")
        base = machine_for("t3d")("cc")
        variants = _variants(base, DIVERSE_OVERRIDES[:2])
        clear_batch_evaluators()
        try:
            simulate_many(program, variants)
            ev = batch_evaluator(program, base)
            assert ev.calls >= 1  # simulate_many populated the cache
            before = ev.calls
            simulate_many(program, variants)
            assert batch_evaluator(program, base) is ev
            assert ev.calls == before + 1
        finally:
            clear_batch_evaluators()
