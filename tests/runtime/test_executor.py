"""Integration tests for the simulation driver."""

import numpy as np
import pytest

from repro import (
    ExecutionMode,
    OptimizationConfig,
    SimOptions,
    compile_program,
    reference_run,
    simulate,
    t3d,
)
from repro.errors import RuntimeFault

SRC = """
program exec;
config n : integer = 8;
config k : integer = 3;
region R  = [1..n, 1..n];
region In = [2..n-1, 2..n-1];
direction east = [0, 1];
direction west = [0, -1];
var A, B : [R] double;
var s : double;
procedure main();
begin
  [R] A := index1 * 2.0 + index2;
  [R] B := 0.0;
  for t := 1 to k do
    [In] B := 0.5 * (A@east + A@west);
    [In] A := A * 0.9 + B * 0.1;
  end;
  [In] s := +<< A;
end;
"""


def run(opt=None, lib="pvm", nprocs=4, mode=ExecutionMode.NUMERIC, config=None):
    prog = compile_program(SRC, "exec.zl", config=config, opt=opt)
    return simulate(prog, t3d(nprocs, lib), mode)


class TestNumericCorrectness:
    def test_matches_reference(self):
        prog = compile_program(SRC, "exec.zl", opt=OptimizationConfig.full())
        ref = reference_run(compile_program(SRC, "exec.zl"))
        res = simulate(prog, t3d(4), ExecutionMode.NUMERIC)
        assert np.allclose(res.array("A"), ref.array("A"))
        assert np.allclose(res.array("B"), ref.array("B"))
        assert res.scalars["s"] == pytest.approx(ref.scalars["s"])

    def test_unoptimized_program_wrong_when_distributed(self):
        """Demonstrates why communication exists: without any transfers
        the distributed run reads stale fluff (zeros) and diverges."""
        prog = compile_program(SRC, "exec.zl")  # no comm generated
        ref = reference_run(prog)
        res = simulate(prog, t3d(4), ExecutionMode.NUMERIC)
        assert not np.allclose(res.array("A"), ref.array("A"))

    def test_unoptimized_correct_on_single_processor(self):
        prog = compile_program(SRC, "exec.zl")
        ref = reference_run(prog)
        res = simulate(prog, t3d(1), ExecutionMode.NUMERIC)
        assert np.allclose(res.array("A"), ref.array("A"))

    def test_result_independent_of_library(self):
        a = run(OptimizationConfig.full(), "pvm").array("A")
        b = run(OptimizationConfig.full(), "shmem").array("A")
        assert np.array_equal(a, b)

    def test_result_independent_of_grid(self):
        a = run(OptimizationConfig.full(), nprocs=1).array("A")
        b = run(OptimizationConfig.full(), nprocs=16, config={"n": 16}) if False else run(OptimizationConfig.full(), nprocs=4).array("A")
        assert np.allclose(a, b)


class TestTimingMode:
    def test_counts_match_numeric_mode(self):
        num = run(OptimizationConfig.full(), mode=ExecutionMode.NUMERIC)
        tim = run(OptimizationConfig.full(), mode=ExecutionMode.TIMING)
        assert num.dynamic_comm_count == tim.dynamic_comm_count
        assert np.array_equal(num.dynamic_comms, tim.dynamic_comms)

    def test_time_matches_numeric_mode(self):
        num = run(OptimizationConfig.full(), mode=ExecutionMode.NUMERIC)
        tim = run(OptimizationConfig.full(), mode=ExecutionMode.TIMING)
        assert tim.time == pytest.approx(num.time)

    def test_array_access_unavailable(self):
        res = run(OptimizationConfig.full(), mode=ExecutionMode.TIMING)
        with pytest.raises(RuntimeFault, match="TIMING"):
            res.array("A")

    def test_reduce_warning_recorded(self):
        res = run(OptimizationConfig.full(), mode=ExecutionMode.TIMING)
        assert any("reductions" in w for w in res.warnings)


class TestDynamics:
    def test_dynamic_count_scales_with_iterations(self):
        r3 = run(OptimizationConfig.full(), config={"k": 3})
        r6 = run(OptimizationConfig.full(), config={"k": 6})
        per_iter = (r6.dynamic_comm_count - r3.dynamic_comm_count) / 3
        assert per_iter > 0
        assert r3.dynamic_comm_count == pytest.approx(3 * per_iter)

    def test_single_processor_communicates_nothing(self):
        res = run(OptimizationConfig.full(), nprocs=1)
        assert res.dynamic_comm_count == 0
        assert res.instrument.total_messages == 0

    def test_optimizations_reduce_time(self):
        from tests.conftest import compile_demo

        base = simulate(
            compile_demo(OptimizationConfig.baseline()),
            t3d(4),
            ExecutionMode.TIMING,
        )
        full = simulate(
            compile_demo(OptimizationConfig.full()), t3d(4), ExecutionMode.TIMING
        )
        assert full.dynamic_comm_count < base.dynamic_comm_count
        assert full.time < base.time

    def test_clocks_nonnegative_and_bounded_by_total(self):
        res = run(OptimizationConfig.full())
        assert (res.clocks >= 0).all()
        assert res.time == pytest.approx(res.clocks.max())

    def test_scalar_environment_final_values(self):
        res = run(OptimizationConfig.full())
        assert "s" in res.scalars
        assert res.scalars["s"] != 0.0


class TestControlFlow:
    def test_for_loop_with_negative_step(self):
        src = """
        program p;
        var s : double;
        procedure main();
        begin
          s := 0.0;
          for i := 5 to 1 by -2 do
            s := s + i;
          end;
        end;
        """
        prog = compile_program(src, "p.zl")
        res = simulate(prog, t3d(1), ExecutionMode.NUMERIC)
        assert res.scalars["s"] == 5 + 3 + 1

    def test_repeat_until_converges(self):
        src = """
        program p;
        var s : double;
        procedure main();
        begin
          s := 1.0;
          repeat
            s := s * 2.0;
          until s > 10.0;
        end;
        """
        prog = compile_program(src, "p.zl")
        res = simulate(prog, t3d(1), ExecutionMode.NUMERIC)
        assert res.scalars["s"] == 16.0

    def test_repeat_cap_warns(self):
        src = """
        program p;
        var s : double;
        procedure main();
        begin
          repeat
            s := s + 1.0;
          until s < 0.0;
        end;
        """
        prog = compile_program(src, "p.zl")
        res = simulate(prog, t3d(1), options=SimOptions.numeric(repeat_cap=5))
        assert res.scalars["s"] == 5.0
        assert any("capped" in w for w in res.warnings)

    def test_elsif_chain(self):
        src = """
        program p;
        var s, r : double;
        procedure main();
        begin
          s := 2.0;
          if s < 1.0 then r := 1.0;
          elsif s < 3.0 then r := 2.0;
          else r := 3.0;
          end;
        end;
        """
        prog = compile_program(src, "p.zl")
        res = simulate(prog, t3d(1), ExecutionMode.NUMERIC)
        assert res.scalars["r"] == 2.0
