"""Unit tests for block distribution."""

import pytest

from repro.errors import RuntimeFault
from repro.lang.regions import Region
from repro.runtime.grid import ProcessorGrid
from repro.runtime.layout import ProblemLayout, split_extent


class TestSplitExtent:
    def test_even_split(self):
        assert split_extent(1, 8, 4) == [(1, 2), (3, 4), (5, 6), (7, 8)]

    def test_remainder_goes_to_leading_blocks(self):
        assert split_extent(1, 10, 4) == [(1, 3), (4, 6), (7, 8), (9, 10)]

    def test_more_parts_than_elements(self):
        parts = split_extent(1, 2, 4)
        assert parts[0] == (1, 1) and parts[1] == (2, 2)
        assert all(hi < lo for lo, hi in parts[2:])  # empty

    def test_single_part(self):
        assert split_extent(3, 9, 1) == [(3, 9)]


def layout_2d(rows=2, cols=2, n=8):
    grid = ProcessorGrid(rows, cols)
    domain = Region("R", (1, 1), (n, n))
    return ProblemLayout(grid, {"A": domain}), domain


class TestOwnership2D:
    def test_blocks_tile_the_domain(self):
        layout, domain = layout_2d()
        total = 0
        for p in layout.grid.ranks():
            total += layout.owned(2, p).intersect(domain).size
        assert total == domain.size

    def test_blocks_disjoint(self):
        layout, _ = layout_2d()
        a = layout.owned(2, 0)
        b = layout.owned(2, 3)
        assert a.intersect(b).is_empty

    def test_owner_of(self):
        layout, _ = layout_2d()
        assert layout.owner_of(2, (1, 1)) == 0
        assert layout.owner_of(2, (8, 8)) == 3
        assert layout.owner_of(2, (1, 8)) == 1

    def test_owner_of_outside_raises(self):
        layout, _ = layout_2d()
        with pytest.raises(RuntimeFault):
            layout.owner_of(2, (0, 0))

    def test_alignment_across_arrays(self):
        """Arrays over different same-rank regions share the partition."""
        grid = ProcessorGrid(2, 2)
        layout = ProblemLayout(
            grid,
            {
                "A": Region("R", (1, 1), (8, 8)),
                "B": Region("In", (2, 2), (7, 7)),
            },
        )
        for idx in [(2, 2), (5, 5), (7, 2)]:
            assert layout.owner_of(2, idx) == layout.owner_of(2, idx)


class TestRank3:
    def test_third_dimension_not_distributed(self):
        grid = ProcessorGrid(2, 2)
        layout = ProblemLayout(grid, {"U": Region("R", (1, 1, 1), (4, 4, 16))})
        assert layout.distributed_dims(3) == (0, 1)
        owned = layout.owned(3, 0)
        assert (owned.lows[2], owned.highs[2]) == (1, 16)


class TestRank1:
    def test_resident_on_column_zero(self):
        grid = ProcessorGrid(2, 2)
        layout = ProblemLayout(grid, {"V": Region("L", (1,), (8,))})
        assert not layout.owned(1, 0).is_empty
        assert layout.owned(1, 1).is_empty  # column 1 idles
        assert layout.owner_of(1, (8,)) == grid.rank_of(1, 0)


class TestFluffFeasibility:
    def test_unit_fluff_ok(self):
        layout, _ = layout_2d()
        layout.check_fluff_feasible({"A": (1, 1)})

    def test_oversized_fluff_rejected(self):
        grid = ProcessorGrid(4, 1)
        layout = ProblemLayout(grid, {"A": Region("R", (1, 1), (8, 8))})
        with pytest.raises(RuntimeFault, match="shift width"):
            layout.check_fluff_feasible({"A": (3, 0)})

    def test_zero_width_always_ok(self):
        layout, _ = layout_2d()
        layout.check_fluff_feasible({"A": (0, 0)})
