"""Parity tests for the compiled TIMING fast path.

The fast path's contract is *exactness*: for any program, the compiled
schedule must produce bit-identical clocks, counts, volumes, warnings,
and scalars versus the interpreted walk — extrapolation included.  These
tests enforce the contract across the full paper matrix (every benchmark
x experiment key x machine) and on synthetic programs built to hit the
fallback and extrapolation edges.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    ExecutionMode,
    SimOptions,
    compile_program,
    machine_by_name,
    simulate,
)
from repro.errors import RuntimeFault
from repro.experiments_registry import EXPERIMENT_KEYS, experiment_spec
from repro.machine import apply_overrides
from repro.programs import BENCHMARKS, build_benchmark, small_config

NPROCS = 16


def run_both(program, machine, **kwargs):
    """One interpreted run, one compiled run; the pair to compare."""
    interp = simulate(program, machine, options=SimOptions.timing(fast=False, **kwargs))
    fast = simulate(program, machine, options=SimOptions.timing(fast=True, **kwargs))
    assert interp.fastpath is None
    assert fast.fastpath is not None
    return interp, fast


def assert_parity(interp, fast):
    """Bitwise equality of every observable the paper's figures read."""
    assert np.array_equal(interp.clocks, fast.clocks)
    assert interp.time == fast.time
    assert interp.static_comm_count == fast.static_comm_count
    assert interp.dynamic_comm_count == fast.dynamic_comm_count
    ii, fi = interp.instrument, fast.instrument
    assert np.array_equal(ii.dynamic_comms, fi.dynamic_comms)
    assert np.array_equal(ii.messages, fi.messages)
    assert np.array_equal(ii.bytes_moved, fi.bytes_moved)
    assert ii.call_counts == fi.call_counts
    assert ii.reductions == fi.reductions
    assert interp.warnings == fast.warnings
    assert interp.scalars == fast.scalars


def machine_for(name):
    # the Paragon model only binds the NX library family; the T3D takes
    # each experiment key's default (PVM / SHMEM)
    def build(key):
        spec = experiment_spec(key)
        library = "nx" if name == "paragon" else spec.library
        return machine_by_name(name, NPROCS, library)

    return build


class TestPaperMatrixParity:
    """Every benchmark x experiment key x machine, at test scale."""

    @pytest.mark.parametrize("machine_name", ["t3d", "paragon"])
    @pytest.mark.parametrize("key", EXPERIMENT_KEYS)
    @pytest.mark.parametrize("bench", BENCHMARKS)
    def test_parity(self, bench, key, machine_name):
        spec = experiment_spec(key)
        program = build_benchmark(
            bench, config=small_config(bench), opt=spec.opt
        )
        machine = machine_for(machine_name)(key)
        interp, fast = run_both(program, machine)
        assert_parity(interp, fast)


STEADY_SRC = """
program steady;
config n : integer = 16;
config k : integer = 30;
region R  = [1..n, 1..n];
region In = [2..n-1, 2..n-1];
direction east = [0, 1];
direction west = [0, -1];
var A, B : [R] double;
var s : double;
procedure main();
begin
  [R] A := index1 + index2;
  for t := 1 to k do
    [In] B := 0.5 * (A@east + A@west);
    [In] A := A * 0.9 + B * 0.1;
    -- the reduction synchronizes the ranks each trip, like the
    -- benchmarks' per-iteration convergence checks; without one the
    -- rank skew grows forever and no steady state exists
    [In] s := +<< A;
  end;
end;
"""

BRANCHY_SRC = """
program branchy;
config n : integer = 16;
region R  = [1..n, 1..n];
region In = [2..n-1, 2..n-1];
direction east = [0, 1];
direction west = [0, -1];
var A, B : [R] double;
procedure main();
begin
  [R] A := index1 + index2;
  for t := 1 to 12 do
    if t < 6.0 then
      [In] B := A@east;
    else
      [In] B := A@west;
    end;
    [R] A := A + B * 0.5;
  end;
end;
"""

REPEAT_SRC = """
program rep;
config n : integer = 16;
region R  = [1..n, 1..n];
region In = [2..n-1, 2..n-1];
direction east = [0, 1];
var A, B : [R] double;
var s : double;
procedure main();
begin
  [R] A := 1.0;
  repeat
    [In] B := A@east;
    [In] A := A + B * 0.1;
    -- TIMING evaluates reductions as 0.0, so s never crosses the
    -- threshold: the loop runs to the cap, in steady state
    [In] s := +<< A;
  until s > 0.5;
end;
"""


class TestSteadyStateExtrapolation:
    def test_counted_loop_extrapolates_and_matches(self):
        program = compile_program(STEADY_SRC, "steady.zl")
        machine = machine_by_name("t3d", NPROCS, "pvm")
        interp, fast = run_both(program, machine)
        assert_parity(interp, fast)
        assert fast.fastpath.extrapolated_loops >= 1
        # detection needs a couple of observed iterations; the bulk of
        # the 30 trips must be applied in closed form
        assert fast.fastpath.extrapolated_trips >= 20

    def test_branch_on_loop_var_falls_back(self):
        """A scalar-dependent branch in the body makes the loop
        ineligible — it must step every trip, and still match."""
        program = compile_program(BRANCHY_SRC, "branchy.zl")
        machine = machine_by_name("t3d", NPROCS, "pvm")
        interp, fast = run_both(program, machine)
        assert_parity(interp, fast)
        assert fast.fastpath.fallbacks >= 1
        assert fast.fastpath.extrapolated_loops == 0

    def test_capped_repeat_extrapolates_to_cap(self):
        """A never-converging repeat reaches the cap in closed form with
        the interpreted walk's exact state and warning."""
        program = compile_program(REPEAT_SRC, "rep.zl")
        machine = machine_by_name("t3d", NPROCS, "pvm")
        interp, fast = run_both(program, machine, repeat_cap=50)
        assert_parity(interp, fast)
        assert any("capped" in w for w in fast.warnings)
        assert fast.fastpath.extrapolated_trips > 0


class TestFastArgumentValidation:
    def test_numeric_mode_rejected(self):
        program = compile_program(STEADY_SRC, "steady.zl")
        machine = machine_by_name("t3d", 4, "pvm")
        with pytest.raises(RuntimeFault, match="TIMING"):
            simulate(
                program,
                machine,
                options=SimOptions(mode=ExecutionMode.NUMERIC, fast=True),
            )

    def test_trace_rank_rejected(self):
        program = compile_program(STEADY_SRC, "steady.zl")
        machine = machine_by_name("t3d", 4, "pvm")
        with pytest.raises(RuntimeFault, match="trace"):
            simulate(
                program, machine, options=SimOptions.timing(fast=True, trace_rank=0)
            )

    def test_auto_selects_fast_for_timing(self):
        program = compile_program(STEADY_SRC, "steady.zl")
        machine = machine_by_name("t3d", 4, "pvm")
        auto = simulate(program, machine, ExecutionMode.TIMING)
        assert auto.fastpath is not None

    def test_auto_interprets_when_tracing(self):
        program = compile_program(STEADY_SRC, "steady.zl")
        machine = machine_by_name("t3d", 4, "pvm")
        traced = simulate(program, machine, options=SimOptions.timing(trace_rank=0))
        assert traced.fastpath is None
        assert traced.trace is not None


# ---------------------------------------------------------------------------
# Swept-machine differential suite: the parity contract must hold not just
# on the two calibrated machines but on every derived variant the sweep
# layer can produce — network latencies/bandwidths and primitive-cost
# fields (fixed, knee_bytes, per_byte_beyond, spread_penalty) included.
# ---------------------------------------------------------------------------

_pos_float = st.floats(
    1e-8, 1e-4, allow_nan=False, allow_infinity=False, allow_subnormal=False
)

variant_overrides = st.fixed_dictionaries(
    {},
    optional={
        "net.latency": _pos_float,
        "net.bandwidth": st.floats(
            1e6, 1e9, allow_nan=False, allow_infinity=False, allow_subnormal=False
        ),
        "net.raw_latency": _pos_float,
        "prim.*.fixed": _pos_float,
        "prim.*.knee_bytes": st.integers(16, 16384),
        "prim.*.per_byte_beyond": st.floats(
            0, 1e-6, allow_nan=False, allow_infinity=False, allow_subnormal=False
        ),
        "prim.*.spread_penalty": st.floats(
            0, 1e-5, allow_nan=False, allow_infinity=False, allow_subnormal=False
        ),
    },
)

_PROGRAMS = {}


def _steady_program(key):
    """STEADY_SRC compiled under one experiment key's optimization config
    (cached — compilation dominates otherwise)."""
    if key not in _PROGRAMS:
        _PROGRAMS[key] = compile_program(
            STEADY_SRC, "steady.zl", opt=experiment_spec(key).opt
        )
    return _PROGRAMS[key]


class TestSweptMachineParity:
    """Compiled fast path stays bit-identical on derived variants."""

    @given(
        overrides=variant_overrides,
        machine_name=st.sampled_from(["t3d", "paragon"]),
        key=st.sampled_from(EXPERIMENT_KEYS),
    )
    @settings(max_examples=30, deadline=None)
    def test_variant_parity(self, overrides, machine_name, key):
        base = machine_for(machine_name)(key)
        machine = apply_overrides(base, overrides)
        interp, fast = run_both(_steady_program(key), machine)
        assert_parity(interp, fast)

    def test_variant_differs_from_base(self):
        """Sanity: the derived machine actually changes the simulation —
        the differential suite is not comparing the base against itself."""
        program = _steady_program("cc")
        base = machine_by_name("t3d", NPROCS, "pvm")
        variant = apply_overrides(
            base, {"prim.*.knee_bytes": 8, "prim.*.per_byte_beyond": 1e-6}
        )
        t_base = simulate(program, base, ExecutionMode.TIMING).time
        t_variant = simulate(program, variant, ExecutionMode.TIMING).time
        assert t_base != t_variant

    @pytest.mark.slow
    @pytest.mark.parametrize(
        "overrides",
        [
            {"net.latency": 1e-6},
            {"net.latency": 1e-4, "net.bandwidth": 5e6},
            {"prim.*.knee_bytes": 32, "prim.*.per_byte_beyond": 1e-6},
            {"prim.*.fixed": 8e-5, "prim.*.spread_penalty": 5e-6},
        ],
        ids=["low-lat", "slow-wire", "tight-knee", "heavy-sw"],
    )
    @pytest.mark.parametrize("machine_name", ["t3d", "paragon"])
    @pytest.mark.parametrize("key", EXPERIMENT_KEYS)
    @pytest.mark.parametrize("bench", BENCHMARKS)
    def test_full_matrix_variant_parity(
        self, bench, key, machine_name, overrides
    ):
        """The full paper matrix on fixed representative variants — the
        nightly/CI-only sweep of the parity contract."""
        spec = experiment_spec(key)
        program = build_benchmark(bench, config=small_config(bench), opt=spec.opt)
        machine = apply_overrides(machine_for(machine_name)(key), overrides)
        interp, fast = run_both(program, machine)
        assert_parity(interp, fast)
