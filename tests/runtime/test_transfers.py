"""Unit tests for transfer plans (message computation)."""

import numpy as np
import pytest

from repro.ir.nodes import CommDescriptor, CommEntry
from repro.lang.regions import Direction, Region
from repro.runtime.grid import ProcessorGrid
from repro.runtime.layout import ProblemLayout
from repro.runtime.transfers import PlanCache, TransferPlan


def make_plan(direction, use_region=None, rows=2, cols=2, n=8, arrays=("A",)):
    grid = ProcessorGrid(rows, cols)
    domain = Region("R", (1, 1), (n, n))
    layout = ProblemLayout(grid, {name: domain for name in arrays})
    use = use_region or Region("In", (2, 2), (n - 1, n - 1))
    desc = CommDescriptor(
        direction=direction,
        entries=[CommEntry(array=name, use_region=use) for name in arrays],
    )
    return TransferPlan(desc, layout, grid.nprocs), layout


class TestAxisTransfers:
    def test_east_shift_moves_column_strips(self):
        plan, layout = make_plan(Direction("east", (0, 1)))
        # 2x2 mesh: each left-column rank receives from its right neighbour
        assert plan.message_count == 2
        for msg in plan.messages:
            assert layout.grid.coords(msg.sender)[1] == 1
            assert layout.grid.coords(msg.receiver)[1] == 0

    def test_strip_contents_are_boundary_columns(self):
        plan, _ = make_plan(Direction("east", (0, 1)))
        for msg in plan.messages:
            (copy,) = msg.copies
            lo, hi = copy.box.lows[1], copy.box.highs[1]
            assert lo == hi == 5  # first column of the east block

    def test_bytes_match_strip_sizes(self):
        plan, _ = make_plan(Direction("east", (0, 1)))
        for msg in plan.messages:
            assert msg.nbytes == msg.copies[0].box.size * 8

    def test_boundary_ranks_send_nothing_west(self):
        plan, layout = make_plan(Direction("west", (0, -1)))
        senders = {layout.grid.coords(m.sender)[1] for m in plan.messages}
        assert senders == {0}


class TestDiagonalTransfers:
    def test_se_shift_involves_three_neighbor_classes(self):
        plan, layout = make_plan(Direction("se", (1, 1)), rows=3, cols=3, n=9)
        # the top-left rank receives an east strip, a south strip, and a
        # corner from the south-east neighbour
        senders = sorted(
            m.sender for m in plan.messages if m.receiver == 0
        )
        assert senders == [1, 3, 4]

    def test_corner_message_is_single_cell(self):
        plan, layout = make_plan(Direction("se", (1, 1)), rows=3, cols=3, n=9)
        corner = [
            m for m in plan.messages if m.receiver == 0 and m.sender == 4
        ]
        assert corner[0].copies[0].box.size == 1


class TestCombinedTransfers:
    def test_combined_entries_share_messages(self):
        single, _ = make_plan(Direction("east", (0, 1)), arrays=("A",))
        combined, _ = make_plan(Direction("east", (0, 1)), arrays=("A", "B"))
        assert combined.message_count == single.message_count
        assert combined.nbytes.sum() == 2 * single.nbytes.sum()

    def test_combined_message_carries_both_strips(self):
        plan, _ = make_plan(Direction("east", (0, 1)), arrays=("A", "B"))
        for msg in plan.messages:
            assert sorted(c.array for c in msg.copies) == ["A", "B"]


class TestLocalShifts:
    def test_rank3_local_dim_shift_has_no_messages(self):
        grid = ProcessorGrid(2, 2)
        domain = Region("R", (1, 1, 1), (4, 4, 8))
        layout = ProblemLayout(grid, {"U": domain})
        desc = CommDescriptor(
            direction=Direction("zup", (0, 0, 1)),
            entries=[
                CommEntry(
                    array="U", use_region=Region("In", (1, 1, 1), (4, 4, 7))
                )
            ],
        )
        plan = TransferPlan(desc, layout, 4)
        assert plan.message_count == 0

    def test_single_processor_has_no_messages(self):
        plan, _ = make_plan(Direction("east", (0, 1)), rows=1, cols=1)
        assert plan.message_count == 0


class TestParticipants:
    def test_participants_cover_senders_and_receivers(self):
        plan, _ = make_plan(Direction("east", (0, 1)))
        assert plan.participant_count == 4  # every rank sends or receives

    def test_plan_cache_reuses_plans(self):
        grid = ProcessorGrid(2, 2)
        domain = Region("R", (1, 1), (8, 8))
        layout = ProblemLayout(grid, {"A": domain})
        cache = PlanCache(layout, 4)
        desc = CommDescriptor(
            direction=Direction("east", (0, 1)),
            entries=[CommEntry("A", Region("In", (2, 2), (7, 7)))],
        )
        assert cache.plan(desc) is cache.plan(desc)


class TestPrimVectors:
    def test_cumulative_send_costs(self):
        from repro.machine.params import NetworkParams, PrimitiveCost

        plan, _ = make_plan(Direction("se", (1, 1)), rows=3, cols=3, n=9)
        prim = PrimitiveCost("send", fixed=10e-6)
        net = NetworkParams(latency=1e-6, bandwidth=1e9)
        vecs = plan.prim_vectors(prim, net)
        # rank 4 (center) sends 3 messages: cumulative 10, 20, 30us
        cums = sorted(
            vecs.cum_sw[i]
            for i in range(plan.message_count)
            if plan.senders[i] == 4
        )
        assert np.allclose(cums, [10e-6, 20e-6, 30e-6])
        assert vecs.total_sw_by_rank[4] == pytest.approx(30e-6)


class TestCostModelCacheKeys:
    """Plans are shared process-wide across machines by geometry, so the
    per-plan cost caches must key on the full cost model — two variants
    differing only in a primitive-cost field must not reuse vectors
    (regression: these used to key on the primitive *name*)."""

    def test_prim_vectors_distinguish_cost_fields(self):
        from repro.machine.params import NetworkParams, PrimitiveCost

        plan, _ = make_plan(Direction("east", (0, 1)), n=16)
        net = NetworkParams(latency=1e-6, bandwidth=1e9)
        cheap = PrimitiveCost("send", fixed=10e-6)
        # same name and network, different knee/beyond
        steep = PrimitiveCost(
            "send", fixed=10e-6, knee_bytes=8, per_byte_beyond=1e-6
        )
        a = plan.prim_vectors(cheap, net)
        b = plan.prim_vectors(steep, net)
        assert a is not b
        assert (b.cum_sw > a.cum_sw).all()

    def test_prim_vectors_distinguish_network_params(self):
        from repro.machine.params import NetworkParams, PrimitiveCost

        plan, _ = make_plan(Direction("east", (0, 1)), n=16)
        prim = PrimitiveCost("send", fixed=10e-6)
        slow = plan.prim_vectors(prim, NetworkParams(latency=1e-4, bandwidth=1e6))
        fast = plan.prim_vectors(prim, NetworkParams(latency=1e-6, bandwidth=1e9))
        assert (slow.wire > fast.wire).all()

    def test_recv_sw_distinguishes_cost_fields(self):
        from repro.machine.params import PrimitiveCost

        plan, _ = make_plan(Direction("east", (0, 1)), n=16)
        cheap = PrimitiveCost("recv", fixed=10e-6)
        steep = PrimitiveCost(
            "recv", fixed=10e-6, knee_bytes=8, per_byte_beyond=1e-6
        )
        a = plan.recv_sw_by_rank(cheap)
        b = plan.recv_sw_by_rank(steep)
        receiving = a > 0
        assert receiving.any()
        assert (b[receiving] > a[receiving]).all()

    def test_variant_times_differ_through_shared_plans(self):
        """End to end: two simulations in one process, same geometry,
        cost model moved between them — the shared plan cache must not
        leak the first machine's costs into the second's times."""
        from repro import ExecutionMode, OptimizationConfig, compile_program, simulate, t3d
        from repro.machine import apply_overrides
        from tests.conftest import MINI_SOURCE

        program = compile_program(
            MINI_SOURCE, "mini.zl", opt=OptimizationConfig.full()
        )
        base = t3d(4)
        variant = apply_overrides(
            base, {"prim.*.knee_bytes": 8, "prim.*.per_byte_beyond": 1e-5}
        )
        t_base = simulate(program, base, ExecutionMode.TIMING).time
        t_variant = simulate(program, variant, ExecutionMode.TIMING).time
        assert t_variant > t_base
