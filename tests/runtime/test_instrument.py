"""Unit tests for instrumentation counters."""

from repro.ir.nodes import CommDescriptor, CommEntry
from repro.lang.regions import Direction, Region
from repro.runtime.grid import ProcessorGrid
from repro.runtime.instrument import Instrumentation
from repro.runtime.layout import ProblemLayout
from repro.runtime.transfers import TransferPlan


def plan_for(direction=Direction("east", (0, 1))):
    grid = ProcessorGrid(2, 2)
    layout = ProblemLayout(grid, {"A": Region("R", (1, 1), (8, 8))})
    desc = CommDescriptor(
        direction=direction,
        entries=[CommEntry("A", Region("In", (2, 2), (7, 7)))],
    )
    return TransferPlan(desc, layout, 4)


def test_record_transfer_counts_participants_once():
    inst = Instrumentation(4)
    plan = plan_for()
    inst.record_transfer(plan)
    assert inst.dynamic_comms.sum() == plan.participant_count
    assert inst.dynamic_comm_count == 1


def test_repeated_transfers_accumulate():
    inst = Instrumentation(4)
    plan = plan_for()
    for _ in range(5):
        inst.record_transfer(plan)
    assert inst.dynamic_comm_count == 5


def test_messages_and_bytes_attributed_to_senders():
    inst = Instrumentation(4)
    plan = plan_for()
    inst.record_transfer(plan)
    assert inst.total_messages == plan.message_count
    assert inst.total_bytes == int(plan.nbytes.sum())
    assert inst.messages[plan.senders].sum() == plan.message_count


def test_empty_plan_not_counted():
    grid = ProcessorGrid(1, 1)
    layout = ProblemLayout(grid, {"A": Region("R", (1, 1), (4, 4))})
    desc = CommDescriptor(
        direction=Direction("east", (0, 1)),
        entries=[CommEntry("A", Region("In", (2, 2), (3, 3)))],
    )
    plan = TransferPlan(desc, layout, 1)
    inst = Instrumentation(1)
    inst.record_transfer(plan)
    assert inst.dynamic_comm_count == 0


def test_call_counts_skip_noop():
    inst = Instrumentation(4)
    inst.record_calls("noop", 10)
    inst.record_calls("csend", 3)
    inst.record_calls("csend", 2)
    assert inst.call_counts == {"csend": 5}


def test_warnings_deduplicated():
    inst = Instrumentation(4)
    inst.warn("same thing")
    inst.warn("same thing")
    assert inst.warnings == ["same thing"]


def test_warnings_keep_first_seen_order():
    inst = Instrumentation(4)
    for msg in ("b", "a", "c", "a", "b", "d"):
        inst.warn(msg)
    assert inst.warnings == ["b", "a", "c", "d"]


def test_warn_dedup_scales_linearly():
    # the dedup is set-backed: re-warning must not rescan the list
    # (it used to be an O(n^2) `in list` probe per call)
    inst = Instrumentation(4)
    for i in range(5000):
        inst.warn(f"w{i % 50}")
    assert len(inst.warnings) == 50
    assert inst._warned == set(inst.warnings)


def test_warn_surfaces_through_the_event_sink():
    from repro.obs import MemorySink, recording

    inst = Instrumentation(4)
    sink = MemorySink()
    with recording(sink):
        inst.warn("trouble")
        inst.warn("trouble")  # deduped: emitted once
    (event,) = sink.events("warning")
    assert event["attrs"] == {"message": "trouble"}


def test_warn_is_silent_when_tracing_off():
    inst = Instrumentation(4)
    inst.warn("trouble")  # must not raise or require a recorder
    assert inst.warnings == ["trouble"]
