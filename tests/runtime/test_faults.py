"""Error-path tests: the runtime's defensive checks."""

import pytest

from repro import ExecutionMode, OptimizationConfig, compile_program, simulate, t3d
from repro.errors import MachineError, RuntimeFault
from repro.machine import paragon


class TestFluffFeasibility:
    def test_oversized_shift_rejected_at_simulation_start(self):
        src = """
        program p;
        config n : integer = 8;
        region R = [1..n, 1..n];
        region Sub = [1..n, 1..n-6];
        direction far = [0, 6];
        var A, B : [R] double;
        procedure main(); begin [Sub] B := A@far; end;
        """
        prog = compile_program(src, opt=OptimizationConfig.full())
        # 8 columns over 8 mesh columns -> blocks of width 1 < shift 6
        with pytest.raises(RuntimeFault, match="shift width"):
            simulate(prog, t3d(64), ExecutionMode.TIMING)

    def test_same_program_fine_on_smaller_mesh(self):
        src = """
        program p;
        config n : integer = 16;
        region R = [1..n, 1..n];
        region Sub = [1..n, 1..n-6];
        direction far = [0, 6];
        var A, B : [R] double;
        procedure main(); begin [Sub] B := A@far; end;
        """
        prog = compile_program(src, opt=OptimizationConfig.full())
        simulate(prog, t3d(4), ExecutionMode.TIMING)  # blocks of width 8


class TestControlFlowFaults:
    def test_zero_step_loop(self):
        src = """
        program p;
        var s : double;
        procedure main(); begin
          for i := 1 to 4 by 0 do s := 1.0; end;
        end;
        """
        prog = compile_program(src)
        with pytest.raises(RuntimeFault, match="zero step"):
            simulate(prog, t3d(1), ExecutionMode.TIMING)


class TestMachineValidation:
    def test_paragon_rejects_t3d_libraries(self):
        with pytest.raises(MachineError):
            paragon(4, "shmem")

    def test_bad_processor_count(self):
        with pytest.raises(MachineError):
            t3d(0)


class TestWrapFaults:
    def test_wrap_strip_spanning_processors_rejected(self):
        # 12 columns over a 1x4 mesh -> blocks of 3; a wrap offset of 3
        # is feasible, 5 folds onto a strip crossing two owners
        src = """
        program p;
        config n : integer = 12;
        region R = [1..n, 1..n];
        direction far = [0, 5];
        var A, B : [R] double;
        procedure main(); begin [R] B := A@@far; end;
        """
        prog = compile_program(src, opt=OptimizationConfig.full())
        with pytest.raises(RuntimeFault, match="shift width"):
            simulate(prog, t3d(16), ExecutionMode.TIMING)
