"""Unit tests for distributed arrays with fluff."""

import numpy as np
import pytest

from repro.errors import RuntimeFault
from repro.lang.regions import Region
from repro.runtime.distarray import DistArray
from repro.runtime.grid import ProcessorGrid
from repro.runtime.layout import ProblemLayout


def make_array(rows=2, cols=2, n=8, fluff=(1, 1)):
    grid = ProcessorGrid(rows, cols)
    domain = Region("R", (1, 1), (n, n))
    layout = ProblemLayout(grid, {"A": domain})
    return DistArray("A", domain, fluff, layout), layout


class TestAllocation:
    def test_buffer_shape_includes_fluff(self):
        arr, _ = make_array()
        block = arr.block(0)
        assert block.data.shape == (4 + 2, 4 + 2)
        assert block.origin == (0, 0)  # owned lows (1,1) minus fluff

    def test_no_fluff_no_padding(self):
        arr, _ = make_array(fluff=(0, 0))
        assert arr.block(0).data.shape == (4, 4)

    def test_zero_initialized(self):
        arr, _ = make_array()
        assert np.count_nonzero(arr.block(0).data) == 0


class TestViews:
    def test_view_of_owned_region(self):
        arr, _ = make_array()
        block = arr.block(0)
        view = block.view(block.owned)
        assert view.shape == (4, 4)
        view[...] = 7.0
        assert block.data[1:5, 1:5].sum() == 7.0 * 16

    def test_view_into_fluff(self):
        arr, _ = make_array()
        block = arr.block(0)  # owns rows 1..4, cols 1..4
        fluff_col = Region("f", (1, 5), (4, 5))
        view = block.view(fluff_col)
        assert view.shape == (4, 1)

    def test_view_escaping_buffer_raises(self):
        arr, _ = make_array()
        block = arr.block(0)
        with pytest.raises(RuntimeFault, match="fluff width"):
            block.view(Region("bad", (1, 6), (4, 6)))


class TestGatherScatter:
    def test_scatter_then_gather_roundtrip(self):
        arr, _ = make_array()
        values = np.arange(64, dtype=float).reshape(8, 8)
        arr.scatter(values)
        assert np.array_equal(arr.gather(), values)

    def test_scatter_shape_checked(self):
        arr, _ = make_array()
        with pytest.raises(RuntimeFault, match="shape"):
            arr.scatter(np.zeros((4, 4)))

    def test_scatter_leaves_fluff_untouched(self):
        arr, _ = make_array()
        arr.block(0).data[0, 0] = 99.0  # a fluff corner
        arr.scatter(np.zeros((8, 8)))
        assert arr.block(0).data[0, 0] == 99.0

    def test_gather_respects_ownership(self):
        arr, layout = make_array()
        # write different constants into each rank's owned cells
        for p in layout.grid.ranks():
            block = arr.block(p)
            block.view(block.owned)[...] = float(p)
        g = arr.gather()
        assert g[0, 0] == 0.0 and g[0, 7] == 1.0
        assert g[7, 0] == 2.0 and g[7, 7] == 3.0
