"""Unit tests for the processor mesh."""

import pytest

from repro.runtime.grid import ProcessorGrid


class TestCoords:
    def test_row_major_numbering(self):
        g = ProcessorGrid(2, 3)
        assert g.coords(0) == (0, 0)
        assert g.coords(4) == (1, 1)
        assert g.rank_of(1, 2) == 5

    def test_roundtrip(self):
        g = ProcessorGrid(3, 4)
        for r in g.ranks():
            assert g.rank_of(*g.coords(r)) == r

    def test_out_of_range_rejected(self):
        g = ProcessorGrid(2, 2)
        with pytest.raises(ValueError):
            g.coords(4)
        with pytest.raises(ValueError):
            g.rank_of(2, 0)


class TestNeighbors:
    def test_axis_neighbors(self):
        g = ProcessorGrid(3, 3)
        center = g.rank_of(1, 1)
        assert g.neighbor(center, (0, 1)) == g.rank_of(1, 2)
        assert g.neighbor(center, (-1, 0)) == g.rank_of(0, 1)

    def test_diagonal_neighbor(self):
        g = ProcessorGrid(3, 3)
        assert g.neighbor(g.rank_of(1, 1), (1, 1)) == g.rank_of(2, 2)

    def test_edge_has_no_neighbor(self):
        g = ProcessorGrid(2, 2)
        assert g.neighbor(0, (-1, 0)) is None
        assert g.neighbor(3, (0, 1)) is None

    def test_not_a_torus(self):
        g = ProcessorGrid(1, 4)
        assert g.neighbor(3, (0, 1)) is None


def test_interior_rank_is_central():
    g = ProcessorGrid(8, 8)
    assert g.coords(g.interior_rank()) == (4, 4)


def test_nprocs_and_str():
    g = ProcessorGrid(2, 8)
    assert g.nprocs == 16
    assert "2x8" in str(g)
