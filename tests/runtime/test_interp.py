"""Direct unit tests for the expression evaluators."""

import numpy as np
import pytest

from repro.errors import RuntimeFault
from repro.ir import nodes as ir
from repro.lang.regions import Direction, Region
from repro.runtime.distarray import DistArray
from repro.runtime.grid import ProcessorGrid
from repro.runtime.interp import ParallelEvaluator, ScalarEvaluator, _index_values
from repro.runtime.layout import ProblemLayout

R = Region("R", (1, 1), (4, 4))
EAST = Direction("east", (0, 1))


@pytest.fixture
def env():
    grid = ProcessorGrid(1, 1)
    layout = ProblemLayout(grid, {"A": R})
    arr = DistArray("A", R, (0, 1), layout)
    arr.scatter(np.arange(16, dtype=float).reshape(4, 4))
    scalars = {"s": 2.5, "n": 4}
    return ParallelEvaluator({"A": arr}, scalars, layout), scalars


class TestParallel:
    def test_const(self, env):
        ev, _ = env
        assert ev.eval(ir.IRConst(3), 0, R) == 3.0

    def test_scalar_read(self, env):
        ev, _ = env
        assert ev.eval(ir.IRScalarRead("s"), 0, R) == 2.5

    def test_unbound_scalar_raises(self, env):
        ev, _ = env
        with pytest.raises(RuntimeFault, match="unbound"):
            ev.eval(ir.IRScalarRead("ghost"), 0, R)

    def test_array_read_is_view(self, env):
        ev, _ = env
        out = ev.eval(ir.IRArrayRead("A"), 0, R)
        assert out.shape == (4, 4)
        assert out[0, 0] == 0.0

    def test_shifted_read(self, env):
        ev, _ = env
        sub = Region("sub", (1, 1), (4, 3))
        out = ev.eval(ir.IRArrayRead("A", EAST), 0, sub)
        assert out[0, 0] == 1.0  # A[1,2]

    def test_binary_and_intrinsic(self, env):
        ev, _ = env
        expr = ir.IRIntrinsic(
            "max",
            [
                ir.IRBin("*", ir.IRArrayRead("A"), ir.IRConst(2.0)),
                ir.IRConst(5.0),
            ],
        )
        out = ev.eval(expr, 0, R)
        assert out[0, 0] == 5.0 and out[3, 3] == 30.0

    def test_not_operator(self, env):
        ev, _ = env
        out = ev.eval(
            ir.IRUn("not", ir.IRBin(">", ir.IRArrayRead("A"), ir.IRConst(7.0))),
            0,
            R,
        )
        assert out[0, 0] and not out[3, 3]

    def test_reduce_sum(self, env):
        ev, _ = env
        total = ev.reduce(ir.IRReduce("+", ir.IRArrayRead("A"), R))
        assert total == sum(range(16))

    def test_reduce_scalar_operand_broadcasts(self, env):
        ev, _ = env
        total = ev.reduce(ir.IRReduce("+", ir.IRConst(2.0), R))
        assert total == 32.0

    def test_reduce_min_max(self, env):
        ev, _ = env
        assert ev.reduce(ir.IRReduce("max", ir.IRArrayRead("A"), R)) == 15.0
        assert ev.reduce(ir.IRReduce("min", ir.IRArrayRead("A"), R)) == 0.0


class TestScalarEvaluator:
    def test_arithmetic(self):
        ev = ScalarEvaluator({"x": 3}, lambda r: 0.0)
        expr = ir.IRBin("+", ir.IRScalarRead("x"), ir.IRConst(4))
        assert ev.eval(expr) == 7

    def test_integer_division_truncates(self):
        ev = ScalarEvaluator({}, lambda r: 0.0)
        assert ev.eval(ir.IRBin("/", ir.IRConst(7), ir.IRConst(2))) == 3

    def test_float_division_exact(self):
        ev = ScalarEvaluator({}, lambda r: 0.0)
        assert ev.eval(ir.IRBin("/", ir.IRConst(7.0), ir.IRConst(2))) == 3.5

    def test_reduce_hook_called(self):
        calls = []

        def hook(expr):
            calls.append(expr.op)
            return 42.0

        ev = ScalarEvaluator({}, hook)
        out = ev.eval(ir.IRReduce("max", ir.IRConst(1.0), R))
        assert out == 42.0 and calls == ["max"]

    def test_intrinsic_returns_python_float(self):
        ev = ScalarEvaluator({}, lambda r: 0.0)
        out = ev.eval(ir.IRIntrinsic("sqrt", [ir.IRConst(9.0)]))
        assert isinstance(out, float) and out == 3.0


def test_index_values_shape_and_contents():
    box = Region("b", (2, 5), (4, 6))
    i1 = _index_values(box, 1)
    i2 = _index_values(box, 2)
    assert i1.shape == (3, 1) and i2.shape == (1, 2)
    assert list(i1.ravel()) == [2, 3, 4]
    assert list(i2.ravel()) == [5, 6]
