"""The unified ``SimOptions`` API.

``simulate`` historically took ``repeat_cap`` / ``trace_rank`` / ``fast``
as bare keywords; that shim completed its one-release deprecation cycle
and is gone.  ``options=SimOptions(...)`` is the only spelling for those
settings now — bare keywords are a ``TypeError`` — while positional
``mode`` remains a stable short form.  Mixing ``mode`` with ``options=``
is an error (a silent precedence rule would hide bugs).
"""

import warnings

import pytest

from repro import (
    ExecutionMode,
    SimOptions,
    compile_program,
    simulate,
    t3d,
)
from repro.errors import RuntimeFault

SRC = """
program opts;
config n : integer = 8;
region R  = [1..n, 1..n];
region In = [2..n-1, 2..n-1];
direction east = [0, 1];
var A, B : [R] double;
var s : double;
procedure main();
begin
  [R] A := index1 + index2;
  repeat
    [In] B := A@east;
    [In] A := A + B * 0.1;
    [In] s := +<< A;
  until s > 1.0e30;
end;
"""


@pytest.fixture(scope="module")
def program():
    return compile_program(SRC, "opts.zl")


@pytest.fixture(scope="module")
def machine():
    return t3d(4, "pvm")


class TestSimOptions:
    def test_defaults(self):
        opts = SimOptions()
        assert opts.mode is ExecutionMode.NUMERIC
        assert opts.repeat_cap is None
        assert opts.trace_rank is None
        assert opts.fast is None

    def test_string_mode_coerced(self):
        assert SimOptions(mode="timing").mode is ExecutionMode.TIMING
        assert SimOptions(mode="numeric").mode is ExecutionMode.NUMERIC

    def test_bad_mode_rejected(self):
        with pytest.raises(ValueError):
            SimOptions(mode="warp")

    def test_constructors(self):
        t = SimOptions.timing(repeat_cap=7, fast=True)
        assert t.mode is ExecutionMode.TIMING
        assert t.repeat_cap == 7
        assert t.fast is True
        n = SimOptions.numeric(trace_rank=2)
        assert n.mode is ExecutionMode.NUMERIC
        assert n.trace_rank == 2

    def test_frozen(self):
        opts = SimOptions()
        with pytest.raises(Exception):
            opts.repeat_cap = 3


class TestOptionsOnlyAPI:
    def test_bare_repeat_cap_is_gone(self, program, machine):
        with pytest.raises(TypeError, match="repeat_cap"):
            simulate(program, machine, repeat_cap=5)

    def test_bare_trace_rank_is_gone(self, program, machine):
        with pytest.raises(TypeError, match="trace_rank"):
            simulate(program, machine, ExecutionMode.TIMING, trace_rank=0)

    def test_bare_fast_is_gone(self, program, machine):
        with pytest.raises(TypeError, match="fast"):
            simulate(program, machine, ExecutionMode.TIMING, fast=False)

    def test_options_carry_every_setting(self, program, machine):
        traced = simulate(
            program,
            machine,
            options=SimOptions.timing(trace_rank=0, repeat_cap=5),
        )
        assert traced.trace is not None
        walked = simulate(
            program,
            machine,
            options=SimOptions.timing(fast=False, repeat_cap=5),
        )
        assert walked.fastpath is None
        assert walked.time == traced.time
        capped = simulate(
            program, machine, options=SimOptions.numeric(repeat_cap=5)
        )
        assert any("capped" in w for w in capped.warnings)

    def test_positional_mode_is_silent(self, program, machine):
        """Positional mode is NOT deprecated — only the bare keywords."""
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            res = simulate(
                program,
                machine,
                ExecutionMode.TIMING,
                options=None,
            )
        assert res.time > 0.0

    def test_options_path_is_silent(self, program, machine):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            simulate(program, machine, options=SimOptions.timing(repeat_cap=5))

    def test_mixing_options_and_mode_raises(self, program, machine):
        with pytest.raises(RuntimeFault, match="mode"):
            simulate(
                program,
                machine,
                ExecutionMode.TIMING,
                options=SimOptions.timing(),
            )

    def test_options_equivalent_to_positional_mode(self, program, machine):
        positional = simulate(program, machine, ExecutionMode.TIMING)
        modern = simulate(program, machine, options=SimOptions.timing())
        assert positional.time == modern.time
        assert positional.warnings == modern.warnings
        assert positional.dynamic_comm_count == modern.dynamic_comm_count
