"""The unified ``SimOptions`` API and its one-release deprecation shim.

``simulate`` historically took ``repeat_cap`` / ``trace_rank`` / ``fast``
as bare keywords.  Those spellings still work for one release but warn;
``options=SimOptions(...)`` is the supported form, and mixing the two is
an error (a silent precedence rule would hide bugs).
"""

import warnings

import pytest

from repro import (
    ExecutionMode,
    SimOptions,
    compile_program,
    simulate,
    t3d,
)
from repro.errors import RuntimeFault

SRC = """
program opts;
config n : integer = 8;
region R  = [1..n, 1..n];
region In = [2..n-1, 2..n-1];
direction east = [0, 1];
var A, B : [R] double;
var s : double;
procedure main();
begin
  [R] A := index1 + index2;
  repeat
    [In] B := A@east;
    [In] A := A + B * 0.1;
    [In] s := +<< A;
  until s > 1.0e30;
end;
"""


@pytest.fixture(scope="module")
def program():
    return compile_program(SRC, "opts.zl")


@pytest.fixture(scope="module")
def machine():
    return t3d(4, "pvm")


class TestSimOptions:
    def test_defaults(self):
        opts = SimOptions()
        assert opts.mode is ExecutionMode.NUMERIC
        assert opts.repeat_cap is None
        assert opts.trace_rank is None
        assert opts.fast is None

    def test_string_mode_coerced(self):
        assert SimOptions(mode="timing").mode is ExecutionMode.TIMING
        assert SimOptions(mode="numeric").mode is ExecutionMode.NUMERIC

    def test_bad_mode_rejected(self):
        with pytest.raises(ValueError):
            SimOptions(mode="warp")

    def test_constructors(self):
        t = SimOptions.timing(repeat_cap=7, fast=True)
        assert t.mode is ExecutionMode.TIMING
        assert t.repeat_cap == 7
        assert t.fast is True
        n = SimOptions.numeric(trace_rank=2)
        assert n.mode is ExecutionMode.NUMERIC
        assert n.trace_rank == 2

    def test_frozen(self):
        opts = SimOptions()
        with pytest.raises(Exception):
            opts.repeat_cap = 3


class TestDeprecationShim:
    def test_bare_repeat_cap_warns_and_works(self, program, machine):
        with pytest.warns(DeprecationWarning, match="repeat_cap"):
            legacy = simulate(program, machine, repeat_cap=5)
        modern = simulate(program, machine, options=SimOptions.numeric(repeat_cap=5))
        assert legacy.warnings == modern.warnings
        assert any("capped" in w for w in modern.warnings)

    def test_bare_trace_rank_warns_and_works(self, program, machine):
        with pytest.warns(DeprecationWarning, match="trace_rank"):
            legacy = simulate(
                program, machine, ExecutionMode.TIMING, trace_rank=0, repeat_cap=5
            )
        assert legacy.trace is not None
        modern = simulate(
            program,
            machine,
            options=SimOptions.timing(trace_rank=0, repeat_cap=5),
        )
        assert legacy.time == modern.time

    def test_bare_fast_warns(self, program, machine):
        with pytest.warns(DeprecationWarning, match="fast"):
            legacy = simulate(
                program, machine, ExecutionMode.TIMING, fast=False, repeat_cap=5
            )
        assert legacy.fastpath is None

    def test_positional_mode_is_silent(self, program, machine):
        """Positional mode is NOT deprecated — only the bare keywords."""
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            res = simulate(
                program,
                machine,
                ExecutionMode.TIMING,
                options=None,
            )
        assert res.time > 0.0

    def test_options_path_is_silent(self, program, machine):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            simulate(program, machine, options=SimOptions.timing(repeat_cap=5))

    def test_mixing_options_and_legacy_raises(self, program, machine):
        with pytest.raises(RuntimeFault, match="repeat_cap"):
            simulate(
                program,
                machine,
                options=SimOptions.timing(),
                repeat_cap=5,
            )

    def test_mixing_options_and_mode_raises(self, program, machine):
        with pytest.raises(RuntimeFault, match="mode"):
            simulate(
                program,
                machine,
                ExecutionMode.TIMING,
                options=SimOptions.timing(),
            )

    def test_options_equivalent_to_legacy(self, program, machine):
        with pytest.warns(DeprecationWarning):
            legacy = simulate(
                program, machine, ExecutionMode.TIMING, repeat_cap=8, fast=True
            )
        modern = simulate(
            program,
            machine,
            options=SimOptions.timing(repeat_cap=8, fast=True),
        )
        assert legacy.time == modern.time
        assert legacy.warnings == modern.warnings
        assert legacy.dynamic_comm_count == modern.dynamic_comm_count
