"""Unit tests for the sequential reference evaluator."""

import numpy as np
import pytest

from repro import OptimizationConfig, compile_program, reference_run


def run_src(body, decls="", config=None):
    src = f"""
    program p;
    config n : integer = 6;
    region R  = [1..n, 1..n];
    region In = [2..n-1, 2..n-1];
    direction east = [0, 1];
    var A, B : [R] double;
    var s : double;
    {decls}
    procedure main(); begin {body} end;
    """
    return reference_run(compile_program(src, "p.zl", config=config))


def test_index_builtins():
    res = run_src("[R] A := index1 * 10.0 + index2;")
    a = res.array("A")
    assert a[0, 0] == 11.0
    assert a[5, 3] == 64.0


def test_shifted_read():
    res = run_src("[R] A := index2; [In] B := A@east;")
    b = res.array("B")
    # B[i,j] = A[i,j+1] = j+2 over the interior (0-based row 1..4)
    assert b[1, 1] == 3.0


def test_region_scope_limits_writes():
    res = run_src("[R] A := 1.0; [In] A := 2.0;")
    a = res.array("A")
    assert a[0, 0] == 1.0 and a[2, 2] == 2.0


def test_reductions():
    res = run_src("[R] A := 2.0; [R] s := +<< A;")
    assert res.scalars["s"] == 2.0 * 36


def test_reduce_of_scalar_operand_broadcasts():
    res = run_src("[In] s := +<< 3.0;")
    assert res.scalars["s"] == 3.0 * 16


def test_max_reduce():
    res = run_src("[R] A := index1; [R] s := max<< A;")
    assert res.scalars["s"] == 6.0


def test_aliasing_self_shift_is_safe():
    # A := A@east with overlap: must read pre-assignment values
    res = run_src("[R] A := index2; [In] A := A@east;")
    a = res.array("A")
    assert a[1, 1] == 3.0  # old A[1,2] (0-based), i.e. column index + 2


def test_comm_calls_ignored():
    src = """
    program p;
    config n : integer = 6;
    region R  = [1..n, 1..n];
    region In = [2..n-1, 2..n-1];
    direction east = [0, 1];
    var A, B : [R] double;
    procedure main(); begin [R] A := 1.0; [In] B := A@east; end;
    """
    plain = reference_run(compile_program(src, "p.zl"))
    optimized = reference_run(
        compile_program(src, "p.zl", opt=OptimizationConfig.full())
    )
    assert np.array_equal(plain.array("B"), optimized.array("B"))


def test_intrinsics():
    res = run_src("[R] A := max(sqrt(4.0), 1.0) + abs(0.0 - 3.0);")
    assert res.array("A")[0, 0] == pytest.approx(5.0)


def test_integer_division_truncates_in_scalar_context():
    res = run_src("s := (7 / 2) * 1.0;")
    assert res.scalars["s"] == 3.0
