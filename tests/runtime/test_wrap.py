"""Tests for periodic (wrap-@) shifts — ZPL's ``@@`` operator."""

import numpy as np
import pytest

from repro import (
    ExecutionMode,
    OptimizationConfig,
    compile_program,
    reference_run,
    simulate,
    t3d,
)
from repro.errors import SemanticError


def compiled(body, opt=None, n=12, extra_dirs=""):
    src = f"""
    program wraptest;
    config n : integer = {n};
    region R  = [1..n, 1..n];
    region Sub = [2..n-1, 1..n-1];
    direction east = [0, 1];
    direction west = [0, -1];
    direction se   = [1, 1];
    {extra_dirs}
    var A, B, C : [R] double;
    procedure main();
    begin
      [R] A := index1 * 100.0 + index2;
      {body}
    end;
    """
    return compile_program(src, "wraptest.zl", opt=opt)


class TestSemantics:
    def test_wrap_allows_full_domain_scope(self):
        compiled("[R] B := A@@east;")  # plain @ would escape the domain

    def test_plain_shift_over_full_domain_still_rejected(self):
        with pytest.raises(SemanticError, match="outside the array's domain"):
            compiled("[R] B := A@east;")

    def test_wrap_along_local_dim_rejected(self):
        src = """
        program p;
        region R = [1..4, 1..4, 1..4];
        direction zup = [0, 0, 1];
        var U : [R] double;
        procedure main(); begin [R] U := U@@zup; end;
        """
        with pytest.raises(SemanticError, match="processor-local"):
            compile_program(src, "p.zl")

    def test_wrap_offset_as_large_as_domain_rejected(self):
        with pytest.raises(SemanticError, match="as large as"):
            compiled(
                "[R] B := A@@big;", extra_dirs="direction big = [0, 12];"
            )


class TestReferenceSemantics:
    def test_wrap_east_rolls_columns(self):
        prog = compiled("[R] B := A@@east;")
        ref = reference_run(prog)
        a, b = ref.array("A"), ref.array("B")
        assert np.array_equal(b, np.roll(a, -1, axis=1))

    def test_wrap_diagonal_rolls_both(self):
        prog = compiled("[R] B := A@@se;")
        ref = reference_run(prog)
        a, b = ref.array("A"), ref.array("B")
        assert np.array_equal(b, np.roll(np.roll(a, -1, 0), -1, 1))


class TestDistributedCorrectness:
    @pytest.mark.parametrize("nprocs", [1, 4, 16])
    @pytest.mark.parametrize("lib", ["pvm", "shmem"])
    def test_matches_reference(self, nprocs, lib):
        body = """
        for t := 1 to 3 do
          [R] B := 0.5 * (A@@east + A@@west) + 0.1 * A@@se;
          [R] A := A * 0.8 + B * 0.2;
        end;
        """
        ref = reference_run(compiled(body))
        for cfg in (
            OptimizationConfig.baseline(),
            OptimizationConfig.full(),
            OptimizationConfig.full_max_latency(),
        ):
            res = simulate(
                compiled(body, opt=cfg), t3d(nprocs, lib), ExecutionMode.NUMERIC
            )
            assert np.allclose(res.array("A"), ref.array("A"))

    def test_wrap_and_nonwrap_same_direction_are_distinct_transfers(self):
        body = "[Sub] B := A@east; [R] C := A@@east;"
        prog = compiled(body, opt=OptimizationConfig.full())
        descs = prog.all_descriptors()
        assert len(descs) == 2
        assert sorted(d.wrap for d in descs) == [False, True]

    def test_wrap_not_redundant_with_nonwrap(self):
        body = "[Sub] B := A@east; [R] C := A@@east;"
        prog = compiled(body, opt=OptimizationConfig.rr_only())
        assert len(prog.all_descriptors()) == 2

    def test_wrap_combines_with_wrap_only(self):
        body = "[R] C := A@@east + B@@east;"
        src_init = "[R] B := index2;"
        prog = compiled(src_init + body, opt=OptimizationConfig.rr_cc())
        (desc,) = [d for d in prog.all_descriptors()]
        assert desc.wrap and sorted(desc.arrays) == ["A", "B"]

    def test_edge_ranks_participate_via_torus(self):
        prog = compiled("[R] B := A@@east;", opt=OptimizationConfig.full())
        res = simulate(prog, t3d(4), ExecutionMode.NUMERIC)
        # every rank both sends and receives: all participate
        assert (res.dynamic_comms == 1).all()

    def test_single_processor_wraps_to_itself(self):
        prog = compiled("[R] B := A@@east;", opt=OptimizationConfig.full())
        ref = reference_run(prog)
        res = simulate(prog, t3d(1), ExecutionMode.NUMERIC)
        assert np.array_equal(res.array("B"), ref.array("B"))
