"""Focused tests for the timing engine's communication semantics."""

import numpy as np
import pytest

from repro import ExecutionMode, OptimizationConfig, compile_program, simulate, t3d
from repro.errors import RuntimeFault
from repro.ir.nodes import CommCall
from repro.ironman.calls import CallKind


def compiled(body, opt=OptimizationConfig.full(), n=8):
    src = f"""
    program p;
    config n : integer = {n};
    region R  = [1..n, 1..n];
    region In = [2..n-1, 2..n-1];
    direction east = [0, 1];
    var A, B, C, W : [R] double;
    procedure main(); begin {body} end;
    """
    return compile_program(src, "p.zl", opt=opt)


class TestPipeliningPaysOff:
    def test_hidden_wire_time(self):
        """With work between SR and DN the wire time is absorbed; the
        pipelined run is faster than the unpipelined one."""
        body = (
            "[R] A := 1.0;"
            "[R] W := W * 1.001 + 0.5 * W * W - 0.1 * W + 2.0 * W;"
            "[In] B := A@east;"
        )
        unpiped = simulate(
            compiled(body, OptimizationConfig.rr_cc()), t3d(4), ExecutionMode.TIMING
        )
        piped = simulate(
            compiled(body, OptimizationConfig.full()), t3d(4), ExecutionMode.TIMING
        )
        assert piped.time < unpiped.time

    def test_pipelining_never_changes_counts(self):
        body = "[R] A := 1.0; [In] B := A@east; [In] C := A@east;"
        unpiped = simulate(
            compiled(body, OptimizationConfig.rr_cc()), t3d(4), ExecutionMode.TIMING
        )
        piped = simulate(
            compiled(body, OptimizationConfig.full()), t3d(4), ExecutionMode.TIMING
        )
        assert piped.dynamic_comm_count == unpiped.dynamic_comm_count


class TestLibrarySemantics:
    def test_call_counts_follow_binding(self):
        body = "[R] A := 1.0; [In] B := A@east;"
        res_pvm = simulate(compiled(body), t3d(4, "pvm"), ExecutionMode.TIMING)
        assert "pvm_send" in res_pvm.instrument.call_counts
        assert "pvm_recv" in res_pvm.instrument.call_counts
        res_sh = simulate(compiled(body), t3d(4, "shmem"), ExecutionMode.TIMING)
        assert "shmem_put" in res_sh.instrument.call_counts
        assert "synch" in res_sh.instrument.call_counts

    def test_noop_calls_not_counted(self):
        body = "[In] B := A@east;"
        res = simulate(compiled(body), t3d(4, "pvm"), ExecutionMode.TIMING)
        assert "noop" not in res.instrument.call_counts

    def test_paragon_callback_slower_than_csend(self):
        from repro.machine import paragon

        body = "[In] B := A@east; [In] C := A@east;"
        prog = compiled(body, OptimizationConfig.baseline())
        t_nx = simulate(prog, paragon(4, "nx"), ExecutionMode.TIMING).time
        t_cb = simulate(prog, paragon(4, "nx_callback"), ExecutionMode.TIMING).time
        assert t_cb > t_nx


class TestScheduleValidation:
    def _broken_program(self, drop_kind):
        prog = compiled("[In] B := A@east;")
        for block in prog.walk_blocks():
            block.stmts = [
                s
                for s in block.stmts
                if not (isinstance(s, CommCall) and s.kind is drop_kind)
            ]
        return prog

    def test_missing_sr_detected(self):
        prog = self._broken_program(CallKind.SR)
        with pytest.raises(RuntimeFault, match="before initiation"):
            simulate(prog, t3d(4), ExecutionMode.TIMING)

    def test_missing_dn_detected(self):
        prog = self._broken_program(CallKind.DN)
        with pytest.raises(RuntimeFault, match="never"):
            simulate(prog, t3d(4), ExecutionMode.TIMING)


class TestDeterminism:
    def test_repeated_runs_identical(self):
        prog = compiled("[R] A := 1.0; [In] B := A@east;")
        t1 = simulate(prog, t3d(4), ExecutionMode.TIMING)
        t2 = simulate(prog, t3d(4), ExecutionMode.TIMING)
        assert t1.time == t2.time
        assert np.array_equal(t1.clocks, t2.clocks)
