"""Unit tests for IRONMAN calls and bindings (paper Figure 5)."""

import pytest

from repro.errors import MachineError
from repro.ironman import BINDINGS, CallKind, binding_for


def test_figure5_paragon_message_passing():
    b = binding_for("nx")
    assert b.as_rows() == (
        ("DR", "noop"),
        ("SR", "csend"),
        ("DN", "crecv"),
        ("SV", "noop"),
    )


def test_figure5_paragon_asynchronous():
    b = binding_for("nx_async")
    assert b.as_rows() == (
        ("DR", "irecv"),
        ("SR", "isend"),
        ("DN", "msgwait"),
        ("SV", "msgwait"),
    )


def test_figure5_paragon_callback():
    b = binding_for("nx_callback")
    assert b.as_rows() == (
        ("DR", "hprobe"),
        ("SR", "hsend"),
        ("DN", "hrecv"),
        ("SV", "msgwait"),
    )


def test_figure5_t3d_pvm():
    b = binding_for("pvm")
    assert b.as_rows() == (
        ("DR", "noop"),
        ("SR", "pvm_send"),
        ("DN", "pvm_recv"),
        ("SV", "noop"),
    )


def test_figure5_t3d_shmem():
    b = binding_for("shmem")
    assert b.as_rows() == (
        ("DR", "synch"),
        ("SR", "shmem_put"),
        ("DN", "synch"),
        ("SV", "noop"),
    )


def test_primitive_lookup_by_kind():
    b = binding_for("pvm")
    assert b.primitive(CallKind.SR) == "pvm_send"
    assert b.primitive(CallKind.DR) == "noop"


def test_unknown_library_rejected_with_valid_list():
    with pytest.raises(MachineError) as exc:
        binding_for("mpi")
    assert "pvm" in str(exc.value)


def test_all_five_libraries_present():
    assert set(BINDINGS) == {"nx", "nx_async", "nx_callback", "pvm", "shmem"}


def test_call_kind_sides():
    assert CallKind.SR.is_source_side and CallKind.SV.is_source_side
    assert CallKind.DR.is_destination_side and CallKind.DN.is_destination_side
