"""Setuptools shim.

The execution environment has no `wheel` package and no network access, so
PEP 660 editable installs (which build a wheel) fail.  This shim enables the
legacy editable path:

    pip install -e . --no-build-isolation --no-use-pep517

All project metadata lives in pyproject.toml.
"""
from setuptools import setup

setup()
