"""Job model for the experiment engine.

A :class:`Job` is one cell of the whole-program study's matrix —
``experiment key x benchmark x machine`` — described entirely by
picklable value objects so it can cross a ``ProcessPoolExecutor``
boundary, and entirely by *content* so it can be fingerprinted for the
on-disk result cache.

The fingerprint is a SHA-256 over a canonical JSON document containing
everything that can change the simulation's outcome: the benchmark's ZL
source hash, the resolved :class:`~repro.comm.OptimizationConfig` *and*
the pass-pipeline signature it compiles to (so re-ordering or re-naming
passes invalidates old entries even when the config booleans read the
same), the machine binding (name, processor count, library), the
*merged* config constants (defaults + overrides, so editing a
benchmark's ``DEFAULT_CONFIG`` invalidates old entries), the execution
mode, and the engine/package versions.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, Mapping, Optional, Tuple, Union

from repro.errors import ExperimentError, MachineError
from repro.experiments_registry import experiment_spec
from repro.machine import Machine, machine_by_name
from repro.machine.variants import (
    OverrideValue,
    apply_overrides,
    normalize_overrides,
    variant_id,
)
from repro.programs import benchmark_source, default_config

#: Bump to invalidate every existing cache entry (schema or semantics
#: changes in the engine itself).  2: job fingerprints cover the resolved
#: pass-pipeline signature and records carry its per-pass report.
#: 3: TIMING clocks use the epoch + rebased-offset representation (times
#: shift by ulps) and records carry the fast-path counters.
ENGINE_VERSION = 3

ConfigValue = Union[int, float]


@lru_cache(maxsize=256)
def _text_sha(text: str) -> str:
    return hashlib.sha256(text.encode()).hexdigest()


def source_sha(benchmark: str) -> str:
    """SHA-256 of a bundled benchmark's ZL source text.

    The memo is keyed on the source *text* (bounded LRU), not the
    benchmark name: redefining a benchmark's ``SOURCE`` inside one
    long-lived process yields the new hash immediately instead of a
    stale per-name entry."""
    return _text_sha(benchmark_source(benchmark))


@dataclass(frozen=True)
class MachineSpec:
    """A machine described by value, not by object.

    ``library=None`` defers to the experiment key's library (PVM for the
    message-passing keys, SHMEM for ``pl_shmem``/``pl_maxlat``) — the
    paper's default binding.  An explicit library overrides the key, as
    the ``machine`` argument of
    :func:`~repro.analysis.experiments.run_experiment` always has.

    ``overrides`` derives a swept machine *variant*: a sorted tuple of
    ``(path, value)`` parameter overrides (see
    :mod:`repro.machine.variants`) applied on top of the named factory
    machine.  Non-empty overrides flow into the job fingerprint through
    their content, so every variant caches independently.
    """

    name: str = "t3d"
    nprocs: int = 64
    library: Optional[str] = None
    overrides: Tuple[Tuple[str, OverrideValue], ...] = ()

    def __post_init__(self) -> None:
        if not isinstance(self.nprocs, int) or isinstance(self.nprocs, bool):
            raise MachineError(
                f"processor count must be an integer, got {self.nprocs!r}"
            )
        if self.nprocs < 1:
            raise MachineError(
                f"processor count must be positive, got {self.nprocs}"
            )
        # canonicalize + validate eagerly: a bad path fails at spec
        # construction, not inside a pool worker
        object.__setattr__(
            self, "overrides", normalize_overrides(dict(self.overrides))
        )

    @property
    def variant(self) -> str:
        """Content-stable variant identifier (``"base"`` unswept)."""
        return variant_id(dict(self.overrides))

    def build(self, default_library: Optional[str] = None) -> Machine:
        """Materialize the simulated machine (with overrides applied)."""
        machine = machine_by_name(
            self.name, self.nprocs, self.library or default_library
        )
        if self.overrides:
            machine = apply_overrides(machine, dict(self.overrides))
        return machine

    @classmethod
    def coerce(
        cls,
        machine: Union["MachineSpec", str, None],
        nprocs: Optional[int] = None,
        library: Optional[str] = None,
        overrides: Optional[Mapping[str, OverrideValue]] = None,
    ) -> "MachineSpec":
        """Accept a spec, a machine name, or None (the paper's T3D)."""
        if machine is None:
            machine = cls()
        elif isinstance(machine, str):
            machine = cls(name=machine)
        elif not isinstance(machine, MachineSpec):
            raise ExperimentError(
                f"machine must be a name or MachineSpec, not {machine!r}"
            )
        if nprocs is not None:
            machine = dataclasses.replace(machine, nprocs=nprocs)
        if library is not None:
            machine = dataclasses.replace(machine, library=library)
        if overrides is not None:
            machine = dataclasses.replace(
                machine, overrides=tuple(sorted(overrides.items()))
            )
        return machine


@dataclass(frozen=True)
class Job:
    """One engine job: run ``benchmark`` under ``experiment`` on
    ``machine`` with ``config`` overrides.

    ``config`` is a sorted tuple of ``(name, value)`` pairs (hashable and
    picklable); build jobs through :meth:`make` to pass a plain dict.
    """

    benchmark: str
    experiment: str
    machine: MachineSpec = MachineSpec()
    config: Tuple[Tuple[str, ConfigValue], ...] = ()
    mode: str = "timing"
    #: Fast-path selection forwarded to ``simulate`` (None = auto).  Not
    #: part of the fingerprint: the compiled path is bit-identical to the
    #: interpreted walk, so both produce (and may share) one cache entry.
    fast: Optional[bool] = None

    @classmethod
    def make(
        cls,
        benchmark: str,
        experiment: str,
        machine: Union[MachineSpec, str, None] = None,
        config: Optional[Mapping[str, ConfigValue]] = None,
        mode: str = "timing",
        fast: Optional[bool] = None,
    ) -> "Job":
        return cls(
            benchmark=benchmark,
            experiment=experiment,
            machine=MachineSpec.coerce(machine),
            config=tuple(sorted((config or {}).items())),
            mode=mode,
            fast=fast,
        )

    def merged_config(self) -> Dict[str, ConfigValue]:
        """The benchmark's defaults with this job's overrides applied."""
        merged = default_config(self.benchmark)
        merged.update(dict(self.config))
        return merged

    def effective_library(self) -> str:
        """The library the job will actually bind (spec or key default)."""
        return self.machine.library or experiment_spec(self.experiment).library

    def fingerprint(self) -> str:
        """Content hash identifying this job for the result cache."""
        import repro

        spec = experiment_spec(self.experiment)
        machine_payload = {
            "name": self.machine.name,
            "nprocs": self.machine.nprocs,
            "library": self.machine.library or spec.library,
        }
        if self.machine.overrides:
            # swept variants fingerprint by override content; the base
            # machine's payload (and so every pre-sweep cache entry)
            # stays byte-identical
            machine_payload["overrides"] = [
                list(item) for item in self.machine.overrides
            ]
        payload = {
            "engine": ENGINE_VERSION,
            "repro": repro.__version__,
            "benchmark": self.benchmark,
            "source": source_sha(self.benchmark),
            "experiment": self.experiment,
            "opt": dataclasses.asdict(spec.opt),
            "pipeline": list(spec.pipeline().signature()),
            "machine": machine_payload,
            "config": self.merged_config(),
            "mode": self.mode,
        }
        canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode()).hexdigest()
