"""Job execution and the per-process compile cache.

:func:`execute_job` is the function the engine submits — inline for
serial runs, through a ``ProcessPoolExecutor`` for parallel ones — so it
must be a module-level importable and everything it touches picklable.

The compile cache is two-level, exploiting the structure of the paper's
study:

* **lowered** programs are keyed by ``(source hash, merged config)`` —
  the front end (parse / analyze / lower) runs once per benchmark per
  process, shared by all six experiment keys;
* **optimized** programs are keyed by ``(source hash, merged config,
  OptimizationConfig)`` — each program is optimized once *per opt
  level*, not once per cell: ``pl`` and ``pl_shmem`` resolve to the same
  ``OptimizationConfig.full()`` and reuse one optimized program, since
  the library is a machine property, not a compiler property.  The
  per-pass :class:`~repro.comm.PipelineReport` of the optimization run
  is cached alongside the program, so cache hits still carry full
  pipeline telemetry.

Reuse is sound because :func:`repro.comm.optimize` returns a fresh
program (documented non-mutating) and :func:`repro.runtime.simulate`
never writes into the program it runs — the paper-table benchmarks
already re-simulate one program object repeatedly.

Caches are per-process: the serial path shares one across the whole
study, each pool worker warms its own.
"""

from __future__ import annotations

import os
import time
from typing import Dict, Tuple

from repro.comm import OptimizationConfig, optimize_with_report
from repro.errors import ExperimentError
from repro.experiments_registry import experiment_spec
from repro.ir.nodes import IRProgram
from repro.obs import core as obs
from repro.obs import distributed
from repro.programs import benchmark_source
from repro.programs.common import compile_source
from repro.runtime import ExecutionMode, SimOptions, simulate

from repro.engine.cache import RECORD_SCHEMA
from repro.engine.jobs import ConfigValue, Job, source_sha

_ConfigItems = Tuple[Tuple[str, ConfigValue], ...]

_LOWERED: Dict[Tuple[str, _ConfigItems], IRProgram] = {}
_OPTIMIZED: Dict[
    Tuple[str, _ConfigItems, OptimizationConfig], Tuple[IRProgram, dict]
] = {}


def clear_compile_cache() -> None:
    """Drop this process's compiled programs (tests; long sessions)."""
    _LOWERED.clear()
    _OPTIMIZED.clear()


def compile_cached(
    benchmark: str, config_items: _ConfigItems, opt: OptimizationConfig
) -> Tuple[IRProgram, dict, float, float, bool, bool]:
    """An optimized program for one benchmark, through the two-level
    cache.

    Returns ``(program, pipeline_report, compile_seconds,
    optimize_seconds, lowered_hit, optimized_hit)``; the report is the
    JSON-safe :meth:`~repro.comm.PipelineReport.as_dict` form and the
    wall times are 0.0 for phases served from cache.
    """
    sha = source_sha(benchmark)
    opt_key = (sha, config_items, opt)
    cached = _OPTIMIZED.get(opt_key)
    if cached is not None:
        obs.add("engine.compile_cache.optimized_hit")
        program, report = cached
        return program, report, 0.0, 0.0, True, True

    obs.add("engine.compile_cache.optimized_miss")
    low_key = (sha, config_items)
    lowered = _LOWERED.get(low_key)
    lowered_hit = lowered is not None
    obs.add(
        "engine.compile_cache.lowered_hit"
        if lowered_hit
        else "engine.compile_cache.lowered_miss"
    )
    compile_s = 0.0
    if lowered is None:
        t0 = time.perf_counter()
        lowered = compile_source(
            benchmark_source(benchmark),
            f"{benchmark}.zl",
            dict(config_items),
            opt=None,
        )
        compile_s = time.perf_counter() - t0
        _LOWERED[low_key] = lowered

    t0 = time.perf_counter()
    program, pipeline_report = optimize_with_report(lowered, opt)
    optimize_s = time.perf_counter() - t0
    report = pipeline_report.as_dict()
    _OPTIMIZED[opt_key] = (program, report)
    return program, report, compile_s, optimize_s, lowered_hit, False


def execute_job(job: Job) -> dict:
    """Run one job and return its JSON-safe record (result + telemetry).

    The record is exactly what the result cache stores and what
    :class:`~repro.engine.core.JobOutcome` reconstructs an
    :class:`~repro.experiments_registry.ExperimentResult` from — floats
    survive the JSON round trip bit-exactly, so cached and fresh runs
    render byte-identical tables.

    Failures are re-raised as :class:`~repro.errors.ExperimentError`
    naming the job, so a pooled study reports which matrix cell died
    instead of a bare worker traceback.

    When this process is a pool worker of a *tracing* coordinator (see
    :func:`repro.obs.distributed.worker_init`), the job runs under a
    per-job capture recorder and the record carries the captured
    spans/metrics home under the ``"obs"`` key — popped by the
    dispatcher before the record reaches the cache or the caller.
    """
    capture = distributed.begin_job_capture()
    try:
        record = _execute_job(job)
    except ExperimentError:
        if capture is not None:
            capture.finish()
        raise
    except Exception as exc:
        if capture is not None:
            capture.finish()
        raise ExperimentError(
            f"job failed for ({job.benchmark}, {job.experiment}, "
            f"{job.effective_library()}): {exc}"
        ) from exc
    if capture is not None:
        record["obs"] = capture.finish()
    return record


def _execute_job(job: Job) -> dict:
    started = time.time()
    t_total = time.perf_counter()
    with obs.span(
        "job",
        benchmark=job.benchmark,
        experiment=job.experiment,
        machine=job.machine.name,
        nprocs=job.machine.nprocs,
        variant=job.machine.variant,
    ):
        spec = experiment_spec(job.experiment)
        machine = job.machine.build(spec.library)

        merged = job.merged_config()
        config_items = tuple(sorted(merged.items()))
        program, pipeline, compile_s, optimize_s, lowered_hit, optimized_hit = (
            compile_cached(job.benchmark, config_items, spec.opt)
        )

        t0 = time.perf_counter()
        result = simulate(
            program,
            machine,
            options=SimOptions(mode=ExecutionMode(job.mode), fast=job.fast),
        )
        simulate_s = time.perf_counter() - t0

    return {
        "schema": RECORD_SCHEMA,
        "fingerprint": job.fingerprint(),
        "benchmark": job.benchmark,
        "experiment": job.experiment,
        "machine": job.machine.name,
        "nprocs": job.machine.nprocs,
        # swept-variant identity: "base" plus {} for the calibrated
        # machines (readers of pre-sweep records must .get these)
        "machine_variant": job.machine.variant,
        "machine_overrides": {k: v for k, v in job.machine.overrides},
        "library": machine.library,
        "mode": job.mode,
        "config": {str(k): v for k, v in merged.items()},
        "result": {
            "static_count": int(result.static_comm_count),
            "dynamic_count": int(result.dynamic_comm_count),
            "execution_time": float(result.time),
            "total_messages": int(result.instrument.total_messages),
            "total_bytes": int(result.instrument.total_bytes),
            "warnings": list(result.warnings),
            "fastpath": (
                result.fastpath.as_dict() if result.fastpath is not None else None
            ),
        },
        "pipeline": pipeline,
        "timings": {
            "compile_s": compile_s,
            "optimize_s": optimize_s,
            "simulate_s": simulate_s,
            "total_s": time.perf_counter() - t_total,
        },
        "compile_cache": {
            "lowered_hit": lowered_hit,
            "optimized_hit": optimized_hit,
        },
        "cache_hit": False,
        "worker_pid": os.getpid(),
        "started_at": started,
    }
