"""SQLite result-cache backend: one shared content-addressed store.

A single ``cache.sqlite`` file in WAL mode serves many concurrent engine
processes on one host: WAL gives single-writer/many-reader concurrency
with readers never blocking on a writer, and every ``put`` is one
``INSERT OR REPLACE`` transaction, so a reader sees the old record, the
new record, or a clean miss — never a torn document (the same atomic
guarantee ``DirCache`` gets from ``os.replace``).

Rows carry the stored ``schema`` and a creation timestamp alongside the
JSON text, so ``stats``/``prune`` run as indexed SQL instead of a
directory walk.

The root knob is reused: a path ending in ``.sqlite``/``.db`` is the
database file itself, anything else is a directory that holds
``cache.sqlite`` (so ``--cache-dir`` means the same thing under every
backend).
"""

from __future__ import annotations

import json
import sqlite3
import threading
import time
from pathlib import Path
from typing import Optional, Union

from repro.engine.cache import CacheStats, default_cache_root, validate_record
from repro.obs import core as obs

__all__ = ["SqliteCache"]

_SCHEMA_SQL = """
CREATE TABLE IF NOT EXISTS records (
  fingerprint TEXT PRIMARY KEY,
  schema      INTEGER NOT NULL,
  created     REAL NOT NULL,
  record      TEXT NOT NULL
)
"""


class SqliteCache:
    """Fingerprint-addressed job records in one WAL-mode SQLite file."""

    kind = "sqlite"

    def __init__(self, root: Union[str, Path, None] = None) -> None:
        root = Path(root) if root is not None else default_cache_root()
        if root.suffix in (".sqlite", ".db"):
            self.path = root
        else:
            self.path = root / "cache.sqlite"
        self.root = self.path.parent
        # one connection guarded by a lock: the engine reads and writes
        # from its coordinating thread/process; cross-process concurrency
        # is SQLite's job (WAL + busy timeout), cross-thread is ours
        self._lock = threading.Lock()
        self._conn: Optional[sqlite3.Connection] = None

    def _connect(self) -> sqlite3.Connection:
        if self._conn is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            conn = sqlite3.connect(
                str(self.path), timeout=10.0, check_same_thread=False
            )
            conn.execute("PRAGMA journal_mode=WAL")
            conn.execute("PRAGMA synchronous=NORMAL")
            conn.execute(_SCHEMA_SQL)
            conn.commit()
            self._conn = conn
        return self._conn

    def close(self) -> None:
        with self._lock:
            if self._conn is not None:
                self._conn.close()
                self._conn = None

    # SqliteCache crosses ProcessPoolExecutor boundaries inside Job-free
    # dispatcher state; a live connection must never be pickled
    def __getstate__(self) -> dict:
        state = dict(self.__dict__)
        state["_conn"] = None
        state["_lock"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()
        self._conn = None

    def get(self, fingerprint: str) -> Optional[dict]:
        try:
            with self._lock:
                row = (
                    self._connect()
                    .execute(
                        "SELECT record FROM records WHERE fingerprint = ?",
                        (fingerprint,),
                    )
                    .fetchone()
                )
        except sqlite3.Error:
            obs.add("cache.backend.misses")
            return None
        if row is None:
            obs.add("cache.backend.misses")
            return None
        try:
            record = json.loads(row[0])
        except ValueError:
            obs.add("engine.result_cache.invalid")
            obs.add("cache.backend.invalid")
            obs.add("cache.backend.misses")
            return None
        record = validate_record(record, fingerprint)
        obs.add("cache.backend.hits" if record is not None else "cache.backend.misses")
        return record

    def put(self, fingerprint: str, record: dict) -> None:
        try:
            text = json.dumps(record, sort_keys=True)
            schema = record.get("schema") if isinstance(record, dict) else None
            with self._lock:
                conn = self._connect()
                with conn:
                    conn.execute(
                        "INSERT OR REPLACE INTO records "
                        "(fingerprint, schema, created, record) "
                        "VALUES (?, ?, ?, ?)",
                        (
                            fingerprint,
                            schema if isinstance(schema, int) else -1,
                            time.time(),
                            text,
                        ),
                    )
            obs.add("engine.result_cache.store")
            obs.add("cache.backend.stores")
        except (sqlite3.Error, OSError, TypeError, ValueError):
            obs.add("engine.result_cache.store_error")
            obs.add("cache.backend.store_errors")

    def stats(self) -> CacheStats:
        stats = CacheStats(backend=self.kind, location=str(self.path))
        try:
            with self._lock:
                conn = self._connect()
                rows = conn.execute(
                    "SELECT schema, COUNT(*), SUM(LENGTH(record)) "
                    "FROM records GROUP BY schema"
                ).fetchall()
        except sqlite3.Error:
            return stats
        for schema, count, nbytes in rows:
            stats.entries += count
            stats.bytes += int(nbytes or 0)
            stats.schemas[int(schema)] = count
        return stats

    def prune(
        self,
        *,
        older_than: Optional[float] = None,
        schema: Optional[int] = None,
    ) -> int:
        clauses, params = [], []
        if older_than is not None:
            clauses.append("created <= ?")
            params.append(time.time() - older_than)
        if schema is not None:
            clauses.append("schema = ?")
            params.append(schema)
        sql = "DELETE FROM records"
        if clauses:
            sql += " WHERE " + " AND ".join(clauses)
        try:
            with self._lock:
                conn = self._connect()
                with conn:
                    removed = conn.execute(sql, params).rowcount
        except sqlite3.Error:
            return 0
        obs.add("cache.backend.pruned", removed)
        return removed

    def describe(self) -> dict:
        return {"backend": self.kind, "location": str(self.path)}
