"""Batched execution of cost-only variant jobs.

A sweep whose axes touch only machine *costs* (never ``nprocs``) builds
a job matrix where every ``benchmark x experiment`` cell repeats across
N machine variants.  :func:`run_jobs_batched` runs such a matrix through
one :func:`repro.runtime.simulate_many` call per cell instead of N
engine jobs — same result cache, same record shape, same submission
order.

The records a batched cell produces are interchangeable with the scalar
:func:`~repro.engine.worker.execute_job` records: the batched evaluator
is bit-identical to the scalar fast path per variant, each job is still
fingerprinted and cached individually, and the only addition is a
``"batched": True`` marker.  A sweep warmed by a batched run therefore
serves scalar re-runs from cache, and vice versa.
"""

from __future__ import annotations

import os
import time
from typing import Dict, List, Sequence, Tuple

from repro.errors import ExperimentError
from repro.experiments_registry import experiment_spec
from repro.machine import pack_variant_specs
from repro.obs import core as obs
from repro.runtime import ExecutionMode, SimOptions, simulate_many

from repro.engine.cache import RECORD_SCHEMA
from repro.engine.core import ExperimentEngine, JobOutcome, partition_jobs
from repro.engine.jobs import Job
from repro.engine.worker import compile_cached

__all__ = ["execute_cell_batched", "run_jobs_batched"]

#: the per-cell grouping key: jobs differing only in machine variant
#: share one compiled program and one batched evaluation
_CellKey = Tuple[str, str, tuple, str]


def _cell_key(job: Job) -> _CellKey:
    return (job.benchmark, job.experiment, job.config, job.mode)


def run_jobs_batched(
    engine: ExperimentEngine, jobs: Sequence[Job]
) -> List[JobOutcome]:
    """Run a cost-only variant matrix, batching each cell's misses.

    Mirrors :meth:`ExperimentEngine.run`'s contract — per-job cache
    lookup first, outcomes in submission order — but executes the
    misses cell-by-cell through :func:`execute_cell_batched` instead of
    job-by-job (the engine's dispatcher is not used; the batched
    evaluator replaces that parallelism).
    """
    outcomes, misses = partition_jobs(engine.cache, jobs)

    cells: Dict[_CellKey, List[tuple]] = {}
    for entry in misses:
        cells.setdefault(_cell_key(entry[1]), []).append(entry)

    trace = obs.active_trace()
    for entries in cells.values():
        records = execute_cell_batched([job for _, job, _ in entries])
        for (i, job, fp), record in zip(entries, records):
            engine.cache.put(fp, record)
            if trace is not None:
                record = dict(record, trace=trace)
                obs.event(
                    "engine.job",
                    benchmark=job.benchmark,
                    experiment=job.experiment,
                    status="batched",
                )
            outcomes[i] = JobOutcome(job=job, record=record, cached=False)

    return [o for o in outcomes if o is not None]


def execute_cell_batched(cell_jobs: Sequence[Job]) -> List[dict]:
    """One cell's jobs (same benchmark/experiment/config/mode, variant
    machines) through a single batched evaluation, returning one record
    per job in input order.

    Failures are wrapped as :class:`ExperimentError` naming the cell,
    matching :func:`~repro.engine.worker.execute_job`.
    """
    job0 = cell_jobs[0]
    try:
        return _execute_cell(cell_jobs)
    except ExperimentError:
        raise
    except Exception as exc:
        raise ExperimentError(
            f"batched cell failed for ({job0.benchmark}, {job0.experiment}, "
            f"{job0.effective_library()}): {exc}"
        ) from exc


def _execute_cell(cell_jobs: Sequence[Job]) -> List[dict]:
    started = time.time()
    t_total = time.perf_counter()
    job0 = cell_jobs[0]
    with obs.span(
        "cell:batched",
        benchmark=job0.benchmark,
        experiment=job0.experiment,
        machine=job0.machine.name,
        nprocs=job0.machine.nprocs,
        variants=len(cell_jobs),
    ):
        spec = experiment_spec(job0.experiment)
        libraries = {job.effective_library() for job in cell_jobs}
        if len(libraries) != 1:
            raise ExperimentError(
                f"batched cell mixes libraries {sorted(libraries)}"
            )
        # content-keyed packing memo: every cell of a sweep shares the
        # same variant list, so the (V,)-stacked cost tensors are built
        # once per sweep instead of once per cell
        matrix = pack_variant_specs(
            job0.machine.name,
            job0.machine.nprocs,
            job0.effective_library(),
            [job.machine.overrides for job in cell_jobs],
        )

        merged = job0.merged_config()
        config_items = tuple(sorted(merged.items()))
        program, pipeline, compile_s, optimize_s, lowered_hit, optimized_hit = (
            compile_cached(job0.benchmark, config_items, spec.opt)
        )

        t0 = time.perf_counter()
        batch = simulate_many(
            program,
            matrix,
            options=SimOptions(
                mode=ExecutionMode(job0.mode), fast=job0.fast
            ),
        )
        simulate_s = time.perf_counter() - t0

    run = batch.run(program.name)
    # per-record attribution of the shared phases: the batch's wall time
    # is split evenly, compile telemetry lands on the first record (the
    # later variants would have been compile-cache hits serially anyway)
    per_simulate = simulate_s / len(cell_jobs)
    total_s = time.perf_counter() - t_total
    records: List[dict] = []
    for v, job in enumerate(cell_jobs):
        records.append(
            {
                "schema": RECORD_SCHEMA,
                "fingerprint": job.fingerprint(),
                "benchmark": job.benchmark,
                "experiment": job.experiment,
                "machine": job.machine.name,
                "nprocs": job.machine.nprocs,
                "machine_variant": job.machine.variant,
                "machine_overrides": {k: val for k, val in job.machine.overrides},
                "library": matrix.base.library,
                "mode": job.mode,
                "config": {str(k): val for k, val in merged.items()},
                "result": {
                    "static_count": int(run.static_comm_count),
                    "dynamic_count": int(run.dynamic_comm_count),
                    "execution_time": float(run.times[v]),
                    "total_messages": int(run.instrument.total_messages),
                    "total_bytes": int(run.instrument.total_bytes),
                    "warnings": list(run.warnings),
                    "fastpath": (
                        run.fastpath.as_dict()
                        if run.fastpath is not None
                        else None
                    ),
                },
                "pipeline": pipeline,
                "timings": {
                    "compile_s": compile_s if v == 0 else 0.0,
                    "optimize_s": optimize_s if v == 0 else 0.0,
                    "simulate_s": per_simulate,
                    "total_s": total_s / len(cell_jobs),
                },
                "compile_cache": {
                    "lowered_hit": lowered_hit if v == 0 else True,
                    "optimized_hit": optimized_hit if v == 0 else True,
                },
                "cache_hit": False,
                "batched": True,
                "worker_pid": os.getpid(),
                "started_at": started,
            }
        )
    return records
