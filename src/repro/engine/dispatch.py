"""The dispatch layer: how a list of cache-missing jobs gets executed.

:class:`~repro.engine.core.ExperimentEngine` used to weld the job loop
— inline vs ``ProcessPoolExecutor`` — into its ``run`` method.  That
loop now lives behind the :class:`Dispatcher` protocol, so storage
(:mod:`repro.engine.cache`) and execution vary independently:

``LocalDispatcher``
    Today's behavior, exactly: inline when serial, ``pool.map`` with an
    amortizing chunksize when ``workers > 1``.  Records come back in
    submission order, which is what keeps ``--jobs 4`` byte-identical
    to a serial run.

``ShardedDispatcher``
    Splits the job list into contiguous shards and hands them to a
    worker pool through a work-stealing queue: a worker that finishes
    its shard immediately pulls the next un-started one
    (``engine.dispatch.handoffs``), so uneven shard costs never strand
    an idle worker.  Failures are retried per *job* with exponential
    backoff (``engine.dispatch.retries``), and a shard whose worker
    dies outright (``engine.dispatch.dead_shards``) falls back to
    inline re-execution in the coordinator — the matrix always
    completes or fails loudly naming the poisoned cell.  Because the
    simulator is deterministic, a retried record is byte-identical to a
    first-try one, so sharded results and cache records are
    interchangeable with ``LocalDispatcher``'s.

Both dispatchers return one record per job in submission order;
fingerprints and record schemas are untouched by construction (the same
:func:`~repro.engine.worker.execute_job` produces every record).

Fault injection (:class:`FaultSpec`) makes the recovery paths
deterministic under test: a spec matching a job makes its first
``times`` attempts fail — by raising, or by killing the worker process
(``action="exit"``) to simulate a dead host.
"""

from __future__ import annotations

import os
import time
from collections import deque
from dataclasses import dataclass
from typing import Iterable, List, Optional, Protocol, Sequence, Tuple, Union, runtime_checkable

from repro.errors import ExperimentError
from repro.obs import core as obs
from repro.obs import distributed

from repro.engine.jobs import Job
from repro.engine.worker import execute_job

__all__ = [
    "Dispatcher",
    "FaultSpec",
    "LocalDispatcher",
    "ShardedDispatcher",
    "make_dispatcher",
]

#: Dispatcher kinds ``make_dispatcher`` / ``--dispatch`` accept.
DISPATCHER_KINDS = ("local", "sharded")


@runtime_checkable
class Dispatcher(Protocol):
    """Executes cache-missing jobs, one record per job, in order."""

    kind: str

    def dispatch(self, jobs: Sequence[Job]) -> List[dict]:
        ...


@dataclass(frozen=True)
class FaultSpec:
    """Deterministic fault injection for dispatch testing.

    Matches jobs by benchmark/experiment (``"*"`` wildcards) and fails
    their first ``times`` attempts: ``action="raise"`` raises an
    :class:`ExperimentError` from inside the attempt,
    ``action="exit"`` kills the worker process outright (simulating a
    dead host; outside a pool worker it degrades to a raise so a serial
    run is never killed).
    """

    benchmark: str = "*"
    experiment: str = "*"
    times: int = 1
    action: str = "raise"

    def matches(self, job: Job) -> bool:
        return self.benchmark in ("*", job.benchmark) and self.experiment in (
            "*",
            job.experiment,
        )


def _inject(
    job: Job, attempt: int, faults: Tuple[FaultSpec, ...], in_worker: bool
) -> None:
    for fault in faults:
        if fault.matches(job) and attempt < fault.times:
            if fault.action == "exit" and in_worker:
                os._exit(17)
            raise ExperimentError(
                f"injected fault for ({job.benchmark}, {job.experiment}, "
                f"{job.effective_library()}) on attempt {attempt}"
            )


def _job_failure(job: Job, exc: BaseException) -> ExperimentError:
    """Name the job that died — a bare worker traceback loses which cell
    of a 24-job matrix failed."""
    return ExperimentError(
        f"job failed for ({job.benchmark}, {job.experiment}, "
        f"{job.effective_library()}): {exc}"
    )


def _pool_kwargs() -> dict:
    """Extra ``ProcessPoolExecutor`` kwargs: when the coordinator is
    tracing, initialize every pool worker with the run's trace context
    so per-job captures stitch under it (no-op kwargs otherwise — the
    disabled path constructs the pool exactly as before)."""
    context = distributed.propagation_context()
    if context is None:
        return {}
    return {
        "initializer": distributed.worker_init,
        "initargs": (context.trace_id, context.span_id),
    }


def _job_event(job: Job, status: str, **extra) -> None:
    """One ``engine.job`` lifecycle event per job completion — what the
    serve progress streams (and `repro top`) are fed from.  Terminal
    completions only: exactly one per job per dispatch (retries emit
    ``engine.job.retry`` instead)."""
    if not obs.enabled():
        return
    obs.event(
        "engine.job",
        benchmark=job.benchmark,
        experiment=job.experiment,
        status=status,
        **extra,
    )


class LocalDispatcher:
    """The classic engine loop: inline, or ``pool.map`` over workers."""

    kind = "local"

    def __init__(self, *, workers: Optional[int] = None) -> None:
        if workers is not None and workers < 1:
            raise ExperimentError(f"workers must be >= 1, got {workers}")
        self.workers = workers

    def dispatch(self, jobs: Sequence[Job]) -> List[dict]:
        if not jobs:
            return []
        obs.add("engine.dispatch.jobs", len(jobs))
        pooled = bool(self.workers and self.workers > 1 and len(jobs) > 1)
        if pooled:
            from concurrent.futures import ProcessPoolExecutor

            # Larger chunks amortize pickling/IPC; the /4 keeps enough
            # chunks in flight to balance uneven job costs.
            chunksize = max(1, len(jobs) // (self.workers * 4))
            with ProcessPoolExecutor(
                max_workers=self.workers, **_pool_kwargs()
            ) as pool:
                return _drain(
                    pool.map(execute_job, jobs, chunksize=chunksize), jobs
                )
        records = []
        for job in jobs:
            try:
                records.append(execute_job(job))
            except ExperimentError:
                raise
            except Exception as exc:
                raise _job_failure(job, exc) from exc
            _job_event(job, "done")
        return records


def _drain(results: Iterable[dict], todo: Sequence[Job]) -> List[dict]:
    """Collect pool results, re-raising the first failure with a job's
    identity.  :func:`~repro.engine.worker.execute_job` already names the
    exact job in its :class:`ExperimentError`; this catch covers failures
    the worker could not wrap (a killed process, an unpicklable record),
    blaming the first undelivered job (``pool.map`` yields in submission
    order, so that is the count of records collected so far)."""
    records: List[dict] = []
    it = iter(results)
    while True:
        try:
            record = next(it)
        except StopIteration:
            return records
        except ExperimentError:
            raise
        except Exception as exc:
            raise _job_failure(todo[len(records)], exc) from exc
        distributed.absorb(record)
        _job_event(todo[len(records)], "done")
        records.append(record)


def _run_shard(
    jobs: Sequence[Job], faults: Tuple[FaultSpec, ...]
) -> List[tuple]:
    """One shard's jobs inside a pool worker.  Per-job failures are
    *contained* — ``("err", message)`` instead of a raise — so one
    poisoned cell never takes its shard-mates' finished work with it."""
    out: List[tuple] = []
    for job in jobs:
        try:
            _inject(job, 0, faults, in_worker=True)
            out.append(("ok", execute_job(job)))
        except ExperimentError as exc:
            out.append(("err", str(exc)))
        except Exception as exc:
            out.append(("err", str(_job_failure(job, exc))))
    return out


class ShardedDispatcher:
    """Shard the matrix, steal work, retry failures with backoff.

    Parameters
    ----------
    workers:
        Pool width; ``None``/1 runs the shards inline (the retry and
        fault machinery still applies — useful for deterministic tests).
    shards:
        Shard count; defaults to ``4 x workers`` (enough hand-off
        opportunities that uneven shard costs balance out), capped at
        the job count.
    max_retries:
        Per-job retry budget beyond the first attempt (default 2).  A
        job that fails every attempt raises the last
        :class:`ExperimentError`, naming the cell.
    backoff:
        Base sleep before retry ``n`` (seconds, doubled each retry);
        0 disables sleeping (tests).
    faults:
        :class:`FaultSpec` injection hooks (tests).
    """

    kind = "sharded"

    def __init__(
        self,
        *,
        workers: Optional[int] = None,
        shards: Optional[int] = None,
        max_retries: int = 2,
        backoff: float = 0.05,
        faults: Sequence[FaultSpec] = (),
    ) -> None:
        if workers is not None and workers < 1:
            raise ExperimentError(f"workers must be >= 1, got {workers}")
        if shards is not None and shards < 1:
            raise ExperimentError(f"shards must be >= 1, got {shards}")
        if max_retries < 0:
            raise ExperimentError(f"max_retries must be >= 0, got {max_retries}")
        self.workers = workers
        self.shards = shards
        self.max_retries = max_retries
        self.backoff = backoff
        self.faults = tuple(faults)

    def _split(self, jobs: Sequence[Job]) -> List[List[Tuple[int, Job]]]:
        """Contiguous shards: submission order is preserved within each
        shard, so a worker sees one benchmark's cells together and its
        compile cache stays warm."""
        nshards = self.shards or max(1, (self.workers or 1) * 4)
        nshards = min(nshards, len(jobs))
        base, extra = divmod(len(jobs), nshards)
        shards: List[List[Tuple[int, Job]]] = []
        start = 0
        for s in range(nshards):
            size = base + (1 if s < extra else 0)
            shards.append([(i, jobs[i]) for i in range(start, start + size)])
            start += size
        return shards

    def dispatch(self, jobs: Sequence[Job]) -> List[dict]:
        if not jobs:
            return []
        shards = self._split(jobs)
        obs.add("engine.dispatch.jobs", len(jobs))
        obs.add("engine.dispatch.shards", len(shards))
        records: List[Optional[dict]] = [None] * len(jobs)
        # (index, job, next attempt, last error) — anything the pool
        # phase could not finish, re-run inline in the coordinator
        retries: List[Tuple[int, Job, int, Optional[str]]] = []

        pooled = bool(
            self.workers and self.workers > 1 and len(shards) > 1
        )
        if pooled:
            self._dispatch_pooled(shards, records, retries)
        else:
            for shard in shards:
                retries.extend((i, job, 0, None) for i, job in shard)

        for index, job, attempt, last_error in retries:
            records[index] = self._run_with_retry(job, attempt, last_error)
        return records  # type: ignore[return-value]

    def _dispatch_pooled(self, shards, records, retries) -> None:
        from concurrent.futures import (
            FIRST_COMPLETED,
            ProcessPoolExecutor,
            wait,
        )

        pending = deque(shards)
        with ProcessPoolExecutor(
            max_workers=self.workers, **_pool_kwargs()
        ) as pool:
            running: dict = {}

            def submit_next(stolen: bool) -> None:
                shard = pending.popleft()
                if stolen:
                    obs.add("engine.dispatch.handoffs")
                try:
                    future = pool.submit(
                        _run_shard, [job for _, job in shard], self.faults
                    )
                except Exception:
                    # the pool is broken (a worker died and poisoned
                    # it); the coordinator owns this shard now
                    obs.add("engine.dispatch.dead_shards")
                    retries.extend((i, job, 1, None) for i, job in shard)
                    return
                running[future] = shard

            while pending and len(running) < (self.workers or 1):
                submit_next(stolen=False)
            while running:
                done, _ = wait(list(running), return_when=FIRST_COMPLETED)
                for future in done:
                    shard = running.pop(future)
                    # work-stealing hand-off: the freed worker takes the
                    # next un-started shard immediately
                    while pending and len(running) < (self.workers or 1):
                        submit_next(stolen=True)
                    try:
                        results = future.result()
                    except Exception:
                        # dead worker: every job of the shard is retried
                        obs.add("engine.dispatch.dead_shards")
                        obs.add("engine.dispatch.retries", len(shard))
                        for index, job in shard:
                            retries.append((index, job, 1, None))
                            if obs.enabled():
                                obs.event(
                                    "engine.job.retry",
                                    benchmark=job.benchmark,
                                    experiment=job.experiment,
                                    reason="dead_shard",
                                )
                        continue
                    for (index, job), outcome in zip(shard, results):
                        if outcome[0] == "ok":
                            distributed.absorb(outcome[1])
                            records[index] = outcome[1]
                            _job_event(job, "done")
                        else:
                            obs.add("engine.dispatch.retries")
                            if obs.enabled():
                                obs.event(
                                    "engine.job.retry",
                                    benchmark=job.benchmark,
                                    experiment=job.experiment,
                                    reason="error",
                                )
                            retries.append((index, job, 1, outcome[1]))

    def _run_with_retry(
        self, job: Job, attempt: int, last_error: Optional[str]
    ) -> dict:
        while True:
            if attempt > self.max_retries:
                obs.add("engine.dispatch.failures")
                raise ExperimentError(
                    last_error
                    or f"job failed for ({job.benchmark}, {job.experiment}, "
                    f"{job.effective_library()}): retries exhausted"
                )
            if attempt > 0 and self.backoff:
                time.sleep(self.backoff * (2 ** (attempt - 1)))
            try:
                _inject(job, attempt, self.faults, in_worker=False)
                record = execute_job(job)
            except ExperimentError as exc:
                last_error = str(exc)
                attempt += 1
                if attempt <= self.max_retries:
                    obs.add("engine.dispatch.retries")
                    if obs.enabled():
                        obs.event(
                            "engine.job.retry",
                            benchmark=job.benchmark,
                            experiment=job.experiment,
                            reason="error",
                        )
            except Exception as exc:
                last_error = str(_job_failure(job, exc))
                attempt += 1
                if attempt <= self.max_retries:
                    obs.add("engine.dispatch.retries")
                    if obs.enabled():
                        obs.event(
                            "engine.job.retry",
                            benchmark=job.benchmark,
                            experiment=job.experiment,
                            reason="error",
                        )
            else:
                distributed.absorb(record)
                _job_event(job, "done", attempt=attempt)
                return record


def make_dispatcher(
    dispatcher: Union[Dispatcher, str, None], workers: Optional[int]
) -> Dispatcher:
    """Coerce the engine's ``dispatcher`` knob: ``None``/``"local"`` is
    the classic pool, ``"sharded"`` the fault-tolerant sharded loop, and
    a ready :class:`Dispatcher` object passes through."""
    if dispatcher is None or dispatcher == "local":
        return LocalDispatcher(workers=workers)
    if dispatcher == "sharded":
        return ShardedDispatcher(workers=workers)
    if isinstance(dispatcher, str):
        raise ExperimentError(
            f"unknown dispatcher {dispatcher!r} "
            f"(choose from {', '.join(DISPATCHER_KINDS)})"
        )
    if hasattr(dispatcher, "dispatch"):
        return dispatcher
    raise ExperimentError(
        f"dispatcher must be a kind name or Dispatcher, not {dispatcher!r}"
    )
