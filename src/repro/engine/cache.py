"""Result-cache backends: content-addressed job records behind one protocol.

Every backend stores finished job records keyed by their SHA-256 content
fingerprint and honors the same contract (the **backend contract**,
executable as ``tests/engine/test_backends.py``):

* ``get`` returns the stored record or ``None`` on *any* miss — absent,
  torn, corrupt, or written under another ``RECORD_SCHEMA``;
* ``put`` is atomic (a concurrent reader sees the old record, the new
  record, or a clean miss — never a partial document) and best-effort
  (storage failures never fail the run that produced the result);
* ``stats`` and ``prune`` make a stale multi-gigabyte store inspectable
  and reclaimable without deleting it by hand.

Four implementations:

``DirCache``
    Today's on-disk layout, ``<root>/<aa>/<fingerprint>.json`` (first
    two hex digits shard the directory); unchanged format, so existing
    ``.repro-cache/`` directories stay valid.  Atomicity is tmp-file +
    ``os.replace``.
``SqliteCache``
    One shared SQLite file in WAL mode — safe for many concurrent
    writer *processes* on one host (:mod:`repro.engine.cache_sqlite`).
``HttpCache``
    A thin JSON GET/PUT client so many hosts can share one store; pair
    with the ``repro cache serve`` server mode
    (:mod:`repro.engine.cache_http`).
``NullCache``
    The ``--no-cache`` backend: everything misses, nothing is stored.

Selection goes through :func:`make_cache` — explicitly via
``cache_backend=`` / ``--cache-backend dir|sqlite|http``, or implicitly:
a set ``REPRO_CACHE_URL`` selects the HTTP backend, otherwise the
directory backend under ``.repro-cache/`` (or ``REPRO_CACHE_DIR``).

Backends count their traffic into the metrics registry under
``cache.backend.*`` (hits / misses / stores / store_errors / invalid);
the engine-level ``engine.result_cache.hit|miss`` counters stay where
they always were, in the dispatch partition.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, Optional, Protocol, Tuple, Union, runtime_checkable

from repro.errors import ExperimentError
from repro.obs import core as obs

#: Schema version of the stored record; bump together with record shape.
#: The telemetry *envelope* (``StudyResult.write_telemetry`` /
#: ``load_telemetry``) is versioned by this same constant, so a record
#: shape change can never silently outrun the document that carries it.
#: 2: records carry the optimizer's per-pass ``pipeline`` report.
#: 3: TIMING times shift by ulps (epoch-rebased clocks) and results
#: carry the ``fastpath`` counter block.
RECORD_SCHEMA = 3

DEFAULT_CACHE_DIR = ".repro-cache"

#: Backend kinds `make_cache` / ``--cache-backend`` accept.
BACKEND_KINDS = ("dir", "sqlite", "http", "null")


def default_cache_root() -> Path:
    return Path(os.environ.get("REPRO_CACHE_DIR", DEFAULT_CACHE_DIR))


def default_cache_url() -> Optional[str]:
    return os.environ.get("REPRO_CACHE_URL") or None


@dataclass
class CacheStats:
    """What a backend holds: entry/byte totals and a per-schema census."""

    backend: str
    location: Optional[str]
    entries: int = 0
    bytes: int = 0
    schemas: Dict[int, int] = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {
            "backend": self.backend,
            "location": self.location,
            "entries": self.entries,
            "bytes": self.bytes,
            "schemas": {str(k): v for k, v in sorted(self.schemas.items())},
        }

    def describe(self) -> str:
        schemas = ", ".join(
            f"schema {k}: {v}" for k, v in sorted(self.schemas.items())
        ) or "empty"
        where = f" at {self.location}" if self.location else ""
        return (
            f"{self.backend} backend{where}: {self.entries} entries, "
            f"{self.bytes} bytes ({schemas})"
        )


@runtime_checkable
class CacheBackend(Protocol):
    """The storage contract every result-cache backend satisfies."""

    kind: str

    def get(self, fingerprint: str) -> Optional[dict]:
        """The stored record, or ``None`` on any miss."""
        ...

    def put(self, fingerprint: str, record: dict) -> None:
        """Store a record atomically, best-effort."""
        ...

    def stats(self) -> CacheStats:
        """Entry/byte totals and the per-schema census."""
        ...

    def prune(
        self,
        *,
        older_than: Optional[float] = None,
        schema: Optional[int] = None,
    ) -> int:
        """Remove entries matching every given filter (age in seconds,
        stored schema version); no filters removes everything.  Returns
        the number of entries removed."""
        ...

    def describe(self) -> dict:
        """``{"backend": kind, "location": root-or-url}`` — the
        telemetry-envelope attribution of where records went."""
        ...


def validate_record(record: object, fingerprint: str) -> Optional[dict]:
    """The shared schema-miss gate: a stored document counts only when it
    is a dict carrying the current ``RECORD_SCHEMA`` *and* filed under
    its own fingerprint; anything else is an invalid entry (counted) and
    reads as a miss."""
    if (
        isinstance(record, dict)
        and record.get("schema") == RECORD_SCHEMA
        and record.get("fingerprint") == fingerprint
    ):
        return record
    obs.add("engine.result_cache.invalid")
    obs.add("cache.backend.invalid")
    return None


class NullCache:
    """The ``--no-cache`` cache: everything misses, nothing is stored."""

    kind = "null"
    root: Optional[Path] = None

    def get(self, fingerprint: str) -> Optional[dict]:
        return None

    def put(self, fingerprint: str, record: dict) -> None:
        pass

    def stats(self) -> CacheStats:
        return CacheStats(backend=self.kind, location=None)

    def prune(
        self,
        *,
        older_than: Optional[float] = None,
        schema: Optional[int] = None,
    ) -> int:
        return 0

    def describe(self) -> dict:
        return {"backend": self.kind, "location": None}


class DirCache:
    """A directory of fingerprint-addressed job records (the historical
    ``.repro-cache/`` layout, byte-for-byte)."""

    kind = "dir"

    def __init__(self, root: Union[str, Path, None] = None) -> None:
        self.root = Path(root) if root is not None else default_cache_root()

    def _path(self, fingerprint: str) -> Path:
        return self.root / fingerprint[:2] / f"{fingerprint}.json"

    def get(self, fingerprint: str) -> Optional[dict]:
        """The stored record for a fingerprint, or None on any miss
        (absent, unreadable, corrupt, or written by another schema)."""
        path = self._path(fingerprint)
        try:
            record = json.loads(path.read_text())
        except OSError:
            obs.add("cache.backend.misses")
            return None
        except ValueError:
            obs.add("engine.result_cache.invalid")
            obs.add("cache.backend.invalid")
            obs.add("cache.backend.misses")
            return None
        record = validate_record(record, fingerprint)
        obs.add("cache.backend.hits" if record is not None else "cache.backend.misses")
        return record

    def put(self, fingerprint: str, record: dict) -> None:
        """Store a record atomically (best-effort: cache write failures
        never fail the run that produced the result)."""
        path = self._path(fingerprint)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            tmp = path.with_suffix(f".tmp.{os.getpid()}")
            tmp.write_text(json.dumps(record, sort_keys=True, indent=1))
            os.replace(tmp, path)
            obs.add("engine.result_cache.store")
            obs.add("cache.backend.stores")
        except OSError:
            obs.add("engine.result_cache.store_error")
            obs.add("cache.backend.store_errors")

    def _entries(self) -> Iterator[Tuple[Path, os.stat_result]]:
        if not self.root.is_dir():
            return
        for path in self.root.rglob("*.json"):
            try:
                yield path, path.stat()
            except OSError:
                continue

    def stats(self) -> CacheStats:
        stats = CacheStats(backend=self.kind, location=str(self.root))
        for path, st in self._entries():
            stats.entries += 1
            stats.bytes += st.st_size
            try:
                schema = json.loads(path.read_text()).get("schema")
            except (OSError, ValueError, AttributeError):
                schema = None
            key = schema if isinstance(schema, int) else -1
            stats.schemas[key] = stats.schemas.get(key, 0) + 1
        return stats

    def prune(
        self,
        *,
        older_than: Optional[float] = None,
        schema: Optional[int] = None,
    ) -> int:
        import time

        cutoff = time.time() - older_than if older_than is not None else None
        removed = 0
        for path, st in list(self._entries()):
            if cutoff is not None and st.st_mtime > cutoff:
                continue
            if schema is not None:
                try:
                    stored = json.loads(path.read_text()).get("schema")
                except (OSError, ValueError, AttributeError):
                    stored = None
                if stored != schema:
                    continue
            try:
                path.unlink()
                removed += 1
            except OSError:
                continue
        obs.add("cache.backend.pruned", removed)
        return removed

    def describe(self) -> dict:
        return {"backend": self.kind, "location": str(self.root)}


#: Historical name (pre-backend-protocol); same class, same layout.
ResultCache = DirCache


def make_cache(
    enabled: bool = True,
    root: Union[str, Path, None] = None,
    *,
    backend: Optional[str] = None,
    url: Optional[str] = None,
) -> CacheBackend:
    """Resolve a cache backend from the engine knobs.

    ``backend`` picks explicitly (``dir`` / ``sqlite`` / ``http`` /
    ``null``); when it is ``None``, a cache URL (argument or
    ``REPRO_CACHE_URL``) selects the HTTP backend and anything else
    falls back to the directory backend.  ``enabled=False`` always wins
    with a :class:`NullCache`.
    """
    if not enabled:
        return NullCache()
    url = url or default_cache_url()
    if backend is None:
        backend = "http" if url else "dir"
    if backend == "dir":
        return DirCache(root)
    if backend == "sqlite":
        from repro.engine.cache_sqlite import SqliteCache

        return SqliteCache(root)
    if backend == "http":
        from repro.engine.cache_http import HttpCache

        if not url:
            raise ExperimentError(
                "http cache backend needs a URL (cache_url= / --cache-url "
                "or $REPRO_CACHE_URL)"
            )
        return HttpCache(url)
    if backend == "null":
        return NullCache()
    raise ExperimentError(
        f"unknown cache backend {backend!r} (choose from {', '.join(BACKEND_KINDS)})"
    )
