"""On-disk result cache: content-addressed job records as JSON files.

Layout: ``<root>/<aa>/<fingerprint>.json`` where ``aa`` is the first two
hex digits of the fingerprint (keeps directories small at large sweep
sizes).  Writes are atomic (tmp file + rename) so concurrent engine
invocations sharing a cache directory never observe torn records; reads
treat missing, truncated, or schema-mismatched files as misses.

The default root is ``.repro-cache/`` under the current directory,
overridable per engine (``cache_dir=``) or globally through the
``REPRO_CACHE_DIR`` environment variable.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Optional, Union

from repro.obs import core as obs

#: Schema version of the stored record; bump together with record shape.
#: The telemetry *envelope* (``StudyResult.write_telemetry`` /
#: ``load_telemetry``) is versioned by this same constant, so a record
#: shape change can never silently outrun the document that carries it.
#: 2: records carry the optimizer's per-pass ``pipeline`` report.
#: 3: TIMING times shift by ulps (epoch-rebased clocks) and results
#: carry the ``fastpath`` counter block.
RECORD_SCHEMA = 3

DEFAULT_CACHE_DIR = ".repro-cache"


def default_cache_root() -> Path:
    return Path(os.environ.get("REPRO_CACHE_DIR", DEFAULT_CACHE_DIR))


class NullCache:
    """The ``--no-cache`` cache: everything misses, nothing is stored."""

    root: Optional[Path] = None

    def get(self, fingerprint: str) -> Optional[dict]:
        return None

    def put(self, fingerprint: str, record: dict) -> None:
        pass


class ResultCache:
    """A directory of fingerprint-addressed job records."""

    def __init__(self, root: Union[str, Path, None] = None) -> None:
        self.root = Path(root) if root is not None else default_cache_root()

    def _path(self, fingerprint: str) -> Path:
        return self.root / fingerprint[:2] / f"{fingerprint}.json"

    def get(self, fingerprint: str) -> Optional[dict]:
        """The stored record for a fingerprint, or None on any miss
        (absent, unreadable, corrupt, or written by another schema)."""
        path = self._path(fingerprint)
        try:
            record = json.loads(path.read_text())
        except OSError:
            return None
        except ValueError:
            obs.add("engine.result_cache.invalid")
            return None
        if (
            not isinstance(record, dict)
            or record.get("schema") != RECORD_SCHEMA
            or record.get("fingerprint") != fingerprint
        ):
            obs.add("engine.result_cache.invalid")
            return None
        return record

    def put(self, fingerprint: str, record: dict) -> None:
        """Store a record atomically (best-effort: cache write failures
        never fail the run that produced the result)."""
        path = self._path(fingerprint)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            tmp = path.with_suffix(f".tmp.{os.getpid()}")
            tmp.write_text(json.dumps(record, sort_keys=True, indent=1))
            os.replace(tmp, path)
            obs.add("engine.result_cache.store")
        except OSError:
            obs.add("engine.result_cache.store_error")


def make_cache(
    enabled: bool = True, root: Union[str, Path, None] = None
) -> Union[ResultCache, NullCache]:
    return ResultCache(root) if enabled else NullCache()
