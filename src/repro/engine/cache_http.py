"""HTTP result-cache backend: a thin JSON client plus its server mode.

The client (:class:`HttpCache`) speaks a four-route protocol any store
can sit behind::

    GET  /records/<fingerprint>   -> 200 record JSON | 404
    PUT  /records/<fingerprint>   <- record JSON     -> 204
    GET  /stats                   -> 200 CacheStats JSON
    POST /prune                   <- {"older_than": s?, "schema": n?}
                                  -> 200 {"removed": n}

The server mode (:class:`CacheServer`, CLI ``repro cache serve``) is a
stdlib ``http.server`` ``ThreadingHTTPServer`` that exposes *any other*
backend — typically a :class:`~repro.engine.cache_sqlite.SqliteCache` —
over that protocol, so one shared content-addressed store can back many
hosts.  Atomicity composes: the server applies each PUT through the
delegate backend's own atomic ``put``, and the client treats every
transport failure, non-200, or invalid body as a miss (reads) or a
counted best-effort failure (writes), matching the backend contract.

Degraded mode is *observable*: a transport-level failure (server
unreachable — as opposed to an HTTP 404, the normal miss) increments
``cache.backend.degraded`` and emits one deduplicated ``warning``
event per process (:func:`repro.obs.core.warn_once`), so a study
silently falling back to misses shows up in `/stats`, `/metrics`, and
traces.

Tracing propagates through the protocol: when the client process is
recording, each request carries the run's trace context in the
``X-Repro-Trace`` header, and the server handler (when *its* process
records) wraps the request in a span adopting that context — so remote
cache calls land in the caller's stitched trace.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional
from urllib import error as urlerror
from urllib import request as urlrequest

from repro.engine.cache import CacheBackend, CacheStats, validate_record
from repro.obs import core as obs
from repro.obs import distributed

__all__ = ["CacheServer", "HttpCache"]

_DEFAULT_TIMEOUT = 10.0


class HttpCache:
    """Fingerprint-addressed records behind a remote cache server."""

    kind = "http"

    def __init__(self, url: str, timeout: float = _DEFAULT_TIMEOUT) -> None:
        self.url = url.rstrip("/")
        self.timeout = timeout

    def _request(
        self, method: str, path: str, body: Optional[dict] = None
    ) -> Optional[bytes]:
        data = json.dumps(body).encode() if body is not None else None
        headers = {"Content-Type": "application/json"} if data else {}
        parent = obs.trace_parent()
        if parent is not None:
            headers[distributed.TRACE_HEADER] = (
                f"{parent[0]}/{parent[1] or ''}"
            )
        req = urlrequest.Request(
            f"{self.url}{path}",
            data=data,
            method=method,
            headers=headers,
        )
        with urlrequest.urlopen(req, timeout=self.timeout) as resp:
            return resp.read()

    def _degraded(self, exc: BaseException) -> None:
        """A transport-level failure (not an HTTP status): the server is
        unreachable and this client is degrading to cache misses."""
        obs.add("cache.backend.degraded")
        obs.warn_once(
            f"cache server {self.url} unreachable; degrading to misses "
            f"({type(exc).__name__})",
            backend=self.kind,
        )

    def get(self, fingerprint: str) -> Optional[dict]:
        with obs.span("cache.http.get", fingerprint=fingerprint[:12]):
            try:
                payload = self._request("GET", f"/records/{fingerprint}")
                record = json.loads(payload)
            except urlerror.HTTPError:
                # an HTTP status (404) is the normal miss — the server
                # answered, nothing is degraded
                obs.add("cache.backend.misses")
                return None
            except (OSError, ValueError, urlerror.URLError) as exc:
                self._degraded(exc)
                obs.add("cache.backend.misses")
                return None
            record = validate_record(record, fingerprint)
            obs.add(
                "cache.backend.hits" if record is not None else "cache.backend.misses"
            )
            return record

    def put(self, fingerprint: str, record: dict) -> None:
        with obs.span("cache.http.put", fingerprint=fingerprint[:12]):
            try:
                self._request("PUT", f"/records/{fingerprint}", body=record)
                obs.add("engine.result_cache.store")
                obs.add("cache.backend.stores")
            except urlerror.HTTPError:
                obs.add("engine.result_cache.store_error")
                obs.add("cache.backend.store_errors")
            except (ValueError, TypeError):
                # unserializable record — a client-side bug, not an
                # unreachable server
                obs.add("engine.result_cache.store_error")
                obs.add("cache.backend.store_errors")
            except (OSError, urlerror.URLError) as exc:
                self._degraded(exc)
                obs.add("engine.result_cache.store_error")
                obs.add("cache.backend.store_errors")

    def stats(self) -> CacheStats:
        stats = CacheStats(backend=self.kind, location=self.url)
        try:
            doc = json.loads(self._request("GET", "/stats"))
        except urlerror.HTTPError:
            return stats
        except (OSError, ValueError, urlerror.URLError) as exc:
            self._degraded(exc)
            return stats
        stats.entries = int(doc.get("entries", 0))
        stats.bytes = int(doc.get("bytes", 0))
        stats.schemas = {
            int(k): int(v) for k, v in (doc.get("schemas") or {}).items()
        }
        return stats

    def prune(
        self,
        *,
        older_than: Optional[float] = None,
        schema: Optional[int] = None,
    ) -> int:
        body = {}
        if older_than is not None:
            body["older_than"] = older_than
        if schema is not None:
            body["schema"] = schema
        try:
            doc = json.loads(self._request("POST", "/prune", body=body))
            return int(doc.get("removed", 0))
        except urlerror.HTTPError:
            return 0
        except (OSError, ValueError, urlerror.URLError) as exc:
            self._degraded(exc)
            return 0

    def describe(self) -> dict:
        return {"backend": self.kind, "location": self.url}


class _CacheHandler(BaseHTTPRequestHandler):
    """Routes the cache protocol onto ``server.backend``."""

    server_version = "repro-cache/1"
    protocol_version = "HTTP/1.1"

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass  # the obs counters are the access log

    def _send_json(self, status: int, payload: dict) -> None:
        body = json.dumps(payload, sort_keys=True).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _read_body(self) -> Optional[dict]:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b"{}"
        try:
            doc = json.loads(raw)
        except ValueError:
            return None
        return doc if isinstance(doc, dict) else None

    @property
    def _backend(self) -> CacheBackend:
        return self.server.backend  # type: ignore[attr-defined]

    def _trace_header(self) -> Optional[str]:
        return self.headers.get(distributed.TRACE_HEADER)

    def do_GET(self) -> None:  # noqa: N802
        obs.add("cache.server.requests")
        with distributed.server_span(
            "cache.server.get", self._trace_header(), path=self.path
        ):
            if self.path.startswith("/records/"):
                fingerprint = self.path[len("/records/") :]
                record = self._backend.get(fingerprint)
                if record is None:
                    self._send_json(404, {"error": "miss"})
                else:
                    self._send_json(200, record)
            elif self.path == "/stats":
                self._send_json(200, self._backend.stats().as_dict())
            elif self.path == "/healthz":
                self._send_json(200, {"ok": True})
            else:
                self._send_json(404, {"error": f"no route {self.path}"})

    def do_PUT(self) -> None:  # noqa: N802
        obs.add("cache.server.requests")
        with distributed.server_span(
            "cache.server.put", self._trace_header(), path=self.path
        ):
            if not self.path.startswith("/records/"):
                self._send_json(404, {"error": f"no route {self.path}"})
                return
            fingerprint = self.path[len("/records/") :]
            record = self._read_body()
            if record is None:
                self._send_json(400, {"error": "body is not a JSON object"})
                return
            self._backend.put(fingerprint, record)
            self.send_response(204)
            self.send_header("Content-Length", "0")
            self.end_headers()

    def do_POST(self) -> None:  # noqa: N802
        obs.add("cache.server.requests")
        with distributed.server_span(
            "cache.server.prune", self._trace_header(), path=self.path
        ):
            if self.path != "/prune":
                self._send_json(404, {"error": f"no route {self.path}"})
                return
            body = self._read_body() or {}
            removed = self._backend.prune(
                older_than=body.get("older_than"), schema=body.get("schema")
            )
            self._send_json(200, {"removed": removed})


class CacheServer:
    """Serve any :class:`CacheBackend` over the cache HTTP protocol.

    ``port=0`` binds an ephemeral port; read the resolved address back
    from :attr:`url`.  :meth:`start` runs the server in a daemon thread
    (tests, embedding); :meth:`serve_forever` blocks (the CLI).
    """

    def __init__(
        self,
        backend: CacheBackend,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.backend = backend
        self._httpd = ThreadingHTTPServer((host, port), _CacheHandler)
        self._httpd.backend = backend  # type: ignore[attr-defined]
        self._thread: Optional[threading.Thread] = None

    @property
    def url(self) -> str:
        host, port = self._httpd.server_address[:2]
        return f"http://{host}:{port}"

    def start(self) -> "CacheServer":
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, daemon=True
        )
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        self._httpd.serve_forever()

    def close(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None
