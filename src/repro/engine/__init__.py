"""The parallel, content-addressed experiment engine.

The paper's whole-program study is a job matrix — ``experiment key x
benchmark x machine`` — that is embarrassingly parallel and highly
cacheable.  This package runs it that way:

* :mod:`repro.engine.jobs` — picklable :class:`Job`/:class:`MachineSpec`
  value objects and SHA-256 content fingerprints;
* :mod:`repro.engine.worker` — job execution with a two-level compile
  cache (front end once per benchmark, optimizer once per opt level);
* :mod:`repro.engine.cache` — the :class:`CacheBackend` protocol and
  its implementations: :class:`DirCache` (the ``.repro-cache/``
  layout), :class:`~repro.engine.cache_sqlite.SqliteCache` (one shared
  WAL-mode store), :class:`~repro.engine.cache_http.HttpCache` (a JSON
  client for a remote store, with :class:`CacheServer` as its server
  mode), and :class:`NullCache`;
* :mod:`repro.engine.dispatch` — the :class:`Dispatcher` protocol:
  :class:`LocalDispatcher` (inline / process pool) and
  :class:`ShardedDispatcher` (work-stealing shards, per-job retry with
  backoff, deterministic fault injection);
* :mod:`repro.engine.core` — :class:`ExperimentEngine` (cache
  partition + dispatch) and the :func:`run_study` facade;
* :mod:`repro.engine.batch` — cost-only variant matrices through one
  :func:`repro.runtime.simulate_many` call per cell, records
  interchangeable with the scalar worker's.

See ``docs/ENGINE.md`` for the job-matrix model, cache backends,
dispatchers, and the telemetry schema.
"""

from repro.engine.batch import execute_cell_batched, run_jobs_batched
from repro.engine.cache import (
    BACKEND_KINDS,
    RECORD_SCHEMA,
    CacheBackend,
    CacheStats,
    DirCache,
    NullCache,
    ResultCache,
    default_cache_root,
    default_cache_url,
    make_cache,
)
from repro.engine.cache_http import CacheServer, HttpCache
from repro.engine.cache_sqlite import SqliteCache
from repro.engine.core import (
    ExperimentEngine,
    JobOutcome,
    StudyResult,
    build_matrix,
    load_telemetry,
    partition_jobs,
    run_study,
)
from repro.engine.dispatch import (
    DISPATCHER_KINDS,
    Dispatcher,
    FaultSpec,
    LocalDispatcher,
    ShardedDispatcher,
    make_dispatcher,
)
from repro.engine.jobs import ENGINE_VERSION, Job, MachineSpec, source_sha
from repro.engine.worker import clear_compile_cache, execute_job

__all__ = [
    "BACKEND_KINDS",
    "CacheBackend",
    "CacheServer",
    "CacheStats",
    "DISPATCHER_KINDS",
    "DirCache",
    "Dispatcher",
    "ENGINE_VERSION",
    "ExperimentEngine",
    "FaultSpec",
    "HttpCache",
    "Job",
    "JobOutcome",
    "LocalDispatcher",
    "MachineSpec",
    "NullCache",
    "RECORD_SCHEMA",
    "ResultCache",
    "ShardedDispatcher",
    "SqliteCache",
    "StudyResult",
    "build_matrix",
    "clear_compile_cache",
    "default_cache_root",
    "default_cache_url",
    "execute_cell_batched",
    "execute_job",
    "load_telemetry",
    "make_cache",
    "make_dispatcher",
    "partition_jobs",
    "run_jobs_batched",
    "run_study",
    "source_sha",
]
