"""The parallel, content-addressed experiment engine.

The paper's whole-program study is a job matrix — ``experiment key x
benchmark x machine`` — that is embarrassingly parallel and highly
cacheable.  This package runs it that way:

* :mod:`repro.engine.jobs` — picklable :class:`Job`/:class:`MachineSpec`
  value objects and SHA-256 content fingerprints;
* :mod:`repro.engine.worker` — job execution with a two-level compile
  cache (front end once per benchmark, optimizer once per opt level);
* :mod:`repro.engine.cache` — the on-disk JSON result cache under
  ``.repro-cache/`` that makes re-runs incremental;
* :mod:`repro.engine.core` — :class:`ExperimentEngine` (cache lookup +
  ``ProcessPoolExecutor`` fan-out) and the :func:`run_study` facade;
* :mod:`repro.engine.batch` — cost-only variant matrices through one
  :func:`repro.runtime.simulate_many` call per cell, records
  interchangeable with the scalar worker's.

See ``docs/ENGINE.md`` for the job-matrix model, cache keys, and the
telemetry schema.
"""

from repro.engine.batch import execute_cell_batched, run_jobs_batched
from repro.engine.cache import (
    RECORD_SCHEMA,
    NullCache,
    ResultCache,
    default_cache_root,
)
from repro.engine.core import (
    ExperimentEngine,
    JobOutcome,
    StudyResult,
    build_matrix,
    load_telemetry,
    run_study,
)
from repro.engine.jobs import ENGINE_VERSION, Job, MachineSpec, source_sha
from repro.engine.worker import clear_compile_cache, execute_job

__all__ = [
    "ENGINE_VERSION",
    "ExperimentEngine",
    "Job",
    "JobOutcome",
    "MachineSpec",
    "NullCache",
    "RECORD_SCHEMA",
    "ResultCache",
    "StudyResult",
    "build_matrix",
    "clear_compile_cache",
    "default_cache_root",
    "execute_cell_batched",
    "execute_job",
    "load_telemetry",
    "run_jobs_batched",
    "run_study",
    "source_sha",
]
