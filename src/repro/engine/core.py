"""The experiment engine: job matrix -> (cached, parallel) results.

:class:`ExperimentEngine` turns a list of :class:`~repro.engine.jobs.Job`
into :class:`JobOutcome` records: each job is first looked up in the
on-disk result cache by content fingerprint; the misses run through
:func:`~repro.engine.worker.execute_job`, inline when serial or over a
``ProcessPoolExecutor`` when ``jobs > 1``.  Outcomes always come back in
submission order regardless of completion order, which is what makes
``--jobs 4`` byte-identical to a serial run.

:func:`run_study` is the public facade (re-exported as
``repro.run_study``): build the paper's ``benchmark x experiment``
matrix on one machine, run it through an engine, and return a
:class:`StudyResult` — a mapping ``benchmark -> [ExperimentResult, ...]``
(directly consumable by every ``repro.analysis.figures`` function) that
also carries the per-job telemetry records.
"""

from __future__ import annotations

import json
import os
from collections.abc import Mapping as MappingABC
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.errors import ExperimentError
from repro.experiments_registry import EXPERIMENT_KEYS, ExperimentResult
from repro.obs import core as obs
from repro.programs import BENCHMARKS
from repro.runtime import ExecutionMode

from repro.engine.cache import RECORD_SCHEMA, CacheBackend, make_cache
from repro.engine.dispatch import Dispatcher, make_dispatcher
from repro.engine.jobs import ConfigValue, Job, MachineSpec

ConfigOverride = Union[Mapping[str, ConfigValue], Iterable[str], None]


@dataclass(frozen=True)
class JobOutcome:
    """One finished job: the submitted :class:`Job`, its full telemetry
    record, and whether it was served from the result cache."""

    job: Job
    record: dict
    cached: bool

    @property
    def result(self) -> ExperimentResult:
        r = self.record["result"]
        return ExperimentResult(
            benchmark=self.record["benchmark"],
            experiment=self.record["experiment"],
            library=self.record["library"],
            static_count=r["static_count"],
            dynamic_count=r["dynamic_count"],
            execution_time=r["execution_time"],
        )


def partition_jobs(
    cache: CacheBackend, jobs: Sequence[Job]
) -> Tuple[List[Optional[JobOutcome]], List[Tuple[int, Job, str]]]:
    """Split a job list against the result cache: a sparse outcome list
    with the hits filled in, plus the ``(index, job, fingerprint)``
    misses still to dispatch.  This is the one place the engine-level
    ``engine.result_cache.hit|miss`` counters are emitted — every
    execution path (per-job, batched, sharded) goes through it."""
    outcomes: List[Optional[JobOutcome]] = [None] * len(jobs)
    misses: List[Tuple[int, Job, str]] = []
    trace = obs.active_trace()
    for i, job in enumerate(jobs):
        fp = job.fingerprint()
        record = cache.get(fp)
        if record is not None:
            obs.add("engine.result_cache.hit")
            record = dict(record, cache_hit=True)
            if trace is not None:
                record["trace"] = trace
                obs.event(
                    "engine.job",
                    benchmark=job.benchmark,
                    experiment=job.experiment,
                    status="cached",
                )
            outcomes[i] = JobOutcome(job=job, record=record, cached=True)
        else:
            obs.add("engine.result_cache.miss")
            misses.append((i, job, fp))
    return outcomes, misses


class ExperimentEngine:
    """Runs jobs through a result-cache backend and a dispatcher.

    Parameters
    ----------
    jobs:
        Worker process count; ``None`` or ``1`` runs inline (sharing one
        compile cache across the whole study), ``N > 1`` fans misses out
        over a worker pool.
    cache:
        Consult/populate the result cache (default on).
    cache_dir:
        Cache root; defaults to ``.repro-cache/`` (or ``REPRO_CACHE_DIR``).
    cache_backend:
        Storage backend kind — ``dir`` (default), ``sqlite``, ``http``;
        see :func:`repro.engine.cache.make_cache`.
    cache_url:
        Base URL for the ``http`` backend (or ``$REPRO_CACHE_URL``).
    dispatcher:
        Execution strategy for cache misses — ``"local"`` (default),
        ``"sharded"``, or a ready :class:`~repro.engine.dispatch.Dispatcher`;
        results are bit-identical across dispatchers.
    """

    def __init__(
        self,
        *,
        jobs: Optional[int] = None,
        cache: bool = True,
        cache_dir: Union[str, Path, None] = None,
        cache_backend: Optional[str] = None,
        cache_url: Optional[str] = None,
        dispatcher: Union[Dispatcher, str, None] = None,
    ) -> None:
        if jobs is not None and jobs < 1:
            raise ExperimentError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs
        self.cache: CacheBackend = make_cache(
            cache, cache_dir, backend=cache_backend, url=cache_url
        )
        self.dispatcher: Dispatcher = make_dispatcher(dispatcher, jobs)

    def run(self, jobs: Sequence[Job]) -> List[JobOutcome]:
        """Run every job, returning outcomes in submission order."""
        with obs.span(
            "engine:run",
            jobs=len(jobs),
            workers=self.jobs or 1,
            dispatcher=self.dispatcher.kind,
            cache_backend=self.cache.kind,
        ):
            outcomes, misses = partition_jobs(self.cache, jobs)
            if misses:
                todo = [job for _, job, _ in misses]
                records = self.dispatcher.dispatch(todo)
                pid = os.getpid()
                trace = obs.active_trace()
                for (i, job, fp), record in zip(misses, records):
                    self.cache.put(fp, record)
                    if trace is not None:
                        # the outcome copy carries the run's trace id into
                        # telemetry envelopes; the cached record stays
                        # trace-free (it is content, not provenance)
                        record = dict(record, trace=trace)
                    outcomes[i] = JobOutcome(job=job, record=record, cached=False)
                    if record.get("worker_pid") != pid:
                        # pool workers start with tracing off; their
                        # warnings travel home in the job record and are
                        # surfaced through the event sink here (inline
                        # execution already emitted them live)
                        _reemit_worker_warnings(record)

            return [o for o in outcomes if o is not None]


def _reemit_worker_warnings(record: dict) -> None:
    """Surface a pool worker's simulation warnings through the active
    event sink (no-op when tracing is off)."""
    if not obs.enabled():
        return
    for message in record["result"].get("warnings", ()):
        obs.event(
            "warning",
            message=message,
            benchmark=record["benchmark"],
            experiment=record["experiment"],
            worker_pid=record.get("worker_pid"),
        )


def build_matrix(
    benchmarks: Iterable[str],
    keys: Iterable[str] = EXPERIMENT_KEYS,
    machine: Union[MachineSpec, str, None] = None,
    config_overrides: Optional[Mapping[str, ConfigOverride]] = None,
    mode: Union[ExecutionMode, str] = ExecutionMode.TIMING,
    fast: Optional[bool] = None,
) -> List[Job]:
    """The study's job matrix: every benchmark under every key, in the
    paper's presentation order."""
    spec = MachineSpec.coerce(machine)
    mode_str = mode.value if isinstance(mode, ExecutionMode) else str(mode)
    keys = tuple(keys)
    return [
        Job.make(
            benchmark=bench,
            experiment=key,
            machine=spec,
            config=_coerce_config((config_overrides or {}).get(bench)),
            mode=mode_str,
            fast=fast,
        )
        for bench in benchmarks
        for key in keys
    ]


def _coerce_config(override: ConfigOverride) -> Optional[Dict[str, ConfigValue]]:
    """Accept a mapping or an iterable of ``name=value`` strings."""
    if override is None:
        return None
    if isinstance(override, MappingABC):
        return dict(override)
    from repro.frontend import parse_config_assignments

    return parse_config_assignments(override)


@dataclass
class StudyResult(MappingABC):
    """Engine results shaped like the legacy suite dict.

    Behaves as a mapping ``benchmark -> [ExperimentResult, ...]`` in key
    order — every ``repro.analysis.figures`` function consumes it
    unchanged — while keeping the underlying :class:`JobOutcome` list
    (and so the full telemetry) reachable.
    """

    results: Dict[str, List[ExperimentResult]]
    outcomes: List[JobOutcome] = field(default_factory=list, repr=False)
    #: Where the records went: the cache backend's ``describe()`` —
    #: ``{"backend": kind, "location": resolved root or URL}`` — so a
    #: telemetry document is attributable to its store (the resolved
    #: ``REPRO_CACHE_DIR``/``REPRO_CACHE_URL`` used to be invisible).
    cache_info: Optional[dict] = None

    def __getitem__(self, benchmark: str) -> List[ExperimentResult]:
        return self.results[benchmark]

    def __iter__(self):
        return iter(self.results)

    def __len__(self) -> int:
        return len(self.results)

    @property
    def telemetry(self) -> List[dict]:
        """Per-job telemetry records, in submission order."""
        return [o.record for o in self.outcomes]

    @property
    def cache_hits(self) -> int:
        return sum(o.cached for o in self.outcomes)

    def write_telemetry(self, path: Union[str, Path]) -> Path:
        """Persist the telemetry records as a JSON document.

        The envelope is versioned by the same ``RECORD_SCHEMA`` constant
        the per-job records carry, so the document version can never
        drift from the records inside it; read it back with
        :func:`load_telemetry`.  When the study ran through a cache
        backend, the envelope also carries its ``cache`` attribution
        (backend kind + resolved root/URL).
        """
        path = Path(path)
        doc = {"schema": RECORD_SCHEMA, "records": self.telemetry}
        if self.cache_info is not None:
            doc["cache"] = self.cache_info
        path.write_text(json.dumps(doc, indent=1, sort_keys=True) + "\n")
        return path


def load_telemetry(path: Union[str, Path]) -> List[dict]:
    """Read back a telemetry document written by
    :meth:`StudyResult.write_telemetry`.

    Rejects non-telemetry files and unknown schema versions — of the
    envelope *and* of every record inside it — instead of handing the
    caller records shaped for a different engine version.
    """
    path = Path(path)
    try:
        doc = json.loads(path.read_text())
    except OSError as exc:
        raise ExperimentError(f"cannot read telemetry {path}: {exc}") from None
    except ValueError as exc:
        raise ExperimentError(f"telemetry {path} is not valid JSON: {exc}") from None
    if not isinstance(doc, dict) or not isinstance(doc.get("records"), list):
        raise ExperimentError(f"{path} is not a telemetry document")
    if doc.get("schema") != RECORD_SCHEMA:
        raise ExperimentError(
            f"telemetry {path} has envelope schema {doc.get('schema')!r}; "
            f"this version reads schema {RECORD_SCHEMA}"
        )
    for i, record in enumerate(doc["records"]):
        if not isinstance(record, dict) or record.get("schema") != RECORD_SCHEMA:
            raise ExperimentError(
                f"telemetry {path}: record {i} has schema "
                f"{record.get('schema') if isinstance(record, dict) else None!r}; "
                f"expected {RECORD_SCHEMA}"
            )
    return doc["records"]


def run_study(
    *,
    benchmarks: Union[str, Iterable[str]] = BENCHMARKS,
    keys: Iterable[str] = EXPERIMENT_KEYS,
    machine: Union[MachineSpec, str, None] = None,
    nprocs: Optional[int] = None,
    library: Optional[str] = None,
    config_overrides: Optional[Mapping[str, ConfigOverride]] = None,
    mode: Union[ExecutionMode, str] = ExecutionMode.TIMING,
    fast: Optional[bool] = None,
    jobs: Optional[int] = None,
    cache: bool = True,
    cache_dir: Union[str, Path, None] = None,
    cache_backend: Optional[str] = None,
    cache_url: Optional[str] = None,
    dispatcher: Union[Dispatcher, str, None] = None,
    telemetry: Union[str, Path, None] = None,
) -> StudyResult:
    """Run the whole-program study through the experiment engine.

    Keyword-only by design: every axis of the matrix is named.

    Parameters
    ----------
    benchmarks:
        Benchmark name(s); defaults to the paper's four.
    keys:
        Experiment keys in output order; defaults to Figure 9's six.
    machine, nprocs, library:
        The target machine — a name (``"t3d"``/``"paragon"``) or a
        :class:`MachineSpec`.  ``nprocs`` defaults to the paper's 64;
        ``library=None`` uses each key's library.
    config_overrides:
        ``benchmark -> overrides`` where overrides are a mapping or an
        iterable of ``"name=value"`` strings (parsed by
        :func:`repro.frontend.parse_config_assignments`).
    mode:
        ``ExecutionMode`` or its value string; TIMING by default.
    fast:
        Compiled fast-path selection, forwarded to
        :func:`repro.runtime.simulate` (None = auto, ``False`` forces
        the interpreted walk; results are bit-identical either way).
    jobs, cache, cache_dir, cache_backend, cache_url, dispatcher:
        Engine knobs — see :class:`ExperimentEngine`; ``cache_backend``
        selects the storage backend (``dir``/``sqlite``/``http``) and
        ``dispatcher`` the execution strategy (``local``/``sharded``).
    telemetry:
        Optional path; when given, the telemetry records are written
        there as JSON.

    Returns
    -------
    StudyResult
        ``benchmark -> [ExperimentResult, ...]`` plus telemetry.
    """
    if isinstance(benchmarks, str):
        benchmarks = (benchmarks,)
    benchmarks = tuple(benchmarks)
    keys = tuple(keys)
    # `nprocs or 64` would silently promote an (invalid) 0 to the paper's
    # default; pass the value through so MachineSpec rejects it
    spec = MachineSpec.coerce(
        machine, nprocs=64 if nprocs is None else nprocs, library=library
    )

    matrix = build_matrix(
        benchmarks,
        keys,
        machine=spec,
        config_overrides=config_overrides,
        mode=mode,
        fast=fast,
    )
    engine = ExperimentEngine(
        jobs=jobs,
        cache=cache,
        cache_dir=cache_dir,
        cache_backend=cache_backend,
        cache_url=cache_url,
        dispatcher=dispatcher,
    )
    outcomes = engine.run(matrix)

    results: Dict[str, List[ExperimentResult]] = {b: [] for b in benchmarks}
    for outcome in outcomes:
        results[outcome.job.benchmark].append(outcome.result)

    study = StudyResult(
        results=results, outcomes=outcomes, cache_info=engine.cache.describe()
    )
    if telemetry is not None:
        study.write_telemetry(telemetry)
    return study
