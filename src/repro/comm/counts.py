"""Static communication counting.

The paper's *static count* is "the number of communications in the text
of the SPMD program", where a communication is one data transfer — a
descriptor — regardless of how many IRONMAN calls express it or how many
arrays a combined transfer carries.

These helpers also break counts down per basic block and per call kind,
which the tests and the ablation benchmarks use.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict

from repro.ir import nodes as ir
from repro.ironman.calls import CallKind


def static_comm_count(program: ir.IRProgram) -> int:
    """Number of communications (transfers) in the program text."""
    return len(program.all_descriptors())


def static_call_count(program: ir.IRProgram) -> Dict[CallKind, int]:
    """Number of IRONMAN calls in the program text, per kind.

    Every transfer has exactly one call of each kind, so each kind's count
    equals :func:`static_comm_count`; the breakdown exists to let tests
    assert that invariant and to count no-op calls under a binding."""
    counts: Counter = Counter()
    for block in program.walk_blocks():
        for call in block.comm_calls():
            counts[call.kind] += 1
    return dict(counts)


def static_message_volume_entries(program: ir.IRProgram) -> int:
    """Total member entries across all transfers: equals the number of
    transfers the *uncombined* program would need for the same data (used
    to verify that combining preserves volume)."""
    return sum(len(d.entries) for d in program.all_descriptors())


def per_block_counts(program: ir.IRProgram) -> list:
    """(block index, transfer count) pairs in textual order."""
    return [
        (i, len(block.descriptors()))
        for i, block in enumerate(program.walk_blocks())
    ]
