"""The communication optimizer as an instrumented pass pipeline.

The paper's optimizer is a fixed sequence of transformations over a
block's planned communications.  This module makes that sequence a
first-class object: a :class:`PassPipeline` of named :class:`CommPass`
instances, each reporting what it actually did (:class:`PassStats`), with
legality constraints validated at construction and an optional verifier
run between passes.  :class:`~repro.comm.optimizer.OptimizationConfig`
is a thin factory over this layer — ``config.pipeline()`` compiles the
paper's five experiment keys to the same five pipelines the hardcoded
driver used to run, byte-identically.

Pass anatomy
------------

A pass transforms one block's :class:`~repro.comm.planning.BlockPlan` in
place and returns a :class:`PassStats`.  Shared state across blocks (the
inter-block available set, the placement list handed to materialization)
travels in a :class:`PassContext`.  Ordering legality is declared on the
pass class:

``requires``
    Pass names that **must** appear earlier in the pipeline
    (``interblock`` requires ``redundancy``: entry-available removal
    assumes single-member plans and intra-block folding already done).
``after``
    Pass names that, *when present*, must appear earlier (``combining``
    must not precede either removal pass — removal asserts single-member
    plans).
``terminal``
    No pass may follow (``pipelining`` computes the final call
    placements).

The registry (:func:`register_pass` / :func:`registered_passes`) maps
pass names to classes so tools — the ``repro passes`` CLI, sweep axes
beyond the paper's five keys — can enumerate and build pipelines without
hardcoding the set.

Statistics
----------

Per pass, accumulated over every block of a program into a
:class:`PipelineReport`:

``removed``
    Transfers deleted (redundancy, interblock).
``merged``
    Messages eliminated by folding members into a combined transfer.
``distance_gained``
    Change in latency-hiding distance: positive for ``pipelining`` (the
    send-to-completion span it actually opened), non-positive for
    ``combining`` (the hiding potential a merge gave up).
``wall_s``
    Host wall-clock spent inside the pass.

The report reconciles by construction: ``planned - removed - merged ==
final`` where ``planned`` is the naive transfer count and ``final`` the
static count of the optimized program — the invariant the engine's
telemetry tests and the Figure 8 deltas check.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Type

from repro.comm.combining import HEURISTICS, combine
from repro.comm.interblock import (
    AvailableSet,
    exit_available,
    remove_entry_available,
)
from repro.comm.materialize import materialize
from repro.comm.pipelining import CommPlacement, place_calls
from repro.comm.planning import BlockPlan, plan_naive
from repro.comm.redundancy import remove_redundant
from repro.errors import OptimizationError
from repro.ir import nodes as ir
from repro.ironman.calls import CallKind
from repro.obs import core as obs


# ---------------------------------------------------------------------------
# statistics
# ---------------------------------------------------------------------------


@dataclass
class PassStats:
    """What one pass did — to one block, or summed over a program."""

    name: str
    removed: int = 0
    merged: int = 0
    distance_gained: int = 0
    wall_s: float = 0.0

    def add(self, other: "PassStats") -> None:
        """Accumulate another block's stats for the same pass."""
        if other.name != self.name:
            raise OptimizationError(
                f"cannot merge stats of {other.name!r} into {self.name!r}"
            )
        self.removed += other.removed
        self.merged += other.merged
        self.distance_gained += other.distance_gained
        self.wall_s += other.wall_s

    def as_dict(self) -> dict:
        """JSON-safe representation (the telemetry schema)."""
        return {
            "name": self.name,
            "removed": self.removed,
            "merged": self.merged,
            "distance_gained": self.distance_gained,
            "wall_s": self.wall_s,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "PassStats":
        return cls(
            name=data["name"],
            removed=int(data["removed"]),
            merged=int(data["merged"]),
            distance_gained=int(data["distance_gained"]),
            wall_s=float(data["wall_s"]),
        )


@dataclass
class PipelineReport:
    """Per-pass statistics for one whole-program optimization run.

    ``passes`` holds one accumulated :class:`PassStats` per pipeline
    stage, in pipeline order; ``planned`` is the naive (pre-pass)
    transfer count over all blocks and ``final`` the post-pass count, so
    ``planned - total_removed - total_merged == final`` always holds
    (:meth:`reconciles`).
    """

    signature: Tuple[str, ...]
    blocks: int = 0
    planned: int = 0
    final: int = 0
    passes: List[PassStats] = field(default_factory=list)

    def record_block(
        self, planned: int, final: int, stats: Sequence[PassStats]
    ) -> None:
        """Fold one block's run into the program totals."""
        self.blocks += 1
        self.planned += planned
        self.final += final
        if not self.passes:
            self.passes = [
                PassStats(name=s.name) for s in stats
            ]
        for total, s in zip(self.passes, stats):
            total.add(s)

    @property
    def total_removed(self) -> int:
        return sum(s.removed for s in self.passes)

    @property
    def total_merged(self) -> int:
        return sum(s.merged for s in self.passes)

    def reconciles(self) -> bool:
        """Do the per-pass deltas explain the whole static reduction?"""
        return self.planned - self.total_removed - self.total_merged == self.final

    def stats_for(self, name: str) -> Optional[PassStats]:
        for s in self.passes:
            if s.name == name:
                return s
        return None

    def as_dict(self) -> dict:
        """JSON-safe representation (stored in engine telemetry)."""
        return {
            "signature": list(self.signature),
            "blocks": self.blocks,
            "planned": self.planned,
            "final": self.final,
            "passes": [s.as_dict() for s in self.passes],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "PipelineReport":
        return cls(
            signature=tuple(data["signature"]),
            blocks=int(data["blocks"]),
            planned=int(data["planned"]),
            final=int(data["final"]),
            passes=[PassStats.from_dict(s) for s in data["passes"]],
        )


# ---------------------------------------------------------------------------
# pass protocol and registry
# ---------------------------------------------------------------------------


@dataclass
class PassContext:
    """State shared across a pipeline run.

    ``avail`` is the inter-block available-transfer set (None outside an
    inter-block dataflow region); ``placements`` is set by a placement
    pass and consumed by materialization.
    """

    avail: Optional[AvailableSet] = None
    placements: Optional[List[CommPlacement]] = None


class CommPass:
    """Base class of all communication-optimization passes.

    Subclasses set ``name`` (the registry key) and the ordering
    constraints (``requires``/``after``/``terminal``, see the module
    docstring) and implement :meth:`run`.
    """

    name: str = ""
    requires: Tuple[str, ...] = ()
    after: Tuple[str, ...] = ()
    terminal: bool = False

    def run(self, plan: BlockPlan, ctx: PassContext) -> PassStats:
        """Transform ``plan`` in place; return what was done."""
        raise NotImplementedError

    def signature(self) -> str:
        """Identity string covering every behavior-relevant option."""
        return self.name

    def describe(self) -> str:
        """One-line human description (first docstring line)."""
        doc = type(self).__doc__ or self.name
        return doc.strip().splitlines()[0]


PASS_REGISTRY: Dict[str, Type[CommPass]] = {}


def register_pass(cls: Type[CommPass]) -> Type[CommPass]:
    """Class decorator: add a pass to the global registry by name."""
    if not cls.name:
        raise OptimizationError(f"pass class {cls.__name__} has no name")
    if cls.name in PASS_REGISTRY:
        raise OptimizationError(f"pass {cls.name!r} already registered")
    PASS_REGISTRY[cls.name] = cls
    return cls


def registered_passes() -> Dict[str, Type[CommPass]]:
    """Snapshot of the pass registry (name -> class)."""
    return dict(PASS_REGISTRY)


def make_pass(name: str, **options) -> CommPass:
    """Instantiate a registered pass by name."""
    try:
        cls = PASS_REGISTRY[name]
    except KeyError:
        raise OptimizationError(
            f"unknown pass {name!r} "
            f"(registered: {', '.join(sorted(PASS_REGISTRY))})"
        ) from None
    return cls(**options)


# ---------------------------------------------------------------------------
# the paper's passes
# ---------------------------------------------------------------------------


@register_pass
class RedundancyPass(CommPass):
    """Remove transfers whose data an earlier same-block transfer moved."""

    name = "redundancy"

    def run(self, plan: BlockPlan, ctx: PassContext) -> PassStats:
        return PassStats(self.name, removed=remove_redundant(plan))


@register_pass
class InterblockPass(CommPass):
    """Remove transfers already available from preceding blocks (dataflow)."""

    name = "interblock"
    requires = ("redundancy",)

    def run(self, plan: BlockPlan, ctx: PassContext) -> PassStats:
        if ctx.avail is None:
            # no dataflow region threaded through this run: nothing to do
            return PassStats(self.name)
        removed = remove_entry_available(plan, ctx.avail)
        new_avail = exit_available(plan, ctx.avail)
        ctx.avail.clear()
        ctx.avail.update(new_avail)
        return PassStats(self.name, removed=removed)


@register_pass
class CombiningPass(CommPass):
    """Merge same-direction transfers of different arrays into one message."""

    name = "combining"
    after = ("redundancy", "interblock")

    def __init__(self, heuristic: str = "max_combining") -> None:
        if heuristic not in HEURISTICS:
            raise OptimizationError(
                f"unknown combining heuristic {heuristic!r} "
                f"(valid: {', '.join(HEURISTICS)})"
            )
        self.heuristic = heuristic

    def signature(self) -> str:
        return f"combining[{self.heuristic}]"

    def run(self, plan: BlockPlan, ctx: PassContext) -> PassStats:
        before = sum(c.distance for c in plan.comms)
        merged = combine(plan, self.heuristic)
        after = sum(c.distance for c in plan.comms)
        # merging only ever shrinks total span: the gain is <= 0, the
        # hiding potential this heuristic traded for fewer messages
        return PassStats(self.name, merged=merged, distance_gained=after - before)


@register_pass
class PipeliningPass(CommPass):
    """Hoist transfer initiation (DR/SR) to the data's ready point."""

    name = "pipelining"
    terminal = True

    def run(self, plan: BlockPlan, ctx: PassContext) -> PassStats:
        ctx.placements = place_calls(plan, pipelining=True)
        gained = sum(p.dn - p.dr for p in ctx.placements)
        return PassStats(self.name, distance_gained=gained)


# ---------------------------------------------------------------------------
# verification
# ---------------------------------------------------------------------------


def verify_plan(plan: BlockPlan, owner: str = "plan") -> None:
    """Check a block plan's invariants; raise OptimizationError on any
    violation.  Run between passes when the pipeline verifier is on."""
    n = len(plan.info.core)
    for comm in plan.comms:
        if not comm.members:
            raise OptimizationError(f"{owner}: transfer with no members")
        if not comm.is_legal:
            raise OptimizationError(
                f"{owner}: illegal transfer (ready={comm.ready} > "
                f"use={comm.use}) for arrays {comm.arrays()}"
            )
        for member in comm.members:
            if not 0 <= member.ready <= n or not 0 <= member.use <= n:
                raise OptimizationError(
                    f"{owner}: member position out of block bounds "
                    f"(ready={member.ready}, use={member.use}, n={n})"
                )


def verify_block(block: ir.Block) -> None:
    """Check a materialized block's IR invariants: every transfer has
    exactly one call of each kind, ordered DR <= SR <= DN <= SV."""
    positions: Dict[int, Dict[CallKind, int]] = {}
    for pos, stmt in enumerate(block.stmts):
        if isinstance(stmt, ir.CommCall):
            by_kind = positions.setdefault(stmt.desc.id, {})
            if stmt.kind in by_kind:
                raise OptimizationError(
                    f"transfer {stmt.desc.id} has duplicate {stmt.kind.name}"
                )
            by_kind[stmt.kind] = pos
    for desc_id, by_kind in positions.items():
        if set(by_kind) != set(CallKind):
            missing = [k.name for k in CallKind if k not in by_kind]
            raise OptimizationError(
                f"transfer {desc_id} is missing calls: {', '.join(missing)}"
            )
        if not (
            by_kind[CallKind.DR]
            <= by_kind[CallKind.SR]
            <= by_kind[CallKind.DN]
            <= by_kind[CallKind.SV]
        ):
            raise OptimizationError(
                f"transfer {desc_id} calls out of order: "
                + ", ".join(f"{k.name}@{p}" for k, p in by_kind.items())
            )


# ---------------------------------------------------------------------------
# the pipeline
# ---------------------------------------------------------------------------


class PassPipeline:
    """An ordered, legality-checked sequence of communication passes.

    Parameters
    ----------
    passes:
        :class:`CommPass` instances, in execution order.  Ordering
        constraints (``requires``, ``after``, ``terminal``, no
        duplicates) are validated here — an illegal pipeline never
        constructs.
    verify:
        Run :func:`verify_plan` after every pass and
        :func:`verify_block` after materialization (slower; tests and
        debugging).
    """

    def __init__(self, passes: Sequence[CommPass], verify: bool = False) -> None:
        self.passes: Tuple[CommPass, ...] = tuple(passes)
        self.verify = verify
        self._validate()

    def _validate(self) -> None:
        seen: List[str] = []
        for index, p in enumerate(self.passes):
            if p.name in seen:
                raise OptimizationError(
                    f"pass {p.name!r} appears twice in the pipeline"
                )
            for needed in p.requires:
                if needed not in seen:
                    raise OptimizationError(
                        f"pass {p.name!r} requires {needed!r} earlier in "
                        f"the pipeline"
                    )
            later = {q.name for q in self.passes[index + 1:]}
            for pred in p.after:
                if pred in later:
                    raise OptimizationError(
                        f"pass {pred!r} must run before {p.name!r}"
                    )
            if p.terminal and index != len(self.passes) - 1:
                raise OptimizationError(
                    f"pass {p.name!r} is terminal; nothing may follow it"
                )
            seen.append(p.name)

    def signature(self) -> Tuple[str, ...]:
        """Per-pass identity strings — the pipeline's fingerprint axis."""
        return tuple(p.signature() for p in self.passes)

    def describe(self) -> str:
        return " -> ".join(self.signature()) if self.passes else "(empty)"

    def has(self, name: str) -> bool:
        return any(p.name == name for p in self.passes)

    def run_block(
        self, block: ir.Block, ctx: Optional[PassContext] = None
    ) -> Tuple[ir.Block, int, List[PassStats]]:
        """Optimize one basic block.

        Returns ``(new_block, planned, stats)`` where ``planned`` is the
        naive transfer count and ``stats`` has one entry per pass in
        pipeline order.
        """
        if ctx is None:
            ctx = PassContext()
        plan = plan_naive(block)
        planned = len(plan.comms)
        if self.verify:
            verify_plan(plan, "plan_naive")
        stats: List[PassStats] = []
        for p in self.passes:
            with obs.span(f"pass:{p.name}", signature=p.signature()):
                t0 = time.perf_counter()
                s = p.run(plan, ctx)
                s.wall_s = time.perf_counter() - t0
            obs.add(f"opt.pass.{p.name}.removed", s.removed)
            obs.add(f"opt.pass.{p.name}.merged", s.merged)
            if self.verify:
                verify_plan(plan, f"after {p.signature()}")
            stats.append(s)
        placements = ctx.placements
        ctx.placements = None
        if placements is None:
            # no placement pass ran: the paper's naive shape (all four
            # calls together at first use)
            placements = place_calls(plan, pipelining=False)
        new_block = materialize(plan, placements)
        if self.verify:
            verify_block(new_block)
        return new_block, planned, stats
