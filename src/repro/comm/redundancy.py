"""Redundant communication removal.

A communication for ``(array, offset)`` is *redundant* if an earlier
communication in the same basic block transferred the same data — i.e.
same array, same offset vector, and the array has not been modified since
the earlier transfer completed.  Removing it reduces both the number of
messages and the volume of data sent.

In the paper's TOMCATV fragment, the communication for ``X@east`` on line
9 is redundant with the one on line 2 because ``X`` is unmodified in
between.

Implementation: walk the block's planned communications in first-use
order, keeping, per ``(array, offsets)`` key, the most recent *live*
transfer.  A later transfer folds into the live one when no write to the
array occurs between the live transfer's first use and the later use.
Folding extends the survivor's ``use_region`` to the bounding region of
all served uses, so the single transfer moves (at least) all data any
served use needs.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.comm.planning import BlockPlan, PlannedComm
from repro.lang.regions import bounding_region


def remove_redundant(plan: BlockPlan) -> int:
    """Apply redundancy removal to ``plan`` in place.

    Returns
    -------
    int
        Number of communications removed.
    """
    live: Dict[Tuple[str, Tuple[int, ...]], PlannedComm] = {}
    kept = []
    removed = 0
    for comm in plan.comms:
        # planning produces single-member comms; combination runs later
        assert len(comm.members) == 1, "redundancy removal must run first"
        member = comm.members[0]
        key = comm.key
        earlier = live.get(key)
        if earlier is not None:
            e_member = earlier.members[0]
            if not plan.info.written_between(
                member.array, e_member.use, member.use
            ):
                # the earlier transfer's data is still current: fold
                e_member.use_region = bounding_region(
                    e_member.use_region.name,
                    [e_member.use_region, member.use_region],
                )
                e_member.all_uses.append(member.use)
                removed += 1
                continue
        live[key] = comm
        kept.append(comm)
    plan.comms = kept
    return removed
