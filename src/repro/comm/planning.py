"""Communication planning: the mutable per-block representation the
optimization passes transform.

A :class:`PlannedComm` stands for one data transfer.  It starts out
serving a single shifted use and may absorb further uses (redundancy
removal) or further arrays (combination).  Positions are indices into the
block's core-statement list: position ``i`` means "immediately before
core statement ``i``"; position ``len(core)`` is the end of the block.

Two derived positions drive everything:

``ready``
    The earliest position at which the transferred data is final: one
    past the last write of the array before its first use (0 if the array
    is not written earlier in the block).  The send may not be hoisted
    above this.
``use``
    The position of the first statement that reads the transferred data.
    The receive must complete here.

The *distance* ``use - ready`` is the paper's measure of latency-hiding
potential.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.ir import nodes as ir
from repro.ir.analysis import BlockInfo
from repro.lang.regions import Direction, Region, bounding_region


def direction_communicates(direction: Direction, rank: int) -> bool:
    """True when a shift by ``direction`` over rank-``rank`` arrays can
    reference nonlocal data.

    Arrays are block-distributed over a two-dimensional virtual processor
    mesh (ZPL's convention, known machine-independently at compile time):
    dims 0 and 1 are distributed for rank >= 2 and dim 0 for rank 1, while
    higher dims are processor-local.  A shift that moves only along local
    dims (e.g. the ``z`` sweeps of a rank-3 ADI solve) never communicates
    and generates no IRONMAN calls.
    """
    distributed = (0,) if rank == 1 else (0, 1)
    return any(
        direction.offsets[d] != 0 for d in distributed if d < direction.rank
    )


@dataclass
class CommMember:
    """One array's participation in a planned communication."""

    array: str
    use_region: Region
    #: first core-statement index that reads this member's data
    use: int
    #: earliest legal send position for this member's data
    ready: int
    #: all use positions this member serves (grows under redundancy
    #: removal); kept for diagnostics and tests
    all_uses: List[int] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.all_uses:
            self.all_uses = [self.use]

    @property
    def distance(self) -> int:
        """Latency-hiding potential of this member alone."""
        return self.use - self.ready


@dataclass
class PlannedComm:
    """A planned data transfer: one direction, one or more members.

    ``wrap`` marks a periodic transfer; wrap and non-wrap transfers are
    never identified or combined with each other (they move different
    data between different processor pairs at the mesh edges)."""

    direction: Direction
    members: List[CommMember]
    wrap: bool = False

    @property
    def key(self) -> Tuple[str, Tuple[int, ...], bool]:
        """Identity used by redundancy removal (single-member comms)."""
        assert len(self.members) == 1
        return (self.members[0].array, self.direction.offsets, self.wrap)

    @property
    def ready(self) -> int:
        """Earliest legal send position for the (possibly combined)
        transfer: every member's data must be final."""
        return max(m.ready for m in self.members)

    @property
    def use(self) -> int:
        """Position where the (possibly combined) transfer must complete:
        the earliest member use."""
        return min(m.use for m in self.members)

    @property
    def distance(self) -> int:
        """Latency-hiding potential of the transfer as planned."""
        return self.use - self.ready

    @property
    def is_legal(self) -> bool:
        """A transfer is legal when its send point does not fall after its
        completion point."""
        return self.ready <= self.use

    def arrays(self) -> List[str]:
        return [m.array for m in self.members]


@dataclass
class BlockPlan:
    """All planned communications of one basic block, in first-use order."""

    info: BlockInfo
    comms: List[PlannedComm]


def plan_naive(block: ir.Block, *, assume_clean_entry: bool = True) -> BlockPlan:
    """Plan baseline communication for a block.

    One :class:`PlannedComm` per distinct ``(array, offset)`` reference
    *per statement*: this is naive generation with message vectorization —
    the transfer is a whole strip (the statement is a whole-array
    operation), but every statement re-communicates everything it reads
    nonlocally.  Duplicate references within one statement (e.g. ``A@east
    * A@east``) need only one transfer even naively, since the compiler
    emits one set of calls per reference pattern per statement.

    Parameters
    ----------
    block:
        A communication-free basic block (core statements only).
    assume_clean_entry:
        Unused placeholder for future inter-block analysis; planning is
        strictly intra-block, as in the paper.
    """
    info = BlockInfo(block)
    comms: List[PlannedComm] = []
    for stmt_index in range(len(info.core)):
        stmt_uses = [u for u in info.shifted_uses if u.stmt_index == stmt_index]
        seen: Dict[Tuple[str, Tuple[int, ...]], PlannedComm] = {}
        for use in stmt_uses:
            if not direction_communicates(use.direction, use.region.rank):
                continue
            existing = seen.get(use.key)
            if existing is not None:
                # same (array, offset) twice in one statement: one transfer
                member = existing.members[0]
                member.use_region = bounding_region(
                    member.use_region.name,
                    [member.use_region, use.region],
                )
                continue
            ready = info.last_write_before(use.array, stmt_index) + 1
            planned = PlannedComm(
                direction=use.direction,
                wrap=use.wrap,
                members=[
                    CommMember(
                        array=use.array,
                        use_region=use.region,
                        use=stmt_index,
                        ready=ready,
                    )
                ],
            )
            seen[use.key] = planned
            comms.append(planned)
    return BlockPlan(info=info, comms=comms)
