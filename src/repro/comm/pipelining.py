"""Communication pipelining and call placement.

Pipelining separates the initiation of a transfer from its completion:
the send side (DR and SR) is hoisted up to the data's *ready* point — just
after the last modification of the array, or the top of the basic block —
while the receive side (DN) stays immediately before the first use.  The
computation between the two points overlaps the data transfer, hiding its
latency.  Pipelining changes neither the number of messages nor the data
volume.

Without pipelining, all four calls sit together immediately before the
first use (the paper's naive placement).

SV — the source-volatile fence — is placed immediately before the first
statement (at or after the send) that overwrites any member array, or at
the end of the block if none does.  For libraries where SV is a no-op
(csend, PVM, SHMEM) the position is cosmetic; for ``msgwait``-bound SV
(NX async/callback sends) it is the point where the source blocks until
its buffer is reusable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.comm.planning import BlockPlan, PlannedComm
from repro.errors import OptimizationError


@dataclass(frozen=True)
class CommPlacement:
    """Final call positions for one transfer.

    Positions index the block's core statements: a call at position ``i``
    is emitted immediately before core statement ``i`` (``len(core)`` is
    the end of the block)."""

    comm: PlannedComm
    dr: int
    sr: int
    dn: int
    sv: int


def place_calls(plan: BlockPlan, pipelining: bool) -> List[CommPlacement]:
    """Compute IRONMAN call positions for every planned communication.

    Parameters
    ----------
    plan:
        The (optimized) block plan.
    pipelining:
        When True, DR/SR move to the transfer's ready point; otherwise they
        sit with DN at the first use.

    Returns
    -------
    list of CommPlacement
    """
    n = len(plan.info.core)
    placements: List[CommPlacement] = []
    for comm in plan.comms:
        if not comm.is_legal:
            raise OptimizationError(
                f"illegal communication plan: ready={comm.ready} > "
                f"use={comm.use} for arrays {comm.arrays()}"
            )
        dn = comm.use
        initiate = comm.ready if pipelining else dn
        if pipelining:
            # SV: before the first overwrite of any member array after the
            # send point; end of block otherwise.
            sv = n
            for member in comm.members:
                w = plan.info.first_write_at_or_after(member.array, initiate)
                sv = min(sv, w)
            if sv < dn:
                # cannot happen for a legal plan (a write before the first
                # use would have pushed ready past it), but keep the
                # invariant explicit: the transfer is complete at DN.
                sv = dn
        else:
            # naive placement keeps all four calls together immediately
            # before the first use (the paper's Figure 1(a) shape)
            sv = dn
        placements.append(
            CommPlacement(comm=comm, dr=initiate, sr=initiate, dn=dn, sv=sv)
        )
    return placements
