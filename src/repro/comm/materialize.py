"""Materialization: turn call placements back into IR.

Builds a new :class:`~repro.ir.nodes.Block` in which IRONMAN
:class:`~repro.ir.nodes.CommCall` statements are interleaved with the
original core statements at their computed positions.

At a single position, calls are emitted grouped by kind in the order
``DR, SR, DN, SV`` (each group ordered by transfer id).  Receives are
posted and sends initiated before any completion waits at the same point,
which maximizes overlap and matches how a compiler schedules calls that
share an insertion point.
"""

from __future__ import annotations

from typing import Dict, List

from repro.comm.pipelining import CommPlacement
from repro.comm.planning import BlockPlan
from repro.ir import nodes as ir
from repro.ironman.calls import CallKind

_KIND_ORDER = (CallKind.DR, CallKind.SR, CallKind.DN, CallKind.SV)


def materialize(plan: BlockPlan, placements: List[CommPlacement]) -> ir.Block:
    """Build the final block with communication calls interleaved."""
    core = plan.info.core
    n = len(core)

    descriptors: Dict[int, ir.CommDescriptor] = {}
    # position -> kind -> list of (comm order index, descriptor)
    at: Dict[int, Dict[CallKind, List[ir.CommDescriptor]]] = {}

    for order_index, placement in enumerate(placements):
        desc = ir.CommDescriptor(
            direction=placement.comm.direction,
            wrap=placement.comm.wrap,
            entries=[
                ir.CommEntry(array=m.array, use_region=m.use_region)
                for m in placement.comm.members
            ],
        )
        descriptors[order_index] = desc
        for kind, pos in (
            (CallKind.DR, placement.dr),
            (CallKind.SR, placement.sr),
            (CallKind.DN, placement.dn),
            (CallKind.SV, placement.sv),
        ):
            at.setdefault(pos, {}).setdefault(kind, []).append(desc)

    stmts: List[ir.SimpleStmt] = []
    for pos in range(n + 1):
        here = at.get(pos)
        if here:
            for kind in _KIND_ORDER:
                for desc in here.get(kind, ()):
                    stmts.append(ir.CommCall(kind=kind, desc=desc))
        if pos < n:
            stmts.append(core[pos])
    return ir.Block(stmts)
