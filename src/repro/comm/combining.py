"""Communication combination.

Messages with the same offset vector but different arrays travel between
the same pair of processors and may be *combined* into one larger message.
Combining reduces the number of messages; the data volume is unchanged.

Legality.  A combined transfer is sent no earlier than every member's
data is final (``max(ready_i)``) and must complete by the earliest member
use (``min(use_i)``); it is legal iff ``max(ready_i) <= min(use_i)``.
This is exactly the paper's condition that "neither array variable is
modified after the communication is completed and before the data is
used": if some member's array were written between the combined send and
that member's use, that member's ``ready`` would lie *after* the write and
hence after the combined completion point, violating the inequality.

Heuristics.  Combining can shrink the send-to-receive *distance* — the
latency-hiding potential pipelining exploits — so the paper compares two
heuristics:

``max_combining``
    Merge whenever legal, without regard for distance (paper Figure 2(b)).

``max_latency``
    Merge only while "the distance between the combined send and receives
    is no smaller than any of the distances of the uncombined
    communication" (paper Section 2): a merge is admitted only if no
    member's hiding distance shrinks.  Since the combined span
    ``[max ready_i, min use_i]`` is contained in every member span, this
    admits exactly the merges whose members already share one span —
    different arrays made ready at the same point and first used by the
    same statement.  This reading reproduces the paper's data: TOMCATV
    (whose same-direction references sit in *different* statements) keeps
    no combinations under max-latency, while SWM (whose same-direction
    references sit in the *same* statement of each phase procedure) keeps
    all of them.

Both heuristics are greedy first-fit over communications in first-use
order, within each offset-vector group — mirroring a single forward pass
over the block, which is what a compiler limited to basic-block scope
does.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.comm.planning import BlockPlan, PlannedComm
from repro.errors import OptimizationError

#: Valid heuristic names.
HEURISTICS = ("max_combining", "max_latency")


def _merged_ready(a: PlannedComm, b: PlannedComm) -> int:
    return max(a.ready, b.ready)


def _merged_use(a: PlannedComm, b: PlannedComm) -> int:
    return min(a.use, b.use)


def _legal(a: PlannedComm, b: PlannedComm) -> bool:
    """Combined transfer must still have send point <= completion point."""
    return _merged_ready(a, b) <= _merged_use(a, b)


def _preserves_latency(a: PlannedComm, b: PlannedComm) -> bool:
    """max_latency admission: combining may not shrink *any* member's
    hiding distance.  The combined span is contained in every member span,
    so this holds exactly when the combined distance still equals each
    member's own distance."""
    combined = _merged_use(a, b) - _merged_ready(a, b)
    return all(
        combined >= m.use - m.ready for m in (*a.members, *b.members)
    )


def combine(plan: BlockPlan, heuristic: str = "max_combining") -> int:
    """Apply communication combination to ``plan`` in place.

    Parameters
    ----------
    plan:
        The block plan (after redundancy removal, typically).
    heuristic:
        ``"max_combining"`` or ``"max_latency"``.

    Returns
    -------
    int
        Number of messages eliminated (members merged away).
    """
    if heuristic not in HEURISTICS:
        raise OptimizationError(
            f"unknown combining heuristic {heuristic!r} "
            f"(valid: {', '.join(HEURISTICS)})"
        )
    groups: Dict[Tuple, List[PlannedComm]] = {}
    order: List[PlannedComm] = []
    merged_away = 0

    for comm in plan.comms:
        group = groups.setdefault((comm.direction.offsets, comm.wrap), [])
        target = None
        for cluster in group:
            if any(
                m.array in {cm.array for cm in cluster.members}
                for m in comm.members
            ):
                # same array twice (a write intervened between the two
                # transfers): the snapshots differ; never combinable.
                continue
            if not _legal(cluster, comm):
                continue
            if heuristic == "max_latency" and not _preserves_latency(
                cluster, comm
            ):
                continue
            target = cluster
            break
        if target is None:
            group.append(comm)
            order.append(comm)
        else:
            target.members.extend(comm.members)
            merged_away += 1

    plan.comms = [c for c in order]
    # keep first-use order stable after merging (a cluster's use may have
    # moved earlier as members joined)
    plan.comms.sort(key=lambda c: (c.use, c.ready))
    return merged_away
