"""Machine-independent communication generation and optimization.

This package is the paper's primary contribution: a communication
optimizer that works on whole-array SPMD IR, one source-level basic block
at a time, with each optimization individually selectable (the paper's
"instrumented compiler").

Pipeline
--------

1. :mod:`repro.comm.planning` scans each basic block and plans one
   communication per distinct ``(array, offset)`` reference per statement —
   the *naive generation with message vectorization* baseline.
2. :mod:`repro.comm.redundancy` removes planned communications whose data
   was already transferred earlier in the block (redundant communication
   removal).
3. :mod:`repro.comm.combining` merges communications with the same offset
   vector but different arrays (communication combination), under either
   the *maximize-combining* or the *maximize-latency-hiding* heuristic.
4. :mod:`repro.comm.pipelining` computes call placements: with pipelining
   on, DR/SR hoist to the data's ready point; DN stays at first use; SV
   sits before the next write of any source buffer.
5. The plan is materialized back into IRONMAN :class:`~repro.ir.nodes.CommCall`
   statements interleaved with the block's core statements.

Steps 2-4 are :class:`~repro.comm.passes.CommPass` instances run by an
instrumented :class:`~repro.comm.passes.PassPipeline` (per-pass
statistics, legality-checked ordering, optional verifier);
:class:`~repro.comm.optimizer.OptimizationConfig` is the thin factory
compiling the paper's experiment keys to pipelines, and
:func:`repro.comm.optimizer.optimize` /
:func:`repro.comm.optimizer.optimize_with_report` drive them over whole
programs.
"""

from repro.comm.optimizer import (
    OptimizationConfig,
    optimize,
    optimize_with_report,
)
from repro.comm.passes import (
    CommPass,
    PassContext,
    PassPipeline,
    PassStats,
    PipelineReport,
    make_pass,
    register_pass,
    registered_passes,
)
from repro.comm.counts import static_comm_count, static_call_count

__all__ = [
    "CommPass",
    "OptimizationConfig",
    "PassContext",
    "PassPipeline",
    "PassStats",
    "PipelineReport",
    "make_pass",
    "optimize",
    "optimize_with_report",
    "register_pass",
    "registered_passes",
    "static_comm_count",
    "static_call_count",
]
