"""The optimization driver: the paper's "instrumented compiler".

:func:`optimize` rebuilds an IR program with communication generated and
optimized per :class:`OptimizationConfig`.  Each optimization can be
switched independently, which is how the paper's experiment keys are
formed:

=============  ====  ====  ====  ===============
experiment     rr    cc    pl    heuristic
=============  ====  ====  ====  ===============
baseline       off   off   off   —
rr             on    off   off   —
cc             on    on    off   max_combining
pl             on    on    on    max_combining
pl_maxlat      on    on    on    max_latency
=============  ====  ====  ====  ===============

(The library — PVM vs SHMEM vs NX — is a *machine* property, not a
compiler property; the same optimized program runs against any binding.)

Since the pass-pipeline refactor, :class:`OptimizationConfig` is a thin
factory: :meth:`OptimizationConfig.pipeline` compiles the booleans to a
:class:`~repro.comm.passes.PassPipeline`, and the driver here only walks
the program body, threading the inter-block context through structured
statements.  :func:`optimize_with_report` additionally returns the
pipeline's per-pass :class:`~repro.comm.passes.PipelineReport`, which
the experiment engine records in job telemetry.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.comm.combining import HEURISTICS
from repro.comm.interblock import AvailableSet
from repro.comm.passes import (
    CombiningPass,
    InterblockPass,
    PassContext,
    PassPipeline,
    PipelineReport,
    PipeliningPass,
    RedundancyPass,
)
from repro.errors import OptimizationError
from repro.ir import nodes as ir
from repro.obs import core as obs


@dataclass(frozen=True)
class OptimizationConfig:
    """Which communication optimizations to apply.

    Attributes
    ----------
    rr:
        Redundant communication removal.
    cc:
        Communication combination.  The paper always enables ``rr``
        together with ``cc`` (its experiments are cumulative); this class
        permits any combination.
    pl:
        Communication pipelining.
    combine_heuristic:
        ``"max_combining"`` (default, used unless otherwise noted in the
        paper) or ``"max_latency"``.
    """

    rr: bool = False
    cc: bool = False
    pl: bool = False
    combine_heuristic: str = "max_combining"
    #: extension beyond the paper (its Section 4 future work): forward
    #: dataflow of available transfers across basic-block boundaries,
    #: removing redundancy the per-block pass cannot see.  Requires rr.
    rr_interblock: bool = False

    def __post_init__(self) -> None:
        if self.combine_heuristic not in HEURISTICS:
            raise OptimizationError(
                f"unknown combining heuristic {self.combine_heuristic!r}"
            )
        if self.rr_interblock and not self.rr:
            raise OptimizationError(
                "rr_interblock extends redundancy removal; enable rr too"
            )

    # -- the paper's experiment keys ------------------------------------
    @classmethod
    def baseline(cls) -> "OptimizationConfig":
        """Message vectorization only."""
        return cls()

    @classmethod
    def rr_only(cls) -> "OptimizationConfig":
        return cls(rr=True)

    @classmethod
    def rr_cc(cls) -> "OptimizationConfig":
        return cls(rr=True, cc=True)

    @classmethod
    def full(cls) -> "OptimizationConfig":
        return cls(rr=True, cc=True, pl=True)

    @classmethod
    def full_max_latency(cls) -> "OptimizationConfig":
        return cls(rr=True, cc=True, pl=True, combine_heuristic="max_latency")

    def describe(self) -> str:
        parts = []
        if self.rr:
            parts.append("rr+ib" if self.rr_interblock else "rr")
        if self.cc:
            parts.append(
                "cc" if self.combine_heuristic == "max_combining" else "cc(maxlat)"
            )
        if self.pl:
            parts.append("pl")
        return "+".join(parts) if parts else "baseline"

    def pipeline(self, verify: bool = False) -> PassPipeline:
        """Compile this config to its :class:`PassPipeline`.

        The pipeline order is the paper's cumulative order — removal,
        then combination, then pipelining — which is also the only order
        the passes' own legality constraints admit.
        """
        passes: list = []
        if self.rr:
            passes.append(RedundancyPass())
        if self.rr_interblock:
            passes.append(InterblockPass())
        if self.cc:
            passes.append(CombiningPass(self.combine_heuristic))
        if self.pl:
            passes.append(PipeliningPass())
        return PassPipeline(passes, verify=verify)


def optimize_block(
    block: ir.Block,
    config: OptimizationConfig,
    avail: Optional[AvailableSet] = None,
) -> ir.Block:
    """Generate and optimize communication for one basic block.

    ``avail`` is the inter-block available-transfer set (mutated to the
    block's exit state when rr_interblock is on; pass None otherwise).
    """
    pipeline = config.pipeline()
    new_block, _, _ = pipeline.run_block(block, PassContext(avail=avail))
    return new_block


def _optimize_body(
    body: List[ir.IRStmt],
    pipeline: PassPipeline,
    report: PipelineReport,
    avail: Optional[AvailableSet] = None,
) -> List[ir.IRStmt]:
    if avail is None and pipeline.has("interblock"):
        avail = {}
    out: List[ir.IRStmt] = []
    for stmt in body:
        if isinstance(stmt, ir.Block):
            new_block, planned, stats = pipeline.run_block(
                stmt, PassContext(avail=avail)
            )
            report.record_block(planned, len(new_block.descriptors()), stats)
            out.append(new_block)
        elif isinstance(stmt, ir.ForLoop):
            # conservative dataflow: the loop body starts with nothing
            # available and contributes nothing to the code after it
            out.append(
                ir.ForLoop(
                    var=stmt.var,
                    low=stmt.low,
                    high=stmt.high,
                    step=stmt.step,
                    body=_optimize_body(stmt.body, pipeline, report),
                )
            )
            if avail is not None:
                avail.clear()
        elif isinstance(stmt, ir.RepeatLoop):
            out.append(
                ir.RepeatLoop(
                    body=_optimize_body(stmt.body, pipeline, report),
                    cond=stmt.cond,
                    max_trips=stmt.max_trips,
                )
            )
            if avail is not None:
                avail.clear()
        elif isinstance(stmt, ir.IfStmt):
            out.append(
                ir.IfStmt(
                    arms=[
                        (cond, _optimize_body(arm, pipeline, report))
                        for cond, arm in stmt.arms
                    ],
                    orelse=_optimize_body(stmt.orelse, pipeline, report),
                )
            )
            if avail is not None:
                avail.clear()
        else:  # pragma: no cover - defensive
            raise OptimizationError(f"unexpected IR statement {stmt!r}")
    return out


def optimize_with_report(
    program: ir.IRProgram,
    config: OptimizationConfig,
    verify: bool = False,
) -> Tuple[ir.IRProgram, PipelineReport]:
    """Like :func:`optimize`, but also return the per-pass
    :class:`~repro.comm.passes.PipelineReport` of what each pass did.

    ``verify=True`` additionally runs the plan/IR verifier after every
    pass (slower; tests and debugging).
    """
    for block in program.walk_blocks():
        if block.comm_calls():
            raise OptimizationError(
                "optimize() expects a communication-free program; "
                "re-lower the source instead of re-optimizing"
            )
    pipeline = config.pipeline(verify=verify)
    report = PipelineReport(signature=pipeline.signature())
    with obs.span(
        "optimize:pipeline",
        program=program.name,
        signature=pipeline.describe(),
    ):
        optimized = ir.IRProgram(
            name=program.name,
            body=_optimize_body(program.body, pipeline, report),
            arrays=dict(program.arrays),
            scalars=list(program.scalars),
            config_values=dict(program.config_values),
        )
    obs.add("opt.transfers.planned", report.planned)
    obs.add("opt.transfers.final", report.final)
    return optimized, report


def optimize(program: ir.IRProgram, config: OptimizationConfig) -> ir.IRProgram:
    """Generate communication for ``program`` and optimize it per
    ``config``.

    The input must be communication-free (fresh from lowering); the result
    is a new :class:`~repro.ir.nodes.IRProgram` sharing core statements
    with the input but with fresh blocks containing IRONMAN calls.
    """
    optimized, _ = optimize_with_report(program, config)
    return optimized
