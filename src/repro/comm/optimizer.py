"""The optimization driver: the paper's "instrumented compiler".

:func:`optimize` rebuilds an IR program with communication generated and
optimized per :class:`OptimizationConfig`.  Each optimization can be
switched independently, which is how the paper's experiment keys are
formed:

=============  ====  ====  ====  ===============
experiment     rr    cc    pl    heuristic
=============  ====  ====  ====  ===============
baseline       off   off   off   —
rr             on    off   off   —
cc             on    on    off   max_combining
pl             on    on    on    max_combining
pl_maxlat      on    on    on    max_latency
=============  ====  ====  ====  ===============

(The library — PVM vs SHMEM vs NX — is a *machine* property, not a
compiler property; the same optimized program runs against any binding.)
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional

from repro.comm.combining import HEURISTICS, combine
from repro.comm.interblock import (
    AvailableSet,
    exit_available,
    remove_entry_available,
)
from repro.comm.materialize import materialize
from repro.comm.pipelining import place_calls
from repro.comm.planning import plan_naive
from repro.comm.redundancy import remove_redundant
from repro.errors import OptimizationError
from repro.ir import nodes as ir


@dataclass(frozen=True)
class OptimizationConfig:
    """Which communication optimizations to apply.

    Attributes
    ----------
    rr:
        Redundant communication removal.
    cc:
        Communication combination.  The paper always enables ``rr``
        together with ``cc`` (its experiments are cumulative); this class
        permits any combination.
    pl:
        Communication pipelining.
    combine_heuristic:
        ``"max_combining"`` (default, used unless otherwise noted in the
        paper) or ``"max_latency"``.
    """

    rr: bool = False
    cc: bool = False
    pl: bool = False
    combine_heuristic: str = "max_combining"
    #: extension beyond the paper (its Section 4 future work): forward
    #: dataflow of available transfers across basic-block boundaries,
    #: removing redundancy the per-block pass cannot see.  Requires rr.
    rr_interblock: bool = False

    def __post_init__(self) -> None:
        if self.combine_heuristic not in HEURISTICS:
            raise OptimizationError(
                f"unknown combining heuristic {self.combine_heuristic!r}"
            )
        if self.rr_interblock and not self.rr:
            raise OptimizationError(
                "rr_interblock extends redundancy removal; enable rr too"
            )

    # -- the paper's experiment keys ------------------------------------
    @classmethod
    def baseline(cls) -> "OptimizationConfig":
        """Message vectorization only."""
        return cls()

    @classmethod
    def rr_only(cls) -> "OptimizationConfig":
        return cls(rr=True)

    @classmethod
    def rr_cc(cls) -> "OptimizationConfig":
        return cls(rr=True, cc=True)

    @classmethod
    def full(cls) -> "OptimizationConfig":
        return cls(rr=True, cc=True, pl=True)

    @classmethod
    def full_max_latency(cls) -> "OptimizationConfig":
        return cls(rr=True, cc=True, pl=True, combine_heuristic="max_latency")

    def describe(self) -> str:
        parts = []
        if self.rr:
            parts.append("rr+ib" if self.rr_interblock else "rr")
        if self.cc:
            parts.append(
                "cc" if self.combine_heuristic == "max_combining" else "cc(maxlat)"
            )
        if self.pl:
            parts.append("pl")
        return "+".join(parts) if parts else "baseline"


def optimize_block(
    block: ir.Block,
    config: OptimizationConfig,
    avail: Optional[AvailableSet] = None,
) -> ir.Block:
    """Generate and optimize communication for one basic block.

    ``avail`` is the inter-block available-transfer set (mutated to the
    block's exit state when rr_interblock is on; pass None otherwise).
    """
    plan = plan_naive(block)
    if config.rr:
        remove_redundant(plan)
    if config.rr_interblock and avail is not None:
        remove_entry_available(plan, avail)
        new_avail = exit_available(plan, avail)
        avail.clear()
        avail.update(new_avail)
    if config.cc:
        combine(plan, config.combine_heuristic)
    placements = place_calls(plan, pipelining=config.pl)
    return materialize(plan, placements)


def _optimize_body(
    body: List[ir.IRStmt],
    config: OptimizationConfig,
    avail: Optional[AvailableSet] = None,
) -> List[ir.IRStmt]:
    if avail is None and config.rr_interblock:
        avail = {}
    out: List[ir.IRStmt] = []
    for stmt in body:
        if isinstance(stmt, ir.Block):
            out.append(optimize_block(stmt, config, avail))
        elif isinstance(stmt, ir.ForLoop):
            # conservative dataflow: the loop body starts with nothing
            # available and contributes nothing to the code after it
            out.append(
                ir.ForLoop(
                    var=stmt.var,
                    low=stmt.low,
                    high=stmt.high,
                    step=stmt.step,
                    body=_optimize_body(stmt.body, config),
                )
            )
            if avail is not None:
                avail.clear()
        elif isinstance(stmt, ir.RepeatLoop):
            out.append(
                ir.RepeatLoop(
                    body=_optimize_body(stmt.body, config),
                    cond=stmt.cond,
                    max_trips=stmt.max_trips,
                )
            )
            if avail is not None:
                avail.clear()
        elif isinstance(stmt, ir.IfStmt):
            out.append(
                ir.IfStmt(
                    arms=[
                        (cond, _optimize_body(arm, config))
                        for cond, arm in stmt.arms
                    ],
                    orelse=_optimize_body(stmt.orelse, config),
                )
            )
            if avail is not None:
                avail.clear()
        else:  # pragma: no cover - defensive
            raise OptimizationError(f"unexpected IR statement {stmt!r}")
    return out


def optimize(program: ir.IRProgram, config: OptimizationConfig) -> ir.IRProgram:
    """Generate communication for ``program`` and optimize it per
    ``config``.

    The input must be communication-free (fresh from lowering); the result
    is a new :class:`~repro.ir.nodes.IRProgram` sharing core statements
    with the input but with fresh blocks containing IRONMAN calls.
    """
    for block in program.walk_blocks():
        if block.comm_calls():
            raise OptimizationError(
                "optimize() expects a communication-free program; "
                "re-lower the source instead of re-optimizing"
            )
    return ir.IRProgram(
        name=program.name,
        body=_optimize_body(program.body, config),
        arrays=dict(program.arrays),
        scalars=list(program.scalars),
        config_values=dict(program.config_values),
    )
