"""Inter-block redundancy removal — the paper's first future-work item.

    "For example, we may want to employ a standard data flow analysis
    algorithm to apply optimizations across basic block boundaries."
    (paper, Section 4)

This pass implements exactly that, for redundancy removal: a forward
dataflow of *available transfers* threaded through straight-line
sequences of basic blocks.  A transfer of ``(array, offsets, wrap)``
performed in one block makes a later block's transfer of the same data
redundant, provided

* the available transfer's region covers the later use's region (the
  fluff cells it needs were all delivered), and
* the array has not been modified since the available transfer completed
  — neither in the tail of the earlier block, nor in any block between,
  nor before the use in the later block.

Fluff buffers persist across blocks at run time, so dropping the later
transfer is safe exactly under these conditions; the correctness tests
(distributed vs. sequential reference) exercise this as they do every
other pass.

Control flow is handled conservatively, as a first dataflow client
should be: loop and branch bodies start with an empty available set and
contribute nothing to their successors (a fixed-point iteration over
loop bodies is a natural extension).  Straight-line block sequences —
notably the phase-procedure sequences inside a time-step loop body —
are where the opportunity lives.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.comm.planning import BlockPlan
from repro.lang.regions import Region

#: (array, direction offsets, wrap) — the identity of a transfer's data.
TransferKey = Tuple[str, Tuple[int, ...], bool]

#: Available transfers at a program point: key -> region covered.
AvailableSet = Dict[TransferKey, Region]


def remove_entry_available(plan: BlockPlan, avail: AvailableSet) -> int:
    """Drop planned transfers whose data is already available at block
    entry.  Returns the number removed.

    Must run after intra-block redundancy removal (single-member plans
    whose first use defines their required data) and before combination.
    """
    kept = []
    removed = 0
    for comm in plan.comms:
        assert len(comm.members) == 1, "interblock removal must precede cc"
        member = comm.members[0]
        key: TransferKey = comm.key
        covering = avail.get(key)
        if (
            covering is not None
            and covering.contains(member.use_region)
            and plan.info.last_write_before(member.array, member.use) == -1
        ):
            removed += 1
            continue
        kept.append(comm)
    plan.comms = kept
    return removed


def exit_available(plan: BlockPlan, entry: AvailableSet) -> AvailableSet:
    """The available set after the block executes.

    Entry availabilities survive if the block never writes their array;
    the block's own transfers become available if their array is not
    written at or after their first use.
    """
    info = plan.info
    n = len(info.core)
    out: AvailableSet = {}
    for key, region in entry.items():
        array = key[0]
        if info.first_write_at_or_after(array, 0) == n:
            out[key] = region
    for comm in plan.comms:
        for member in comm.members:
            if info.first_write_at_or_after(member.array, member.use) == n:
                key = (member.array, comm.direction.offsets, comm.wrap)
                out[key] = member.use_region
    return out
