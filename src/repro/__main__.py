"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``compile FILE``
    Compile a ZL source file and print the generated pseudo-C
    (``--opt`` selects the experiment key; ``--config name=value`` sets
    config constants).

``run FILE``
    Compile and simulate a ZL program, printing time and counts
    (``--machine t3d|paragon``, ``--procs N``, ``--numeric``).

``experiments``
    Run the whole-program study (Figures 8/10/11/12 and Tables 1-4)
    through the experiment engine and print every regenerated table
    (``--bench`` to restrict, ``--jobs N`` to parallelize, ``--no-cache``
    to bypass the on-disk result cache, ``--telemetry PATH`` to dump
    per-job run records, ``--explain`` to append the per-pass
    attribution tables built from the pipeline telemetry).

``experiments``, ``trace``, and ``sweep`` share one flag vocabulary:
``--nprocs`` (``--procs`` stays as an alias), ``--set PATH=VALUE`` for
machine-parameter overrides, and ``--no-fast-path``.

``passes``
    List the registered optimizer passes and their legality constraints;
    with ``--key KEY``, show the pass pipeline that experiment key
    compiles to.

``trace BENCH``
    Run one benchmark's whole study with tracing on and write a Chrome
    trace-event file (``--out``, Perfetto-loadable) containing the
    compiler/pass/engine/simulation spans, the cache and IRONMAN
    counters, and the bridged per-rank simulated timelines
    (``--ranks``); ``--jsonl PATH`` additionally writes the raw
    structured event log.  The engine knobs apply: ``--jobs N``/
    ``--dispatch sharded --shards N`` trace the distributed dispatch
    paths (worker spans are shipped back and stitched under the
    coordinator's root span — one trace id across every process), and
    pointing ``--cache-backend http --cache-url`` at a cache server
    adds the remote cache calls.  The result cache stays off unless a
    cache flag is given, so every compile/simulate span is captured.

``top URL``
    Follow a running study on a ``repro serve`` instance: consume its
    ``GET /v1/progress/<key>`` stream (picking the live study
    automatically, or ``--key``) and print per-benchmark progress as
    job events arrive.

``compare``
    Re-run a study and diff its counts and times against a committed
    baseline (``--baseline PATH``); communication counts must match
    exactly, model times within ``--tolerance``.  Exits nonzero on any
    drift; ``--update`` (re)writes the baseline instead.

``sweep``
    Expand ``--axis name=v1,v2,...`` axes (processor counts, network
    parameters, primitive-cost fields) into derived machine variants and
    run the benchmark x experiment matrix over every point through the
    cached engine; prints the scaling report with detected crossovers
    and optionally emits it (``--csv``/``--json``).  ``--set`` pins a
    machine override at every point; cost-only sweeps evaluate through
    the batched simulator by default (``--batched``/``--no-batched``
    to force either path); see ``docs/SWEEPS.md``.

``frontier``
    The adaptive frontier engine.  ``--refine PATH=LO:HI --tol T``
    localizes every crossover of one cost axis by coarse-grid bisection
    — only intervals still containing a ratio crossing or a winner flip
    are subdivided, so localization costs a fraction of a dense sweep.
    Two ``--axis`` flags instead map the crossover contours and winner
    grid over a 2-D parameter plane.  ``--csv``/``--json`` emit the
    frontier documents; see ``docs/SWEEPS.md``.

``fit``
    Calibrate machine cost parameters against measured curves: load a
    target document (or synthesize one with ``--synthetic PATH=VALUE``
    ground truth) and fit the ``--fit PATH`` parameters by batched
    joint-grid refinement, reporting the fitted values, loss, and —
    for synthetic targets — the recovery error; see ``docs/SWEEPS.md``.

``compose``
    Run the optimization-composition study: measure each optimization
    *alone* (``rr``, ``cc_only``, ``pl_only``) plus the full pipeline
    over a program x machine-variant grid and report the composition
    factor — the measured combined speedup over the product of the
    single-optimization speedups (1 = multiplicative, <1 = overlapping
    savings, >1 = enabling).  Accepts the paper's benchmarks, the
    classic kernels, and generated ``gen_<seed>`` programs (``--gen N``
    appends a seeded batch); ``--variant PATH=VALUE[,...]`` adds
    machine variants to the default base + high-latency pair;
    ``--small`` runs every program at its test-sized config;
    ``--csv``/``--json`` emit the artifacts.  See ``docs/PROGRAMS.md``.

``generate``
    Emit a seeded synthetic ZL program (the ``gen_<seed>`` family):
    print or ``--out`` the deterministic source, ``--count N`` for a
    batch, ``--profile FIELD=VALUE`` to steer the feature profile, and
    ``--check`` to run the differential harness (compiled fast path vs
    interpreted oracle on both machines under baseline and full
    optimization, then optimized numerics vs the sequential reference),
    exiting nonzero with a copy-pasteable repro line per failing seed.

``cache``
    Inspect and maintain a result-cache backend: ``cache stats`` prints
    the entry/byte totals and per-schema census, ``cache prune`` removes
    entries by age (``--older-than 7d``) and/or stored schema version
    (``--schema N``), and ``cache serve`` exposes the backend over HTTP
    so other hosts can reach it with ``--cache-backend http``.  All
    three honor the shared ``--cache-dir``/``--cache-backend``/
    ``--cache-url`` flags.

``serve``
    Run the asyncio study/sweep service (``POST /v1/study``,
    ``POST /v1/sweep``): identical in-flight submissions dedup onto one
    execution, finished work is served from the configured cache
    backend, and cost-only sweeps batch through the vectorized
    simulator; see ``docs/ENGINE.md``.

``figure6``
    Run the synthetic overhead benchmark and print the Figure 6 curves.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro import (
    BaselineError,
    ExecutionMode,
    MachineError,
    OptimizationConfig,
    SimOptions,
    compile_program,
    emit_c,
    machine_by_name,
    obs,
    run_study,
    run_sweep,
    simulate,
)
from repro.analysis import EXPERIMENT_KEYS, experiment_spec, format_table
from repro.analysis import attribution as attr
from repro.analysis import figures as fig
from repro.analysis import scaling
from repro.comm import registered_passes
from repro.engine import BACKEND_KINDS, DISPATCHER_KINDS, Job, MachineSpec
from repro.errors import ExperimentError
from repro.experiments_registry import COMPOSITION_KEYS
from repro.frontend import parse_config_assignments
from repro.programs import BENCHMARKS, KERNELS, benchmark_source, validate_benchmark
from repro.sweep.axes import parse_axes

#: Every key the CLI accepts: the paper's six plus the composition
#: study's single-optimization keys.
ALL_KEYS = EXPERIMENT_KEYS + tuple(
    k for k in COMPOSITION_KEYS if k not in EXPERIMENT_KEYS
)


def _parse_config(pairs):
    try:
        return parse_config_assignments(pairs)
    except ValueError as exc:
        raise SystemExit(f"--config: {exc}") from None


def _opt_for(key: str) -> OptimizationConfig:
    return experiment_spec(key).opt


def _benchmark(text: str) -> str:
    """Argparse ``type=`` accepting any registry name — the paper's
    benchmarks, the kernel corpus, and ``gen_<seed>``."""
    try:
        return validate_benchmark(text)
    except ExperimentError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from None


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _parse_set(pairs):
    try:
        return parse_config_assignments(pairs)
    except ValueError as exc:
        raise SystemExit(f"--set: {exc}") from None


def _sim_parent(nprocs_default):
    """The simulation flags every study-running subcommand shares —
    ``experiments``, ``trace``, and ``sweep`` spell them identically
    (``--procs`` stays as a legacy alias for ``--nprocs``)."""
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument(
        "--nprocs", "--procs", dest="nprocs", type=int,
        default=nprocs_default, metavar="N",
        help="processor count"
        + (f" (default {nprocs_default})" if nprocs_default
           else " (default: the machine's)"),
    )
    parent.add_argument(
        "--set", action="append", metavar="PATH=VALUE",
        help="machine-parameter override (e.g. prim.*.per_byte_beyond=1e-6; "
        "repeatable)",
    )
    parent.add_argument(
        "--no-fast-path", action="store_true",
        help="force the interpreted simulator walk (results are "
        "bit-identical; for debugging and speedup measurement)",
    )
    return parent


def _cache_parent():
    """The cache-backend selection flags (``experiments``, ``sweep``,
    ``cache``, ``serve``)."""
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="result cache root (default .repro-cache/ or "
        "$REPRO_CACHE_DIR; the sqlite backend stores cache.sqlite there)",
    )
    parent.add_argument(
        "--cache-backend", default=None, metavar="KIND",
        choices=BACKEND_KINDS,
        help="cache storage backend: dir (default), sqlite, http, null "
        "(a set $REPRO_CACHE_URL implies http)",
    )
    parent.add_argument(
        "--cache-url", default=None, metavar="URL",
        help="base URL for the http backend (default $REPRO_CACHE_URL); "
        "start one with `repro cache serve`",
    )
    return parent


def _engine_parent():
    """The engine knobs ``experiments`` and ``sweep`` share."""
    parent = argparse.ArgumentParser(add_help=False, parents=[_cache_parent()])
    parent.add_argument(
        "--jobs", type=_positive_int, default=1, metavar="N",
        help="worker processes for the job matrix (default 1)",
    )
    parent.add_argument(
        "--no-cache", action="store_true",
        help="bypass the result cache entirely",
    )
    parent.add_argument(
        "--dispatch", default=None, choices=DISPATCHER_KINDS,
        help="execution strategy for cache misses: local (default) or "
        "sharded (work-stealing shards with per-job retry); results are "
        "bit-identical",
    )
    parent.add_argument(
        "--shards", type=_positive_int, default=None, metavar="N",
        help="shard count for --dispatch sharded (default 4 x jobs)",
    )
    parent.add_argument(
        "--telemetry", default=None, metavar="PATH",
        help="write per-job telemetry records as JSON",
    )
    return parent


def _engine_kwargs(args) -> dict:
    """Resolve the shared engine flags into ``run_study``/``run_sweep``
    keyword arguments."""
    dispatcher = args.dispatch
    if args.shards is not None:
        if dispatcher != "sharded":
            raise SystemExit("--shards requires --dispatch sharded")
        from repro.engine import ShardedDispatcher

        dispatcher = ShardedDispatcher(workers=args.jobs, shards=args.shards)
    return {
        "jobs": args.jobs,
        "cache": not args.no_cache,
        "cache_dir": args.cache_dir,
        "cache_backend": args.cache_backend,
        "cache_url": args.cache_url,
        "dispatcher": dispatcher,
    }


def cmd_compile(args) -> int:
    source = Path(args.file).read_text()
    program = compile_program(
        source, args.file, config=_parse_config(args.config), opt=_opt_for(args.opt)
    )
    emitted = emit_c(program)
    print(emitted.text)
    print(
        f"/* {emitted.total_lines} lines, {emitted.comm_lines} communication "
        f"lines, {emitted.lines_excluding_comm} excluding communication */"
    )
    return 0


def cmd_run(args) -> int:
    source = Path(args.file).read_text()
    program = compile_program(
        source, args.file, config=_parse_config(args.config), opt=_opt_for(args.opt)
    )
    machine = machine_by_name(args.machine, args.procs, args.library)
    mode = ExecutionMode.NUMERIC if args.numeric else ExecutionMode.TIMING
    result = simulate(program, machine, mode)
    print(f"machine:            {machine.describe()}")
    print(f"experiment:         {args.opt}")
    print(f"execution time:     {result.time:.6f} model seconds")
    print(f"static comms:       {result.static_comm_count}")
    print(f"dynamic comms:      {result.dynamic_comm_count} (per processor)")
    print(f"messages:           {result.instrument.total_messages}")
    print(f"bytes moved:        {result.instrument.total_bytes}")
    for warning in result.warnings:
        print(f"warning: {warning}", file=sys.stderr)
    return 0


def cmd_experiments(args) -> int:
    benches = args.bench or list(BENCHMARKS)
    overrides = _parse_config(args.config)
    pinned = _parse_set(args.set)
    try:
        results = run_study(
            benchmarks=benches,
            machine=MachineSpec.coerce(None, overrides=pinned or None),
            nprocs=args.nprocs,
            config_overrides={b: overrides for b in benches} if overrides else None,
            fast=False if args.no_fast_path else None,
            telemetry=args.telemetry,
            **_engine_kwargs(args),
        )
    except (MachineError, ExperimentError) as exc:
        raise SystemExit(f"experiments: {exc}") from None
    print(format_table(*fig.figure8_counts(results), title="Figure 8 — comm count reduction (scaled to baseline)"))
    print()
    print(format_table(*fig.figure10a_times(results), title="Figure 10(a) — scaled times, PVM"))
    print()
    print(format_table(*fig.figure10b_times(results), title="Figure 10(b) — pl vs pl with shmem"))
    print()
    print(format_table(*fig.figure11_heuristic_counts(results), title="Figure 11 — combining heuristics, counts"))
    print()
    print(format_table(*fig.figure12_heuristic_times(results), title="Figure 12 — combining heuristics, times"))
    for i, bench in enumerate(benches, start=1):
        print()
        print(
            format_table(
                *fig.table_full(bench, results),
                title=f"Table {i} — {bench} ({args.nprocs} processors)",
            )
        )
    if args.explain:
        print()
        print(
            format_table(
                *attr.figure8_by_pass(results),
                title="Figure 8, by pass — fraction of naive static count",
            )
        )
        print()
        print(
            format_table(
                *attr.pass_attribution(results),
                title="Per-pass attribution (all cells)",
            )
        )
    return 0


def cmd_passes(args) -> int:
    if args.key:
        spec = experiment_spec(args.key)
        pipeline = spec.pipeline()
        print(f"{args.key}: {spec.description}")
        print(f"  opt:      {spec.opt.describe()}")
        print(f"  pipeline: {pipeline.describe()}")
        return 0
    for cls in registered_passes().values():
        constraints = []
        if cls.requires:
            constraints.append(f"requires {', '.join(cls.requires)}")
        if cls.after:
            constraints.append(f"after {', '.join(cls.after)}")
        if cls.terminal:
            constraints.append("terminal")
        suffix = f"  [{'; '.join(constraints)}]" if constraints else ""
        print(f"{cls.name:12s} {cls().describe()}{suffix}")
    return 0


def cmd_trace(args) -> int:
    overrides = _parse_config(args.config)
    pinned = _parse_set(args.set)
    try:
        mspec = MachineSpec.coerce(
            args.machine, nprocs=args.nprocs, overrides=pinned or None
        )
    except MachineError as exc:
        raise SystemExit(f"trace: {exc}") from None
    engine_kwargs = _engine_kwargs(args)
    # historical default: serial and uncached, so every compile phase,
    # optimizer pass, and cache counter lands in-process.  An explicit
    # cache flag opts the (remote) cache into the trace instead.
    if not (args.cache_dir or args.cache_backend or args.cache_url):
        engine_kwargs["cache"] = False
    sinks = [obs.ChromeTraceSink(args.out)]
    if args.jsonl:
        sinks.append(obs.JsonlSink(args.jsonl))
    recorder = obs.configure(*sinks)
    try:
        with recorder.span("trace", benchmark=args.bench):
            run_study(
                benchmarks=(args.bench,),
                nprocs=args.nprocs,
                machine=mspec,
                config_overrides={args.bench: overrides} if overrides else None,
                fast=False if args.no_fast_path else None,
                telemetry=args.telemetry,
                **engine_kwargs,
            )
            # bridge per-rank simulated timelines at the chosen key into
            # the same trace document (model time, separate process row)
            spec = experiment_spec(args.opt)
            job = Job.make(
                benchmark=args.bench,
                experiment=args.opt,
                machine=mspec,
                config=overrides or None,
            )
            program = compile_program(
                benchmark_source(args.bench),
                f"{args.bench}.zl",
                config=job.merged_config(),
                opt=spec.opt,
            )
            machine = job.machine.build(spec.library)
            bridged = 0
            for rank in range(min(args.ranks, args.nprocs)):
                result = simulate(
                    program, machine, options=SimOptions.timing(trace_rank=rank)
                )
                bridged += obs.bridge_rank_trace(result.trace, rank=rank)
    finally:
        metrics = obs.shutdown() or {}
    counters = metrics.get("counters", {})
    cache_hits = counters.get("engine.result_cache.hit", 0)
    cache_misses = counters.get("engine.result_cache.miss", 0)
    print(f"trace written:      {args.out}")
    if args.jsonl:
        print(f"event log written:  {args.jsonl}")
    print(f"engine cells:       {cache_hits + cache_misses} "
          f"({cache_hits} cache hits, {cache_misses} misses)")
    print(f"bridged timelines:  {min(args.ranks, args.nprocs)} ranks, "
          f"{bridged} events ({args.opt} on {args.machine}/{args.nprocs})")
    print(f"counters recorded:  {len(counters)}")
    print(f"trace id:           {recorder.trace_id}")
    if args.dispatch == "sharded":
        print(f"dispatch:           sharded "
              f"({counters.get('engine.dispatch.shards', 0)} shards, "
              f"{counters.get('engine.dispatch.jobs', 0)} dispatched jobs)")
    return 0


def cmd_compare(args) -> int:
    baseline_path = Path(args.baseline)
    try:
        try:
            existing = (
                obs.load_baseline(baseline_path)
                if baseline_path.exists()
                else None
            )
        except BaselineError:
            # --update exists to replace stale documents (old schema,
            # truncated file); without it the load error is the answer
            if not args.update:
                raise
            existing = None
        if existing is None and not args.update:
            raise SystemExit(
                f"baseline {baseline_path} does not exist "
                "(create it with --update)"
            )
        benches = args.bench or (
            sorted(existing["benchmarks"]) if existing else None
        )
        if not benches:
            raise SystemExit(
                "nothing to compare: pass --bench or point --baseline at "
                "an existing baseline"
            )
        procs = args.procs or (existing["nprocs"] if existing else 64)
        machine = args.machine or (existing["machine"] if existing else "t3d")
        overrides = _parse_config(args.config)
        study = run_study(
            benchmarks=benches,
            nprocs=procs,
            machine=machine,
            config_overrides=(
                {b: overrides for b in benches} if overrides else None
            ),
            jobs=args.jobs,
            cache=not args.no_cache,
            cache_dir=args.cache_dir,
        )
        cells = sum(len(v) for v in study.results.values())
        snapshot = obs.snapshot_study(
            study, note=f"repro compare --update ({', '.join(benches)})"
        )
        if args.update:
            obs.write_baseline(baseline_path, snapshot)
            print(f"baseline updated: {baseline_path} ({cells} cells)")
            return 0
        drifts = obs.diff_baseline(
            snapshot, existing, time_tolerance=args.tolerance
        )
    except BaselineError as exc:
        raise SystemExit(f"compare: {exc}") from None
    print(
        f"compared {cells} cells against {baseline_path} "
        f"(counts exact, times within {args.tolerance:.0%})"
    )
    print(obs.format_drifts(drifts))
    return 1 if drifts else 0


def cmd_sweep(args) -> int:
    benches = args.bench or list(BENCHMARKS)
    keys = tuple(args.keys or EXPERIMENT_KEYS)
    config = _parse_config(args.config)
    pinned = _parse_set(args.set)
    try:
        axes = parse_axes(args.axis)
        sweep = run_sweep(
            axes=axes,
            benchmarks=benches,
            keys=keys,
            machine=MachineSpec.coerce(args.machine, nprocs=args.nprocs),
            library=args.library,
            overrides=pinned or None,
            config_overrides={b: config for b in benches} if config else None,
            fast=False if args.no_fast_path else None,
            batched=args.batched,
            telemetry=args.telemetry,
            **_engine_kwargs(args),
        )
    except (MachineError, ExperimentError) as exc:
        raise SystemExit(f"sweep: {exc}") from None
    crossovers = scaling.detect_crossovers(sweep)
    print(
        f"sweep: {len(sweep.points)} points x {sweep.cells_per_point} cells "
        f"({', '.join(a.describe() for a in axes)}) on {args.machine}"
    )
    print(
        f"engine: {sweep.cells} cells, {sweep.cache_hits} cache hits, "
        f"{sweep.cells - sweep.cache_hits} simulated"
    )
    print()
    print(scaling.format_scaling_report(sweep, crossovers))
    if args.csv:
        print(f"\nscaling CSV written:  {scaling.write_csv(args.csv, sweep)}")
    if args.json:
        print(
            "scaling JSON written: "
            f"{scaling.write_json(args.json, sweep, crossovers)}"
        )
    return 0


def _parse_refine(text: str):
    """``PATH=LO:HI`` -> (path, lo, hi)."""
    try:
        path, _, span = text.partition("=")
        lo, _, hi = span.partition(":")
        return path, float(lo), float(hi)
    except ValueError:
        raise SystemExit(
            f"--refine: {text!r} is not PATH=LO:HI (e.g. "
            "net.latency=1e-6:1e-3)"
        ) from None


def cmd_frontier(args) -> int:
    from repro.analysis import frontier as fr
    from repro.sweep import run_refined_sweep

    benches = args.bench or list(BENCHMARKS)
    keys = tuple(args.keys or EXPERIMENT_KEYS)
    config = _parse_config(args.config)
    pinned = _parse_set(args.set)
    if (args.refine is None) == (not args.axis or len(args.axis) != 2):
        raise SystemExit(
            "frontier: pass either --refine PATH=LO:HI --tol T (adaptive "
            "1-D localization) or exactly two --axis flags (dense 2-D map)"
        )
    try:
        if args.refine is not None:
            if args.tol is None:
                raise SystemExit("frontier: --refine requires --tol")
            path, lo, hi = _parse_refine(args.refine)
            refined = run_refined_sweep(
                axis=path,
                lo=lo,
                hi=hi,
                tol=args.tol,
                coarse=args.coarse,
                benchmarks=benches,
                keys=keys,
                machine=MachineSpec.coerce(args.machine, nprocs=args.nprocs),
                library=args.library,
                overrides=pinned or None,
                config_overrides={b: config for b in benches}
                if config
                else None,
                **_engine_kwargs(args),
            )
            print(fr.format_refined_report(refined))
            if args.csv:
                print(
                    "\nscaling CSV written:  "
                    f"{scaling.write_csv(args.csv, refined.sweep)}"
                )
            if args.json:
                print(
                    "frontier JSON written: "
                    f"{fr.write_refined_json(args.json, refined)}"
                )
        else:
            axes = parse_axes(args.axis)
            x_axis, y_axis = axes[0].name, axes[1].name
            sweep = run_sweep(
                axes=axes,
                benchmarks=benches,
                keys=keys,
                machine=MachineSpec.coerce(args.machine, nprocs=args.nprocs),
                library=args.library,
                overrides=pinned or None,
                config_overrides={b: config for b in benches}
                if config
                else None,
                **_engine_kwargs(args),
            )
            print(fr.format_frontier_report(sweep, x_axis, y_axis))
            if args.csv:
                print(
                    "\nfrontier CSV written:  "
                    f"{fr.write_frontier_csv(args.csv, fr.crossover_map(sweep, x_axis, y_axis), x_axis, y_axis)}"
                )
            if args.json:
                print(
                    "frontier JSON written: "
                    f"{fr.write_frontier_json(args.json, sweep, x_axis, y_axis)}"
                )
    except (MachineError, ExperimentError) as exc:
        raise SystemExit(f"frontier: {exc}") from None
    return 0


def cmd_fit(args) -> int:
    from repro import fit as fitmod

    if (args.target is None) == (not args.synthetic):
        raise SystemExit(
            "fit: pass either TARGET.json (measured curves) or --synthetic "
            "PATH=VALUE ground truth to generate one"
        )
    config = _parse_config(args.config)
    try:
        if args.synthetic:
            truth = _parse_set(args.synthetic)
            benches = args.bench or ["simple"]
            keys = tuple(args.keys or ("baseline", "cc"))
            target = fitmod.synthesize_target(
                machine=args.machine,
                nprocs=args.nprocs or 16,
                truth=truth,
                benchmarks=benches,
                keys=keys,
                library=args.library,
                overrides=_parse_set(args.set) or None,
                config={b: config for b in benches} if config else None,
            )
        else:
            target = fitmod.load_target(args.target)
            truth = None
        bounds = {}
        for spec in args.bound or []:
            path, lo, hi = _parse_refine(spec)
            bounds[path] = (lo, hi)
        paths = args.fit or (sorted(truth) if truth else None)
        if not paths:
            raise SystemExit("fit: pass --fit PATH for each free parameter")
        result = fitmod.fit_machine(
            target,
            paths,
            bounds=bounds or None,
            rounds=args.rounds,
            samples=args.samples,
        )
    except (MachineError, ExperimentError) as exc:
        raise SystemExit(f"fit: {exc}") from None
    print(result.describe())
    if truth:
        rows = [
            [
                p,
                truth[p],
                result.fitted[p],
                abs(result.fitted[p] - truth[p]) / abs(truth[p])
                if truth[p]
                else float("nan"),
            ]
            for p in paths
            if p in truth
        ]
        print()
        print(
            format_table(
                ["path", "truth", "fitted", "rel_error"],
                rows,
                float_fmt=".6g",
                title="Recovery vs synthetic ground truth",
            )
        )
    if args.write_target:
        print(f"\ntarget JSON written: {target.write_json(args.write_target)}")
    if args.json:
        print(f"fit JSON written: {result.write_json(args.json)}")
    return 0


def _parse_variant(text: str):
    """One ``--variant`` flag: comma-separated ``PATH=VALUE`` overrides."""
    try:
        return parse_config_assignments([p for p in text.split(",") if p])
    except ValueError as exc:
        raise SystemExit(f"--variant: {exc}") from None


def cmd_compose(args) -> int:
    from repro.analysis import composition as comp
    from repro.programs import small_config

    benches = list(args.bench or (BENCHMARKS + KERNELS))
    if args.gen:
        benches.extend(
            f"gen_{seed}"
            for seed in range(args.gen_seed, args.gen_seed + args.gen)
        )
    config = _parse_config(args.config)
    pinned = _parse_set(args.set)
    config_overrides = {}
    for bench in benches:
        merged = dict(small_config(bench)) if args.small else {}
        if config:
            merged.update(config)
        if merged:
            config_overrides[bench] = merged
    variants = None
    if args.variant:
        # the unswept base machine always anchors the grid
        variants = [{}] + [_parse_variant(v) for v in args.variant]
    try:
        result = comp.run_composition(
            benchmarks=benches,
            machine=MachineSpec.coerce(
                args.machine, overrides=pinned or None
            ),
            nprocs=args.nprocs,
            library=args.library,
            variants=variants,
            config_overrides=config_overrides or None,
            fast=False if args.no_fast_path else None,
            telemetry=args.telemetry,
            **_engine_kwargs(args),
        )
    except (MachineError, ExperimentError) as exc:
        raise SystemExit(f"compose: {exc}") from None
    print(comp.format_composition_report(result))
    if args.csv:
        print(f"\ncomposition CSV written:  {comp.write_csv(args.csv, result)}")
    if args.json:
        print(f"composition JSON written: {comp.write_json(args.json, result)}")
    return 0


def _parse_profile(pairs):
    """``--profile FIELD=VALUE`` pairs -> GeneratorProfile (None if empty)."""
    from dataclasses import fields, replace

    from repro.programs.generate import DEFAULT_PROFILE, GeneratorProfile

    if not pairs:
        return None
    names = {f.name for f in fields(GeneratorProfile)}
    kwargs = {}
    for pair in pairs:
        name, sep, value = pair.partition("=")
        if not sep:
            raise SystemExit(f"--profile: {pair!r} is not FIELD=VALUE")
        if name not in names:
            raise SystemExit(
                f"--profile: unknown field {name!r} "
                f"(valid: {', '.join(sorted(names))})"
            )
        kind = type(getattr(DEFAULT_PROFILE, name))
        try:
            kwargs[name] = kind(value)
        except ValueError:
            raise SystemExit(
                f"--profile: {name} expects {kind.__name__}, got {value!r}"
            ) from None
    try:
        return replace(DEFAULT_PROFILE, **kwargs)
    except ExperimentError as exc:
        raise SystemExit(f"--profile: {exc}") from None


def _check_generated(seed, profile):
    """The differential harness behind ``generate --check``: compiled
    fast path vs interpreted oracle (TIMING, both machines, baseline and
    full optimization), then full-optimization NUMERIC vs the sequential
    reference.  Returns human-readable mismatch descriptions."""
    import numpy as np

    from repro import reference_run, t3d
    from repro.machine import paragon
    from repro.programs import generate as gen

    problems = []
    programs = {
        key: gen.generate_program(seed, profile, opt=opt)
        for key, opt in (
            ("baseline", OptimizationConfig.baseline()),
            ("full", OptimizationConfig.full()),
        )
    }
    for machine_name, machine in (("t3d", t3d(4)), ("paragon", paragon(4))):
        for opt_name, program in programs.items():
            fast = simulate(
                program, machine, options=SimOptions.timing(fast=True)
            )
            slow = simulate(
                program, machine, options=SimOptions.timing(fast=False)
            )
            if fast.time != slow.time or not np.array_equal(
                fast.clocks, slow.clocks
            ):
                problems.append(
                    f"fast path diverges from oracle ({opt_name} on "
                    f"{machine_name}: {fast.time!r} vs {slow.time!r})"
                )
    ref = reference_run(programs["baseline"])
    num = simulate(programs["full"], t3d(4), ExecutionMode.NUMERIC)
    for name in sorted(ref.arrays):
        if not np.allclose(
            num.array(name), ref.array(name), rtol=1e-9, atol=1e-9
        ):
            problems.append(
                f"optimized numerics diverge from the reference "
                f"(array {name!r})"
            )
    return problems


def cmd_generate(args) -> int:
    from repro.programs import generate as gen

    profile = _parse_profile(args.profile)
    out_dir = None
    if args.out and args.count > 1:
        out_dir = Path(args.out)
        out_dir.mkdir(parents=True, exist_ok=True)
    failures = []
    for seed in range(args.seed, args.seed + args.count):
        try:
            source = gen.generate_source(seed, profile)
        except ExperimentError as exc:
            raise SystemExit(f"generate: {exc}") from None
        name = gen.generated_name(seed)
        if out_dir is not None:
            (out_dir / f"{name}.zl").write_text(source)
        elif args.out:
            Path(args.out).write_text(source)
        elif not args.check:
            print(source, end="" if source.endswith("\n") else "\n")
        if args.check:
            problems = _check_generated(seed, profile)
            if problems:
                failures.append(seed)
                for problem in problems:
                    print(f"FAIL {name}: {problem}", file=sys.stderr)
            else:
                print(f"ok {name}")
    if args.out:
        where = out_dir if out_dir is not None else args.out
        print(f"wrote {args.count} program(s) to {where}", file=sys.stderr)
    if failures:
        profile_flags = "".join(
            f" --profile {pair}" for pair in (args.profile or [])
        )
        print(
            "generate: differential check failed; reproduce with:",
            file=sys.stderr,
        )
        for seed in failures:
            print(
                f"  python -m repro generate {seed}{profile_flags} --check",
                file=sys.stderr,
            )
        return 1
    return 0


_DURATION_UNITS = {"s": 1.0, "m": 60.0, "h": 3600.0, "d": 86400.0}


def _duration(text: str) -> float:
    """An age in seconds: a plain number, or one with an s/m/h/d suffix
    (``--older-than 7d``)."""
    raw = text.strip().lower()
    scale = 1.0
    if raw and raw[-1] in _DURATION_UNITS:
        scale = _DURATION_UNITS[raw[-1]]
        raw = raw[:-1]
    try:
        value = float(raw) * scale
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"{text!r} is not a duration (use e.g. 90, 30m, 12h, 7d)"
        ) from None
    if value < 0:
        raise argparse.ArgumentTypeError(f"duration must be >= 0, got {text!r}")
    return value


def _cache_backend(args):
    from repro.engine import make_cache

    try:
        return make_cache(
            True,
            args.cache_dir,
            backend=args.cache_backend,
            url=args.cache_url,
        )
    except ExperimentError as exc:
        raise SystemExit(f"cache: {exc}") from None


def cmd_cache_stats(args) -> int:
    print(_cache_backend(args).stats().describe())
    return 0


def cmd_cache_prune(args) -> int:
    if args.older_than is None and args.schema is None and not args.all:
        raise SystemExit(
            "cache prune: pass --older-than and/or --schema, or --all to "
            "empty the store"
        )
    backend = _cache_backend(args)
    removed = backend.prune(older_than=args.older_than, schema=args.schema)
    where = backend.describe()["location"]
    print(f"pruned {removed} records from {backend.kind} backend at {where}")
    return 0


def cmd_cache_serve(args) -> int:
    from repro.engine import CacheServer

    backend = _cache_backend(args)
    if backend.kind == "http":
        raise SystemExit(
            "cache serve: pick a storage backend to serve (dir or sqlite), "
            "not the http client"
        )
    obs.configure(obs.MemorySink())  # live counters for the obs registry
    server = CacheServer(backend, host=args.host, port=args.port)
    print(f"cache server listening on {server.url}")
    print(f"backing store: {backend.stats().describe()}")
    print(f"point clients at it with --cache-backend http --cache-url {server.url}")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.close()
    return 0


def cmd_serve(args) -> int:
    from repro.serve import ReproServer, ServeApp

    try:
        app = ServeApp(**_engine_kwargs(args))
    except ExperimentError as exc:
        raise SystemExit(f"serve: {exc}") from None
    # a live in-memory sink so GET /stats reports the serve.* and
    # cache.backend.* counters without any tracing flags
    obs.configure(obs.MemorySink())
    server = ReproServer(app, host=args.host, port=args.port).start()
    print(f"repro serve listening on {server.url}")
    print(f"cache: {app.cache_info['backend']} at {app.cache_info['location']}")
    print("routes: GET /healthz | GET /stats | GET /metrics | "
          "GET /v1/progress[/<key>] | POST /v1/study | POST /v1/sweep")
    try:
        server._thread.join()
    except KeyboardInterrupt:
        server.close()
    return 0


def cmd_top(args) -> int:
    import time as _time
    from urllib import error as urlerror
    from urllib import request as urlrequest

    url = args.url.rstrip("/")
    if "/v1/progress/" in url:
        stream_url = url
    else:
        # a bare server URL: find a study to watch (prefer a live one,
        # else the most recently started), polling until --timeout
        key = args.key
        deadline = _time.monotonic() + args.timeout
        while key is None:
            try:
                with urlrequest.urlopen(
                    f"{url}/v1/progress", timeout=5
                ) as resp:
                    studies = json.loads(resp.read()).get("studies", [])
            except (OSError, ValueError, urlerror.URLError) as exc:
                print(f"top: cannot reach {url}: {exc}", file=sys.stderr)
                return 1
            live = [s for s in studies if not s.get("done")]
            pool = live or studies
            if pool:
                key = max(pool, key=lambda s: s.get("started", 0))["key"]
                break
            if _time.monotonic() >= deadline:
                print(f"top: no study submitted to {url} within "
                      f"{args.timeout:.0f}s", file=sys.stderr)
                return 1
            _time.sleep(0.2)
        stream_url = f"{url}/v1/progress/{key}"

    per_bench: dict = {}
    jobs_seen = 0
    total = None
    try:
        with urlrequest.urlopen(stream_url, timeout=args.timeout) as resp:
            for raw in resp:  # chunked JSONL; urllib de-chunks for us
                line = raw.strip()
                if not line:
                    continue
                event = json.loads(line)
                kind = event.get("event")
                if kind == "start":
                    total = event.get("cells")
                    print(f"watching {event.get('kind', 'study')} "
                          f"{event.get('key', '')[:12]} "
                          f"({total if total is not None else '?'} cells)")
                elif kind == "job":
                    jobs_seen += 1
                    bench = event.get("benchmark", "?")
                    counts = per_bench.setdefault(bench, [0, 0])
                    counts[0] += 1
                    if event.get("status") == "cached":
                        counts[1] += 1
                    print(f"[{jobs_seen}/{total if total is not None else '?'}] "
                          f"{bench:<10} {event.get('experiment', '?'):<14} "
                          f"{event.get('status', '?')}")
                elif kind == "retry":
                    print(f"          {event.get('benchmark', '?'):<10} "
                          f"{event.get('experiment', '?'):<14} "
                          f"retry ({event.get('reason', '?')})")
                elif kind == "error":
                    print(f"error: {event.get('error')}", file=sys.stderr)
                    return 1
                elif kind == "done":
                    for bench in sorted(per_bench):
                        done, cached = per_bench[bench]
                        print(f"  {bench:<10} {done} jobs "
                              f"({cached} cache hits)")
                    print(f"done: {event.get('cells')} cells, "
                          f"{event.get('executed')} executed, "
                          f"{event.get('cache_hits')} cache hits")
                    return 0
    except urlerror.HTTPError as exc:
        print(f"top: {stream_url} -> HTTP {exc.code}", file=sys.stderr)
        return 1
    except (OSError, ValueError, urlerror.URLError) as exc:
        print(f"top: stream failed: {exc}", file=sys.stderr)
        return 1
    print("top: stream ended without a done event", file=sys.stderr)
    return 1


def cmd_figure6(args) -> int:
    headers, rows = fig.figure6_overhead(reps=args.reps)
    print(format_table(headers, rows, float_fmt=".1f", title="Figure 6 — exposed communication cost (us)"))
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Quantifying the Effects of Communication Optimizations "
        "(ICPP 1997) — reproduction harness",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("compile", help="compile ZL to pseudo-C")
    p.add_argument("file")
    p.add_argument("--opt", default="pl", choices=ALL_KEYS)
    p.add_argument("--config", action="append", metavar="NAME=VALUE")
    p.set_defaults(func=cmd_compile)

    p = sub.add_parser("run", help="compile and simulate a ZL program")
    p.add_argument("file")
    p.add_argument("--opt", default="pl", choices=ALL_KEYS)
    p.add_argument("--config", action="append", metavar="NAME=VALUE")
    p.add_argument("--machine", default="t3d")
    p.add_argument("--library", default=None)
    p.add_argument("--procs", type=int, default=64)
    p.add_argument("--numeric", action="store_true")
    p.set_defaults(func=cmd_run)

    p = sub.add_parser(
        "experiments",
        help="run the whole-program study",
        parents=[_sim_parent(64), _engine_parent()],
    )
    p.add_argument("--bench", action="append", type=_benchmark,
                   metavar="BENCH")
    p.add_argument("--config", action="append", metavar="NAME=VALUE",
                   help="config override applied to every benchmark")
    p.add_argument("--explain", action="store_true",
                   help="append per-pass attribution tables (which pass "
                   "accounts for how much of each reduction)")
    p.set_defaults(func=cmd_experiments)

    p = sub.add_parser(
        "passes", help="list optimizer passes or dump a key's pipeline"
    )
    p.add_argument("--key", default=None, choices=ALL_KEYS,
                   help="show the pipeline this experiment key compiles to")
    p.set_defaults(func=cmd_passes)

    p = sub.add_parser(
        "trace",
        help="run one benchmark's study with tracing on",
        parents=[_sim_parent(64), _engine_parent()],
    )
    p.add_argument("bench", type=_benchmark, metavar="BENCH")
    p.add_argument("--out", required=True, metavar="PATH",
                   help="Chrome trace-event output file (open in Perfetto)")
    p.add_argument("--jsonl", default=None, metavar="PATH",
                   help="also write the raw structured event log")
    p.add_argument("--opt", default="pl", choices=ALL_KEYS,
                   help="experiment key for the bridged per-rank timelines")
    p.add_argument("--machine", default="t3d")
    p.add_argument("--config", action="append", metavar="NAME=VALUE")
    p.add_argument("--ranks", type=_positive_int, default=4, metavar="N",
                   help="how many per-rank timelines to bridge (default 4)")
    p.set_defaults(func=cmd_trace)

    p = sub.add_parser(
        "compare", help="diff a study's metrics against a baseline"
    )
    p.add_argument("--baseline", required=True, metavar="PATH")
    p.add_argument("--bench", action="append", type=_benchmark,
                   metavar="BENCH",
                   help="benchmarks to run (default: the baseline's)")
    p.add_argument("--procs", type=int, default=None,
                   help="processor count (default: the baseline's)")
    p.add_argument("--machine", default=None,
                   help="machine name (default: the baseline's)")
    p.add_argument("--config", action="append", metavar="NAME=VALUE")
    p.add_argument("--jobs", type=_positive_int, default=1, metavar="N")
    p.add_argument("--no-cache", action="store_true")
    p.add_argument("--cache-dir", default=None, metavar="DIR")
    p.add_argument("--tolerance", type=float, default=0.05,
                   help="relative tolerance for model times (default 0.05)")
    p.add_argument("--update", action="store_true",
                   help="(re)write the baseline instead of comparing")
    p.set_defaults(func=cmd_compare)

    p = sub.add_parser(
        "sweep",
        help="sweep machine/processor axes and report scaling crossovers",
        parents=[_sim_parent(None), _engine_parent()],
    )
    p.add_argument("--axis", action="append", required=True,
                   metavar="NAME=V1,V2,...",
                   help="a swept axis: nprocs, net.latency, net.bandwidth, "
                   "net.raw_latency, compute.*, reduction.stage_cost, or "
                   "prim.<name|*>.<field> (repeatable; grid is the product)")
    p.add_argument("--bench", action="append", type=_benchmark,
                   metavar="BENCH")
    p.add_argument("--keys", nargs="+", choices=ALL_KEYS, default=None,
                   help="experiment keys to run at every point "
                   "(default: the paper's six)")
    p.add_argument("--machine", default="t3d",
                   help="base machine the variants derive from (t3d/paragon)")
    p.add_argument("--library", default=None,
                   help="communication library override (default: each "
                   "key's library)")
    p.add_argument("--batched", action=argparse.BooleanOptionalAction,
                   default=None,
                   help="evaluate each cell's variants in one batched "
                   "simulate_many call (default: auto when the axes are "
                   "cost-only; --no-batched keeps the per-job path)")
    p.add_argument("--config", action="append", metavar="NAME=VALUE",
                   help="program config override applied to every benchmark")
    p.add_argument("--csv", default=None, metavar="PATH",
                   help="write the per-cell scaling table as CSV")
    p.add_argument("--json", default=None, metavar="PATH",
                   help="write the full scaling document (axes, rows, "
                   "crossovers) as JSON")
    p.set_defaults(func=cmd_sweep)

    p = sub.add_parser(
        "frontier",
        help="adaptively localize crossovers or map them over two axes",
        parents=[_sim_parent(None), _engine_parent()],
    )
    p.add_argument("--refine", default=None, metavar="PATH=LO:HI",
                   help="adaptive mode: bisect this cost axis toward its "
                   "crossovers (e.g. prim.*.per_byte_beyond=0:1e-6)")
    p.add_argument("--tol", type=float, default=None, metavar="T",
                   help="crossover localization tolerance for --refine "
                   "(axis units)")
    p.add_argument("--coarse", type=_positive_int, default=9, metavar="N",
                   help="initial grid size for --refine (default 9)")
    p.add_argument("--axis", action="append", metavar="NAME=V1,V2,...",
                   help="dense mode: exactly two cost axes — the first is "
                   "scanned for crossings at each value of the second")
    p.add_argument("--bench", action="append", type=_benchmark,
                   metavar="BENCH")
    p.add_argument("--keys", nargs="+", choices=ALL_KEYS, default=None)
    p.add_argument("--machine", default="t3d",
                   help="base machine the variants derive from (t3d/paragon)")
    p.add_argument("--library", default=None)
    p.add_argument("--config", action="append", metavar="NAME=VALUE",
                   help="program config override applied to every benchmark")
    p.add_argument("--csv", default=None, metavar="PATH",
                   help="write the contour table (dense mode) or per-cell "
                   "scaling table (refine mode) as CSV")
    p.add_argument("--json", default=None, metavar="PATH",
                   help="write the full frontier document as JSON")
    p.set_defaults(func=cmd_frontier)

    p = sub.add_parser(
        "fit",
        help="fit machine cost parameters to measured curves",
        parents=[_sim_parent(None)],
    )
    p.add_argument("target", nargs="?", default=None, metavar="TARGET.json",
                   help="measured fit target (see docs/SWEEPS.md for the "
                   "schema); omit with --synthetic")
    p.add_argument("--fit", action="append", metavar="PATH",
                   help="free parameter to fit (repeatable; with "
                   "--synthetic, defaults to the truth paths)")
    p.add_argument("--synthetic", action="append", metavar="PATH=VALUE",
                   help="generate a synthetic target by simulating with "
                   "these ground-truth overrides (repeatable)")
    p.add_argument("--bound", action="append", metavar="PATH=LO:HI",
                   help="search bracket for one path (default: around the "
                   "base machine's value)")
    p.add_argument("--rounds", type=_positive_int, default=16,
                   help="grid-refinement rounds (default 16)")
    p.add_argument("--samples", type=_positive_int, default=9,
                   help="samples per path per round; the full cartesian "
                   "product is evaluated per round (default 9)")
    p.add_argument("--bench", action="append", type=_benchmark,
                   metavar="BENCH",
                   help="benchmarks for --synthetic cells (default simple)")
    p.add_argument("--keys", nargs="+", choices=ALL_KEYS, default=None,
                   help="experiment keys for --synthetic cells "
                   "(default baseline cc)")
    p.add_argument("--library", default=None)
    p.add_argument("--machine", default="t3d")
    p.add_argument("--config", action="append", metavar="NAME=VALUE",
                   help="program config override for the fit cells")
    p.add_argument("--write-target", default=None, metavar="PATH",
                   help="also write the (synthetic) target document")
    p.add_argument("--json", default=None, metavar="PATH",
                   help="write the fit result document as JSON")
    p.set_defaults(func=cmd_fit)

    p = sub.add_parser(
        "compose",
        help="run the optimization-composition study",
        parents=[_sim_parent(64), _engine_parent()],
    )
    p.add_argument("--bench", action="append", type=_benchmark,
                   metavar="BENCH",
                   help="programs to measure (repeatable; default: the "
                   "paper's four plus the kernel corpus; gen_<seed> works)")
    p.add_argument("--gen", type=_positive_int, default=None, metavar="N",
                   help="also measure N generated programs "
                   "(seeds --gen-seed .. --gen-seed+N-1)")
    p.add_argument("--gen-seed", type=int, default=0, metavar="S",
                   help="first seed for --gen (default 0)")
    p.add_argument("--variant", action="append",
                   metavar="PATH=VALUE[,PATH=VALUE...]",
                   help="a machine variant's overrides (repeatable; the "
                   "unswept base is always included; default: base plus "
                   "a 10x-latency variant)")
    p.add_argument("--machine", default="t3d",
                   help="base machine the variants derive from (t3d/paragon)")
    p.add_argument("--library", default=None,
                   help="communication library override (default pvm)")
    p.add_argument("--small", action="store_true",
                   help="run every program at its test-sized config")
    p.add_argument("--config", action="append", metavar="NAME=VALUE",
                   help="config override applied to every program")
    p.add_argument("--csv", default=None, metavar="PATH",
                   help="write the per-cell composition table as CSV")
    p.add_argument("--json", default=None, metavar="PATH",
                   help="write the full composition document as JSON")
    p.set_defaults(func=cmd_compose)

    p = sub.add_parser(
        "generate",
        help="emit a seeded synthetic ZL program (gen_<seed>)",
    )
    p.add_argument("seed", type=int,
                   help="generator seed (the program is named gen_<seed>)")
    p.add_argument("--count", type=_positive_int, default=1, metavar="N",
                   help="emit N programs (seeds seed .. seed+N-1)")
    p.add_argument("--profile", action="append", metavar="FIELD=VALUE",
                   help="feature-profile override (repeatable; e.g. "
                   "phases=3, wrap_prob=0.5; see GeneratorProfile)")
    p.add_argument("--out", default=None, metavar="PATH",
                   help="write the source here instead of stdout "
                   "(a directory of <name>.zl files when --count > 1)")
    p.add_argument("--check", action="store_true",
                   help="run the differential harness per seed (fast path "
                   "vs oracle on both machines, optimized numerics vs the "
                   "sequential reference); exit 1 with a repro line per "
                   "failing seed")
    p.set_defaults(func=cmd_generate)

    p = sub.add_parser(
        "cache", help="inspect and maintain a result-cache backend"
    )
    cache_sub = p.add_subparsers(dest="cache_command", required=True)

    pc = cache_sub.add_parser(
        "stats", help="entry/byte totals and per-schema census",
        parents=[_cache_parent()],
    )
    pc.set_defaults(func=cmd_cache_stats)

    pc = cache_sub.add_parser(
        "prune", help="remove entries by age and/or schema version",
        parents=[_cache_parent()],
    )
    pc.add_argument("--older-than", type=_duration, default=None,
                    metavar="AGE",
                    help="remove entries older than AGE (90, 30m, 12h, 7d)")
    pc.add_argument("--schema", type=int, default=None, metavar="N",
                    help="remove entries stored under schema version N")
    pc.add_argument("--all", action="store_true",
                    help="remove every entry (no age/schema filter)")
    pc.set_defaults(func=cmd_cache_prune)

    pc = cache_sub.add_parser(
        "serve", help="expose a dir/sqlite backend over HTTP",
        parents=[_cache_parent()],
    )
    pc.add_argument("--host", default="127.0.0.1")
    pc.add_argument("--port", type=int, default=8750,
                    help="listen port (default 8750; 0 picks one)")
    pc.set_defaults(func=cmd_cache_serve)

    p = sub.add_parser(
        "serve",
        help="run the asyncio study/sweep service",
        parents=[_engine_parent()],
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8751,
                   help="listen port (default 8751; 0 picks one)")
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser(
        "top",
        help="stream a serve instance's live study progress",
    )
    p.add_argument(
        "url", metavar="URL",
        help="a `repro serve` base URL (watches the newest study) or a "
        "direct /v1/progress/<key> stream URL",
    )
    p.add_argument("--key", default=None, metavar="KEY",
                   help="watch this progress key instead of the newest")
    p.add_argument("--timeout", type=float, default=30.0, metavar="S",
                   help="seconds to wait for a study to appear and for "
                   "stream reads (default 30)")
    p.set_defaults(func=cmd_top)

    p = sub.add_parser("figure6", help="run the synthetic overhead benchmark")
    p.add_argument("--reps", type=int, default=1000)
    p.set_defaults(func=cmd_figure6)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
