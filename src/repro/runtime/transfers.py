"""Transfer plans: which bytes move between which processors for one
communication descriptor.

For a transfer of ``A @ d`` serving statements over region ``r``, each
processor ``k`` computes its part ``box_k = r ∩ owned_k`` and reads
``box_k`` shifted by ``d``.  The cells of that shifted box falling outside
``owned_k`` are fluff, owned by mesh neighbours.  For an axis direction
that is one neighbour; for a diagonal direction like ``se`` the
outside cells form an L (south strip, east strip, corner) spanning up to
three neighbours.  The paper counts the whole thing as *one
communication* ("a set of calls to perform a single data transfer"); the
simulator prices the individual neighbour messages.

A combined descriptor packs all its entries' strips for the same
neighbour pair into one message (that is the point of combining: fewer,
larger messages, same volume).

Plans are pure metadata (global-coordinate boxes and byte counts).  The
timing engine consumes the vectorized views; the numeric engine walks the
message list to snapshot and deliver real strip data.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import RuntimeFault
from repro.ir.nodes import CommDescriptor
from repro.lang.regions import Region
from repro.runtime.layout import ProblemLayout

_DOUBLE = 8  # bytes per element; ZL arrays are doubles


@dataclass(frozen=True)
class StripCopy:
    """One rectangular piece of one array inside one message.

    ``box`` is in destination coordinates (the receiver's fluff);
    ``src_box`` is in the sender's owned coordinates.  They coincide for
    ordinary transfers and differ by a domain extent per wrapped
    dimension for periodic (wrap-@) transfers."""

    array: str
    box: Region
    src_box: Optional[Region] = None

    @property
    def source(self) -> Region:
        return self.src_box if self.src_box is not None else self.box


@dataclass
class Message:
    """One point-to-point message of a transfer."""

    sender: int
    receiver: int
    copies: List[StripCopy]

    @property
    def nbytes(self) -> int:
        return sum(c.box.size for c in self.copies) * _DOUBLE

    def __post_init__(self) -> None:
        for c in self.copies:
            assert c.source.size == c.box.size, "wrap strip size mismatch"


@dataclass
class _PrimCache:
    """Per-primitive precomputed timing vectors for a plan."""

    cum_sw: np.ndarray  # per message: cumulative send sw at its sender
    total_sw_by_rank: np.ndarray  # per rank: total send sw
    wire: np.ndarray  # per message: latency + bytes/bandwidth


class TransferPlan:
    """All messages of one descriptor on one machine layout."""

    def __init__(
        self, desc: CommDescriptor, layout: ProblemLayout, nprocs: int
    ) -> None:
        self.desc = desc
        self.nprocs = nprocs
        self.messages: List[Message] = _build_messages(desc, layout)
        m = len(self.messages)
        self.senders = np.fromiter(
            (msg.sender for msg in self.messages), dtype=np.int64, count=m
        )
        self.receivers = np.fromiter(
            (msg.receiver for msg in self.messages), dtype=np.int64, count=m
        )
        self.nbytes = np.fromiter(
            (msg.nbytes for msg in self.messages), dtype=np.int64, count=m
        )
        participants = np.zeros(nprocs, dtype=bool)
        participants[self.senders] = True
        participants[self.receivers] = True
        self.participants = participants
        self.participant_count = int(participants.sum())
        self.receivers_unique = np.unique(self.receivers)
        self.senders_unique = np.unique(self.senders)
        self._prim_cache: Dict[Tuple, _PrimCache] = {}
        self._recv_sw_cache: Dict[Tuple, np.ndarray] = {}
        self._fixed_cache: Dict[Tuple[str, float], np.ndarray] = {}

    @property
    def message_count(self) -> int:
        return len(self.messages)

    def prim_vectors(self, prim, network) -> _PrimCache:
        """Cached per-primitive (cum_sw, total_by_rank, wire) vectors.

        Keyed by the *full* cost model (the ``PrimitiveCost`` value, not
        just its name) plus the wire parameters: plans are shared
        process-wide across machines by geometry, so two machine variants
        that differ only in a primitive-cost field (a parameter sweep)
        must not reuse each other's vectors.
        """
        key = (prim, network.latency, network.raw, network.bandwidth)
        cached = self._prim_cache.get(key)
        if cached is not None:
            return cached
        sw = np.fromiter(
            (prim.sw(int(b)) for b in self.nbytes),
            dtype=np.float64,
            count=len(self.nbytes),
        )
        cum_sw = np.zeros_like(sw)
        total = np.zeros(self.nprocs, dtype=np.float64)
        for i, s in enumerate(self.senders):
            total[s] += sw[i]
            cum_sw[i] = total[s]
        wire = np.fromiter(
            (
                network.transfer_time(int(b), raw_wire=prim.raw_wire)
                for b in self.nbytes
            ),
            dtype=np.float64,
            count=len(self.nbytes),
        )
        cached = _PrimCache(cum_sw=cum_sw, total_sw_by_rank=total, wire=wire)
        self._prim_cache[key] = cached
        return cached

    def recv_sw_by_rank(self, prim) -> np.ndarray:
        """Per-rank total receive software cost under ``prim``
        (invariant per cost model — cached by the full ``PrimitiveCost``
        value, treat as read-only)."""
        out = self._recv_sw_cache.get(prim)
        if out is None:
            out = np.zeros(self.nprocs, dtype=np.float64)
            for i, r in enumerate(self.receivers):
                out[r] += prim.sw(int(self.nbytes[i]))
            self._recv_sw_cache[prim] = out
        return out

    def fixed_by_rank(self, role: str, fixed: float) -> np.ndarray:
        """Per-rank total of a fixed per-message cost over this plan's
        ``"recv"`` or ``"send"`` endpoints (cached, treat as read-only)."""
        key = (role, fixed)
        out = self._fixed_cache.get(key)
        if out is None:
            out = np.zeros(self.nprocs, dtype=np.float64)
            np.add.at(
                out, self.receivers if role == "recv" else self.senders, fixed
            )
            self._fixed_cache[key] = out
        return out


def _nonempty_subsets(dims: List[int]) -> List[Tuple[int, ...]]:
    out: List[Tuple[int, ...]] = []
    n = len(dims)
    for mask in range(1, 1 << n):
        out.append(tuple(dims[i] for i in range(n) if mask & (1 << i)))
    return out


def _build_messages(
    desc: CommDescriptor, layout: ProblemLayout
) -> List[Message]:
    grid = layout.grid
    pair_copies: Dict[Tuple[int, int], List[StripCopy]] = {}

    for entry in desc.entries:
        domain = layout.array_domains[entry.array]
        rank = domain.rank
        dist_dims = list(layout.distributed_dims(rank))
        offsets = desc.direction.offsets
        active = [d for d in dist_dims if offsets[d] != 0]
        if not active:
            continue  # purely local shift: no messages

        for receiver in grid.ranks():
            owned_class = layout.owned(rank, receiver)
            box = entry.use_region.intersect(owned_class)
            if box.is_empty:
                continue
            needed = box.shifted(desc.direction)
            for subset in _nonempty_subsets(active):
                lows, highs = list(needed.lows), list(needed.highs)
                ok = True
                for d in range(rank):
                    if d in subset:
                        # the overflow strip on the offset's side
                        if offsets[d] > 0:
                            lo = max(lows[d], owned_class.highs[d] + 1)
                            hi = highs[d]
                        else:
                            lo = lows[d]
                            hi = min(highs[d], owned_class.lows[d] - 1)
                    elif d in dist_dims:
                        lo = max(lows[d], owned_class.lows[d])
                        hi = min(highs[d], owned_class.highs[d])
                    else:
                        lo, hi = lows[d], highs[d]
                    if hi < lo:
                        ok = False
                        break
                    lows[d], highs[d] = lo, hi
                if not ok:
                    continue
                strip = Region(
                    f"<strip:{entry.array}>", tuple(lows), tuple(highs)
                )
                if desc.wrap:
                    sender, src = _wrap_source(
                        desc, entry, strip, domain, layout
                    )
                    pair_copies.setdefault((sender, receiver), []).append(
                        StripCopy(array=entry.array, box=strip, src_box=src)
                    )
                    continue
                step = _mesh_step(rank, dist_dims, subset, offsets)
                sender = grid.neighbor(receiver, step)
                if sender is None:
                    raise RuntimeFault(
                        f"transfer {desc.describe()}: strip {strip} for "
                        f"rank {receiver} has no owning neighbour — "
                        "layout/semantic inconsistency"
                    )
                pair_copies.setdefault((sender, receiver), []).append(
                    StripCopy(array=entry.array, box=strip)
                )

    return [
        Message(sender=s, receiver=r, copies=copies)
        for (s, r), copies in sorted(pair_copies.items())
    ]


def _wrap_source(desc, entry, strip: Region, domain: Region, layout):
    """Source rank and source-coordinate box for a (possibly wrapped)
    periodic strip: coordinates outside the domain fold back by one
    domain extent, and the owner of the folded box sends it."""
    cls = layout.rank_class(domain.rank)
    lows, highs = list(strip.lows), list(strip.highs)
    for d in range(domain.rank):
        extent = domain.highs[d] - domain.lows[d] + 1
        if (
            cls.bounding.lows[d] != domain.lows[d]
            or cls.bounding.highs[d] != domain.highs[d]
        ) and (lows[d] < domain.lows[d] or highs[d] > domain.highs[d]):
            raise RuntimeFault(
                f"wrap transfer of {entry.array!r}: its domain does not "
                f"span the rank-class layout in dim {d + 1}; periodic "
                "arrays must cover the full distributed extent"
            )
        if highs[d] < domain.lows[d]:
            lows[d] += extent
            highs[d] += extent
        elif lows[d] > domain.highs[d]:
            lows[d] -= extent
            highs[d] -= extent
    src = Region(f"<wrapsrc:{entry.array}>", tuple(lows), tuple(highs))
    if not domain.contains(src):
        raise RuntimeFault(
            f"wrap transfer of {entry.array!r}: folded strip {src} still "
            f"escapes the domain {domain} — offset too large for the mesh"
        )
    sender = layout.owner_of(domain.rank, src.lows)
    sender_hi = layout.owner_of(domain.rank, src.highs)
    if sender != sender_hi:
        raise RuntimeFault(
            f"wrap transfer of {entry.array!r}: strip {src} spans "
            "processors — shift width exceeds a block"
        )
    return sender, src


def _mesh_step(
    rank: int,
    dist_dims: List[int],
    subset: Tuple[int, ...],
    offsets: Tuple[int, ...],
) -> Tuple[int, int]:
    """Mesh offset of the neighbour owning the overflow strip for
    ``subset`` (receiver -> sender direction)."""
    step = [0, 0]
    for mesh_axis, d in enumerate(dist_dims):
        if d in subset:
            step[mesh_axis] = 1 if offsets[d] > 0 else -1
    if rank == 1:
        return (step[0], 0)
    return (step[0], step[1])


class PlanCache:
    """Per-simulation cache of transfer plans keyed by descriptor id.

    Backed by a process-wide memo keyed by *content* (grid shape, array
    domains, descriptor geometry), so re-simulating the same program on
    the same layout — e.g. every cell of a study sweep, or a fast-path
    run next to its interpreted check — reuses the built plans instead of
    re-deriving the message lists.  A ``TransferPlan`` is pure metadata
    and safe to share within a process; the memo is bounded LRU.
    """

    # sized above one full paper study (~650 distinct plans across the
    # 4 x 6 matrix at 64 ranks) so sweep cells reuse instead of thrash
    _GLOBAL_MAX = 1024
    _global: "OrderedDict[Tuple, TransferPlan]" = OrderedDict()

    def __init__(self, layout: ProblemLayout, nprocs: int) -> None:
        self.layout = layout
        self.nprocs = nprocs
        self._plans: Dict[int, TransferPlan] = {}
        self._layout_key = (
            layout.grid.rows,
            layout.grid.cols,
            tuple(
                sorted(
                    (name, dom.lows, dom.highs)
                    for name, dom in layout.array_domains.items()
                )
            ),
        )

    def _desc_key(self, desc: CommDescriptor) -> Tuple:
        return (
            self._layout_key,
            self.nprocs,
            desc.id,
            desc.direction.offsets,
            desc.wrap,
            tuple(
                (e.array, e.use_region.lows, e.use_region.highs)
                for e in desc.entries
            ),
        )

    def plan(self, desc: CommDescriptor) -> TransferPlan:
        plan = self._plans.get(desc.id)
        if plan is None:
            key = self._desc_key(desc)
            memo = type(self)._global
            plan = memo.get(key)
            if plan is None:
                plan = TransferPlan(desc, self.layout, self.nprocs)
                memo[key] = plan
                if len(memo) > self._GLOBAL_MAX:
                    memo.popitem(last=False)
            else:
                memo.move_to_end(key)
            self._plans[desc.id] = plan
        return plan

    @classmethod
    def clear_global(cls) -> None:
        """Drop the process-wide plan memo (tests)."""
        cls._global.clear()
