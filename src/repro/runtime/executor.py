"""The simulation driver.

:func:`simulate` executes an optimized IR program on a simulated machine
in one of two modes:

``NUMERIC``
    Full simulation: distributed array data is computed block-by-block,
    fluff moves through the transfer plans, *and* the clock vector runs.
    Use for correctness work (results are compared against the sequential
    reference) and moderate problem sizes.

``TIMING``
    Metadata-only simulation: the clock vector, dynamic counts, message
    counts and volumes are exact, but no array data is touched.  Scalar
    control flow still executes; embedded reductions evaluate to 0.0 with
    a recorded warning, so programs whose control flow depends on reduced
    values should run NUMERIC (the bundled benchmarks use counted loops
    precisely so TIMING is exact for them).

Both modes execute the same statement walk; they differ only in whether
array payloads exist.

TIMING mode additionally has a **compiled fast path**
(:mod:`repro.runtime.schedule`): the IR body is lowered once into a flat
schedule of primitive timing ops with all invariant data precomputed,
and counted loops extrapolate their steady state in closed form.  It is
bit-exact versus the interpreted walk and is selected automatically for
TIMING runs without a ``trace_rank`` (see :func:`simulate`'s ``fast``
parameter for the escape hatch).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from repro.comm.counts import static_comm_count
from repro.errors import RuntimeFault
from repro.ir import nodes as ir
from repro.ironman.calls import CallKind
from repro.lang.regions import Region
from repro.machine.params import Machine
from repro.obs import core as obs
from repro.runtime.distarray import DistArray
from repro.runtime.grid import ProcessorGrid
from repro.runtime.instrument import Instrumentation
from repro.runtime.interp import ParallelEvaluator, ScalarEvaluator
from repro.runtime.layout import ProblemLayout
from repro.runtime.options import ExecutionMode, SimOptions
from repro.runtime.schedule import FastPathStats, compile_schedule
from repro.runtime.timing import TimingEngine
from repro.runtime.transfers import PlanCache, TransferPlan


@dataclass
class RunResult:
    """Everything a simulation run produced."""

    program_name: str
    machine_name: str
    library: str
    nprocs: int
    mode: ExecutionMode
    #: simulated execution time (the last rank to finish), in model seconds
    time: float
    clocks: np.ndarray
    #: the paper's dynamic communication count (per-processor maximum)
    dynamic_comm_count: int
    dynamic_comms: np.ndarray
    static_comm_count: int
    instrument: Instrumentation
    scalars: Dict[str, float]
    arrays: Optional[Dict[str, DistArray]] = field(default=None, repr=False)
    #: event timeline of the traced rank (None unless trace_rank was set)
    trace: Optional[list] = field(default=None, repr=False)
    trace_rank: Optional[int] = None
    #: fast-path engagement stats (None when the interpreted walk ran)
    fastpath: Optional[FastPathStats] = None

    def array(self, name: str) -> np.ndarray:
        """Gathered global contents of an array (NUMERIC mode only)."""
        if self.arrays is None:
            raise RuntimeFault(
                "array data is unavailable in TIMING mode; run NUMERIC"
            )
        return self.arrays[name].gather()

    @property
    def warnings(self) -> List[str]:
        return self.instrument.warnings


class _Simulation:
    def __init__(
        self,
        program: ir.IRProgram,
        machine: Machine,
        mode: ExecutionMode,
        repeat_cap: Optional[int],
        trace_rank: Optional[int] = None,
        fast: bool = False,
    ) -> None:
        self.program = program
        self.machine = machine
        self.mode = mode
        self.repeat_cap = repeat_cap
        self.fast = fast
        self._alias_cache: Dict[int, bool] = {}
        rows, cols = machine.grid_shape
        self.grid = ProcessorGrid(rows, cols)
        domains = {name: dom for name, (dom, _) in program.arrays.items()}
        self.layout = ProblemLayout(self.grid, domains)
        fluff = {name: f for name, (_, f) in program.arrays.items()}
        self.layout.check_fluff_feasible(fluff)
        self.instrument = Instrumentation(machine.nprocs)
        self.timing = TimingEngine(machine, self.instrument, trace_rank=trace_rank)
        self.plans = PlanCache(self.layout, machine.nprocs)
        self._elems_cache: Dict[Tuple, np.ndarray] = {}
        self._payloads: Dict[int, List[List[np.ndarray]]] = {}

        # replicated scalar environment: configs + scalars (zeroed) +
        # loop variables as they come into scope
        self.scalars: Dict[str, Union[int, float, bool]] = dict(
            program.config_values
        )
        for name in program.scalars:
            self.scalars[name] = 0.0

        self.arrays: Optional[Dict[str, DistArray]] = None
        if mode is ExecutionMode.NUMERIC:
            self.arrays = {
                name: DistArray(name, dom, f, self.layout)
                for name, (dom, f) in program.arrays.items()
            }
            self.parallel = ParallelEvaluator(
                self.arrays, self.scalars, self.layout
            )
            self.scalar_eval = ScalarEvaluator(
                self.scalars, self.parallel.reduce
            )
        else:
            self.parallel = None
            self.scalar_eval = ScalarEvaluator(self.scalars, self._timing_reduce)

    # ------------------------------------------------------------------
    def _timing_reduce(self, expr: ir.IRReduce) -> float:
        self.instrument.warn(
            "TIMING mode evaluates reductions as 0.0; control flow "
            "depending on reduced values is unreliable — run NUMERIC"
        )
        return 0.0

    def _elements(self, region: Region) -> np.ndarray:
        key = (region.lows, region.highs)
        vec = self._elems_cache.get(key)
        if vec is None:
            vec = np.fromiter(
                (
                    region.intersect(
                        self.layout.owned(region.rank, p)
                    ).size
                    for p in self.grid.ranks()
                ),
                dtype=np.float64,
                count=self.machine.nprocs,
            )
            self._elems_cache[key] = vec
        return vec

    # ------------------------------------------------------------------
    def run(self) -> RunResult:
        fast_stats: Optional[FastPathStats] = None
        if self.fast:
            fast_stats = compile_schedule(self).execute()
        else:
            self._exec_body(self.program.body)
        self.timing.assert_quiescent()
        scalars_out = {
            k: v
            for k, v in self.scalars.items()
            if k in self.program.scalars
        }
        return RunResult(
            program_name=self.program.name,
            machine_name=self.machine.name,
            library=self.machine.library,
            nprocs=self.machine.nprocs,
            mode=self.mode,
            time=self.timing.elapsed,
            clocks=self.timing.absolute_clocks(),
            dynamic_comm_count=self.instrument.dynamic_comm_count,
            dynamic_comms=self.instrument.dynamic_comms.copy(),
            static_comm_count=static_comm_count(self.program),
            instrument=self.instrument,
            scalars=scalars_out,
            arrays=self.arrays,
            trace=self.timing.trace if self.timing.trace_rank is not None else None,
            trace_rank=self.timing.trace_rank,
            fastpath=fast_stats,
        )

    # ------------------------------------------------------------------
    def _exec_body(self, body: List[ir.IRStmt]) -> None:
        for stmt in body:
            if isinstance(stmt, ir.Block):
                for s in stmt.stmts:
                    self._exec_simple(s)
            elif isinstance(stmt, ir.ForLoop):
                self._exec_for(stmt)
            elif isinstance(stmt, ir.RepeatLoop):
                self._exec_repeat(stmt)
            elif isinstance(stmt, ir.IfStmt):
                self._exec_if(stmt)
            else:  # pragma: no cover - defensive
                raise RuntimeFault(f"cannot execute {stmt!r}")

    def _exec_for(self, stmt: ir.ForLoop) -> None:
        lo = int(self.scalar_eval.eval(stmt.low))
        hi = int(self.scalar_eval.eval(stmt.high))
        step = int(self.scalar_eval.eval(stmt.step)) if stmt.step else 1
        if step == 0:
            raise RuntimeFault(f"for {stmt.var}: zero step")
        stop = hi + (1 if step > 0 else -1)
        for value in range(lo, stop, step):
            self.scalars[stmt.var] = value
            self._exec_body(stmt.body)
            self.timing.loop_rebase()

    def _exec_repeat(self, stmt: ir.RepeatLoop) -> None:
        cap = self.repeat_cap if self.repeat_cap is not None else stmt.max_trips
        trips = 0
        while True:
            self._exec_body(stmt.body)
            self.timing.loop_rebase()
            trips += 1
            if bool(self.scalar_eval.eval(stmt.cond)):
                break
            if trips >= cap:
                self.instrument.warn(
                    f"repeat loop capped at {cap} trips without converging"
                )
                break

    def _exec_if(self, stmt: ir.IfStmt) -> None:
        for cond, body in stmt.arms:
            if bool(self.scalar_eval.eval(cond)):
                self._exec_body(body)
                return
        self._exec_body(stmt.orelse)

    # ------------------------------------------------------------------
    def _exec_simple(self, stmt: ir.SimpleStmt) -> None:
        if isinstance(stmt, ir.ArrayAssign):
            self.timing.charge_array_stmt(
                stmt.flops, self._elements(stmt.region), label=stmt.target
            )
            if self.arrays is not None:
                self._store_array_stmt(stmt)
        elif isinstance(stmt, ir.ScalarAssign):
            self._exec_scalar_assign(stmt)
        elif isinstance(stmt, ir.CommCall):
            self._exec_comm(stmt)
        else:  # pragma: no cover - defensive
            raise RuntimeFault(f"cannot execute {stmt!r}")

    def _store_array_stmt(self, stmt: ir.ArrayAssign) -> None:
        target = self.arrays[stmt.target]
        # aliasing is only possible when the target appears in its own
        # RHS; hoisted per statement so the common non-aliasing case
        # skips the per-rank shares_memory probe entirely
        may_alias = self._alias_cache.get(id(stmt))
        if may_alias is None:
            may_alias = stmt.target in ir.arrays_read(stmt.expr)
            self._alias_cache[id(stmt)] = may_alias
        for proc in self.grid.ranks():
            owned = self.layout.owned(stmt.region.rank, proc)
            box = stmt.region.intersect(owned)
            if box.is_empty:
                continue
            value = self.parallel.eval(stmt.expr, proc, box)
            dest = target.block(proc).view(box)
            if isinstance(value, np.ndarray):
                if may_alias and np.shares_memory(
                    value, target.block(proc).data
                ):
                    value = value.copy()
                dest[...] = value
            else:
                dest[...] = value

    def _exec_scalar_assign(self, stmt: ir.ScalarAssign) -> None:
        # collective cost for each embedded reduction
        for node in ir.walk_expr(stmt.expr):
            if isinstance(node, ir.IRReduce):
                self.timing.charge_reduction(
                    ir.expr_flops(node.operand), self._elements(node.region)
                )
        self.timing.charge_scalar_stmt(ir.expr_flops(stmt.expr))
        self.scalars[stmt.target] = self.scalar_eval.eval(stmt.expr)

    def _exec_comm(self, stmt: ir.CommCall) -> None:
        plan = self.plans.plan(stmt.desc)
        if self.arrays is not None:
            if stmt.kind is CallKind.SR:
                self._snapshot(plan)
            elif stmt.kind is CallKind.DN:
                self._deliver(plan)
        self.timing.comm_call(stmt.kind, plan)

    def _snapshot(self, plan: TransferPlan) -> None:
        if plan.message_count == 0:
            return
        payloads = [
            [
                self.arrays[copy.array]
                .block(msg.sender)
                .view(copy.source)
                .copy()
                for copy in msg.copies
            ]
            for msg in plan.messages
        ]
        self._payloads[plan.desc.id] = payloads

    def _deliver(self, plan: TransferPlan) -> None:
        if plan.message_count == 0:
            return
        payloads = self._payloads.pop(plan.desc.id, None)
        if payloads is None:  # pragma: no cover - timing engine raises first
            raise RuntimeFault(
                f"delivery of {plan.desc.describe()} before initiation"
            )
        for msg, msg_payloads in zip(plan.messages, payloads):
            for copy, payload in zip(msg.copies, msg_payloads):
                self.arrays[copy.array].block(msg.receiver).view(copy.box)[
                    ...
                ] = payload


def _resolve_fast(
    fast: Optional[bool], mode: ExecutionMode, trace_rank: Optional[int]
) -> bool:
    if fast is None:
        return mode is ExecutionMode.TIMING and trace_rank is None
    if fast:
        if mode is not ExecutionMode.TIMING:
            raise RuntimeFault(
                "fast=True requires TIMING mode; NUMERIC runs the "
                "interpreted walk (pass fast=False or fast=None)"
            )
        if trace_rank is not None:
            raise RuntimeFault(
                "fast=True cannot record a per-rank timeline; pass "
                "fast=False together with trace_rank"
            )
    return bool(fast)


#: Sentinel distinguishing "argument not passed" from an explicit value
#: (``fast=None`` is a meaningful setting, so ``None`` can't mark absence).
_UNSET = object()


def _resolve_options(
    options: Optional[SimOptions], mode: object
) -> SimOptions:
    """Fold the positional ``mode`` and the options object into one
    :class:`SimOptions`; mixing them raises."""
    if options is not None:
        if mode is not _UNSET:
            raise RuntimeFault(
                "simulate() got options= together with mode — put every "
                "setting on the SimOptions object"
            )
        return options
    return SimOptions(
        mode=mode if mode is not _UNSET else ExecutionMode.NUMERIC
    )


def simulate(
    program: ir.IRProgram,
    machine: Machine,
    mode: ExecutionMode = _UNSET,  # type: ignore[assignment]
    *,
    options: Optional[SimOptions] = None,
) -> RunResult:
    """Run an optimized program on a simulated machine.

    Parameters
    ----------
    program:
        An :class:`~repro.ir.nodes.IRProgram`, typically from
        :func:`repro.comm.optimize` (a communication-free program runs
        too: on one processor, or trivially wrong on several — useful in
        tests that demonstrate why communication is needed).
    machine:
        From :func:`repro.machine.paragon` / :func:`repro.machine.t3d`.
    options:
        A :class:`~repro.runtime.options.SimOptions`; the single place
        for every run-shaping setting:

        ``mode``
            NUMERIC (data + time) or TIMING (time and counts only).
        ``repeat_cap``
            Override for every ``repeat`` loop's trip cap.
        ``trace_rank``
            Record the full event timeline (compute/send/recv/wait/...)
            of one processor; retrieve it as ``result.trace`` and render
            it with :mod:`repro.analysis.timeline` or bridge it into a
            Perfetto trace with :func:`repro.obs.bridge_rank_trace`.
        ``fast``
            Select the compiled TIMING fast path
            (:mod:`repro.runtime.schedule`).  ``None`` (default) chooses
            it automatically for TIMING runs without a ``trace_rank``;
            ``False`` forces the interpreted walk (the CLI's
            ``--no-fast-path``); ``True`` demands it and raises if the
            mode can't support it.  Results are bit-identical either
            way.

    ``mode`` may also be passed positionally — ``simulate(program,
    machine, ExecutionMode.TIMING)`` is the stable short form — but
    every other setting lives on the options object (the bare
    ``repeat_cap``/``trace_rank``/``fast`` keywords completed their
    deprecation cycle and are gone).  Mixing ``mode`` with ``options=``
    raises.
    """
    opts = _resolve_options(options, mode)
    mode = opts.mode
    repeat_cap = opts.repeat_cap
    trace_rank = opts.trace_rank
    use_fast = _resolve_fast(opts.fast, mode, trace_rank)
    with obs.span(
        "simulate",
        program=program.name,
        machine=machine.name,
        library=machine.library,
        nprocs=machine.nprocs,
        mode=mode.value,
    ):
        result = _Simulation(
            program, machine, mode, repeat_cap, trace_rank, fast=use_fast
        ).run()
    if obs.enabled():
        _record_run_metrics(result)
    return result


def _record_run_metrics(result: RunResult) -> None:
    """Post one finished run's model-side totals into the metrics
    registry: the IRONMAN per-primitive call counts the instrumentation
    gathered, communication volumes, and the model time histogram.
    Called only when tracing is on."""
    inst = result.instrument
    for primitive, count in inst.call_counts.items():
        obs.add(f"sim.calls.{primitive}", count)
    obs.add("sim.runs", 1)
    obs.add("sim.dynamic_comms", result.dynamic_comm_count)
    obs.add("sim.messages", inst.total_messages)
    obs.add("sim.bytes", inst.total_bytes)
    obs.add("sim.reductions", inst.reductions)
    obs.observe("sim.model_time_s", result.time)
    if result.fastpath is not None:
        obs.add("sim.fastpath.compiled", 1)
        obs.add("sim.fastpath.extrapolated_trips", result.fastpath.extrapolated_trips)
        obs.add("sim.fastpath.fallbacks", result.fastpath.fallbacks)
