"""The SPMD runtime: a discrete-event simulator for optimized programs.

The runtime plays the role of the paper's 64-node T3D/Paragon partitions.
It executes an optimized :class:`~repro.ir.nodes.IRProgram` on a
simulated :class:`~repro.machine.Machine`:

* every processor owns a block of every array plus *fluff* (ghost) cells
  (:mod:`repro.runtime.distarray`);
* IRONMAN calls move real strip data between blocks
  (:mod:`repro.runtime.transfers`), so an optimizer bug that removes a
  needed transfer produces numerically wrong results — correctness is
  checked against the sequential reference evaluator
  (:mod:`repro.runtime.reference`);
* a per-rank clock vector advances through compute and primitive costs
  (:mod:`repro.runtime.timing`), so pipelined transfers genuinely overlap
  with computation and SHMEM's rendezvous synchronization genuinely
  couples neighbours;
* instrumentation (:mod:`repro.runtime.instrument`) records the paper's
  dynamic communication counts, message counts, and volumes.

Entry point: :func:`repro.runtime.executor.simulate`.
"""

from repro.runtime.batch import (
    BatchEvaluator,
    BatchResult,
    BatchRun,
    batch_evaluator,
    clear_batch_evaluators,
    simulate_many,
)
from repro.runtime.executor import ExecutionMode, RunResult, simulate
from repro.runtime.options import SimOptions
from repro.runtime.reference import reference_run

__all__ = [
    "simulate",
    "simulate_many",
    "RunResult",
    "BatchEvaluator",
    "BatchResult",
    "BatchRun",
    "batch_evaluator",
    "clear_batch_evaluators",
    "SimOptions",
    "ExecutionMode",
    "reference_run",
]
