"""Expression evaluation over distributed blocks.

The evaluator computes an IR expression for one processor over one
execution box (the intersection of the statement's region scope with the
processor's owned block).  Array reads resolve to NumPy views of the
local buffer; shifted reads resolve to views displaced into fluff.  A
scalar evaluator handles replicated scalar expressions, delegating
reductions back to the parallel evaluator.

Evaluation never consults remote blocks: if a shifted read touches fluff
that no transfer filled (because the optimizer dropped a needed
communication), the evaluator happily reads stale zeros and the result
diverges from the sequential reference — by design.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Union

import numpy as np

from repro.errors import RuntimeFault
from repro.ir import nodes as ir
from repro.lang.regions import Region

Number = Union[int, float, bool]

_BIN_OPS: Dict[str, Callable] = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": lambda a, b: a / b,
    "^": lambda a, b: a**b,
    "=": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
    "and": lambda a, b: np.logical_and(a, b),
    "or": lambda a, b: np.logical_or(a, b),
}

_INTRINSICS: Dict[str, Callable] = {
    "abs": np.abs,
    "sqrt": np.sqrt,
    "exp": np.exp,
    "ln": np.log,
    "log": np.log,
    "sin": np.sin,
    "cos": np.cos,
    "tanh": np.tanh,
    "floor": np.floor,
    "ceil": np.ceil,
    "sign": np.sign,
    "min": np.minimum,
    "max": np.maximum,
    "pow": np.power,
}

#: reduction op -> (numpy reducer over an array, pairwise combiner, identity)
_REDUCERS = {
    "+": (np.sum, lambda a, b: a + b, 0.0),
    "*": (np.prod, lambda a, b: a * b, 1.0),
    "max": (np.max, max, -math.inf),
    "min": (np.min, min, math.inf),
}


class ParallelEvaluator:
    """Evaluates parallel expressions per processor.

    ``arrays`` maps names to :class:`~repro.runtime.distarray.DistArray`;
    ``scalars`` is the replicated scalar environment (shared object,
    mutated by the executor)."""

    def __init__(self, arrays, scalars: Dict[str, Number], layout) -> None:
        self.arrays = arrays
        self.scalars = scalars
        self.layout = layout

    # ------------------------------------------------------------------
    def eval(self, expr: ir.IRExpr, proc: int, box: Region):
        """Evaluate ``expr`` for processor ``proc`` over ``box`` (global
        coordinates, nonempty).  Returns an ndarray of ``box.shape`` or a
        scalar (broadcast)."""
        if isinstance(expr, ir.IRConst):
            return float(expr.value) if not isinstance(expr.value, bool) else expr.value
        if isinstance(expr, ir.IRScalarRead):
            try:
                return self.scalars[expr.name]
            except KeyError:
                raise RuntimeFault(f"unbound scalar {expr.name!r}") from None
        if isinstance(expr, ir.IRIndex):
            return _index_values(box, expr.dim)
        if isinstance(expr, ir.IRArrayRead):
            block = self.arrays[expr.array].block(proc)
            read_box = (
                box if expr.direction is None else box.shifted(expr.direction)
            )
            return block.view(read_box)
        if isinstance(expr, ir.IRBin):
            return _BIN_OPS[expr.op](
                self.eval(expr.lhs, proc, box), self.eval(expr.rhs, proc, box)
            )
        if isinstance(expr, ir.IRUn):
            operand = self.eval(expr.operand, proc, box)
            return np.logical_not(operand) if expr.op == "not" else -operand
        if isinstance(expr, ir.IRIntrinsic):
            args = [self.eval(a, proc, box) for a in expr.args]
            return _INTRINSICS[expr.func](*args)
        raise RuntimeFault(f"cannot evaluate {expr!r} in parallel context")

    # ------------------------------------------------------------------
    def reduce(self, reduce_expr: ir.IRReduce) -> float:
        """Evaluate a full reduction across all processors."""
        reducer, combiner, identity = _REDUCERS[reduce_expr.op]
        acc = identity
        for proc in self.layout.grid.ranks():
            owned = self.layout.owned(reduce_expr.region.rank, proc)
            box = reduce_expr.region.intersect(owned)
            if box.is_empty:
                continue
            local = self.eval(reduce_expr.operand, proc, box)
            if isinstance(local, np.ndarray):
                if local.size == 0:
                    continue
                part = float(reducer(local))
            else:
                # scalar operand broadcast over the box
                if reduce_expr.op == "+":
                    part = float(local) * box.size
                elif reduce_expr.op == "*":
                    part = float(local) ** box.size
                else:
                    part = float(local)
            acc = combiner(acc, part)
        return float(acc)


class ScalarEvaluator:
    """Evaluates replicated scalar expressions (conditions, loop bounds,
    scalar assignments).  ``reduce_hook`` supplies the value of embedded
    reductions: the numeric executor wires it to
    :meth:`ParallelEvaluator.reduce`; the timing-only executor supplies a
    constant and records a warning."""

    def __init__(
        self,
        scalars: Dict[str, Number],
        reduce_hook: Callable[[ir.IRReduce], float],
    ) -> None:
        self.scalars = scalars
        self.reduce_hook = reduce_hook

    def eval(self, expr: ir.IRExpr) -> Number:
        if isinstance(expr, ir.IRConst):
            return expr.value
        if isinstance(expr, ir.IRScalarRead):
            try:
                return self.scalars[expr.name]
            except KeyError:
                raise RuntimeFault(f"unbound scalar {expr.name!r}") from None
        if isinstance(expr, ir.IRReduce):
            return self.reduce_hook(expr)
        if isinstance(expr, ir.IRBin):
            a, b = self.eval(expr.lhs), self.eval(expr.rhs)
            if expr.op == "/" and isinstance(a, int) and isinstance(b, int):
                # ZL integer division truncates (used for index arithmetic)
                return a // b
            return _BIN_OPS[expr.op](a, b)
        if isinstance(expr, ir.IRUn):
            v = self.eval(expr.operand)
            return (not v) if expr.op == "not" else -v
        if isinstance(expr, ir.IRIntrinsic):
            args = [self.eval(a) for a in expr.args]
            out = _INTRINSICS[expr.func](*args)
            return float(out) if isinstance(out, np.generic) else out
        raise RuntimeFault(f"cannot evaluate {expr!r} in scalar context")


def _index_values(box: Region, dim: int) -> np.ndarray:
    """The ``indexK`` builtin over a box: each point's coordinate in
    dimension ``dim`` (1-based), shaped for broadcasting."""
    d = dim - 1
    lo, hi = box.lows[d], box.highs[d]
    values = np.arange(lo, hi + 1, dtype=np.float64)
    shape = [1] * box.rank
    shape[d] = hi - lo + 1
    return values.reshape(shape)
