"""Batched many-variant TIMING evaluation.

:func:`simulate_many` evaluates one compiled TIMING schedule over a
whole **matrix of cost vectors** at once: every variant's primitive
costs, charge rates, and reduction stage costs are stacked into numpy
arrays with a leading variant axis
(:func:`repro.machine.variants.pack_variants`), and the CHARGE / REDUCE
/ SR / DN / DR / SV dispatch loop runs *once* with ``(V, P)`` clock
updates instead of once per variant.

Why this is sound: TIMING control flow is replicated scalar state, and
scalar state never depends on a cost parameter — so every cost-only
variant executes the *identical* op sequence, and the only thing that
differs between variants is the float arithmetic on the clock matrix.
Each batched op performs the same floating-point operations in the same
order as the scalar :class:`~repro.runtime.timing.TimingEngine`, just
elementwise across the variant axis, so every row of the clock matrix is
**bit-identical** to the scalar fast path run of that variant
(``tests/runtime/test_batch.py`` enforces this differentially).

Steady-state extrapolation folds per-variant: the epoch is kept as
``(V,)`` run-length-encoded advance runs, the fast path's signature
probe compares the whole clock matrix bitwise (a fixed point of the
batch is a fixed point of every variant), and recorded advance patterns
replay through the same coalescing fold — extrapolation may engage a few
trips later than it would per-variant (it waits for the *slowest*
variant to settle), but the final state is unchanged.

What the batch does **not** track, by design: per-primitive call counts
(the SR count depends on which ranks paid a nonzero software cost — a
per-variant quantity) and the per-rank time-breakdown vectors
(compute/comm-sw/wait).  Everything else the paper's figures read —
clocks, times, static/dynamic counts, message counts, volumes,
reductions, warnings, scalars — is recorded once (it is
variant-independent) and matches the scalar path exactly.

Memory model: the evaluator holds ``O(V x P)`` floats for the clock
matrix plus one ``(V, P)`` arrival matrix per in-flight transfer and
``(V, M)`` cost matrices per (plan, primitive) — for a 1000-variant
sweep on 64 ranks this is a few MB, not a concern; for 10^6-variant
grids, chunk the variant list.
"""

from __future__ import annotations

import csv
import json
from collections import OrderedDict
from dataclasses import dataclass, field
from functools import partial
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.comm.counts import static_comm_count
from repro.errors import RuntimeFault
from repro.ir import nodes as ir
from repro.ironman.calls import CallKind
from repro.machine.params import Machine, SyncKind
from repro.machine.variants import PrimColumns, VariantMatrix, pack_variants
from repro.obs import core as obs
from repro.runtime.grid import ProcessorGrid
from repro.runtime.instrument import Instrumentation
from repro.runtime.interp import ScalarEvaluator
from repro.runtime.layout import ProblemLayout
from repro.runtime.options import ExecutionMode, SimOptions
from repro.runtime.schedule import (
    CompiledSchedule,
    FastPathStats,
    _compile_scalar,
    _Lowerer,
    _Runner,
)
from repro.runtime.transfers import PlanCache, TransferPlan

__all__ = [
    "BatchEvaluator",
    "BatchResult",
    "BatchRun",
    "batch_evaluator",
    "clear_batch_evaluators",
    "simulate_many",
]


# ---------------------------------------------------------------------------
# the (V, P) timing engine
# ---------------------------------------------------------------------------


class BatchTimingEngine:
    """The :class:`~repro.runtime.timing.TimingEngine` arithmetic lifted
    to a ``(V, P)`` clock matrix — V variants, P ranks.

    Every method performs the scalar engine's float operations in the
    same order, elementwise along the variant axis; see the module
    docstring for the exactness argument.  The epoch is per-variant
    run-length-encoded, and the advance log entries are
    ``(c, mask, n)`` tuples — ``c`` the ``(V,)`` advance, ``mask`` which
    variants advanced, ``n`` the run length.
    """

    def __init__(self, matrix: VariantMatrix, instrument: Instrumentation) -> None:
        self.matrix = matrix
        self.machine = matrix.base
        self.nprocs = matrix.base.nprocs
        self.nvariants = matrix.nvariants
        self.instrument = instrument
        V, P = self.nvariants, self.nprocs
        self.clock = np.zeros((V, P), dtype=np.float64)
        self._inflight: Dict[int, np.ndarray] = {}
        self._dr_times: Dict[int, np.ndarray] = {}
        self._vrows = np.arange(V)[:, None]
        self._epoch_prefix = np.zeros(V, dtype=np.float64)
        self._epoch_c = np.zeros(V, dtype=np.float64)
        self._epoch_n = np.zeros(V, dtype=np.int64)
        self._epoch_val = np.zeros(V, dtype=np.float64)
        self._epoch_log: Optional[List[Tuple]] = None

    # -- epoch ----------------------------------------------------------
    def advance_epoch(
        self, c: np.ndarray, mask: np.ndarray, n: int = 1
    ) -> None:
        """Per-variant run-length epoch fold: variants where ``mask`` is
        set fold ``n`` advances of ``c[v]``; the rest are untouched.
        Elementwise mirror of the scalar engine's ``advance_epoch``."""
        coalesce = mask & (c == self._epoch_c) & (self._epoch_n > 0)
        start = mask & ~coalesce
        if coalesce.any():
            self._epoch_n[coalesce] += n
        if start.any():
            self._epoch_prefix[start] = (
                self._epoch_prefix[start]
                + self._epoch_c[start] * self._epoch_n[start]
            )
            self._epoch_c[start] = c[start]
            self._epoch_n[start] = n
        np.copyto(
            self._epoch_val,
            self._epoch_prefix + self._epoch_c * self._epoch_n,
            where=mask,
        )
        if self._epoch_log is not None:
            self._epoch_log.extend([(c, mask, 1)] * n)

    def loop_rebase(self) -> None:
        """Rebase each variant's offsets independently (``x - 0.0`` is a
        bitwise identity, so variants still at the epoch are genuinely
        untouched, matching the scalar engine's early return)."""
        c = self.clock.min(axis=1)
        mask = c > 0.0
        if not mask.any():
            return
        sub = np.where(mask, c, 0.0)[:, None]
        self.clock -= sub
        for arr in self._inflight.values():
            arr -= sub
        for arr in self._dr_times.values():
            arr -= sub
        self.advance_epoch(c, mask)

    def absolute_clocks(self) -> np.ndarray:
        return self._epoch_val[:, None] + self.clock

    def elapsed(self) -> np.ndarray:
        """Per-variant execution time: the last rank to finish."""
        return self._epoch_val + self.clock.max(axis=1)

    # -- compute ---------------------------------------------------------
    def array_cost(self, flops: int, elements: np.ndarray) -> np.ndarray:
        m = self.matrix
        return np.where(
            elements[None, :] > 0,
            m.loop_overhead[:, None]
            + (flops * elements)[None, :] * m.flop_time[:, None],
            0.0,
        )

    def charge_array_vec(self, cost: np.ndarray, label: str = "") -> None:
        self.clock += cost

    def scalar_cost(self, flops: int) -> np.ndarray:
        return max(flops, 1) * self.matrix.flop_time

    def charge_scalar_cost(self, cost: np.ndarray) -> None:
        self.clock += cost[:, None]

    def reduction_cost(self, flops: int, elements: np.ndarray) -> np.ndarray:
        m = self.matrix
        return np.where(
            elements[None, :] > 0,
            m.loop_overhead[:, None]
            + (max(flops, 1) * elements)[None, :] * m.flop_time[:, None],
            0.0,
        )

    def charge_reduction_vec(
        self, partial: np.ndarray, tree_time: np.ndarray
    ) -> None:
        t = (self.clock + partial).max(axis=1)
        t = t + tree_time
        self.clock[:] = t[:, None]
        self.instrument.record_reduction()

    # -- communication ---------------------------------------------------
    def _do_send(self, plan: TransferPlan, data: "_CommData") -> None:
        if plan.desc.id in self._inflight:
            raise RuntimeFault(
                f"transfer {plan.desc.describe()} initiated twice without "
                "completion — optimizer produced an illegal schedule"
            )
        dr = self._dr_times.pop(plan.desc.id, None)
        if dr is not None:
            # the put blocks until the destination's DR flag crossed the
            # wire; the flag matrix is -inf except at senders, and
            # max(x, -inf) == x bitwise, so a full-matrix maximum equals
            # the scalar engine's masked update
            flag_ready = np.full(
                (self.nvariants, self.nprocs), -np.inf, dtype=np.float64
            )
            np.maximum.at(
                flag_ready,
                (self._vrows, plan.senders[None, :]),
                dr[:, plan.receivers] + self.matrix.net_raw[:, None],
            )
            np.maximum(self.clock, flag_ready, out=self.clock)
        arrivals = np.full(
            (self.nvariants, self.nprocs), -np.inf, dtype=np.float64
        )
        send_end = self.clock[:, plan.senders] + data.cum_sw
        np.maximum.at(
            arrivals,
            (self._vrows, plan.receivers[None, :]),
            send_end + data.wire,
        )
        self.clock += data.total_sw
        self._inflight[plan.desc.id] = arrivals
        self.instrument.record_transfer(plan)

    def _do_complete(self, plan: TransferPlan, data: "_CommData") -> None:
        arrivals = self._inflight.pop(plan.desc.id, None)
        if arrivals is None:
            raise RuntimeFault(
                f"completion of {plan.desc.describe()} before initiation — "
                "optimizer produced an illegal schedule"
            )
        receivers = plan.receivers_unique
        pc = data.pc
        a = arrivals[:, receivers]
        c = self.clock[:, receivers]
        if pc.sync is SyncKind.RENDEZVOUS:
            waited = np.maximum(0.0, a - c)
            surcharge = pc.spread_penalty[:, None] * np.minimum(
                waited, pc.spread_cap[:, None]
            )
            self.clock[:, receivers] = (
                np.maximum(c, a) + pc.fixed[:, None] + surcharge
            )
        else:
            self.clock[:, receivers] = np.maximum(c, a) + data.recv_sw[
                :, receivers
            ]

    def _do_pre(self, plan: TransferPlan, data: "_CommData") -> None:
        pc = data.pc
        if pc.sync is SyncKind.RENDEZVOUS:
            receivers = plan.receivers_unique
            self.clock[:, receivers] += pc.fixed[:, None]
            self._dr_times[plan.desc.id] = self.clock.copy()
        else:
            self.clock += data.fixed_recv

    def _do_volatile(self, plan: TransferPlan, data: "_CommData") -> None:
        self.clock += data.fixed_send

    # -- lifecycle -------------------------------------------------------
    def assert_quiescent(self) -> None:
        if self._inflight:
            raise RuntimeFault(
                f"{len(self._inflight)} transfer(s) initiated but never "
                "completed — optimizer produced an illegal schedule"
            )
        if self._dr_times:
            raise RuntimeFault(
                f"{len(self._dr_times)} destination-ready flag(s) posted "
                "but never consumed — optimizer produced an illegal schedule"
            )


# ---------------------------------------------------------------------------
# batched per-(plan, primitive) comm vectors
# ---------------------------------------------------------------------------


class _CommData:
    """Precomputed ``(V, ...)`` cost matrices of one IRONMAN call on one
    plan — the batched counterpart of ``TransferPlan.prim_vectors`` and
    friends.  Built per lowering (never cached on the shared plan: plans
    are shared process-wide by geometry, not by cost model)."""

    __slots__ = (
        "pc",
        "cum_sw",
        "total_sw",
        "wire",
        "recv_sw",
        "fixed_recv",
        "fixed_send",
    )

    def __init__(self, pc: PrimColumns) -> None:
        self.pc = pc
        self.cum_sw = None
        self.total_sw = None
        self.wire = None
        self.recv_sw = None
        self.fixed_recv = None
        self.fixed_send = None


def _send_vectors(plan: TransferPlan, pc: PrimColumns, matrix: VariantMatrix):
    """Batched ``prim_vectors``: per-message cumulative send cost, total
    software cost by rank, and wire time — ``np.cumsum`` is a sequential
    accumulate, so each row matches the scalar running-sum loop
    bitwise."""
    sw = pc.sw_matrix(plan.nbytes)
    cum = np.empty_like(sw)
    total = np.zeros((sw.shape[0], plan.nprocs), dtype=np.float64)
    for s in plan.senders_unique:
        idx = np.flatnonzero(plan.senders == s)
        cs = np.cumsum(sw[:, idx], axis=1)
        cum[:, idx] = cs
        total[:, int(s)] = cs[:, -1]
    lat = matrix.net_raw if pc.raw_wire else matrix.net_latency
    wire = (
        lat[:, None] + plan.nbytes[None, :] / matrix.net_bandwidth[:, None]
    )
    return cum, total, wire


def _recv_vectors(plan: TransferPlan, pc: PrimColumns) -> np.ndarray:
    """Batched ``recv_sw_by_rank``: per-rank total receive cost."""
    sw = pc.sw_matrix(plan.nbytes)
    out = np.zeros((sw.shape[0], plan.nprocs), dtype=np.float64)
    for r in plan.receivers_unique:
        idx = np.flatnonzero(plan.receivers == r)
        out[:, int(r)] = np.cumsum(sw[:, idx], axis=1)[:, -1]
    return out


def _fixed_table(plan: TransferPlan, role: str, fixed: np.ndarray) -> np.ndarray:
    """Batched ``fixed_by_rank``.  The scalar path accumulates the same
    float ``count`` times (``np.add.at``), and repeated addition is not
    ``count * fixed`` in floats — so build an accumulation table and
    gather by count."""
    idx = plan.receivers if role == "recv" else plan.senders
    counts = np.bincount(idx, minlength=plan.nprocs)
    table = np.zeros((fixed.shape[0], int(counts.max()) + 1), dtype=np.float64)
    for k in range(1, table.shape[1]):
        table[:, k] = table[:, k - 1] + fixed
    return table[:, counts]


# ---------------------------------------------------------------------------
# the batched runner and lowerer
# ---------------------------------------------------------------------------


class _BatchRunner(_Runner):
    """`_Runner` whose epoch-replay hooks understand the batch engine's
    ``(c, mask, n)`` log entries."""

    def _replay_pattern(self, pattern: List, k: int) -> None:
        timing = self.timing
        for _ in range(k):
            for c, mask, n in pattern:
                timing.advance_epoch(c, mask, n)

    def _replay_pattern_bulk(self, pattern: List, k: int) -> None:
        c0, m0, n0 = pattern[0]
        uniform = all(
            n == n0 and np.array_equal(c, c0) and np.array_equal(mask, m0)
            for c, mask, n in pattern[1:]
        )
        if uniform:
            # the run-length fold makes one coalesced advance of
            # k * len * n identical to stepping them one at a time
            self.timing.advance_epoch(c0, m0, k * len(pattern) * n0)
        else:
            self._replay_pattern(pattern, k)


class _BatchLowerer(_Lowerer):
    """`_Lowerer` against a :class:`BatchTimingEngine`: compute charges
    become ``(V, P)`` matrices and IRONMAN calls carry per-variant
    :class:`_CommData` instead of a scalar primitive."""

    def __init__(self, sim) -> None:
        super().__init__(sim)
        self._comm_data_cache: Dict[Tuple, _CommData] = {}

    def _make_runner(self, sim) -> _Runner:
        return _BatchRunner(
            sim.timing, sim.instrument, sim.scalars, sim.repeat_cap
        )

    def _lower_simple(self, stmt: ir.SimpleStmt, ops: List) -> None:
        timing = self.timing
        if isinstance(stmt, ir.ArrayAssign):
            cost = timing.array_cost(stmt.flops, self.sim._elements(stmt.region))
            ops.append(partial(timing.charge_array_vec, cost, stmt.target))
        elif isinstance(stmt, ir.ScalarAssign):
            tree_time = timing.matrix.reduction_time
            for node in ir.walk_expr(stmt.expr):
                if isinstance(node, ir.IRReduce):
                    part = timing.reduction_cost(
                        ir.expr_flops(node.operand),
                        self.sim._elements(node.region),
                    )
                    ops.append(
                        partial(timing.charge_reduction_vec, part, tree_time)
                    )
            ops.append(
                partial(
                    timing.charge_scalar_cost,
                    timing.scalar_cost(ir.expr_flops(stmt.expr)),
                )
            )
            value = _compile_scalar(stmt.expr, self.scalars, self.reduce_hook)
            ops.append(partial(self._assign, stmt.target, value))
        elif isinstance(stmt, ir.CommCall):
            plan = self.sim.plans.plan(stmt.desc)
            if plan.message_count == 0:
                return  # nothing to move on this machine
            prim_name = self.machine.binding.primitive(stmt.kind)
            data = self._comm_data(plan, prim_name, stmt.kind)
            ops.append(partial(self._comm_dispatch[stmt.kind], plan, data))
        else:  # pragma: no cover - defensive
            raise RuntimeFault(f"cannot lower {stmt!r}")

    def _comm_data(
        self, plan: TransferPlan, prim_name: str, kind: CallKind
    ) -> _CommData:
        key = (plan.desc.id, prim_name, kind)
        data = self._comm_data_cache.get(key)
        if data is not None:
            return data
        matrix = self.timing.matrix
        pc = matrix.prims[prim_name]
        data = _CommData(pc)
        if kind is CallKind.SR:
            data.cum_sw, data.total_sw, data.wire = _send_vectors(
                plan, pc, matrix
            )
        elif kind is CallKind.DN:
            if pc.sync is not SyncKind.RENDEZVOUS:
                data.recv_sw = _recv_vectors(plan, pc)
        elif kind is CallKind.DR:
            if pc.sync is not SyncKind.RENDEZVOUS:
                data.fixed_recv = _fixed_table(plan, "recv", pc.fixed)
        elif kind is CallKind.SV:
            data.fixed_send = _fixed_table(plan, "send", pc.fixed)
        self._comm_data_cache[key] = data
        return data


# ---------------------------------------------------------------------------
# the batched simulation driver
# ---------------------------------------------------------------------------


class _BatchSimulation:
    """TIMING-only batched mirror of ``executor._Simulation`` (duck-typed
    for :class:`_Lowerer`).

    When a :class:`BatchEvaluator` is passed as ``shared``, the
    variant-independent state — processor grid, problem layout, plan
    cache, and per-region element vectors — is borrowed from it instead
    of rebuilt; all of it is pure geometry, so sharing cannot change a
    single float of the result.
    """

    def __init__(
        self,
        program: ir.IRProgram,
        matrix: VariantMatrix,
        repeat_cap: Optional[int],
        shared: Optional["BatchEvaluator"] = None,
    ) -> None:
        self.program = program
        self.matrix = matrix
        self.machine = matrix.base
        self.repeat_cap = repeat_cap
        if shared is not None:
            self.grid = shared.grid
            self.layout = shared.layout
            self.plans = shared.plans
            self._elems_cache = shared._elems_cache
            self._static_count = shared.static_count
        else:
            rows, cols = self.machine.grid_shape
            self.grid = ProcessorGrid(rows, cols)
            domains = {name: dom for name, (dom, _) in program.arrays.items()}
            self.layout = ProblemLayout(self.grid, domains)
            fluff = {name: f for name, (_, f) in program.arrays.items()}
            self.layout.check_fluff_feasible(fluff)
            self.plans = PlanCache(self.layout, self.machine.nprocs)
            self._elems_cache: Dict[Tuple, np.ndarray] = {}
            self._static_count = static_comm_count(program)
        self.instrument = Instrumentation(self.machine.nprocs)
        self.timing = BatchTimingEngine(matrix, self.instrument)
        self.scalars: Dict[str, Union[int, float, bool]] = dict(
            program.config_values
        )
        for name in program.scalars:
            self.scalars[name] = 0.0
        self.scalar_eval = ScalarEvaluator(self.scalars, self._timing_reduce)

    def _timing_reduce(self, expr: ir.IRReduce) -> float:
        # same message as the scalar TIMING path, so warnings stay
        # bit-identical between batched and per-variant runs
        self.instrument.warn(
            "TIMING mode evaluates reductions as 0.0; control flow "
            "depending on reduced values is unreliable — run NUMERIC"
        )
        return 0.0

    def _elements(self, region) -> np.ndarray:
        key = (region.lows, region.highs)
        vec = self._elems_cache.get(key)
        if vec is None:
            vec = np.fromiter(
                (
                    region.intersect(self.layout.owned(region.rank, p)).size
                    for p in self.grid.ranks()
                ),
                dtype=np.float64,
                count=self.machine.nprocs,
            )
            self._elems_cache[key] = vec
        return vec

    def run(self) -> "BatchRun":
        lowerer = _BatchLowerer(self)
        schedule = CompiledSchedule(
            lowerer.lower_body(self.program.body), lowerer.runner
        )
        stats = schedule.execute()
        self.timing.assert_quiescent()
        scalars_out = {
            k: v for k, v in self.scalars.items() if k in self.program.scalars
        }
        return BatchRun(
            program_name=self.program.name,
            times=self.timing.elapsed(),
            clocks=self.timing.absolute_clocks(),
            static_comm_count=self._static_count,
            dynamic_comm_count=self.instrument.dynamic_comm_count,
            instrument=self.instrument,
            scalars=scalars_out,
            fastpath=stats,
        )


# ---------------------------------------------------------------------------
# incremental-append evaluation
# ---------------------------------------------------------------------------


class BatchEvaluator:
    """Incremental-append front-end over the batched TIMING simulator.

    Builds the variant-independent state of one ``(program, base
    machine)`` pair once — processor grid, problem layout (with fluff
    feasibility checked), plan cache, per-region element vectors, static
    comm count — then evaluates any number of variant batches against
    it.  Refinement drivers and calibration loops call
    :meth:`evaluate` once per round; only the per-variant cost matrices
    and the timing engine are rebuilt, so appending a handful of new
    variants costs a fraction of a cold :func:`simulate_many` call
    while every returned row stays bit-identical to one.
    """

    def __init__(
        self,
        program: ir.IRProgram,
        base: Machine,
        *,
        repeat_cap: Optional[int] = None,
    ) -> None:
        self.program = program
        self.base = base
        self.repeat_cap = repeat_cap
        rows, cols = base.grid_shape
        self.grid = ProcessorGrid(rows, cols)
        domains = {name: dom for name, (dom, _) in program.arrays.items()}
        self.layout = ProblemLayout(self.grid, domains)
        fluff = {name: f for name, (_, f) in program.arrays.items()}
        self.layout.check_fluff_feasible(fluff)
        self.plans = PlanCache(self.layout, base.nprocs)
        self._elems_cache: Dict[Tuple, np.ndarray] = {}
        self.static_count = static_comm_count(program)
        self.calls = 0
        self.variants_evaluated = 0

    def _check_base(self, other: Machine) -> None:
        base = self.base
        for attr in ("name", "nprocs", "grid_shape", "library"):
            mine, theirs = getattr(base, attr), getattr(other, attr)
            if mine != theirs:
                raise RuntimeFault(
                    f"variant batch targets {attr}={theirs!r} but this "
                    f"evaluator was built for {attr}={mine!r}"
                )

    def evaluate(
        self, variants: Union[VariantMatrix, Iterable[Machine]]
    ) -> BatchRun:
        """Run one batch of cost-only variants; returns the program's
        :class:`BatchRun` (``(V,)`` times in batch order)."""
        matrix = (
            variants
            if isinstance(variants, VariantMatrix)
            else pack_variants(variants)
        )
        self._check_base(matrix.base)
        run = _BatchSimulation(
            self.program, matrix, self.repeat_cap, shared=self
        ).run()
        self.calls += 1
        self.variants_evaluated += matrix.nvariants
        return run


# bounded identity-checked memo: refinement rounds and fit iterations
# re-enter simulate_many with the same program object many times in a
# row; keying on id() alone would go stale if the id were recycled, so
# each entry pins the program strongly and is verified by identity.
_EVALUATOR_CACHE_MAX = 32
_evaluators: "OrderedDict[Tuple, BatchEvaluator]" = OrderedDict()


def batch_evaluator(
    program: ir.IRProgram, base: Machine, *, repeat_cap: Optional[int] = None
) -> BatchEvaluator:
    """The process-wide :class:`BatchEvaluator` for ``(program, base,
    repeat_cap)``, building (and LRU-caching) it on first use."""
    key = (
        id(program),
        base.name,
        base.nprocs,
        base.grid_shape,
        base.library,
        repeat_cap,
    )
    ev = _evaluators.get(key)
    if ev is not None and ev.program is program:
        _evaluators.move_to_end(key)
        if obs.enabled():
            obs.add("sim.batch.evaluator_hits", 1)
        return ev
    ev = BatchEvaluator(program, base, repeat_cap=repeat_cap)
    _evaluators[key] = ev
    if len(_evaluators) > _EVALUATOR_CACHE_MAX:
        _evaluators.popitem(last=False)
    if obs.enabled():
        obs.add("sim.batch.evaluator_builds", 1)
    return ev


def clear_batch_evaluators() -> None:
    """Drop all cached :class:`BatchEvaluator` instances (tests)."""
    _evaluators.clear()


# ---------------------------------------------------------------------------
# results
# ---------------------------------------------------------------------------


@dataclass
class BatchRun:
    """One program's batched evaluation: per-variant times and the
    variant-independent instrumentation."""

    program_name: str
    #: (V,) simulated execution time per variant
    times: np.ndarray
    #: (V, P) absolute per-rank clocks per variant
    clocks: np.ndarray = field(repr=False)
    static_comm_count: int = 0
    dynamic_comm_count: int = 0
    instrument: Instrumentation = field(default=None, repr=False)
    scalars: Dict[str, float] = field(default_factory=dict)
    fastpath: Optional[FastPathStats] = None

    @property
    def warnings(self) -> List[str]:
        return self.instrument.warnings


@dataclass
class BatchResult:
    """Everything :func:`simulate_many` produced: a ``(B, V)`` time
    matrix over benchmarks x variants, plus per-program runs."""

    machine_name: str
    library: str
    nprocs: int
    variant_ids: Tuple[str, ...]
    benchmarks: Tuple[str, ...]
    #: (B, V) simulated execution times
    times: np.ndarray
    runs: Dict[str, BatchRun] = field(repr=False)

    @property
    def nvariants(self) -> int:
        return len(self.variant_ids)

    def run(self, benchmark: str) -> BatchRun:
        return self.runs[benchmark]

    def times_for(self, benchmark: str) -> np.ndarray:
        """(V,) times of one benchmark."""
        return self.times[self.benchmarks.index(benchmark)]

    def time(self, benchmark: str, variant: str) -> float:
        return float(
            self.times[
                self.benchmarks.index(benchmark),
                self.variant_ids.index(variant),
            ]
        )

    def as_rows(self) -> Tuple[List[str], List[List]]:
        headers = ["benchmark", "variant", "time"]
        rows = []
        for b, bench in enumerate(self.benchmarks):
            for v, vid in enumerate(self.variant_ids):
                rows.append([bench, vid, float(self.times[b, v])])
        return headers, rows

    def write_csv(self, path: Union[str, Path]) -> Path:
        """``benchmark,variant,time`` rows; times formatted ``%.6g`` so
        artifacts diff cleanly (full precision lives in the JSON)."""
        path = Path(path)
        headers, rows = self.as_rows()
        with path.open("w", newline="") as fh:
            writer = csv.writer(fh)
            writer.writerow(headers)
            for bench, vid, t in rows:
                writer.writerow([bench, vid, f"{t:.6g}"])
        return path

    def write_json(self, path: Union[str, Path]) -> Path:
        """Full-precision JSON: times, scalars, and warnings keyed by
        benchmark, variants in batch order."""
        path = Path(path)
        payload = {
            "schema": 1,
            "machine": self.machine_name,
            "library": self.library,
            "nprocs": self.nprocs,
            "variants": list(self.variant_ids),
            "benchmarks": list(self.benchmarks),
            "times": {
                bench: [float(t) for t in self.times[b]]
                for b, bench in enumerate(self.benchmarks)
            },
            "scalars": {
                bench: self.runs[bench].scalars for bench in self.benchmarks
            },
            "warnings": {
                bench: list(self.runs[bench].warnings)
                for bench in self.benchmarks
            },
        }
        path.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")
        return path


# ---------------------------------------------------------------------------
# entry point
# ---------------------------------------------------------------------------


def simulate_many(
    programs: Union[ir.IRProgram, Iterable[ir.IRProgram]],
    variants: Union[VariantMatrix, Iterable[Machine]],
    *,
    options: Optional[SimOptions] = None,
    variant_ids: Optional[Sequence[str]] = None,
) -> BatchResult:
    """Evaluate program(s) over a batch of cost-only machine variants.

    Parameters
    ----------
    programs:
        One optimized :class:`~repro.ir.nodes.IRProgram` or an iterable
        of them (each becomes a row of the result's time matrix).
    variants:
        The machine variants — cost-only siblings of one base machine
        (same name, nprocs, grid, library, binding, primitive
        structure); typically built with
        :func:`repro.machine.apply_overrides`.  A prebuilt
        :class:`~repro.machine.variants.VariantMatrix` (e.g. from the
        memoized :func:`repro.machine.pack_variant_specs`) is accepted
        as-is, skipping the packing pass.
    options:
        A :class:`~repro.runtime.options.SimOptions` (the *only* options
        spelling here — no bare keywords).  Must be TIMING mode without
        ``trace_rank``; ``fast=False`` is rejected (there is no batched
        interpreted walk — loop per variant with :func:`repro.simulate`
        instead).  ``repeat_cap`` applies as in :func:`repro.simulate`.
    variant_ids:
        Labels for the variant axis (default ``v0..vN-1``); sweeps pass
        the machine-spec variant ids here.

    Every row of the result is bit-identical to the scalar compiled
    fast path run of that variant.
    """
    opts = options if options is not None else SimOptions(mode=ExecutionMode.TIMING)
    if opts.mode is not ExecutionMode.TIMING:
        raise RuntimeFault(
            "simulate_many evaluates the batched TIMING cost model; "
            "NUMERIC data needs one simulate() per variant"
        )
    if opts.trace_rank is not None:
        raise RuntimeFault(
            "simulate_many cannot record a per-rank timeline; pass "
            "trace_rank to simulate() on a single variant"
        )
    if opts.fast is False:
        raise RuntimeFault(
            "simulate_many has no interpreted walk (fast=False); loop "
            "over simulate() for the interpreter"
        )
    if isinstance(programs, ir.IRProgram):
        programs = (programs,)
    programs = tuple(programs)
    if not programs:
        raise RuntimeFault("simulate_many needs at least one program")
    names = [p.name for p in programs]
    if len(set(names)) != len(names):
        raise RuntimeFault(f"duplicate program names in batch: {names}")

    matrix = (
        variants
        if isinstance(variants, VariantMatrix)
        else pack_variants(variants)
    )
    if variant_ids is None:
        ids = tuple(f"v{i}" for i in range(matrix.nvariants))
    else:
        ids = tuple(str(v) for v in variant_ids)
        if len(ids) != matrix.nvariants:
            raise RuntimeFault(
                f"{len(ids)} variant ids for {matrix.nvariants} variants"
            )

    base = matrix.base
    runs: Dict[str, BatchRun] = {}
    times = np.empty((len(programs), matrix.nvariants), dtype=np.float64)
    with obs.span(
        "simulate_many",
        machine=base.name,
        library=base.library,
        nprocs=base.nprocs,
        variants=matrix.nvariants,
        programs=len(programs),
    ):
        for b, program in enumerate(programs):
            run = batch_evaluator(
                program, base, repeat_cap=opts.repeat_cap
            ).evaluate(matrix)
            runs[program.name] = run
            times[b] = run.times
    if obs.enabled():
        _record_batch_metrics(matrix.nvariants, runs)
    return BatchResult(
        machine_name=base.name,
        library=base.library,
        nprocs=base.nprocs,
        variant_ids=ids,
        benchmarks=tuple(names),
        times=times,
        runs=runs,
    )


def _record_batch_metrics(nvariants: int, runs: Dict[str, BatchRun]) -> None:
    obs.add("sim.batch.runs", len(runs))
    obs.add("sim.batch.variants", nvariants * len(runs))
    for run in runs.values():
        obs.add("sim.batch.messages", run.instrument.total_messages)
        obs.add("sim.batch.bytes", run.instrument.total_bytes)
        if run.fastpath is not None:
            obs.add(
                "sim.batch.extrapolated_trips", run.fastpath.extrapolated_trips
            )
            obs.add("sim.batch.fallbacks", run.fastpath.fallbacks)
