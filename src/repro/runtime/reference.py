"""Sequential reference evaluator.

Executes the *communication-free* lowered IR on whole global arrays —
the semantics of the source program with no distribution at all.  Every
correctness test compares a distributed simulation against this oracle:
if an optimization pass removes or misplaces a transfer, the distributed
run reads stale fluff and diverges.

The evaluator intentionally shares no code with the distributed
interpreter beyond the IR definitions, so a bug in one cannot hide in
the other.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

import numpy as np

from repro.errors import RuntimeFault
from repro.ir import nodes as ir
from repro.lang.regions import Region

Number = Union[int, float, bool]


@dataclass
class ReferenceResult:
    """Global arrays and final scalars of a sequential run."""

    arrays: Dict[str, np.ndarray]
    origins: Dict[str, tuple]
    scalars: Dict[str, Number]
    warnings: List[str] = field(default_factory=list)

    def array(self, name: str) -> np.ndarray:
        return self.arrays[name]


class _Reference:
    def __init__(self, program: ir.IRProgram, repeat_cap: Optional[int]) -> None:
        self.program = program
        self.repeat_cap = repeat_cap
        self.arrays: Dict[str, np.ndarray] = {}
        self.origins: Dict[str, tuple] = {}
        self.warnings: List[str] = []
        for name, (domain, _fluff) in program.arrays.items():
            self.arrays[name] = np.zeros(domain.shape, dtype=np.float64)
            self.origins[name] = domain.lows
        self.scalars: Dict[str, Number] = dict(program.config_values)
        for name in program.scalars:
            self.scalars[name] = 0.0

    # ------------------------------------------------------------------
    def run(self) -> ReferenceResult:
        self._body(self.program.body)
        scalars_out = {
            k: v for k, v in self.scalars.items() if k in self.program.scalars
        }
        return ReferenceResult(
            arrays=self.arrays,
            origins=self.origins,
            scalars=scalars_out,
            warnings=self.warnings,
        )

    def _body(self, body) -> None:
        for stmt in body:
            if isinstance(stmt, ir.Block):
                for s in stmt.stmts:
                    if isinstance(s, ir.CommCall):
                        continue  # no distribution: communication is moot
                    if isinstance(s, ir.ArrayAssign):
                        self._array_assign(s)
                    else:
                        self._scalar_assign(s)
            elif isinstance(stmt, ir.ForLoop):
                lo = int(self._scalar(stmt.low))
                hi = int(self._scalar(stmt.high))
                step = int(self._scalar(stmt.step)) if stmt.step else 1
                if step == 0:
                    raise RuntimeFault(f"for {stmt.var}: zero step")
                stop = hi + (1 if step > 0 else -1)
                for v in range(lo, stop, step):
                    self.scalars[stmt.var] = v
                    self._body(stmt.body)
            elif isinstance(stmt, ir.RepeatLoop):
                cap = self.repeat_cap if self.repeat_cap is not None else stmt.max_trips
                trips = 0
                while True:
                    self._body(stmt.body)
                    trips += 1
                    if bool(self._scalar(stmt.cond)):
                        break
                    if trips >= cap:
                        self.warnings.append(
                            f"repeat loop capped at {cap} trips"
                        )
                        break
            elif isinstance(stmt, ir.IfStmt):
                taken = False
                for cond, arm in stmt.arms:
                    if bool(self._scalar(cond)):
                        self._body(arm)
                        taken = True
                        break
                if not taken:
                    self._body(stmt.orelse)
            else:  # pragma: no cover - defensive
                raise RuntimeFault(f"cannot execute {stmt!r}")

    # ------------------------------------------------------------------
    def _view(self, name: str, box: Region) -> np.ndarray:
        return self.arrays[name][box.slices_within(self.origins[name])]

    def _view_wrap(self, name: str, box: Region) -> np.ndarray:
        """Periodic read: indices fold back modulo the domain extent."""
        data = self.arrays[name]
        origin = self.origins[name]
        indices = [
            (np.arange(lo, hi + 1) - org) % extent
            for (lo, hi), org, extent in zip(
                box.bounds(), origin, data.shape
            )
        ]
        return data[np.ix_(*indices)]

    def _array_assign(self, stmt: ir.ArrayAssign) -> None:
        value = self._parallel(stmt.expr, stmt.region)
        dest = self._view(stmt.target, stmt.region)
        if isinstance(value, np.ndarray) and np.shares_memory(
            value, self.arrays[stmt.target]
        ):
            value = value.copy()
        dest[...] = value

    def _scalar_assign(self, stmt: ir.ScalarAssign) -> None:
        self.scalars[stmt.target] = self._scalar(stmt.expr)

    def _parallel(self, expr: ir.IRExpr, region: Region):
        if isinstance(expr, ir.IRConst):
            return float(expr.value) if not isinstance(expr.value, bool) else expr.value
        if isinstance(expr, ir.IRScalarRead):
            return self.scalars[expr.name]
        if isinstance(expr, ir.IRIndex):
            d = expr.dim - 1
            lo, hi = region.lows[d], region.highs[d]
            shape = [1] * region.rank
            shape[d] = hi - lo + 1
            return np.arange(lo, hi + 1, dtype=np.float64).reshape(shape)
        if isinstance(expr, ir.IRArrayRead):
            box = region if expr.direction is None else region.shifted(expr.direction)
            if expr.wrap:
                return self._view_wrap(expr.array, box)
            return self._view(expr.array, box)
        if isinstance(expr, ir.IRBin):
            a = self._parallel(expr.lhs, region)
            b = self._parallel(expr.rhs, region)
            return _apply_bin(expr.op, a, b)
        if isinstance(expr, ir.IRUn):
            v = self._parallel(expr.operand, region)
            return np.logical_not(v) if expr.op == "not" else -v
        if isinstance(expr, ir.IRIntrinsic):
            args = [self._parallel(a, region) for a in expr.args]
            return _apply_intrinsic(expr.func, args)
        raise RuntimeFault(f"cannot evaluate {expr!r}")

    def _scalar(self, expr: ir.IRExpr) -> Number:
        if isinstance(expr, ir.IRConst):
            return expr.value
        if isinstance(expr, ir.IRScalarRead):
            return self.scalars[expr.name]
        if isinstance(expr, ir.IRReduce):
            value = self._parallel(expr.operand, expr.region)
            if not isinstance(value, np.ndarray):
                if expr.op == "+":
                    return float(value) * expr.region.size
                if expr.op == "*":
                    return float(value) ** expr.region.size
                return float(value)
            op = {"+": np.sum, "*": np.prod, "max": np.max, "min": np.min}[expr.op]
            return float(op(value))
        if isinstance(expr, ir.IRBin):
            a, b = self._scalar(expr.lhs), self._scalar(expr.rhs)
            if expr.op == "/" and isinstance(a, int) and isinstance(b, int):
                return a // b
            return _apply_bin(expr.op, a, b)
        if isinstance(expr, ir.IRUn):
            v = self._scalar(expr.operand)
            return (not v) if expr.op == "not" else -v
        if isinstance(expr, ir.IRIntrinsic):
            args = [self._scalar(a) for a in expr.args]
            out = _apply_intrinsic(expr.func, args)
            return float(out) if isinstance(out, np.generic) else out
        raise RuntimeFault(f"cannot evaluate {expr!r}")


_BIN = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": lambda a, b: a / b,
    "^": lambda a, b: a**b,
    "=": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
    "and": lambda a, b: np.logical_and(a, b),
    "or": lambda a, b: np.logical_or(a, b),
}

_FUNCS = {
    "abs": np.abs,
    "sqrt": np.sqrt,
    "exp": np.exp,
    "ln": np.log,
    "log": np.log,
    "sin": np.sin,
    "cos": np.cos,
    "tanh": np.tanh,
    "floor": np.floor,
    "ceil": np.ceil,
    "sign": np.sign,
    "min": np.minimum,
    "max": np.maximum,
    "pow": np.power,
}


def _apply_bin(op, a, b):
    return _BIN[op](a, b)


def _apply_intrinsic(func, args):
    return _FUNCS[func](*args)


def reference_run(
    program: ir.IRProgram, repeat_cap: Optional[int] = None
) -> ReferenceResult:
    """Execute ``program`` sequentially on global arrays.

    Accepts lowered or optimized programs (communication calls are
    skipped — a single address space needs none)."""
    return _Reference(program, repeat_cap).run()
