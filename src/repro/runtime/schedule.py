"""The compiled TIMING fast path.

:func:`compile_schedule` lowers an ``IRProgram`` body *once* into a flat
**timing program** — a sequence of primitive ops with every invariant
precomputed:

``CHARGE_ARRAY``
    the per-rank cost vector of a whole-array statement (``np.where``
    over the statement's element vector, hoisted out of the loop);
``CHARGE_SCALAR``
    the replicated scalar cost (one float);
``REDUCE``
    the partial-combine vector and tree time of a collective;
``SR`` / ``DN`` / ``DR`` / ``SV``
    the resolved :class:`~repro.runtime.transfers.TransferPlan`,
    primitive, and warmed ``prim_vectors`` cost vectors of an IRONMAN
    call;
loop / branch markers
    structured ops that re-evaluate only what is genuinely dynamic
    (bounds, conditions, scalar assignments — compiled to closures).

The dispatch loop then mutates the clock vector with NumPy ops and no IR
traversal, `isinstance` dispatch, or dict lookups per statement.

Steady-state extrapolation
--------------------------
Counted loops whose bodies never read or write the loop variable are
monitored: after each iteration the engine rebases the clock offsets
(:meth:`~repro.runtime.timing.TimingEngine.loop_rebase`) and snapshots a
bitwise signature of the dynamic state — clock offsets, in-flight
arrival and DR-flag vectors, and the scalar environment minus the loop
variable.  Because the per-iteration map is deterministic and (by the
eligibility check) independent of the loop variable, two consecutive
identical signatures prove the loop has entered an exact fixed point:
every remaining trip would repeat the last one bitwise.  The remaining
``k`` trips are then applied in closed form — integer counters advance
by ``k * delta``, and the recorded epoch-advance pattern is replayed
through the same run-length-coalescing fold the stepping path uses, so
the materialized absolute clocks are *bit-identical* to stepping.
``repeat`` loops get the dual treatment: if the full state repeats and
the condition held false twice, the loop can never converge, so it jumps
straight to its trip cap (with the same warning the walk records).

When the invariants don't hold — the signature keeps changing, the body
touches the loop variable, or the loop is too short to profit — the loop
simply steps through the compiled ops (``fallbacks`` counts the loops
that stepped).  Exactness contract: clocks, dynamic counts, message
counts, volumes, warnings, and final scalars are identical to the
interpreted walk.  The per-rank *time breakdown* vectors
(compute/comm-sw/wait) are the one exception under extrapolation: they
are scaled by ``k`` in one multiply, which may differ from repeated
addition in the last ulps.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.errors import RuntimeFault
from repro.ir import nodes as ir
from repro.ironman.calls import CallKind
from repro.runtime.interp import _BIN_OPS, _INTRINSICS

#: a counted loop needs two probe iterations plus at least one skippable
#: trip before monitoring can pay off
_MIN_MONITOR_TRIPS = 3


@dataclass
class FastPathStats:
    """What the compiled path did on one run."""

    #: trips skipped via closed-form steady-state application
    extrapolated_trips: int = 0
    #: loop executions that extrapolated
    extrapolated_loops: int = 0
    #: eligible-length loop executions that stepped to completion
    fallbacks: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "extrapolated_trips": int(self.extrapolated_trips),
            "extrapolated_loops": int(self.extrapolated_loops),
            "fallbacks": int(self.fallbacks),
        }


# ---------------------------------------------------------------------------
# scalar expression compilation
# ---------------------------------------------------------------------------


def _compile_scalar(
    expr: ir.IRExpr,
    scalars: Dict[str, object],
    reduce_hook: Callable[[ir.IRReduce], float],
) -> Callable[[], object]:
    """Compile a replicated scalar expression to a zero-arg closure.

    Mirrors :meth:`repro.runtime.interp.ScalarEvaluator.eval` branch for
    branch (integer-division truncation, unbound-scalar faults, numpy
    scalar narrowing) so results are identical."""
    if isinstance(expr, ir.IRConst):
        value = expr.value
        return lambda: value
    if isinstance(expr, ir.IRScalarRead):
        name = expr.name

        def read():
            try:
                return scalars[name]
            except KeyError:
                raise RuntimeFault(f"unbound scalar {name!r}") from None

        return read
    if isinstance(expr, ir.IRReduce):
        return partial(reduce_hook, expr)
    if isinstance(expr, ir.IRBin):
        lhs = _compile_scalar(expr.lhs, scalars, reduce_hook)
        rhs = _compile_scalar(expr.rhs, scalars, reduce_hook)
        if expr.op == "/":

            def div():
                a, b = lhs(), rhs()
                if isinstance(a, int) and isinstance(b, int):
                    # ZL integer division truncates
                    return a // b
                return a / b

            return div
        op = _BIN_OPS[expr.op]
        return lambda: op(lhs(), rhs())
    if isinstance(expr, ir.IRUn):
        operand = _compile_scalar(expr.operand, scalars, reduce_hook)
        if expr.op == "not":
            return lambda: not operand()
        return lambda: -operand()
    if isinstance(expr, ir.IRIntrinsic):
        arg_fns = [_compile_scalar(a, scalars, reduce_hook) for a in expr.args]
        func = _INTRINSICS[expr.func]

        def call():
            out = func(*[fn() for fn in arg_fns])
            return float(out) if isinstance(out, np.generic) else out

        return call
    raise RuntimeFault(f"cannot evaluate {expr!r} in scalar context")


def _expr_reads(expr: ir.IRExpr, var: str) -> bool:
    return any(
        isinstance(node, ir.IRScalarRead) and node.name == var
        for node in ir.walk_expr(expr)
    )


def _body_touches(body: List[ir.IRStmt], var: str) -> bool:
    """Whether any scalar-evaluated expression in ``body`` reads ``var``
    or any assignment (including a nested loop) writes it.  Array-assign
    right-hand sides don't count: TIMING never evaluates them."""
    for stmt in body:
        if isinstance(stmt, ir.Block):
            for s in stmt.stmts:
                if isinstance(s, ir.ScalarAssign) and (
                    s.target == var or _expr_reads(s.expr, var)
                ):
                    return True
        elif isinstance(stmt, ir.ForLoop):
            if stmt.var == var:
                return True
            bounds = [stmt.low, stmt.high]
            if stmt.step is not None:
                bounds.append(stmt.step)
            if any(_expr_reads(e, var) for e in bounds):
                return True
            if _body_touches(stmt.body, var):
                return True
        elif isinstance(stmt, ir.RepeatLoop):
            if _expr_reads(stmt.cond, var) or _body_touches(stmt.body, var):
                return True
        elif isinstance(stmt, ir.IfStmt):
            for cond, arm in stmt.arms:
                if _expr_reads(cond, var) or _body_touches(arm, var):
                    return True
            if _body_touches(stmt.orelse, var):
                return True
    return False


# ---------------------------------------------------------------------------
# the runner: shared dynamic state + steady-state machinery
# ---------------------------------------------------------------------------


class _Snapshot:
    __slots__ = (
        "mark",
        "dynamic",
        "messages",
        "nbytes",
        "calls",
        "reductions",
        "compute",
        "comm_sw",
        "wait",
    )

    def __init__(self, runner: "_Runner") -> None:
        inst = runner.instrument
        self.mark = len(runner.timing._epoch_log)
        self.dynamic = inst.dynamic_comms.copy()
        self.messages = inst.messages.copy()
        self.nbytes = inst.bytes_moved.copy()
        self.calls = dict(inst.call_counts)
        self.reductions = inst.reductions
        self.compute = inst.compute_time.copy()
        self.comm_sw = inst.comm_sw_time.copy()
        self.wait = inst.wait_time.copy()


class _Runner:
    """Dynamic state shared by every op of one compiled run."""

    def __init__(self, timing, instrument, scalars, repeat_cap) -> None:
        self.timing = timing
        self.instrument = instrument
        self.scalars = scalars
        self.repeat_cap = repeat_cap
        self.stats = FastPathStats()
        #: how many monitored loops are currently executing (an
        #: extrapolating loop must keep logging epoch advances when an
        #: outer monitor is recording its pattern)
        self.monitor_depth = 0

    # -- steady-state machinery -----------------------------------------
    def signature(self, exclude: Optional[str]) -> Tuple:
        """Bitwise snapshot of the dynamic state after a rebased
        iteration: clock offsets, in-flight arrivals, DR flags, and the
        scalar environment (minus the loop variable — the eligibility
        check guarantees the body never looks at it)."""
        t = self.timing
        inflight = tuple(
            (key, t._inflight[key].tobytes()) for key in sorted(t._inflight)
        )
        dr = tuple(
            (key, t._dr_times[key].tobytes()) for key in sorted(t._dr_times)
        )
        env = tuple(
            (key, repr(value))
            for key, value in sorted(self.scalars.items())
            if key != exclude
        )
        return (t.clock.tobytes(), inflight, dr, env)

    def _replay_pattern(self, pattern: List, k: int) -> None:
        """Replay ``k`` copies of a recorded epoch-advance pattern, one
        advance at a time (logs when the engine's log is active)."""
        timing = self.timing
        for _ in range(k):
            for c in pattern:
                timing.advance_epoch(c)

    def _replay_pattern_bulk(self, pattern: List, k: int) -> None:
        """Replay ``k`` copies with the log off; a uniform pattern
        collapses into one coalesced advance (bit-identical to stepping
        thanks to the engine's run-length epoch fold)."""
        first = pattern[0]
        if all(c == first for c in pattern):
            self.timing.advance_epoch(first, k * len(pattern))
        else:
            self._replay_pattern(pattern, k)

    def extrapolate(self, k: int, snap: _Snapshot) -> None:
        """Apply ``k`` more copies of the iteration that ran since
        ``snap`` in closed form."""
        timing = self.timing
        inst = self.instrument
        pattern = timing._epoch_log[snap.mark :]
        if pattern:
            if self.monitor_depth >= 2:
                # an enclosing monitor is recording: log every advance
                self._replay_pattern(pattern, k)
            else:
                saved = timing._epoch_log
                timing._epoch_log = None
                self._replay_pattern_bulk(pattern, k)
                timing._epoch_log = saved
        for current, ref in (
            (inst.dynamic_comms, snap.dynamic),
            (inst.messages, snap.messages),
            (inst.bytes_moved, snap.nbytes),
            (inst.compute_time, snap.compute),
            (inst.comm_sw_time, snap.comm_sw),
            (inst.wait_time, snap.wait),
        ):
            current += k * (current - ref)
        for key, now in list(inst.call_counts.items()):
            delta = now - snap.calls.get(key, 0)
            if delta:
                inst.call_counts[key] = now + k * delta
        inst.reductions += k * (inst.reductions - snap.reductions)


# ---------------------------------------------------------------------------
# structured ops
# ---------------------------------------------------------------------------


class _IfOp:
    __slots__ = ("arms", "orelse")

    def __init__(self, arms, orelse) -> None:
        self.arms = arms
        self.orelse = orelse

    def __call__(self) -> None:
        for cond, body in self.arms:
            if bool(cond()):
                for op in body:
                    op()
                return
        for op in self.orelse:
            op()


class _ForOp:
    __slots__ = ("runner", "var", "low", "high", "step", "body", "eligible")

    def __init__(self, runner, var, low, high, step, body, eligible) -> None:
        self.runner = runner
        self.var = var
        self.low = low
        self.high = high
        self.step = step
        self.body = body
        self.eligible = eligible

    def __call__(self) -> None:
        lo = int(self.low())
        hi = int(self.high())
        step = int(self.step()) if self.step is not None else 1
        if step == 0:
            raise RuntimeFault(f"for {self.var}: zero step")
        stop = hi + (1 if step > 0 else -1)
        values = range(lo, stop, step)
        n = len(values)
        if n == 0:
            return
        runner = self.runner
        timing = runner.timing
        scalars = runner.scalars
        body = self.body
        var = self.var
        monitor = self.eligible and n >= _MIN_MONITOR_TRIPS
        if not monitor:
            for value in values:
                scalars[var] = value
                for op in body:
                    op()
                timing.loop_rebase()
            if n >= _MIN_MONITOR_TRIPS:
                runner.stats.fallbacks += 1
            return

        runner.monitor_depth += 1
        try:
            # two-tier detection: a cheap clock-bytes probe every
            # iteration; the full signature only when the probe repeats.
            # Once two consecutive full signatures match, one more
            # *template* iteration runs under a snapshot and the rest is
            # applied in closed form — so the snapshot cost is paid once
            # per fired loop, not once per iteration.
            prev_clock = None
            pending_sig = None
            i = 0
            while i < n:
                scalars[var] = values[i]
                for op in body:
                    op()
                timing.loop_rebase()
                i += 1
                if n - i < 2:
                    continue
                clock_bytes = timing.clock.tobytes()
                if clock_bytes == prev_clock:
                    sig = runner.signature(exclude=var)
                    if sig == pending_sig:
                        snap = _Snapshot(runner)
                        scalars[var] = values[i]
                        for op in body:
                            op()
                        timing.loop_rebase()
                        i += 1
                        k = n - i
                        runner.extrapolate(k, snap)
                        runner.stats.extrapolated_trips += k
                        runner.stats.extrapolated_loops += 1
                        scalars[var] = values[-1]
                        return
                    pending_sig = sig
                else:
                    pending_sig = None
                prev_clock = clock_bytes
            runner.stats.fallbacks += 1
        finally:
            runner.monitor_depth -= 1


class _RepeatOp:
    __slots__ = ("runner", "body", "cond", "cap")

    def __init__(self, runner, body, cond, cap) -> None:
        self.runner = runner
        self.body = body
        self.cond = cond
        self.cap = cap

    def __call__(self) -> None:
        runner = self.runner
        timing = runner.timing
        cap = self.cap
        cond = self.cond
        body = self.body
        capped_msg = f"repeat loop capped at {cap} trips without converging"
        runner.monitor_depth += 1
        try:
            trips = 0
            prev_clock = None
            pending_sig = None
            while True:
                for op in body:
                    op()
                timing.loop_rebase()
                trips += 1
                if bool(cond()):
                    break
                if trips >= cap:
                    runner.instrument.warn(capped_msg)
                    break
                clock_bytes = timing.clock.tobytes()
                if clock_bytes == prev_clock:
                    # full state (including every scalar) repeated and
                    # the condition held false both times: the loop can
                    # never converge — run one template iteration, then
                    # jump to the cap in closed form
                    sig = runner.signature(exclude=None)
                    if sig == pending_sig:
                        snap = _Snapshot(runner)
                        for op in body:
                            op()
                        timing.loop_rebase()
                        trips += 1
                        if bool(cond()):  # pragma: no cover - determinism
                            break
                        if trips >= cap:
                            runner.instrument.warn(capped_msg)
                            break
                        k = cap - trips
                        runner.extrapolate(k, snap)
                        runner.stats.extrapolated_trips += k
                        runner.stats.extrapolated_loops += 1
                        runner.instrument.warn(capped_msg)
                        break
                    pending_sig = sig
                else:
                    pending_sig = None
                prev_clock = clock_bytes
        finally:
            runner.monitor_depth -= 1


# ---------------------------------------------------------------------------
# lowering
# ---------------------------------------------------------------------------


class _Lowerer:
    """One-time translation of an IR body into flat op lists.

    ``sim`` is the owning :class:`repro.runtime.executor._Simulation`
    (duck-typed: needs ``timing``, ``instrument``, ``scalars``,
    ``machine``, ``plans``, ``_elements``, ``scalar_eval``,
    ``repeat_cap``)."""

    def __init__(self, sim) -> None:
        self.sim = sim
        self.timing = sim.timing
        self.machine = sim.machine
        self.scalars = sim.scalars
        self.reduce_hook = sim.scalar_eval.reduce_hook
        self.runner = self._make_runner(sim)
        self._comm_dispatch = {
            CallKind.SR: self.timing._do_send,
            CallKind.DN: self.timing._do_complete,
            CallKind.DR: self.timing._do_pre,
            CallKind.SV: self.timing._do_volatile,
        }

    def _make_runner(self, sim) -> _Runner:
        """Hook for subclasses that pair the lowerer with a different
        runner (the batched evaluator's `_BatchRunner`)."""
        return _Runner(sim.timing, sim.instrument, sim.scalars, sim.repeat_cap)

    def lower_body(self, body: List[ir.IRStmt]) -> List[Callable[[], None]]:
        ops: List[Callable[[], None]] = []
        for stmt in body:
            if isinstance(stmt, ir.Block):
                for s in stmt.stmts:
                    self._lower_simple(s, ops)
            elif isinstance(stmt, ir.ForLoop):
                ops.append(self._lower_for(stmt))
            elif isinstance(stmt, ir.RepeatLoop):
                ops.append(self._lower_repeat(stmt))
            elif isinstance(stmt, ir.IfStmt):
                ops.append(self._lower_if(stmt))
            else:  # pragma: no cover - defensive
                raise RuntimeFault(f"cannot lower {stmt!r}")
        return ops

    # -- simple statements ----------------------------------------------
    def _lower_simple(self, stmt: ir.SimpleStmt, ops: List) -> None:
        timing = self.timing
        if isinstance(stmt, ir.ArrayAssign):
            cost = timing.array_cost(stmt.flops, self.sim._elements(stmt.region))
            ops.append(partial(timing.charge_array_vec, cost, stmt.target))
        elif isinstance(stmt, ir.ScalarAssign):
            tree_time = self.machine.reduction.time(self.machine.nprocs)
            for node in ir.walk_expr(stmt.expr):
                if isinstance(node, ir.IRReduce):
                    part = timing.reduction_cost(
                        ir.expr_flops(node.operand),
                        self.sim._elements(node.region),
                    )
                    ops.append(
                        partial(timing.charge_reduction_vec, part, tree_time)
                    )
            ops.append(
                partial(
                    timing.charge_scalar_cost,
                    timing.scalar_cost(ir.expr_flops(stmt.expr)),
                )
            )
            value = _compile_scalar(stmt.expr, self.scalars, self.reduce_hook)
            ops.append(partial(self._assign, stmt.target, value))
        elif isinstance(stmt, ir.CommCall):
            plan = self.sim.plans.plan(stmt.desc)
            if plan.message_count == 0:
                return  # nothing to move on this machine
            prim_name = self.machine.binding.primitive(stmt.kind)
            prim = self.machine.primitive(prim_name)
            if stmt.kind is CallKind.SR:
                # warm the per-plan primitive cost vectors
                plan.prim_vectors(prim, self.machine.network)
            ops.append(
                partial(self._comm_dispatch[stmt.kind], plan, prim, prim_name)
            )
        else:  # pragma: no cover - defensive
            raise RuntimeFault(f"cannot lower {stmt!r}")

    def _assign(self, target: str, value: Callable[[], object]) -> None:
        self.scalars[target] = value()

    # -- structured statements ------------------------------------------
    def _lower_for(self, stmt: ir.ForLoop) -> _ForOp:
        compile_bound = partial(
            _compile_scalar, scalars=self.scalars, reduce_hook=self.reduce_hook
        )
        return _ForOp(
            self.runner,
            stmt.var,
            compile_bound(stmt.low),
            compile_bound(stmt.high),
            compile_bound(stmt.step) if stmt.step is not None else None,
            self.lower_body(stmt.body),
            eligible=not _body_touches(stmt.body, stmt.var),
        )

    def _lower_repeat(self, stmt: ir.RepeatLoop) -> _RepeatOp:
        cap = (
            self.sim.repeat_cap
            if self.sim.repeat_cap is not None
            else stmt.max_trips
        )
        return _RepeatOp(
            self.runner,
            self.lower_body(stmt.body),
            _compile_scalar(stmt.cond, self.scalars, self.reduce_hook),
            cap,
        )

    def _lower_if(self, stmt: ir.IfStmt) -> _IfOp:
        arms = [
            (
                _compile_scalar(cond, self.scalars, self.reduce_hook),
                self.lower_body(body),
            )
            for cond, body in stmt.arms
        ]
        return _IfOp(arms, self.lower_body(stmt.orelse))


@dataclass
class CompiledSchedule:
    """A lowered timing program, ready to dispatch."""

    ops: List[Callable[[], None]]
    runner: _Runner

    def execute(self) -> FastPathStats:
        self.runner.timing._epoch_log = []
        try:
            for op in self.ops:
                op()
        finally:
            self.runner.timing._epoch_log = None
        return self.runner.stats


def compile_schedule(sim) -> CompiledSchedule:
    """Lower ``sim``'s program body into a flat timing program."""
    lowerer = _Lowerer(sim)
    return CompiledSchedule(lowerer.lower_body(sim.program.body), lowerer.runner)
