"""Simulation options: the execution mode and the run-shaping knobs.

:class:`SimOptions` is the single options surface shared by
:func:`repro.simulate` and :func:`repro.simulate_many`.  ``simulate``
still accepts the historical bare keyword arguments (``repeat_cap``,
``trace_rank``, ``fast``) behind a one-release deprecation shim;
``simulate_many`` accepts *only* an options object.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Union

__all__ = ["ExecutionMode", "SimOptions"]


class ExecutionMode(enum.Enum):
    NUMERIC = "numeric"
    TIMING = "timing"


@dataclass(frozen=True)
class SimOptions:
    """How a simulation runs, independent of *what* runs.

    Attributes
    ----------
    mode:
        NUMERIC (data + time) or TIMING (time and counts only); a mode
        string (``"timing"``) coerces.
    repeat_cap:
        Override for every ``repeat`` loop's trip cap.
    trace_rank:
        Record the full event timeline of one processor (interpreted
        walk only; see :func:`repro.simulate`).
    fast:
        Compiled TIMING fast-path selection: ``None`` auto-selects,
        ``False`` forces the interpreted walk, ``True`` demands the
        compiled schedule.
    """

    mode: ExecutionMode = ExecutionMode.NUMERIC
    repeat_cap: Optional[int] = None
    trace_rank: Optional[int] = None
    fast: Optional[bool] = None

    def __post_init__(self) -> None:
        if not isinstance(self.mode, ExecutionMode):
            object.__setattr__(self, "mode", ExecutionMode(self.mode))

    @classmethod
    def timing(
        cls,
        *,
        repeat_cap: Optional[int] = None,
        trace_rank: Optional[int] = None,
        fast: Optional[bool] = None,
    ) -> "SimOptions":
        return cls(
            mode=ExecutionMode.TIMING,
            repeat_cap=repeat_cap,
            trace_rank=trace_rank,
            fast=fast,
        )

    @classmethod
    def numeric(
        cls,
        *,
        repeat_cap: Optional[int] = None,
        trace_rank: Optional[int] = None,
        fast: Optional[bool] = None,
    ) -> "SimOptions":
        return cls(
            mode=ExecutionMode.NUMERIC,
            repeat_cap=repeat_cap,
            trace_rank=trace_rank,
            fast=fast,
        )


ModeLike = Union[ExecutionMode, str]
