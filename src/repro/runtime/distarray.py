"""Distributed arrays with fluff (ghost) regions.

Each processor holds a local buffer covering its owned block, padded by
the array's fluff width on each side of every *distributed* dimension.
Non-distributed dimensions (e.g. dim 2 of a rank-3 array) span the full
domain on every processor, so shifts along them never leave the buffer.

The buffer's element ``[0, 0, ...]`` corresponds to global index
``origin``; :meth:`LocalBlock.view` converts a global-coordinate
:class:`~repro.lang.Region` into a NumPy view.  Fluff cells hold data
copied from neighbours by transfers — reading fluff that was never (or
stale-ly) filled yields wrong numerics, which is exactly how optimizer
bugs are surfaced by the correctness tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from repro.errors import RuntimeFault
from repro.lang.regions import Region
from repro.runtime.layout import ProblemLayout


@dataclass
class LocalBlock:
    """One processor's piece of one array."""

    array: str
    owned: Region  # global coordinates, possibly empty
    origin: Tuple[int, ...]  # global index of buffer element [0,...,0]
    data: np.ndarray

    def view(self, box: Region) -> np.ndarray:
        """NumPy view of a global-coordinate box (must lie in-buffer)."""
        slices = []
        for (lo, hi), org, extent in zip(
            box.bounds(), self.origin, self.data.shape
        ):
            a, b = lo - org, hi - org + 1
            if a < 0 or b > extent:
                raise RuntimeFault(
                    f"box {box} of array {self.array!r} escapes the local "
                    f"buffer (origin {self.origin}, shape {self.data.shape})"
                    " — fluff width too small?"
                )
            slices.append(slice(a, b))
        return self.data[tuple(slices)]


class DistArray:
    """All processors' blocks of one array."""

    def __init__(
        self,
        name: str,
        domain: Region,
        fluff: Tuple[int, ...],
        layout: ProblemLayout,
        dtype=np.float64,
    ) -> None:
        self.name = name
        self.domain = domain
        self.fluff = fluff
        self.layout = layout
        self.dtype = dtype
        dist_dims = set(layout.distributed_dims(domain.rank))
        self.blocks: Dict[int, LocalBlock] = {}
        for proc in layout.grid.ranks():
            owned_class = layout.owned(domain.rank, proc)
            owned = owned_class.intersect(domain)
            origin = []
            shape = []
            for d in range(domain.rank):
                if d in dist_dims:
                    lo, hi = owned.lows[d], owned.highs[d]
                    pad = fluff[d]
                    origin.append(lo - pad)
                    shape.append(max(0, hi - lo + 1) + 2 * pad if hi >= lo else 0)
                else:
                    origin.append(domain.lows[d])
                    shape.append(domain.highs[d] - domain.lows[d] + 1)
            if owned.is_empty:
                shape = [0] * domain.rank
            self.blocks[proc] = LocalBlock(
                array=name,
                owned=owned,
                origin=tuple(origin),
                data=np.zeros(tuple(shape), dtype=dtype),
            )

    def block(self, proc: int) -> LocalBlock:
        return self.blocks[proc]

    def gather(self) -> np.ndarray:
        """Assemble the global array (owned cells only) — the shape is the
        domain's shape and the element ``[0, ...]`` is ``domain.lows``."""
        out = np.zeros(self.domain.shape, dtype=self.dtype)
        for block in self.blocks.values():
            if block.owned.is_empty:
                continue
            sl = block.owned.slices_within(self.domain.lows)
            out[sl] = block.view(block.owned)
        return out

    def scatter(self, values: np.ndarray) -> None:
        """Distribute a global array into the owned cells of every block
        (fluff left untouched) — used to set up test fixtures."""
        if tuple(values.shape) != self.domain.shape:
            raise RuntimeFault(
                f"scatter shape {values.shape} != domain shape "
                f"{self.domain.shape} for array {self.name!r}"
            )
        for block in self.blocks.values():
            if block.owned.is_empty:
                continue
            sl = block.owned.slices_within(self.domain.lows)
            block.view(block.owned)[...] = values[sl]
