"""The per-rank timing engine.

SPMD control flow is identical on every rank (scalar state is
replicated), so the simulator advances all ranks through the same
statement sequence and keeps a *clock vector* — one float per rank.  The
interesting dynamics live entirely in the communication calls:

``SR``
    Each sender is charged the send primitive's software cost per
    outgoing message (sequentially); each message's arrival time at its
    receiver is ``sender-clock-after-injection + latency + bytes/BW``.
    Arrivals are stored until DN.

``DN``
    Each receiver is charged the receive cost per incoming message and
    waits for the latest arrival: ``clock = max(clock, arrival) + sw``.
    This is where pipelining pays off — the further SR ran ahead of DN,
    the more of the wire time has already elapsed.

``DR`` / ``SV``
    Charged per the bound primitive; ``synch`` (T3D SHMEM) performs a
    heavyweight pairwise rendezvous that pulls each participant up to the
    latest of its partners' clocks — the prototype-limitation behaviour
    that hurts inherently sequential phases in the paper.

Reductions synchronize all ranks (combine + broadcast tree).

Clock representation
--------------------
The engine keeps per-rank clocks as **offsets from a shared epoch**.  At
the end of every loop iteration the executor calls :meth:`loop_rebase`,
which subtracts the minimum offset from the clock vector (and every
stored arrival/flag vector) and folds it into the epoch.  The epoch is
stored run-length-encoded (``prefix + c * n`` for the current run of
identical advances), so that stepping a loop N times and replaying one
recorded advance pattern N times fold the epoch through the *identical*
float operations.  This is what makes the compiled fast path's
steady-state extrapolation (:mod:`repro.runtime.schedule`) bit-exact:
once an iteration's rebased state repeats bitwise, every later iteration
advances the epoch by the same run-length-coalesced amounts, and
absolute clocks are always materialized as ``epoch + offset`` in both
paths.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.errors import RuntimeFault
from repro.ironman.calls import CallKind
from repro.machine.params import Machine, SyncKind
from repro.runtime.instrument import Instrumentation
from repro.runtime.transfers import TransferPlan


@dataclass(frozen=True)
class TraceEvent:
    """One interval on a traced processor's timeline.

    ``kind`` is one of ``compute``, ``send``, ``recv``, ``wait``,
    ``synch``, ``reduce``; intervals of a single rank never overlap and
    cover every nonzero clock advance."""

    start: float
    end: float
    kind: str
    label: str = ""

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class TimingEngine:
    machine: Machine
    instrument: Instrumentation
    #: rank whose timeline is recorded (None: tracing off)
    trace_rank: Optional[int] = None
    trace: List["TraceEvent"] = field(default_factory=list)
    #: per-rank clock *offsets* from the epoch (absolute = epoch + offset)
    clock: np.ndarray = field(init=False)
    #: desc id -> per-rank arrival times of the in-flight execution
    _inflight: Dict[int, np.ndarray] = field(init=False, default_factory=dict)
    #: desc id -> per-rank destination-ready (DR flag) times
    _dr_times: Dict[int, np.ndarray] = field(init=False, default_factory=dict)
    #: run-length-encoded epoch: value = prefix + epoch_c * epoch_n
    _epoch_prefix: float = field(init=False, default=0.0)
    _epoch_c: float = field(init=False, default=0.0)
    _epoch_n: int = field(init=False, default=0)
    _epoch_val: float = field(init=False, default=0.0)
    #: advance log for the fast path's steady-state monitor (None: off)
    _epoch_log: Optional[List[float]] = field(init=False, default=None)

    def __post_init__(self) -> None:
        self.clock = np.zeros(self.machine.nprocs, dtype=np.float64)

    def _record(self, kind: str, start: float, end: float, label: str = "") -> None:
        if end > start:
            self.trace.append(TraceEvent(start, end, kind, label))

    # ------------------------------------------------------------------
    # epoch
    # ------------------------------------------------------------------
    def advance_epoch(self, c: float, n: int = 1) -> None:
        """Fold ``n`` loop-rebase advances of ``c`` seconds into the
        epoch.  Equal consecutive advances coalesce into one run, so the
        materialized value is ``fl(prefix + c * count)`` regardless of
        whether the run was built one advance at a time (stepping) or in
        bulk (extrapolation replay)."""
        if c == self._epoch_c and self._epoch_n > 0:
            self._epoch_n += n
        else:
            self._epoch_prefix = self._epoch_prefix + self._epoch_c * self._epoch_n
            self._epoch_c = c
            self._epoch_n = n
        self._epoch_val = self._epoch_prefix + self._epoch_c * self._epoch_n
        if self._epoch_log is not None:
            self._epoch_log.extend([c] * n)

    def loop_rebase(self) -> None:
        """Rebase offsets at a loop-iteration boundary: subtract the
        minimum offset from every per-rank time and advance the epoch by
        it.  A no-op when some rank is still at the epoch."""
        c = self.clock.min()
        if c <= 0.0:
            return
        c = float(c)
        self.clock -= c
        for arr in self._inflight.values():
            arr -= c
        for arr in self._dr_times.values():
            arr -= c
        self.advance_epoch(c)

    @property
    def epoch(self) -> float:
        return self._epoch_val

    def absolute_clocks(self) -> np.ndarray:
        """Materialized per-rank absolute times (``epoch + offset``)."""
        return self._epoch_val + self.clock

    # ------------------------------------------------------------------
    # compute
    # ------------------------------------------------------------------
    def array_cost(self, flops: int, elements: np.ndarray) -> np.ndarray:
        """Per-rank cost vector of a whole-array statement (idle ranks
        pay nothing).  Pure function of invariants — the fast path
        precomputes it once per statement."""
        comp = self.machine.compute
        return np.where(
            elements > 0,
            comp.loop_overhead + flops * elements * comp.flop_time,
            0.0,
        )

    def charge_array_stmt(
        self, flops: int, elements: np.ndarray, label: str = ""
    ) -> None:
        self.charge_array_vec(self.array_cost(flops, elements), label)

    def charge_array_vec(self, cost: np.ndarray, label: str = "") -> None:
        if self.trace_rank is not None:
            t0 = self._epoch_val + float(self.clock[self.trace_rank])
            self._record(
                "compute", t0, t0 + float(cost[self.trace_rank]), label
            )
        self.clock += cost
        self.instrument.compute_time += cost

    def scalar_cost(self, flops: int) -> float:
        return max(flops, 1) * self.machine.compute.flop_time

    def charge_scalar_stmt(self, flops: int) -> None:
        """Replicated scalar statement: every rank executes it."""
        self.charge_scalar_cost(self.scalar_cost(flops))

    def charge_scalar_cost(self, cost: float) -> None:
        self.clock += cost
        self.instrument.compute_time += cost

    def reduction_cost(self, flops: int, elements: np.ndarray) -> np.ndarray:
        """Per-rank local partial-combine cost of a reduction."""
        comp = self.machine.compute
        return np.where(
            elements > 0,
            comp.loop_overhead + max(flops, 1) * elements * comp.flop_time,
            0.0,
        )

    def charge_reduction(self, flops: int, elements: np.ndarray) -> None:
        self.charge_reduction_vec(
            self.reduction_cost(flops, elements),
            self.machine.reduction.time(self.machine.nprocs),
        )

    def charge_reduction_vec(self, partial: np.ndarray, tree_time: float) -> None:
        """Local partial combine, then a synchronizing tree combine +
        broadcast: all ranks leave at the same time."""
        self.instrument.compute_time += partial
        t = float((self.clock + partial).max())
        t += tree_time
        waited = t - (self.clock + partial)
        self.instrument.wait_time += waited
        if self.trace_rank is not None:
            r = self.trace_rank
            e = self._epoch_val
            t0 = e + float(self.clock[r])
            self._record("compute", t0, t0 + float(partial[r]), "partial")
            self._record("reduce", t0 + float(partial[r]), e + t, "tree+bcast")
        self.clock[:] = t
        self.instrument.record_reduction()

    # ------------------------------------------------------------------
    # communication
    # ------------------------------------------------------------------
    def comm_call(self, kind: CallKind, plan: TransferPlan) -> None:
        """Execute one IRONMAN call of one transfer on all ranks."""
        prim_name = self.machine.binding.primitive(kind)
        prim = self.machine.primitive(prim_name)
        if plan.message_count == 0:
            return  # nothing to move on this machine: calls find no work

        if kind is CallKind.SR:
            self._do_send(plan, prim, prim_name)
        elif kind is CallKind.DN:
            self._do_complete(plan, prim, prim_name)
        elif kind is CallKind.DR:
            self._do_pre(plan, prim, prim_name)
        elif kind is CallKind.SV:
            self._do_volatile(plan, prim, prim_name)

    # -- SR -------------------------------------------------------------
    def _do_send(self, plan: TransferPlan, prim, prim_name: str) -> None:
        if plan.desc.id in self._inflight:
            raise RuntimeFault(
                f"transfer {plan.desc.describe()} initiated twice without "
                "completion — optimizer produced an illegal schedule"
            )
        # One-way communication: a put may not start until the destination
        # signalled buffer readiness (its DR `synch` posted a flag); the
        # source blocks until the flag has crossed the wire.
        dr = self._dr_times.pop(plan.desc.id, None)
        if dr is not None:
            flag_ready = np.full(self.machine.nprocs, -np.inf)
            np.maximum.at(
                flag_ready,
                plan.senders,
                dr[plan.receivers] + self.machine.network.raw,
            )
            waiting = plan.participants & np.isfinite(flag_ready)
            flag_wait = np.maximum(
                0.0, flag_ready[waiting] - self.clock[waiting]
            )
            self.instrument.wait_time[waiting] += flag_wait
            if self.trace_rank is not None and waiting[self.trace_rank]:
                e = self._epoch_val
                t0 = e + float(self.clock[self.trace_rank])
                t1 = max(t0, e + float(flag_ready[self.trace_rank]))
                self._record("wait", t0, t1, f"DR flag {plan.desc.describe()}")
            self.clock[waiting] = np.maximum(
                self.clock[waiting], flag_ready[waiting]
            )
        vecs = plan.prim_vectors(prim, self.machine.network)
        arrivals = np.full(self.machine.nprocs, -np.inf)
        send_end = self.clock[plan.senders] + vecs.cum_sw
        np.maximum.at(arrivals, plan.receivers, send_end + vecs.wire)
        if self.trace_rank is not None:
            t0 = self._epoch_val + float(self.clock[self.trace_rank])
            t1 = t0 + float(vecs.total_sw_by_rank[self.trace_rank])
            self._record("send", t0, t1, plan.desc.describe())
        self.clock += vecs.total_sw_by_rank
        self.instrument.comm_sw_time += vecs.total_sw_by_rank
        self._inflight[plan.desc.id] = arrivals
        self.instrument.record_transfer(plan)
        self.instrument.record_calls(
            prim_name, int((vecs.total_sw_by_rank > 0).sum())
        )

    # -- DN -------------------------------------------------------------
    def _do_complete(self, plan: TransferPlan, prim, prim_name: str) -> None:
        arrivals = self._inflight.pop(plan.desc.id, None)
        if arrivals is None:
            raise RuntimeFault(
                f"completion of {plan.desc.describe()} before initiation — "
                "optimizer produced an illegal schedule"
            )
        receivers = plan.receivers_unique
        if prim.sync is SyncKind.RENDEZVOUS:
            # one-way completion: the destination polls its local
            # data-complete flag.  The prototype's heavyweight
            # synchronization makes long polls expensive: a bounded
            # surcharge proportional to the wait (the paper's stated
            # penalty on inherently sequential computations).
            waited = np.maximum(
                0.0, arrivals[receivers] - self.clock[receivers]
            )
            surcharge = prim.spread_penalty * np.minimum(
                waited, prim.spread_cap
            )
            self.instrument.wait_time[receivers] += waited
            self.instrument.comm_sw_time[receivers] += prim.fixed + surcharge
            if self.trace_rank is not None and self.trace_rank in receivers:
                i = int(np.searchsorted(receivers, self.trace_rank))
                e = self._epoch_val
                t0 = e + float(self.clock[self.trace_rank])
                t_arr = max(t0, e + float(arrivals[self.trace_rank]))
                self._record("wait", t0, t_arr, f"DN {plan.desc.describe()}")
                self._record(
                    "synch",
                    t_arr,
                    t_arr + prim.fixed + float(surcharge[i]),
                    plan.desc.describe(),
                )
            self.clock[receivers] = (
                np.maximum(self.clock[receivers], arrivals[receivers])
                + prim.fixed
                + surcharge
            )
        else:
            sw = plan.recv_sw_by_rank(prim)
            stall = np.maximum(
                0.0, arrivals[receivers] - self.clock[receivers]
            )
            self.instrument.wait_time[receivers] += stall
            self.instrument.comm_sw_time[receivers] += sw[receivers]
            if self.trace_rank is not None and self.trace_rank in receivers:
                e = self._epoch_val
                t0 = e + float(self.clock[self.trace_rank])
                t_arr = max(t0, e + float(arrivals[self.trace_rank]))
                self._record("wait", t0, t_arr, f"DN {plan.desc.describe()}")
                self._record(
                    "recv",
                    t_arr,
                    t_arr + float(sw[self.trace_rank]),
                    plan.desc.describe(),
                )
            waited = np.maximum(self.clock[receivers], arrivals[receivers])
            self.clock[receivers] = waited + sw[receivers]
        self.instrument.record_calls(prim_name, len(receivers))

    # -- DR -------------------------------------------------------------
    def _do_pre(self, plan: TransferPlan, prim, prim_name: str) -> None:
        receivers = plan.receivers_unique
        if prim.sync is SyncKind.RENDEZVOUS:
            # the destination readies its fluff buffer and posts a flag to
            # each source; the put may not start before the flag lands
            # (enforced at SR)
            if self.trace_rank is not None and self.trace_rank in receivers:
                t0 = self._epoch_val + float(self.clock[self.trace_rank])
                self._record(
                    "synch", t0, t0 + prim.fixed, f"DR {plan.desc.describe()}"
                )
            self.clock[receivers] += prim.fixed
            self.instrument.comm_sw_time[receivers] += prim.fixed
            self._dr_times[plan.desc.id] = self.clock.copy()
        else:
            # posting receives (irecv/hprobe): fixed cost per incoming
            # message at each receiver
            per_recv = plan.fixed_by_rank("recv", prim.fixed)
            if self.trace_rank is not None:
                t0 = self._epoch_val + float(self.clock[self.trace_rank])
                self._record(
                    "recv",
                    t0,
                    t0 + float(per_recv[self.trace_rank]),
                    f"DR {plan.desc.describe()}",
                )
            self.clock += per_recv
            self.instrument.comm_sw_time += per_recv
        self.instrument.record_calls(prim_name, len(receivers))

    # -- SV -------------------------------------------------------------
    def _do_volatile(self, plan: TransferPlan, prim, prim_name: str) -> None:
        senders = plan.senders_unique
        per_send = plan.fixed_by_rank("send", prim.fixed)
        if self.trace_rank is not None:
            t0 = self._epoch_val + float(self.clock[self.trace_rank])
            self._record(
                "send",
                t0,
                t0 + float(per_send[self.trace_rank]),
                f"SV {plan.desc.describe()}",
            )
        self.clock += per_send
        self.instrument.comm_sw_time += per_send
        self.instrument.record_calls(prim_name, len(senders))

    # ------------------------------------------------------------------
    @property
    def elapsed(self) -> float:
        """The run's execution time: the last rank to finish."""
        return self._epoch_val + float(self.clock.max())

    def assert_quiescent(self) -> None:
        if self._inflight:
            raise RuntimeFault(
                f"{len(self._inflight)} transfer(s) initiated but never "
                "completed — optimizer produced an illegal schedule"
            )
        if self._dr_times:
            raise RuntimeFault(
                f"{len(self._dr_times)} destination-ready flag(s) posted "
                "but never consumed — optimizer produced an illegal schedule"
            )
