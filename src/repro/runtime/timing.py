"""The per-rank timing engine.

SPMD control flow is identical on every rank (scalar state is
replicated), so the simulator advances all ranks through the same
statement sequence and keeps a *clock vector* — one float per rank.  The
interesting dynamics live entirely in the communication calls:

``SR``
    Each sender is charged the send primitive's software cost per
    outgoing message (sequentially); each message's arrival time at its
    receiver is ``sender-clock-after-injection + latency + bytes/BW``.
    Arrivals are stored until DN.

``DN``
    Each receiver is charged the receive cost per incoming message and
    waits for the latest arrival: ``clock = max(clock, arrival) + sw``.
    This is where pipelining pays off — the further SR ran ahead of DN,
    the more of the wire time has already elapsed.

``DR`` / ``SV``
    Charged per the bound primitive; ``synch`` (T3D SHMEM) performs a
    heavyweight pairwise rendezvous that pulls each participant up to the
    latest of its partners' clocks — the prototype-limitation behaviour
    that hurts inherently sequential phases in the paper.

Reductions synchronize all ranks (combine + broadcast tree).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.errors import RuntimeFault
from repro.ironman.calls import CallKind
from repro.machine.params import Machine, SyncKind
from repro.runtime.instrument import Instrumentation
from repro.runtime.transfers import TransferPlan


@dataclass(frozen=True)
class TraceEvent:
    """One interval on a traced processor's timeline.

    ``kind`` is one of ``compute``, ``send``, ``recv``, ``wait``,
    ``synch``, ``reduce``; intervals of a single rank never overlap and
    cover every nonzero clock advance."""

    start: float
    end: float
    kind: str
    label: str = ""

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class TimingEngine:
    machine: Machine
    instrument: Instrumentation
    #: rank whose timeline is recorded (None: tracing off)
    trace_rank: Optional[int] = None
    trace: List["TraceEvent"] = field(default_factory=list)
    clock: np.ndarray = field(init=False)
    #: desc id -> per-rank arrival times of the in-flight execution
    _inflight: Dict[int, np.ndarray] = field(init=False, default_factory=dict)
    #: desc id -> per-rank destination-ready (DR flag) times
    _dr_times: Dict[int, np.ndarray] = field(init=False, default_factory=dict)

    def __post_init__(self) -> None:
        self.clock = np.zeros(self.machine.nprocs, dtype=np.float64)

    def _record(self, kind: str, start: float, end: float, label: str = "") -> None:
        if end > start:
            self.trace.append(TraceEvent(start, end, kind, label))

    # ------------------------------------------------------------------
    # compute
    # ------------------------------------------------------------------
    def charge_array_stmt(
        self, flops: int, elements: np.ndarray, label: str = ""
    ) -> None:
        """Whole-array statement: each rank pays for its local elements
        (idle ranks pay nothing)."""
        comp = self.machine.compute
        cost = np.where(
            elements > 0,
            comp.loop_overhead + flops * elements * comp.flop_time,
            0.0,
        )
        if self.trace_rank is not None:
            t0 = float(self.clock[self.trace_rank])
            self._record(
                "compute", t0, t0 + float(cost[self.trace_rank]), label
            )
        self.clock += cost
        self.instrument.compute_time += cost

    def charge_scalar_stmt(self, flops: int) -> None:
        """Replicated scalar statement: every rank executes it."""
        cost = max(flops, 1) * self.machine.compute.flop_time
        self.clock += cost
        self.instrument.compute_time += cost

    def charge_reduction(self, flops: int, elements: np.ndarray) -> None:
        """Local partial combine, then a synchronizing tree combine +
        broadcast: all ranks leave at the same time."""
        comp = self.machine.compute
        partial = np.where(
            elements > 0,
            comp.loop_overhead + max(flops, 1) * elements * comp.flop_time,
            0.0,
        )
        self.instrument.compute_time += partial
        t = float((self.clock + partial).max())
        t += self.machine.reduction.time(self.machine.nprocs)
        waited = t - (self.clock + partial)
        self.instrument.wait_time += waited
        if self.trace_rank is not None:
            r = self.trace_rank
            t0 = float(self.clock[r])
            self._record("compute", t0, t0 + float(partial[r]), "partial")
            self._record("reduce", t0 + float(partial[r]), t, "tree+bcast")
        self.clock[:] = t
        self.instrument.record_reduction()

    # ------------------------------------------------------------------
    # communication
    # ------------------------------------------------------------------
    def comm_call(self, kind: CallKind, plan: TransferPlan) -> None:
        """Execute one IRONMAN call of one transfer on all ranks."""
        prim_name = self.machine.binding.primitive(kind)
        prim = self.machine.primitive(prim_name)
        if plan.message_count == 0:
            return  # nothing to move on this machine: calls find no work

        if kind is CallKind.SR:
            self._do_send(plan, prim, prim_name)
        elif kind is CallKind.DN:
            self._do_complete(plan, prim, prim_name)
        elif kind is CallKind.DR:
            self._do_pre(plan, prim, prim_name)
        elif kind is CallKind.SV:
            self._do_volatile(plan, prim, prim_name)

    # -- SR -------------------------------------------------------------
    def _do_send(self, plan: TransferPlan, prim, prim_name: str) -> None:
        if plan.desc.id in self._inflight:
            raise RuntimeFault(
                f"transfer {plan.desc.describe()} initiated twice without "
                "completion — optimizer produced an illegal schedule"
            )
        # One-way communication: a put may not start until the destination
        # signalled buffer readiness (its DR `synch` posted a flag); the
        # source blocks until the flag has crossed the wire.
        dr = self._dr_times.pop(plan.desc.id, None)
        if dr is not None:
            flag_ready = np.full(self.machine.nprocs, -np.inf)
            np.maximum.at(
                flag_ready,
                plan.senders,
                dr[plan.receivers] + self.machine.network.raw,
            )
            waiting = plan.participants & np.isfinite(flag_ready)
            flag_wait = np.maximum(
                0.0, flag_ready[waiting] - self.clock[waiting]
            )
            self.instrument.wait_time[waiting] += flag_wait
            if self.trace_rank is not None and waiting[self.trace_rank]:
                t0 = float(self.clock[self.trace_rank])
                t1 = max(t0, float(flag_ready[self.trace_rank]))
                self._record("wait", t0, t1, f"DR flag {plan.desc.describe()}")
            self.clock[waiting] = np.maximum(
                self.clock[waiting], flag_ready[waiting]
            )
        vecs = plan.prim_vectors(prim, self.machine.network)
        arrivals = np.full(self.machine.nprocs, -np.inf)
        send_end = self.clock[plan.senders] + vecs.cum_sw
        np.maximum.at(arrivals, plan.receivers, send_end + vecs.wire)
        if self.trace_rank is not None:
            t0 = float(self.clock[self.trace_rank])
            t1 = t0 + float(vecs.total_sw_by_rank[self.trace_rank])
            self._record("send", t0, t1, plan.desc.describe())
        self.clock += vecs.total_sw_by_rank
        self.instrument.comm_sw_time += vecs.total_sw_by_rank
        self._inflight[plan.desc.id] = arrivals
        self.instrument.record_transfer(plan)
        self.instrument.record_calls(
            prim_name, int((vecs.total_sw_by_rank > 0).sum())
        )

    # -- DN -------------------------------------------------------------
    def _do_complete(self, plan: TransferPlan, prim, prim_name: str) -> None:
        arrivals = self._inflight.pop(plan.desc.id, None)
        if arrivals is None:
            raise RuntimeFault(
                f"completion of {plan.desc.describe()} before initiation — "
                "optimizer produced an illegal schedule"
            )
        receivers = np.unique(plan.receivers)
        if prim.sync is SyncKind.RENDEZVOUS:
            # one-way completion: the destination polls its local
            # data-complete flag.  The prototype's heavyweight
            # synchronization makes long polls expensive: a bounded
            # surcharge proportional to the wait (the paper's stated
            # penalty on inherently sequential computations).
            waited = np.maximum(
                0.0, arrivals[receivers] - self.clock[receivers]
            )
            surcharge = prim.spread_penalty * np.minimum(
                waited, prim.spread_cap
            )
            self.instrument.wait_time[receivers] += waited
            self.instrument.comm_sw_time[receivers] += prim.fixed + surcharge
            if self.trace_rank is not None and self.trace_rank in receivers:
                i = int(np.searchsorted(receivers, self.trace_rank))
                t0 = float(self.clock[self.trace_rank])
                t_arr = max(t0, float(arrivals[self.trace_rank]))
                self._record("wait", t0, t_arr, f"DN {plan.desc.describe()}")
                self._record(
                    "synch",
                    t_arr,
                    t_arr + prim.fixed + float(surcharge[i]),
                    plan.desc.describe(),
                )
            self.clock[receivers] = (
                np.maximum(self.clock[receivers], arrivals[receivers])
                + prim.fixed
                + surcharge
            )
        else:
            sw = plan.recv_sw_by_rank(prim)
            stall = np.maximum(
                0.0, arrivals[receivers] - self.clock[receivers]
            )
            self.instrument.wait_time[receivers] += stall
            self.instrument.comm_sw_time[receivers] += sw[receivers]
            if self.trace_rank is not None and self.trace_rank in receivers:
                t0 = float(self.clock[self.trace_rank])
                t_arr = max(t0, float(arrivals[self.trace_rank]))
                self._record("wait", t0, t_arr, f"DN {plan.desc.describe()}")
                self._record(
                    "recv",
                    t_arr,
                    t_arr + float(sw[self.trace_rank]),
                    plan.desc.describe(),
                )
            waited = np.maximum(self.clock[receivers], arrivals[receivers])
            self.clock[receivers] = waited + sw[receivers]
        self.instrument.record_calls(prim_name, len(receivers))

    # -- DR -------------------------------------------------------------
    def _do_pre(self, plan: TransferPlan, prim, prim_name: str) -> None:
        receivers = np.unique(plan.receivers)
        if prim.sync is SyncKind.RENDEZVOUS:
            # the destination readies its fluff buffer and posts a flag to
            # each source; the put may not start before the flag lands
            # (enforced at SR)
            if self.trace_rank is not None and self.trace_rank in receivers:
                t0 = float(self.clock[self.trace_rank])
                self._record(
                    "synch", t0, t0 + prim.fixed, f"DR {plan.desc.describe()}"
                )
            self.clock[receivers] += prim.fixed
            self.instrument.comm_sw_time[receivers] += prim.fixed
            self._dr_times[plan.desc.id] = self.clock.copy()
        else:
            # posting receives (irecv/hprobe): fixed cost per incoming
            # message at each receiver
            per_recv = np.zeros(self.machine.nprocs)
            np.add.at(per_recv, plan.receivers, prim.fixed)
            if self.trace_rank is not None:
                t0 = float(self.clock[self.trace_rank])
                self._record(
                    "recv",
                    t0,
                    t0 + float(per_recv[self.trace_rank]),
                    f"DR {plan.desc.describe()}",
                )
            self.clock += per_recv
            self.instrument.comm_sw_time += per_recv
        self.instrument.record_calls(prim_name, len(receivers))

    # -- SV -------------------------------------------------------------
    def _do_volatile(self, plan: TransferPlan, prim, prim_name: str) -> None:
        senders = np.unique(plan.senders)
        per_send = np.zeros(self.machine.nprocs)
        np.add.at(per_send, plan.senders, prim.fixed)
        if self.trace_rank is not None:
            t0 = float(self.clock[self.trace_rank])
            self._record(
                "send",
                t0,
                t0 + float(per_send[self.trace_rank]),
                f"SV {plan.desc.describe()}",
            )
        self.clock += per_send
        self.instrument.comm_sw_time += per_send
        self.instrument.record_calls(prim_name, len(senders))

    # ------------------------------------------------------------------
    @property
    def elapsed(self) -> float:
        """The run's execution time: the last rank to finish."""
        return float(self.clock.max())

    def assert_quiescent(self) -> None:
        if self._inflight:
            raise RuntimeFault(
                f"{len(self._inflight)} transfer(s) initiated but never "
                "completed — optimizer produced an illegal schedule"
            )
        if self._dr_times:
            raise RuntimeFault(
                f"{len(self._dr_times)} destination-ready flag(s) posted "
                "but never consumed — optimizer produced an illegal schedule"
            )
