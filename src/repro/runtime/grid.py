"""The virtual processor mesh.

ZPL (and hence ZL) distributes arrays block-wise over a two-dimensional
virtual processor mesh; a shifted reference therefore communicates with
mesh neighbours (including diagonal ones for directions like ``ne``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Sequence, Tuple


@dataclass(frozen=True)
class ProcessorGrid:
    """A ``rows x cols`` mesh of processors, ranks numbered row-major."""

    rows: int
    cols: int

    @property
    def nprocs(self) -> int:
        return self.rows * self.cols

    def coords(self, rank: int) -> Tuple[int, int]:
        """(row, col) of a rank."""
        if not 0 <= rank < self.nprocs:
            raise ValueError(f"rank {rank} out of range 0..{self.nprocs - 1}")
        return divmod(rank, self.cols)

    def rank_of(self, row: int, col: int) -> int:
        if not (0 <= row < self.rows and 0 <= col < self.cols):
            raise ValueError(f"coords ({row}, {col}) outside {self.rows}x{self.cols}")
        return row * self.cols + col

    def neighbor(self, rank: int, step: Sequence[int]) -> Optional[int]:
        """Rank at mesh offset ``step = (drow, dcol)``; None off the edge.

        The mesh is not a torus: ZL programs read shifted data only where
        the shifted region stays inside the array domain, so edge
        processors simply have no partner in that direction.
        """
        row, col = self.coords(rank)
        nrow, ncol = row + step[0], col + step[1]
        if 0 <= nrow < self.rows and 0 <= ncol < self.cols:
            return self.rank_of(nrow, ncol)
        return None

    def ranks(self) -> Iterator[int]:
        return iter(range(self.nprocs))

    def interior_rank(self) -> int:
        """A maximally interior rank — the representative processor for
        the paper's per-processor dynamic communication counts (an
        interior node participates in every transfer direction)."""
        return self.rank_of(self.rows // 2, self.cols // 2)

    def __str__(self) -> str:
        return f"{self.rows}x{self.cols} mesh"
