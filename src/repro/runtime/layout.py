"""Block distribution of index space over the processor mesh.

All arrays are *trivially aligned*: element ``(i, j)`` of every array
lives on the same processor.  To guarantee this across arrays declared
over different (but same-rank) regions, the partition is computed once
per array rank from the bounding region of all declared domains of that
rank, and every array of that rank uses it.

Distribution convention (ZPL's, as the paper describes):

* rank-2 arrays: dim 0 over mesh rows, dim 1 over mesh columns;
* rank-3 arrays: dims 0 and 1 over the mesh, dim 2 local to each node;
* rank-1 arrays: dim 0 over mesh rows, resident on mesh column 0
  (processors in other columns own nothing and idle through rank-1
  statements — the owner-computes rule).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.errors import RuntimeFault
from repro.lang.regions import Region, bounding_region
from repro.runtime.grid import ProcessorGrid


def split_extent(low: int, high: int, parts: int) -> List[Tuple[int, int]]:
    """Split the inclusive range ``[low, high]`` into ``parts`` contiguous
    blocks whose sizes differ by at most one (larger blocks first).  Empty
    blocks (when ``parts`` exceeds the extent) are ``(lo, lo-1)`` pairs.
    """
    n = high - low + 1
    if n < 0:
        raise ValueError(f"bad extent [{low}..{high}]")
    base, rem = divmod(n, parts)
    out: List[Tuple[int, int]] = []
    cursor = low
    for i in range(parts):
        size = base + (1 if i < rem else 0)
        out.append((cursor, cursor + size - 1))
        cursor += size
    return out


@dataclass(frozen=True)
class RankClassLayout:
    """Partition of one array-rank class over the mesh."""

    rank: int
    bounding: Region
    #: per distributed dim: list of (low, high) per mesh coordinate
    dim_splits: Tuple[Tuple[Tuple[int, int], ...], ...]
    #: which array dims are distributed (0-based), in mesh-dim order
    distributed_dims: Tuple[int, ...]


class ProblemLayout:
    """Owner map for every array in a program on a given mesh."""

    def __init__(
        self, grid: ProcessorGrid, array_domains: Dict[str, Region]
    ) -> None:
        self.grid = grid
        self.array_domains = dict(array_domains)
        self._classes: Dict[int, RankClassLayout] = {}
        by_rank: Dict[int, List[Region]] = {}
        for region in array_domains.values():
            by_rank.setdefault(region.rank, []).append(region)
        for rank, regions in by_rank.items():
            self._classes[rank] = self._build_class(rank, regions)

    # ------------------------------------------------------------------
    def _build_class(self, rank: int, regions: List[Region]) -> RankClassLayout:
        bounding = bounding_region(f"<rank{rank}>", regions)
        assert bounding is not None
        if rank == 1:
            dist_dims: Tuple[int, ...] = (0,)
            mesh_sizes = (self.grid.rows,)
        else:
            dist_dims = (0, 1)
            mesh_sizes = (self.grid.rows, self.grid.cols)
        splits = tuple(
            tuple(
                split_extent(bounding.lows[d], bounding.highs[d], mesh_sizes[i])
            )
            for i, d in enumerate(dist_dims)
        )
        return RankClassLayout(
            rank=rank,
            bounding=bounding,
            dim_splits=splits,
            distributed_dims=dist_dims,
        )

    # ------------------------------------------------------------------
    def rank_class(self, array_rank: int) -> RankClassLayout:
        try:
            return self._classes[array_rank]
        except KeyError:
            raise RuntimeFault(
                f"no rank-{array_rank} arrays were declared; cannot lay out"
            ) from None

    def distributed_dims(self, array_rank: int) -> Tuple[int, ...]:
        return self.rank_class(array_rank).distributed_dims

    def owned(self, array_rank: int, proc: int) -> Region:
        """The block of the rank-class index space owned by ``proc``
        (empty region for idle processors)."""
        cls = self.rank_class(array_rank)
        row, col = self.grid.coords(proc)
        lows = list(cls.bounding.lows)
        highs = list(cls.bounding.highs)
        mesh_coords = (row, col)
        if array_rank == 1:
            if col != 0:
                # resident on mesh column 0 only
                return Region(f"<own{proc}>", (lows[0],), (lows[0] - 1,))
            lo, hi = cls.dim_splits[0][row]
            return Region(f"<own{proc}>", (lo,), (hi,))
        for i, d in enumerate(cls.distributed_dims):
            lo, hi = cls.dim_splits[i][mesh_coords[i]]
            lows[d], highs[d] = lo, hi
        return Region(f"<own{proc}>", tuple(lows), tuple(highs))

    def owner_of(self, array_rank: int, index: Sequence[int]) -> int:
        """Processor owning a global index (for tests/diagnostics)."""
        cls = self.rank_class(array_rank)
        coords = [0, 0]
        for i, d in enumerate(cls.distributed_dims):
            pos = None
            for j, (lo, hi) in enumerate(cls.dim_splits[i]):
                if lo <= index[d] <= hi:
                    pos = j
                    break
            if pos is None:
                raise RuntimeFault(
                    f"index {tuple(index)} outside the rank-{array_rank} "
                    f"bounding region {cls.bounding}"
                )
            coords[i] = pos
        if array_rank == 1:
            return self.grid.rank_of(coords[0], 0)
        return self.grid.rank_of(coords[0], coords[1])

    def check_fluff_feasible(
        self, fluff: Dict[str, Tuple[int, ...]]
    ) -> None:
        """Every shift offset must fit within a single neighbouring block;
        otherwise a strip would span multiple processors and the
        nearest-neighbour transfer model breaks.  (The paper's benchmarks
        use unit offsets; this guards hand-written configurations.)"""
        for array, widths in fluff.items():
            domain = self.array_domains[array]
            cls = self.rank_class(domain.rank)
            for i, d in enumerate(cls.distributed_dims):
                width = widths[d]
                if width == 0:
                    continue
                for lo, hi in cls.dim_splits[i]:
                    size = hi - lo + 1
                    if 0 < size < width:
                        raise RuntimeFault(
                            f"array {array!r}: shift width {width} in dim "
                            f"{d} exceeds a block of size {size}; use a "
                            "smaller mesh or a larger problem"
                        )
