"""Execution instrumentation.

Tracks the quantities the paper reports:

* **dynamic communication count** — transfers actually performed, counted
  per processor (a processor participates in a transfer when it sends or
  receives at least one message of it).  The paper reports the count "on a
  single processor"; we report the interior (maximal) processor and keep
  the full per-rank vector for tests;
* message counts and byte volumes per processor (a diagonal transfer is
  one communication but up to three messages);
* per-primitive call counts;
* reduction (collective) counts — kept separate from point-to-point
  communication, as the paper's counts are.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set

import numpy as np

from repro.obs import core as obs


@dataclass
class Instrumentation:
    """Mutable counters for one simulation run."""

    nprocs: int
    dynamic_comms: np.ndarray = field(init=False)
    messages: np.ndarray = field(init=False)
    bytes_moved: np.ndarray = field(init=False)
    call_counts: Dict[str, int] = field(default_factory=dict)
    reductions: int = 0
    #: unique warnings in first-seen order (`warn` dedups via `_warned`)
    warnings: List[str] = field(default_factory=list)
    _warned: Set[str] = field(default_factory=set, repr=False)
    #: per-rank time breakdown (seconds): local computation, communication
    #: software (per-call costs charged to the clock), and waiting
    #: (blocking on arrivals, readiness flags, and collectives)
    compute_time: np.ndarray = field(init=False)
    comm_sw_time: np.ndarray = field(init=False)
    wait_time: np.ndarray = field(init=False)

    def __post_init__(self) -> None:
        self.dynamic_comms = np.zeros(self.nprocs, dtype=np.int64)
        self.messages = np.zeros(self.nprocs, dtype=np.int64)
        self.bytes_moved = np.zeros(self.nprocs, dtype=np.int64)
        self.compute_time = np.zeros(self.nprocs, dtype=np.float64)
        self.comm_sw_time = np.zeros(self.nprocs, dtype=np.float64)
        self.wait_time = np.zeros(self.nprocs, dtype=np.float64)

    # ------------------------------------------------------------------
    def record_transfer(self, plan) -> None:
        """One execution of a transfer described by ``plan``."""
        if plan.message_count == 0:
            return
        self.dynamic_comms[plan.participants] += 1
        np.add.at(self.messages, plan.senders, 1)
        np.add.at(self.bytes_moved, plan.senders, plan.nbytes)

    def record_calls(self, primitive: str, count: int) -> None:
        """``count`` executions of ``primitive`` across all ranks."""
        if primitive == "noop" or count == 0:
            return
        self.call_counts[primitive] = self.call_counts.get(primitive, 0) + count

    def record_reduction(self) -> None:
        self.reductions += 1

    def warn(self, message: str) -> None:
        """Record a warning once, preserving first-seen order.

        The set-backed dedup keeps repeated warnings O(1) (simulations
        can re-warn every trip of a capped loop).  When tracing is on,
        the warning also lands in the event sink the moment it happens;
        for pool workers — where no recorder is active — the engine
        re-emits warnings from the returned job records instead.
        """
        if message in self._warned:
            return
        self._warned.add(message)
        self.warnings.append(message)
        obs.event("warning", message=message)

    # ------------------------------------------------------------------
    @property
    def dynamic_comm_count(self) -> int:
        """The paper's per-processor dynamic count: the busiest (interior)
        processor's transfer count."""
        return int(self.dynamic_comms.max(initial=0))

    @property
    def total_messages(self) -> int:
        return int(self.messages.sum())

    @property
    def total_bytes(self) -> int:
        return int(self.bytes_moved.sum())

    def breakdown(self, rank: int) -> Dict[str, float]:
        """(compute, comm software, wait) seconds for one rank."""
        return {
            "compute": float(self.compute_time[rank]),
            "comm_sw": float(self.comm_sw_time[rank]),
            "wait": float(self.wait_time[rank]),
        }
