"""Source text bookkeeping: locations, snippets, and config parsing.

Every token and AST node carries a :class:`SourceLocation` so that errors
anywhere in the pipeline (including semantic analysis, which runs long
after lexing) can point at the offending source line.

This module also owns :func:`parse_config_assignments`, the shared
parser for ``name=value`` config-constant overrides — used by the CLI's
``--config`` flag and by :func:`repro.run_study`'s string-form
``config_overrides`` — so every entry point agrees on what a config
literal is (ints stay ints; anything else float-parses, which admits
scientific notation like ``eps=1e-6``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Union

from repro.obs import core as obs

ConfigValue = Union[int, float]


def parse_config_value(text: str) -> ConfigValue:
    """Parse one config-constant literal.

    Integer literals stay ``int`` (config constants are mostly sizes and
    trip counts); everything else falls back to ``float``, so decimal
    (``0.5``) and scientific (``1e-6``, ``2.5E3``) forms both work.
    """
    try:
        return int(text, 10)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        raise ValueError(f"bad config value {text!r}; use an int or float") from None


def parse_config_assignments(
    pairs: Optional[Iterable[str]],
) -> Dict[str, ConfigValue]:
    """Parse ``name=value`` assignment strings into a config dict.

    Accepts None or any iterable of strings; raises ``ValueError`` on a
    missing ``=`` or an empty name, or an unparsable value.
    """
    out: Dict[str, ConfigValue] = {}
    for pair in pairs or ():
        name, eq, value = pair.partition("=")
        name = name.strip()
        if not eq or not name:
            raise ValueError(f"bad config assignment {pair!r}; use name=value")
        out[name] = parse_config_value(value.strip())
    return out


@dataclass(frozen=True)
class SourceLocation:
    """A position in a ZL source file (1-based line and column)."""

    filename: str
    line: int
    column: int

    def __str__(self) -> str:
        return f"{self.filename}:{self.line}:{self.column}"


UNKNOWN_LOCATION = SourceLocation("<unknown>", 0, 0)


@dataclass
class SourceFile:
    """A named body of ZL source text.

    Keeps the split lines so diagnostics can quote the source.  ``name``
    defaults to ``<string>`` for programs supplied inline (as the bundled
    benchmark programs are).
    """

    text: str
    name: str = "<string>"
    _lines: List[str] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._lines = self.text.splitlines()
        # frontend phase telemetry: every compile starts by loading one
        # of these, so the event marks the boundary between sources when
        # several programs compile under one recorder
        obs.event("frontend:source", source=self.name, lines=len(self._lines))

    def location(self, line: int, column: int) -> SourceLocation:
        """Build a location within this file."""
        return SourceLocation(self.name, line, column)

    def line_text(self, line: int) -> str:
        """The text of a 1-based line number ('' if out of range)."""
        if 1 <= line <= len(self._lines):
            return self._lines[line - 1]
        return ""

    def snippet(self, loc: SourceLocation) -> str:
        """A two-line diagnostic snippet: the source line plus a caret."""
        text = self.line_text(loc.line)
        caret = " " * max(0, loc.column - 1) + "^"
        return f"{text}\n{caret}"
