"""Source text bookkeeping: locations and snippet extraction.

Every token and AST node carries a :class:`SourceLocation` so that errors
anywhere in the pipeline (including semantic analysis, which runs long
after lexing) can point at the offending source line.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List


@dataclass(frozen=True)
class SourceLocation:
    """A position in a ZL source file (1-based line and column)."""

    filename: str
    line: int
    column: int

    def __str__(self) -> str:
        return f"{self.filename}:{self.line}:{self.column}"


UNKNOWN_LOCATION = SourceLocation("<unknown>", 0, 0)


@dataclass
class SourceFile:
    """A named body of ZL source text.

    Keeps the split lines so diagnostics can quote the source.  ``name``
    defaults to ``<string>`` for programs supplied inline (as the bundled
    benchmark programs are).
    """

    text: str
    name: str = "<string>"
    _lines: List[str] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._lines = self.text.splitlines()

    def location(self, line: int, column: int) -> SourceLocation:
        """Build a location within this file."""
        return SourceLocation(self.name, line, column)

    def line_text(self, line: int) -> str:
        """The text of a 1-based line number ('' if out of range)."""
        if 1 <= line <= len(self._lines):
            return self._lines[line - 1]
        return ""

    def snippet(self, loc: SourceLocation) -> str:
        """A two-line diagnostic snippet: the source line plus a caret."""
        text = self.line_text(loc.line)
        caret = " " * max(0, loc.column - 1) + "^"
        return f"{text}\n{caret}"
