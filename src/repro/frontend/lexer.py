"""Hand-written lexer for ZL.

Produces a list of :class:`~repro.frontend.tokens.Token` ending in a single
``EOF`` token.  Comments are ``-- to end of line`` (Pascal/ZPL style) and
``/* ... */`` block comments (non-nesting).  Numeric literals follow the
usual forms: ``123``, ``1.5``, ``1.5e-3``, ``2e10``.
"""

from __future__ import annotations

from typing import List

from repro.errors import LexError
from repro.frontend.source import SourceFile
from repro.frontend.tokens import KEYWORDS, Token, TokenKind

_SINGLE = {
    ";": TokenKind.SEMI,
    ",": TokenKind.COMMA,
    "(": TokenKind.LPAREN,
    ")": TokenKind.RPAREN,
    "[": TokenKind.LBRACKET,
    "]": TokenKind.RBRACKET,
    "@": TokenKind.AT,
    "+": TokenKind.PLUS,
    "-": TokenKind.MINUS,
    "*": TokenKind.STAR,
    "/": TokenKind.SLASH,
    "^": TokenKind.CARET,
    "=": TokenKind.EQ,
}


class _Lexer:
    """Cursor-based scanner over a :class:`SourceFile`."""

    def __init__(self, src: SourceFile) -> None:
        self.src = src
        self.text = src.text
        self.pos = 0
        self.line = 1
        self.col = 1
        self.tokens: List[Token] = []

    # -- cursor helpers -------------------------------------------------
    def _peek(self, ahead: int = 0) -> str:
        i = self.pos + ahead
        return self.text[i] if i < len(self.text) else ""

    def _advance(self, n: int = 1) -> None:
        for _ in range(n):
            if self.pos < len(self.text):
                if self.text[self.pos] == "\n":
                    self.line += 1
                    self.col = 1
                else:
                    self.col += 1
                self.pos += 1

    def _loc(self):
        return self.src.location(self.line, self.col)

    def _emit(self, kind: TokenKind, value, loc) -> None:
        self.tokens.append(Token(kind, value, loc))

    # -- scanning -------------------------------------------------------
    def run(self) -> List[Token]:
        while self.pos < len(self.text):
            c = self._peek()
            if c in " \t\r\n":
                self._advance()
            elif c == "-" and self._peek(1) == "-":
                self._skip_line_comment()
            elif c == "/" and self._peek(1) == "*":
                self._skip_block_comment()
            elif c.isdigit() or (c == "." and self._peek(1).isdigit()):
                self._scan_number()
            elif c.isalpha() or c == "_":
                self._scan_word()
            else:
                self._scan_operator()
        self._emit(TokenKind.EOF, "", self._loc())
        return self.tokens

    def _skip_line_comment(self) -> None:
        while self.pos < len(self.text) and self._peek() != "\n":
            self._advance()

    def _skip_block_comment(self) -> None:
        loc = self._loc()
        self._advance(2)
        while self.pos < len(self.text):
            if self._peek() == "*" and self._peek(1) == "/":
                self._advance(2)
                return
            self._advance()
        raise LexError("unterminated block comment", loc)

    def _scan_number(self) -> None:
        loc = self._loc()
        start = self.pos
        while self._peek().isdigit():
            self._advance()
        is_float = False
        if self._peek() == "." and self._peek(1) != ".":
            # '..' is the range operator, not a decimal point
            is_float = True
            self._advance()
            while self._peek().isdigit():
                self._advance()
        if self._peek() in "eE" and (
            self._peek(1).isdigit()
            or (self._peek(1) in "+-" and self._peek(2).isdigit())
        ):
            is_float = True
            self._advance()
            if self._peek() in "+-":
                self._advance()
            while self._peek().isdigit():
                self._advance()
        lexeme = self.text[start : self.pos]
        try:
            if is_float:
                self._emit(TokenKind.FLOATLIT, float(lexeme), loc)
            else:
                self._emit(TokenKind.INTLIT, int(lexeme), loc)
        except ValueError as exc:  # pragma: no cover - defensive
            raise LexError(f"malformed number {lexeme!r}", loc) from exc

    def _scan_word(self) -> None:
        loc = self._loc()
        start = self.pos
        while self._peek().isalnum() or self._peek() == "_":
            self._advance()
        word = self.text[start : self.pos]
        kind = KEYWORDS.get(word.lower())
        if kind is not None:
            self._emit(kind, word.lower(), loc)
        else:
            self._emit(TokenKind.IDENT, word, loc)

    def _scan_operator(self) -> None:
        loc = self._loc()
        c = self._peek()
        two = c + self._peek(1)
        if two == "@@":
            self._advance(2)
            self._emit(TokenKind.WRAPAT, two, loc)
        elif two == ":=":
            self._advance(2)
            self._emit(TokenKind.ASSIGN, two, loc)
        elif two == "..":
            self._advance(2)
            self._emit(TokenKind.DOTDOT, two, loc)
        elif two == "<<":
            self._advance(2)
            self._emit(TokenKind.REDUCE, two, loc)
        elif two == "<=":
            self._advance(2)
            self._emit(TokenKind.LE, two, loc)
        elif two == ">=":
            self._advance(2)
            self._emit(TokenKind.GE, two, loc)
        elif two == "!=":
            self._advance(2)
            self._emit(TokenKind.NE, two, loc)
        elif c == "<":
            self._advance()
            self._emit(TokenKind.LT, c, loc)
        elif c == ">":
            self._advance()
            self._emit(TokenKind.GT, c, loc)
        elif c == ":":
            self._advance()
            self._emit(TokenKind.COLON, c, loc)
        elif c in _SINGLE:
            self._advance()
            self._emit(_SINGLE[c], c, loc)
        else:
            raise LexError(f"unexpected character {c!r}", loc)


def tokenize(text: str, filename: str = "<string>") -> List[Token]:
    """Tokenize ZL source text.

    Parameters
    ----------
    text:
        The program source.
    filename:
        Name used in diagnostics.

    Returns
    -------
    list of Token
        Always ends with an ``EOF`` token.
    """
    return _Lexer(SourceFile(text, filename)).run()
