"""The ZL front end: lexer, parser, and semantic analysis.

ZL is the ZPL-like array sublanguage this reproduction compiles.  It keeps
the properties the paper's optimizer relies on:

* arrays are whole-program entities operated on by *whole-array
  statements* — there is no element indexing, so the unit of communication
  is already an array slice (message vectorization is inherent);
* nonlocal accesses appear only through the ``@`` shift operator with a
  compile-time-constant direction, so all communication is statically
  detectable;
* statements execute under a *region scope* (``[R] stmt``), and a
  *source-level basic block* — a maximal run of whole-array statements —
  is the optimizer's scope.

The pipeline is ``tokenize -> parse -> analyze`` and produces a checked
:class:`~repro.frontend.ast.Program` that :mod:`repro.ir` lowers to SPMD
form.
"""

from repro.frontend.ast import Program
from repro.frontend.lexer import tokenize
from repro.frontend.parser import parse
from repro.frontend.semantic import ProgramInfo, analyze
from repro.frontend.source import parse_config_assignments, parse_config_value

__all__ = [
    "tokenize",
    "parse",
    "analyze",
    "Program",
    "ProgramInfo",
    "parse_config_assignments",
    "parse_config_value",
]
