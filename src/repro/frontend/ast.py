"""Abstract syntax tree for ZL.

The AST mirrors ZL source structure closely; all resolution (names, types,
regions, communication) happens in later phases.  Nodes are plain
dataclasses carrying a :class:`~repro.frontend.source.SourceLocation`.

Node taxonomy
-------------

Declarations
    :class:`ConfigDecl`, :class:`RegionDecl`, :class:`DirectionDecl`,
    :class:`VarDecl`, :class:`ProcedureDecl`.

Expressions
    literals (:class:`IntLit`, :class:`FloatLit`, :class:`BoolLit`),
    :class:`NameRef` (scalar or array — disambiguated semantically),
    :class:`ShiftRef` (``A@east``), :class:`BinOp`, :class:`UnOp`,
    :class:`Call` (intrinsics like ``sqrt``), and :class:`Reduce`
    (``max<< expr`` — a full reduction producing a replicated scalar).

Statements
    :class:`Assign`, :class:`RegionScope` (``[R] stmt`` /
    ``[R] begin..end``), :class:`For`, :class:`Repeat`, :class:`If`,
    :class:`CallStmt` (procedure invocation — always inlined during
    lowering).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.frontend.source import SourceLocation, UNKNOWN_LOCATION


@dataclass
class Node:
    """Base class for all AST nodes."""

    location: SourceLocation = field(default=UNKNOWN_LOCATION, kw_only=True)


# ---------------------------------------------------------------------------
# expressions
# ---------------------------------------------------------------------------


@dataclass
class Expr(Node):
    """Base class for expressions."""


@dataclass
class IntLit(Expr):
    value: int


@dataclass
class FloatLit(Expr):
    value: float


@dataclass
class BoolLit(Expr):
    value: bool


@dataclass
class NameRef(Expr):
    """A bare identifier: a scalar variable, config constant, loop
    variable, parallel array, or one of the ``index1..index3`` builtins.
    Semantic analysis classifies it."""

    name: str


@dataclass
class ShiftRef(Expr):
    """``array @ direction`` — the sole source of point-to-point
    communication in ZL.  ``wrap`` marks the periodic form
    ``array @@ direction`` (ZPL's wrap-@): indices that fall off the
    array's domain wrap around to the opposite edge."""

    array: str
    direction: str
    wrap: bool = False


@dataclass
class BinOp(Expr):
    """Binary operation.  ``op`` is one of ``+ - * / ^ = != < <= > >= and
    or``."""

    op: str
    lhs: Expr
    rhs: Expr


@dataclass
class UnOp(Expr):
    """Unary operation: ``-`` or ``not``."""

    op: str
    operand: Expr


@dataclass
class Call(Expr):
    """Intrinsic function application (``sqrt``, ``abs``, ``exp``, ``min``,
    ``max``, ...)."""

    func: str
    args: List[Expr]


@dataclass
class Reduce(Expr):
    """Full reduction over the enclosing region scope: ``op<< expr``.

    ``op`` is ``+``, ``*``, ``max`` or ``min``.  The result is a scalar
    replicated on every processor (the runtime implements it as a
    tree-combine followed by a broadcast)."""

    op: str
    operand: Expr


# ---------------------------------------------------------------------------
# statements
# ---------------------------------------------------------------------------


@dataclass
class Stmt(Node):
    """Base class for statements."""


@dataclass
class Assign(Stmt):
    """``target := expr;``  The target may be a scalar or an array; an
    array target executes over the enclosing region scope."""

    target: str
    value: Expr


@dataclass
class RegionScope(Stmt):
    """``[R] stmt`` or ``[R] begin ... end`` — sets the region scope for
    the contained statements (scopes nest; the innermost wins)."""

    region: str
    body: List[Stmt]


@dataclass
class For(Stmt):
    """Sequential counted loop.  The loop variable is an integer scalar
    implicitly declared for the loop body."""

    var: str
    low: Expr
    high: Expr
    step: Optional[Expr]
    body: List[Stmt]


@dataclass
class Repeat(Stmt):
    """``repeat body until cond;`` — body executes at least once."""

    body: List[Stmt]
    cond: Expr


@dataclass
class If(Stmt):
    """``if c then ... {elsif c then ...} [else ...] end;``

    ``arms`` holds ``(condition, body)`` pairs in source order; ``orelse``
    is the final else body (possibly empty)."""

    arms: List[Tuple[Expr, List[Stmt]]]
    orelse: List[Stmt]


@dataclass
class CallStmt(Stmt):
    """Invocation of a user procedure (no arguments in ZL).  Lowering
    inlines the callee body at the call site."""

    proc: str


# ---------------------------------------------------------------------------
# declarations
# ---------------------------------------------------------------------------


@dataclass
class Decl(Node):
    """Base class for top-level declarations."""


@dataclass
class ConfigDecl(Decl):
    """``config n : integer = 128;`` — a compile-time constant that may be
    overridden when the program is compiled (the paper's problem sizes)."""

    name: str
    type_name: str
    default: Expr


@dataclass
class RegionDecl(Decl):
    """``region R = [1..n, 1..n];``  Bounds are integer expressions over
    config constants, evaluated at compile time."""

    name: str
    ranges: List[Tuple[Expr, Expr]]


@dataclass
class DirectionDecl(Decl):
    """``direction east = [0, 1];``  Offsets are literal integers
    (optionally negated)."""

    name: str
    offsets: List[int]


@dataclass
class VarDecl(Decl):
    """``var A, B : [R] double;`` declares parallel arrays over region R;
    without the ``[R]`` part it declares replicated scalars."""

    names: List[str]
    region: Optional[str]
    type_name: str


@dataclass
class ProcedureDecl(Decl):
    """``procedure name(); begin ... end;``"""

    name: str
    body: List[Stmt]


# ---------------------------------------------------------------------------
# program
# ---------------------------------------------------------------------------


@dataclass
class Program(Node):
    """A parsed ZL program: ordered declarations plus a procedure table.

    ``main`` names the entry procedure (ZL requires one named ``main``)."""

    name: str
    configs: List[ConfigDecl]
    regions: List[RegionDecl]
    directions: List[DirectionDecl]
    variables: List[VarDecl]
    procedures: Dict[str, ProcedureDecl]
    main: str = "main"


# ---------------------------------------------------------------------------
# traversal helpers
# ---------------------------------------------------------------------------


def expr_children(expr: Expr) -> List[Expr]:
    """Immediate sub-expressions of ``expr`` (empty for leaves)."""
    if isinstance(expr, BinOp):
        return [expr.lhs, expr.rhs]
    if isinstance(expr, UnOp):
        return [expr.operand]
    if isinstance(expr, Call):
        return list(expr.args)
    if isinstance(expr, Reduce):
        return [expr.operand]
    return []


def walk_expr(expr: Expr):
    """Yield ``expr`` and all sub-expressions, pre-order."""
    yield expr
    for child in expr_children(expr):
        yield from walk_expr(child)


def stmt_children(stmt: Stmt) -> List[Stmt]:
    """Immediate sub-statements of ``stmt``."""
    if isinstance(stmt, RegionScope):
        return list(stmt.body)
    if isinstance(stmt, For):
        return list(stmt.body)
    if isinstance(stmt, Repeat):
        return list(stmt.body)
    if isinstance(stmt, If):
        out: List[Stmt] = []
        for _, body in stmt.arms:
            out.extend(body)
        out.extend(stmt.orelse)
        return out
    return []


def walk_stmts(stmts: List[Stmt]):
    """Yield every statement in ``stmts``, recursively, pre-order."""
    for stmt in stmts:
        yield stmt
        yield from walk_stmts(stmt_children(stmt))


def stmt_exprs(stmt: Stmt) -> List[Expr]:
    """Expressions appearing directly in ``stmt`` (not in sub-statements)."""
    if isinstance(stmt, Assign):
        return [stmt.value]
    if isinstance(stmt, For):
        out = [stmt.low, stmt.high]
        if stmt.step is not None:
            out.append(stmt.step)
        return out
    if isinstance(stmt, Repeat):
        return [stmt.cond]
    if isinstance(stmt, If):
        return [cond for cond, _ in stmt.arms]
    return []
