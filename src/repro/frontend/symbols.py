"""Symbol table for ZL semantic analysis.

ZL has a single flat global namespace for configs, regions, directions,
arrays and scalars (procedures live in their own table on the AST).
Loop variables are the only lexically scoped names; the analyzer manages
them with an explicit scope stack.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.errors import SemanticError
from repro.frontend.source import SourceLocation
from repro.lang.regions import Direction, Region
from repro.lang.types import ScalarType


@dataclass(frozen=True)
class ConfigSymbol:
    """A compile-time constant (possibly overridden at compile time)."""

    name: str
    type: ScalarType
    value: float  # ints stored exactly; floats as-is


@dataclass(frozen=True)
class RegionSymbol:
    """A named region with its evaluated bounds."""

    name: str
    region: Region


@dataclass(frozen=True)
class DirectionSymbol:
    """A named direction."""

    name: str
    direction: Direction


@dataclass(frozen=True)
class ArraySymbol:
    """A parallel array declared over a region."""

    name: str
    region_name: str
    region: Region
    type: ScalarType

    @property
    def rank(self) -> int:
        return self.region.rank


@dataclass(frozen=True)
class ScalarSymbol:
    """A replicated scalar variable."""

    name: str
    type: ScalarType


class SymbolTable:
    """Flat global namespace plus a loop-variable scope stack."""

    def __init__(self) -> None:
        self.configs: Dict[str, ConfigSymbol] = {}
        self.regions: Dict[str, RegionSymbol] = {}
        self.directions: Dict[str, DirectionSymbol] = {}
        self.arrays: Dict[str, ArraySymbol] = {}
        self.scalars: Dict[str, ScalarSymbol] = {}
        self._loop_vars: List[str] = []

    # -- declaration -----------------------------------------------------
    def declare(self, symbol, location: Optional[SourceLocation] = None) -> None:
        """Insert a symbol, rejecting duplicates across all namespaces."""
        name = symbol.name
        if self.lookup_any(name) is not None:
            raise SemanticError(f"duplicate declaration of {name!r}", location)
        if isinstance(symbol, ConfigSymbol):
            self.configs[name] = symbol
        elif isinstance(symbol, RegionSymbol):
            self.regions[name] = symbol
        elif isinstance(symbol, DirectionSymbol):
            self.directions[name] = symbol
        elif isinstance(symbol, ArraySymbol):
            self.arrays[name] = symbol
        elif isinstance(symbol, ScalarSymbol):
            self.scalars[name] = symbol
        else:  # pragma: no cover - defensive
            raise TypeError(f"unknown symbol kind: {symbol!r}")

    # -- loop variables ----------------------------------------------------
    def push_loop_var(self, name: str, location=None) -> None:
        if self.lookup_any(name) is not None or name in self._loop_vars:
            raise SemanticError(
                f"loop variable {name!r} shadows an existing name", location
            )
        self._loop_vars.append(name)

    def pop_loop_var(self, name: str) -> None:
        assert self._loop_vars and self._loop_vars[-1] == name
        self._loop_vars.pop()

    def is_loop_var(self, name: str) -> bool:
        return name in self._loop_vars

    # -- lookup ------------------------------------------------------------
    def lookup_any(self, name: str):
        """Find a symbol of any kind (None if undeclared)."""
        for table in (
            self.configs,
            self.regions,
            self.directions,
            self.arrays,
            self.scalars,
        ):
            if name in table:
                return table[name]
        return None

    def require_region(self, name: str, location=None) -> Region:
        sym = self.regions.get(name)
        if sym is None:
            raise SemanticError(f"undeclared region {name!r}", location)
        return sym.region

    def require_direction(self, name: str, location=None) -> Direction:
        sym = self.directions.get(name)
        if sym is None:
            raise SemanticError(f"undeclared direction {name!r}", location)
        return sym.direction

    def require_array(self, name: str, location=None) -> ArraySymbol:
        sym = self.arrays.get(name)
        if sym is None:
            raise SemanticError(f"undeclared array {name!r}", location)
        return sym
