"""Semantic analysis for ZL.

Responsibilities:

* evaluate config constants (with caller overrides — this is how the
  benchmark harness sets problem sizes), region bounds, and directions;
* build the :class:`~repro.frontend.symbols.SymbolTable`;
* classify every expression as *parallel* (array-valued) or *scalar*;
* enforce ZL's static rules, in particular the ones the optimizer depends
  on: every array statement has a region scope of matching rank, and every
  shifted read ``A@d`` over scope region ``r`` satisfies
  ``shift(r, d) ⊆ domain(A)`` so communication partners are always
  well-defined;
* compute per-array fluff (ghost) widths — the per-dimension maximum
  absolute shift offset applied to that array anywhere in the program.

The result, :class:`ProgramInfo`, is the complete compile-time picture
that lowering (:mod:`repro.ir.build`) and the runtime consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import SemanticError
from repro.frontend import ast
from repro.frontend.symbols import (
    ArraySymbol,
    ConfigSymbol,
    DirectionSymbol,
    RegionSymbol,
    ScalarSymbol,
    SymbolTable,
)
from repro.lang.regions import Direction, Region
from repro.lang.types import INTEGER, type_by_name

#: Intrinsic functions: name -> (min arity, max arity)
INTRINSICS: Dict[str, Tuple[int, int]] = {
    "abs": (1, 1),
    "fabs": (1, 1),
    "sqrt": (1, 1),
    "exp": (1, 1),
    "ln": (1, 1),
    "log": (1, 1),
    "sin": (1, 1),
    "cos": (1, 1),
    "tanh": (1, 1),
    "floor": (1, 1),
    "ceil": (1, 1),
    "sign": (1, 1),
    "min": (2, 2),
    "max": (2, 2),
    "pow": (2, 2),
}

#: Builtin index arrays (ZPL's Index1/Index2/Index3): indexK evaluates, at
#: each point of the enclosing region scope, to that point's K-th
#: coordinate.
INDEX_BUILTINS = {"index1": 1, "index2": 2, "index3": 3}


@dataclass
class ProgramInfo:
    """Everything semantic analysis learned about a checked program."""

    program: ast.Program
    symbols: SymbolTable
    config_values: Dict[str, float]
    #: per-array fluff width, one non-negative int per dimension
    fluff_widths: Dict[str, Tuple[int, ...]]
    #: every (array, direction-name) pair that appears as A@d in the program
    shift_uses: List[Tuple[str, str]] = field(default_factory=list)

    @property
    def name(self) -> str:
        return self.program.name

    def region(self, name: str) -> Region:
        return self.symbols.regions[name].region

    def direction(self, name: str) -> Direction:
        return self.symbols.directions[name].direction

    def array(self, name: str) -> ArraySymbol:
        return self.symbols.arrays[name]


# ---------------------------------------------------------------------------
# constant evaluation
# ---------------------------------------------------------------------------


def eval_const_expr(expr: ast.Expr, env: Dict[str, float]) -> float:
    """Evaluate a compile-time-constant expression over config values.

    Used for config defaults and region bounds.  Supports arithmetic,
    unary minus, and the two-argument ``min``/``max`` intrinsics.
    Integer/integer division truncates toward negative infinity
    (Python ``//``) only when both operands are integral.
    """
    if isinstance(expr, ast.IntLit):
        return expr.value
    if isinstance(expr, ast.FloatLit):
        return expr.value
    if isinstance(expr, ast.NameRef):
        if expr.name not in env:
            raise SemanticError(
                f"{expr.name!r} is not a config constant usable in a "
                "constant expression",
                expr.location,
            )
        return env[expr.name]
    if isinstance(expr, ast.UnOp) and expr.op == "-":
        return -eval_const_expr(expr.operand, env)
    if isinstance(expr, ast.BinOp):
        a = eval_const_expr(expr.lhs, env)
        b = eval_const_expr(expr.rhs, env)
        if expr.op == "+":
            return a + b
        if expr.op == "-":
            return a - b
        if expr.op == "*":
            return a * b
        if expr.op == "/":
            if isinstance(a, int) and isinstance(b, int):
                if b == 0:
                    raise SemanticError("division by zero in constant", expr.location)
                return a // b
            return a / b
        if expr.op == "^":
            return a**b
        raise SemanticError(
            f"operator {expr.op!r} not allowed in constant expression",
            expr.location,
        )
    if isinstance(expr, ast.Call) and expr.func in ("min", "max") and len(expr.args) == 2:
        vals = [eval_const_expr(a, env) for a in expr.args]
        return min(vals) if expr.func == "min" else max(vals)
    raise SemanticError("expression is not compile-time constant", expr.location)


def _require_int(value: float, what: str, location) -> int:
    if isinstance(value, bool) or not float(value).is_integer():
        raise SemanticError(f"{what} must be an integer, got {value}", location)
    return int(value)


# ---------------------------------------------------------------------------
# the analyzer
# ---------------------------------------------------------------------------


class _Analyzer:
    def __init__(
        self, program: ast.Program, config_overrides: Optional[Dict[str, float]]
    ) -> None:
        self.program = program
        self.overrides = dict(config_overrides or {})
        self.symbols = SymbolTable()
        self.config_values: Dict[str, float] = {}
        self.fluff: Dict[str, List[int]] = {}
        self.shift_uses: List[Tuple[str, str]] = []
        self._region_stack: List[str] = []
        self._call_stack: List[str] = []

    # -- entry -------------------------------------------------------------
    def run(self) -> ProgramInfo:
        self._declare_configs()
        self._declare_regions()
        self._declare_directions()
        self._declare_variables()
        self._check_procedure(self.program.main)
        unknown = set(self.overrides) - set(self.config_values)
        if unknown:
            raise SemanticError(
                f"config overrides for undeclared names: {sorted(unknown)}"
            )
        return ProgramInfo(
            program=self.program,
            symbols=self.symbols,
            config_values=dict(self.config_values),
            fluff_widths={k: tuple(v) for k, v in self.fluff.items()},
            shift_uses=list(dict.fromkeys(self.shift_uses)),
        )

    # -- declarations --------------------------------------------------------
    def _declare_configs(self) -> None:
        for decl in self.program.configs:
            ctype = type_by_name(decl.type_name)
            if decl.name in self.overrides:
                value = self.overrides[decl.name]
            else:
                value = eval_const_expr(decl.default, self.config_values)
            if ctype is INTEGER:
                value = _require_int(value, f"config {decl.name!r}", decl.location)
            self.config_values[decl.name] = value
            self.symbols.declare(
                ConfigSymbol(decl.name, ctype, value), decl.location
            )

    def _declare_regions(self) -> None:
        for decl in self.program.regions:
            lows: List[int] = []
            highs: List[int] = []
            for lo_expr, hi_expr in decl.ranges:
                lo = _require_int(
                    eval_const_expr(lo_expr, self.config_values),
                    f"region {decl.name!r} lower bound",
                    decl.location,
                )
                hi = _require_int(
                    eval_const_expr(hi_expr, self.config_values),
                    f"region {decl.name!r} upper bound",
                    decl.location,
                )
                lows.append(lo)
                highs.append(hi)
            region = Region(decl.name, tuple(lows), tuple(highs))
            if region.is_empty:
                raise SemanticError(
                    f"region {decl.name!r} is empty: {region}", decl.location
                )
            self.symbols.declare(RegionSymbol(decl.name, region), decl.location)

    def _declare_directions(self) -> None:
        for decl in self.program.directions:
            direction = Direction(decl.name, tuple(decl.offsets))
            if direction.is_zero:
                raise SemanticError(
                    f"direction {decl.name!r} is the zero vector", decl.location
                )
            self.symbols.declare(
                DirectionSymbol(decl.name, direction), decl.location
            )

    def _declare_variables(self) -> None:
        for decl in self.program.variables:
            vtype = type_by_name(decl.type_name)
            for name in decl.names:
                if decl.region is None:
                    self.symbols.declare(ScalarSymbol(name, vtype), decl.location)
                else:
                    region = self.symbols.require_region(decl.region, decl.location)
                    self.symbols.declare(
                        ArraySymbol(name, decl.region, region, vtype),
                        decl.location,
                    )
                    self.fluff[name] = [0] * region.rank

    # -- statements ------------------------------------------------------------
    def _check_procedure(self, name: str) -> None:
        proc = self.program.procedures.get(name)
        if proc is None:
            raise SemanticError(f"call to undeclared procedure {name!r}")
        if name in self._call_stack:
            cycle = " -> ".join(self._call_stack + [name])
            raise SemanticError(f"recursive procedure call: {cycle}", proc.location)
        self._call_stack.append(name)
        try:
            self._check_stmts(proc.body)
        finally:
            self._call_stack.pop()

    def _check_stmts(self, stmts: List[ast.Stmt]) -> None:
        for stmt in stmts:
            self._check_stmt(stmt)

    def _check_stmt(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.RegionScope):
            if stmt.region:
                self.symbols.require_region(stmt.region, stmt.location)
                self._region_stack.append(stmt.region)
                try:
                    self._check_stmts(stmt.body)
                finally:
                    self._region_stack.pop()
            else:
                self._check_stmts(stmt.body)
        elif isinstance(stmt, ast.Assign):
            self._check_assign(stmt)
        elif isinstance(stmt, ast.For):
            self._check_scalar_expr(stmt.low, int_context=True)
            self._check_scalar_expr(stmt.high, int_context=True)
            if stmt.step is not None:
                self._check_scalar_expr(stmt.step, int_context=True)
            self.symbols.push_loop_var(stmt.var, stmt.location)
            try:
                self._check_stmts(stmt.body)
            finally:
                self.symbols.pop_loop_var(stmt.var)
        elif isinstance(stmt, ast.Repeat):
            self._check_stmts(stmt.body)
            self._check_scalar_expr(stmt.cond)
        elif isinstance(stmt, ast.If):
            for cond, body in stmt.arms:
                self._check_scalar_expr(cond)
                self._check_stmts(body)
            self._check_stmts(stmt.orelse)
        elif isinstance(stmt, ast.CallStmt):
            self._check_procedure(stmt.proc)
        else:  # pragma: no cover - defensive
            raise SemanticError(f"unknown statement {stmt!r}", stmt.location)

    def _check_assign(self, stmt: ast.Assign) -> None:
        target = self.symbols.lookup_any(stmt.target)
        if target is None:
            raise SemanticError(
                f"assignment to undeclared name {stmt.target!r}", stmt.location
            )
        if isinstance(target, ArraySymbol):
            scope = self._current_region(stmt.location)
            if scope.rank != target.rank:
                raise SemanticError(
                    f"array {target.name!r} has rank {target.rank} but the "
                    f"region scope {scope.name!r} has rank {scope.rank}",
                    stmt.location,
                )
            if not target.region.contains(scope):
                raise SemanticError(
                    f"region scope {scope.name!r} {scope} is not contained "
                    f"in the domain {target.region} of array {target.name!r}",
                    stmt.location,
                )
            self._check_parallel_expr(stmt.value, scope)
        elif isinstance(target, ScalarSymbol):
            self._check_scalar_expr(stmt.value)
        elif isinstance(target, ConfigSymbol):
            raise SemanticError(
                f"cannot assign to config constant {stmt.target!r}", stmt.location
            )
        else:
            raise SemanticError(
                f"cannot assign to {stmt.target!r} (a "
                f"{type(target).__name__})",
                stmt.location,
            )

    def _current_region(self, location) -> Region:
        if not self._region_stack:
            raise SemanticError(
                "array statement outside any region scope", location
            )
        return self.symbols.regions[self._region_stack[-1]].region

    # -- expressions --------------------------------------------------------
    def _check_parallel_expr(self, expr: ast.Expr, scope: Region) -> None:
        """Check an expression appearing in an array statement executed over
        region ``scope``.  Scalars broadcast; arrays must cover the scope."""
        if isinstance(expr, (ast.IntLit, ast.FloatLit, ast.BoolLit)):
            return
        if isinstance(expr, ast.NameRef):
            name = expr.name
            if name in INDEX_BUILTINS:
                if INDEX_BUILTINS[name] > scope.rank:
                    raise SemanticError(
                        f"{name} used in a rank-{scope.rank} region scope",
                        expr.location,
                    )
                return
            sym = self.symbols.lookup_any(name)
            if sym is None and not self.symbols.is_loop_var(name):
                raise SemanticError(f"undeclared name {name!r}", expr.location)
            if isinstance(sym, ArraySymbol):
                self._check_array_read(sym, None, scope, expr.location)
            elif isinstance(sym, (RegionSymbol, DirectionSymbol)):
                raise SemanticError(
                    f"{name!r} is not a value in this context", expr.location
                )
            return
        if isinstance(expr, ast.ShiftRef):
            sym = self.symbols.require_array(expr.array, expr.location)
            direction = self.symbols.require_direction(expr.direction, expr.location)
            if expr.wrap:
                self._check_wrap_read(sym, direction, scope, expr.location)
            else:
                self._check_array_read(sym, direction, scope, expr.location)
            self._record_shift(sym, direction, expr.location)
            return
        if isinstance(expr, ast.BinOp):
            self._check_parallel_expr(expr.lhs, scope)
            self._check_parallel_expr(expr.rhs, scope)
            return
        if isinstance(expr, ast.UnOp):
            self._check_parallel_expr(expr.operand, scope)
            return
        if isinstance(expr, ast.Call):
            self._check_intrinsic(expr)
            for arg in expr.args:
                self._check_parallel_expr(arg, scope)
            return
        if isinstance(expr, ast.Reduce):
            raise SemanticError(
                "reductions are not allowed inside array statements "
                "(assign the reduction to a scalar first)",
                expr.location,
            )
        raise SemanticError(f"unsupported expression {expr!r}", expr.location)

    def _check_array_read(
        self,
        sym: ArraySymbol,
        direction: Optional[Direction],
        scope: Region,
        location,
    ) -> None:
        if sym.rank != scope.rank:
            raise SemanticError(
                f"array {sym.name!r} has rank {sym.rank} but the region "
                f"scope has rank {scope.rank}",
                location,
            )
        if direction is not None and direction.rank != sym.rank:
            raise SemanticError(
                f"direction {direction.name!r} has rank {direction.rank} "
                f"but array {sym.name!r} has rank {sym.rank}",
                location,
            )
        read = scope if direction is None else scope.shifted(direction)
        if not sym.region.contains(read):
            how = f"@{direction.name}" if direction else ""
            raise SemanticError(
                f"reading {sym.name}{how} over {scope} touches {read}, "
                f"outside the array's domain {sym.region}",
                location,
            )

    def _check_wrap_read(
        self,
        sym: ArraySymbol,
        direction: Direction,
        scope: Region,
        location,
    ) -> None:
        """A periodic (wrap-@) read: indices falling off the array's
        domain wrap to the opposite edge.  The scope itself must lie in
        the domain; shifts along processor-local dimensions (dim >= 2)
        cannot wrap (local buffers carry no fluff there)."""
        if sym.rank != scope.rank or direction.rank != sym.rank:
            raise SemanticError(
                f"rank mismatch in wrap read of {sym.name!r}", location
            )
        if not sym.region.contains(scope):
            raise SemanticError(
                f"wrap read of {sym.name!r} over {scope} outside the "
                f"array's domain {sym.region}",
                location,
            )
        local_dims = range(1 if sym.rank == 1 else 2, sym.rank)
        for d in local_dims:
            if direction.offsets[d] != 0:
                raise SemanticError(
                    f"wrap shift {direction.name!r} moves along "
                    f"processor-local dimension {d + 1}; wrap is only "
                    "supported along distributed dimensions",
                    location,
                )
        for d, off in enumerate(direction.offsets):
            extent = sym.region.highs[d] - sym.region.lows[d] + 1
            if abs(off) >= extent:
                raise SemanticError(
                    f"wrap shift {direction.name!r} offset {off} is as "
                    f"large as the domain extent {extent} in dim {d + 1}",
                    location,
                )

    def _record_shift(self, sym: ArraySymbol, direction: Direction, location) -> None:
        if direction.rank != sym.rank:
            raise SemanticError(
                f"direction {direction.name!r} has rank {direction.rank} "
                f"but array {sym.name!r} has rank {sym.rank}",
                location,
            )
        widths = self.fluff[sym.name]
        for d, off in enumerate(direction.offsets):
            widths[d] = max(widths[d], abs(off))
        self.shift_uses.append((sym.name, direction.name))

    def _check_scalar_expr(self, expr: ast.Expr, int_context: bool = False) -> None:
        """Check an expression in scalar position (scalar assignment RHS,
        loop bounds, conditions).  Array references may appear only inside
        a reduction."""
        if isinstance(expr, (ast.IntLit, ast.FloatLit, ast.BoolLit)):
            return
        if isinstance(expr, ast.NameRef):
            name = expr.name
            if self.symbols.is_loop_var(name):
                return
            sym = self.symbols.lookup_any(name)
            if sym is None:
                raise SemanticError(f"undeclared name {name!r}", expr.location)
            if isinstance(sym, ArraySymbol):
                raise SemanticError(
                    f"array {name!r} used in scalar context (wrap it in a "
                    "reduction such as +<<)",
                    expr.location,
                )
            if isinstance(sym, (RegionSymbol, DirectionSymbol)):
                raise SemanticError(
                    f"{name!r} is not a value in this context", expr.location
                )
            return
        if isinstance(expr, ast.ShiftRef):
            raise SemanticError(
                "shifted array reference in scalar context", expr.location
            )
        if isinstance(expr, ast.BinOp):
            self._check_scalar_expr(expr.lhs, int_context)
            self._check_scalar_expr(expr.rhs, int_context)
            return
        if isinstance(expr, ast.UnOp):
            self._check_scalar_expr(expr.operand, int_context)
            return
        if isinstance(expr, ast.Call):
            self._check_intrinsic(expr)
            for arg in expr.args:
                self._check_scalar_expr(arg, int_context)
            return
        if isinstance(expr, ast.Reduce):
            scope = self._current_region(expr.location)
            self._check_parallel_expr(expr.operand, scope)
            return
        raise SemanticError(f"unsupported expression {expr!r}", expr.location)

    def _check_intrinsic(self, expr: ast.Call) -> None:
        if expr.func not in INTRINSICS:
            raise SemanticError(
                f"unknown function {expr.func!r} (user functions take the "
                "form of procedures and cannot appear in expressions)",
                expr.location,
            )
        lo, hi = INTRINSICS[expr.func]
        if not (lo <= len(expr.args) <= hi):
            raise SemanticError(
                f"{expr.func} expects {lo}"
                + (f"..{hi}" if hi != lo else "")
                + f" arguments, got {len(expr.args)}",
                expr.location,
            )


def analyze(
    program: ast.Program, config: Optional[Dict[str, float]] = None
) -> ProgramInfo:
    """Semantically check ``program`` and resolve compile-time values.

    Parameters
    ----------
    program:
        A parsed :class:`~repro.frontend.ast.Program`.
    config:
        Overrides for ``config`` constants, e.g. ``{"n": 128}``.  This is
        how the harness sets the paper's problem sizes without editing
        sources.

    Returns
    -------
    ProgramInfo

    Raises
    ------
    SemanticError
        On any static violation; the message carries a source location.
    """
    return _Analyzer(program, config).run()
