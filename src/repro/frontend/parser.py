"""Recursive-descent parser for ZL.

Grammar (EBNF; ``{}`` repetition, ``[]`` option)::

    program    = "program" IDENT ";" { decl } EOF
    decl       = config | region | direction | var | procedure
    config     = "config" IDENT ":" type "=" expr ";"
    region     = "region" IDENT "=" "[" range { "," range } "]" ";"
    range      = expr ".." expr
    direction  = "direction" IDENT "=" "[" sint { "," sint } "]" ";"
    var        = "var" identlist ":" [ "[" IDENT "]" ] type ";"
    procedure  = "procedure" IDENT "(" ")" ";" block ";"
    block      = "begin" { stmt } "end"
    stmt       = "[" IDENT "]" stmt
               | block ";"
               | "for" IDENT ":=" expr "to" expr [ "by" expr ]
                     "do" { stmt } "end" ";"
               | "repeat" { stmt } "until" expr ";"
               | "if" expr "then" { stmt }
                     { "elsif" expr "then" { stmt } }
                     [ "else" { stmt } ] "end" ";"
               | IDENT ":=" expr ";"
               | IDENT "(" ")" ";"

Expressions use conventional precedence (low to high): ``or``; ``and``;
``not``; relations ``= != < <= > >=``; additive ``+ -``; multiplicative
``* /``; unary ``-``; exponent ``^`` (right associative); primary.

Reductions are prefix forms at primary level: ``+<< e``, ``*<< e``,
``max<< e``, ``min<< e`` with an additive-precedence operand (write
parentheses for anything looser).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.errors import ParseError
from repro.frontend import ast
from repro.frontend.lexer import tokenize
from repro.frontend.tokens import Token, TokenKind

_TYPE_KINDS = (TokenKind.DOUBLE, TokenKind.INTEGER, TokenKind.BOOLEAN)

_REL_OPS = {
    TokenKind.EQ: "=",
    TokenKind.NE: "!=",
    TokenKind.LT: "<",
    TokenKind.LE: "<=",
    TokenKind.GT: ">",
    TokenKind.GE: ">=",
}


class _Parser:
    def __init__(self, tokens: List[Token]) -> None:
        self.tokens = tokens
        self.pos = 0

    # -- token plumbing -------------------------------------------------
    def _peek(self, ahead: int = 0) -> Token:
        i = min(self.pos + ahead, len(self.tokens) - 1)
        return self.tokens[i]

    def _at(self, *kinds: TokenKind) -> bool:
        return self._peek().kind in kinds

    def _advance(self) -> Token:
        tok = self.tokens[self.pos]
        if tok.kind is not TokenKind.EOF:
            self.pos += 1
        return tok

    def _expect(self, kind: TokenKind, what: str = "") -> Token:
        tok = self._peek()
        if tok.kind is not kind:
            want = what or kind.value
            raise ParseError(f"expected {want}, found {tok}", tok.location)
        return self._advance()

    def _expect_ident(self, what: str = "identifier") -> Token:
        return self._expect(TokenKind.IDENT, what)

    # -- program & declarations -----------------------------------------
    def parse_program(self) -> ast.Program:
        loc = self._peek().location
        self._expect(TokenKind.PROGRAM)
        name = self._expect_ident("program name").value
        self._expect(TokenKind.SEMI)

        configs: List[ast.ConfigDecl] = []
        regions: List[ast.RegionDecl] = []
        directions: List[ast.DirectionDecl] = []
        variables: List[ast.VarDecl] = []
        procedures = {}

        while not self._at(TokenKind.EOF):
            tok = self._peek()
            if tok.kind is TokenKind.CONFIG:
                configs.append(self._parse_config())
            elif tok.kind is TokenKind.REGION:
                regions.append(self._parse_region())
            elif tok.kind is TokenKind.DIRECTION:
                directions.append(self._parse_direction())
            elif tok.kind is TokenKind.VAR:
                variables.append(self._parse_var())
            elif tok.kind is TokenKind.PROCEDURE:
                proc = self._parse_procedure()
                if proc.name in procedures:
                    raise ParseError(
                        f"duplicate procedure {proc.name!r}", proc.location
                    )
                procedures[proc.name] = proc
            else:
                raise ParseError(f"expected a declaration, found {tok}", tok.location)

        if "main" not in procedures:
            raise ParseError("program has no 'main' procedure", loc)
        return ast.Program(
            name=name,
            configs=configs,
            regions=regions,
            directions=directions,
            variables=variables,
            procedures=procedures,
            location=loc,
        )

    def _parse_config(self) -> ast.ConfigDecl:
        loc = self._advance().location  # 'config'
        name = self._expect_ident("config name").value
        self._expect(TokenKind.COLON)
        type_tok = self._peek()
        if type_tok.kind not in _TYPE_KINDS:
            raise ParseError(f"expected a type, found {type_tok}", type_tok.location)
        self._advance()
        self._expect(TokenKind.EQ)
        default = self.parse_expr()
        self._expect(TokenKind.SEMI)
        return ast.ConfigDecl(name, type_tok.value, default, location=loc)

    def _parse_region(self) -> ast.RegionDecl:
        loc = self._advance().location  # 'region'
        name = self._expect_ident("region name").value
        self._expect(TokenKind.EQ)
        self._expect(TokenKind.LBRACKET)
        ranges: List[Tuple[ast.Expr, ast.Expr]] = []
        while True:
            low = self.parse_expr()
            self._expect(TokenKind.DOTDOT)
            high = self.parse_expr()
            ranges.append((low, high))
            if self._at(TokenKind.COMMA):
                self._advance()
            else:
                break
        self._expect(TokenKind.RBRACKET)
        self._expect(TokenKind.SEMI)
        return ast.RegionDecl(name, ranges, location=loc)

    def _parse_direction(self) -> ast.DirectionDecl:
        loc = self._advance().location  # 'direction'
        name = self._expect_ident("direction name").value
        self._expect(TokenKind.EQ)
        self._expect(TokenKind.LBRACKET)
        offsets: List[int] = []
        while True:
            offsets.append(self._parse_signed_int())
            if self._at(TokenKind.COMMA):
                self._advance()
            else:
                break
        self._expect(TokenKind.RBRACKET)
        self._expect(TokenKind.SEMI)
        return ast.DirectionDecl(name, offsets, location=loc)

    def _parse_signed_int(self) -> int:
        sign = 1
        if self._at(TokenKind.MINUS):
            self._advance()
            sign = -1
        elif self._at(TokenKind.PLUS):
            self._advance()
        tok = self._expect(TokenKind.INTLIT, "integer offset")
        return sign * int(tok.value)

    def _parse_var(self) -> ast.VarDecl:
        loc = self._advance().location  # 'var'
        names = [self._expect_ident("variable name").value]
        while self._at(TokenKind.COMMA):
            self._advance()
            names.append(self._expect_ident("variable name").value)
        self._expect(TokenKind.COLON)
        region: Optional[str] = None
        if self._at(TokenKind.LBRACKET):
            self._advance()
            region = self._expect_ident("region name").value
            self._expect(TokenKind.RBRACKET)
        type_tok = self._peek()
        if type_tok.kind not in _TYPE_KINDS:
            raise ParseError(f"expected a type, found {type_tok}", type_tok.location)
        self._advance()
        self._expect(TokenKind.SEMI)
        return ast.VarDecl(names, region, type_tok.value, location=loc)

    def _parse_procedure(self) -> ast.ProcedureDecl:
        loc = self._advance().location  # 'procedure'
        name = self._expect_ident("procedure name").value
        self._expect(TokenKind.LPAREN)
        self._expect(TokenKind.RPAREN)
        self._expect(TokenKind.SEMI)
        body = self._parse_block()
        self._expect(TokenKind.SEMI)
        return ast.ProcedureDecl(name, body, location=loc)

    # -- statements -------------------------------------------------------
    def _parse_block(self) -> List[ast.Stmt]:
        self._expect(TokenKind.BEGIN)
        body = self._parse_stmts_until(TokenKind.END)
        self._expect(TokenKind.END)
        return body

    def _parse_stmts_until(self, *terminators: TokenKind) -> List[ast.Stmt]:
        stmts: List[ast.Stmt] = []
        while not self._at(*terminators, TokenKind.EOF):
            stmts.append(self.parse_stmt())
        return stmts

    def parse_stmt(self) -> ast.Stmt:
        tok = self._peek()
        if tok.kind is TokenKind.LBRACKET:
            return self._parse_region_scope()
        if tok.kind is TokenKind.BEGIN:
            body = self._parse_block()
            self._expect(TokenKind.SEMI)
            # a bare begin/end introduces no scope; represent it as a
            # region-less scope by flattening into an If-free wrapper.
            return ast.RegionScope("", body, location=tok.location)
        if tok.kind is TokenKind.FOR:
            return self._parse_for()
        if tok.kind is TokenKind.REPEAT:
            return self._parse_repeat()
        if tok.kind is TokenKind.IF:
            return self._parse_if()
        if tok.kind is TokenKind.IDENT:
            return self._parse_assign_or_call()
        raise ParseError(f"expected a statement, found {tok}", tok.location)

    def _parse_region_scope(self) -> ast.RegionScope:
        loc = self._advance().location  # '['
        region = self._expect_ident("region name").value
        self._expect(TokenKind.RBRACKET)
        if self._at(TokenKind.BEGIN):
            body = self._parse_block()
            self._expect(TokenKind.SEMI)
        else:
            body = [self.parse_stmt()]
        return ast.RegionScope(region, body, location=loc)

    def _parse_for(self) -> ast.For:
        loc = self._advance().location  # 'for'
        var = self._expect_ident("loop variable").value
        self._expect(TokenKind.ASSIGN)
        low = self.parse_expr()
        self._expect(TokenKind.TO)
        high = self.parse_expr()
        step: Optional[ast.Expr] = None
        if self._at(TokenKind.BY):
            self._advance()
            step = self.parse_expr()
        self._expect(TokenKind.DO)
        body = self._parse_stmts_until(TokenKind.END)
        self._expect(TokenKind.END)
        self._expect(TokenKind.SEMI)
        return ast.For(var, low, high, step, body, location=loc)

    def _parse_repeat(self) -> ast.Repeat:
        loc = self._advance().location  # 'repeat'
        body = self._parse_stmts_until(TokenKind.UNTIL)
        self._expect(TokenKind.UNTIL)
        cond = self.parse_expr()
        self._expect(TokenKind.SEMI)
        return ast.Repeat(body, cond, location=loc)

    def _parse_if(self) -> ast.If:
        loc = self._advance().location  # 'if'
        arms: List[Tuple[ast.Expr, List[ast.Stmt]]] = []
        cond = self.parse_expr()
        self._expect(TokenKind.THEN)
        body = self._parse_stmts_until(
            TokenKind.ELSIF, TokenKind.ELSE, TokenKind.END
        )
        arms.append((cond, body))
        while self._at(TokenKind.ELSIF):
            self._advance()
            cond = self.parse_expr()
            self._expect(TokenKind.THEN)
            body = self._parse_stmts_until(
                TokenKind.ELSIF, TokenKind.ELSE, TokenKind.END
            )
            arms.append((cond, body))
        orelse: List[ast.Stmt] = []
        if self._at(TokenKind.ELSE):
            self._advance()
            orelse = self._parse_stmts_until(TokenKind.END)
        self._expect(TokenKind.END)
        self._expect(TokenKind.SEMI)
        return ast.If(arms, orelse, location=loc)

    def _parse_assign_or_call(self) -> ast.Stmt:
        name_tok = self._advance()
        if self._at(TokenKind.ASSIGN):
            self._advance()
            value = self.parse_expr()
            self._expect(TokenKind.SEMI)
            return ast.Assign(name_tok.value, value, location=name_tok.location)
        if self._at(TokenKind.LPAREN):
            self._advance()
            self._expect(TokenKind.RPAREN)
            self._expect(TokenKind.SEMI)
            return ast.CallStmt(name_tok.value, location=name_tok.location)
        tok = self._peek()
        raise ParseError(f"expected ':=' or '()', found {tok}", tok.location)

    # -- expressions ------------------------------------------------------
    def parse_expr(self) -> ast.Expr:
        return self._parse_or()

    def _parse_or(self) -> ast.Expr:
        expr = self._parse_and()
        while self._at(TokenKind.OR):
            loc = self._advance().location
            expr = ast.BinOp("or", expr, self._parse_and(), location=loc)
        return expr

    def _parse_and(self) -> ast.Expr:
        expr = self._parse_not()
        while self._at(TokenKind.AND):
            loc = self._advance().location
            expr = ast.BinOp("and", expr, self._parse_not(), location=loc)
        return expr

    def _parse_not(self) -> ast.Expr:
        if self._at(TokenKind.NOT):
            loc = self._advance().location
            return ast.UnOp("not", self._parse_not(), location=loc)
        return self._parse_relation()

    def _parse_relation(self) -> ast.Expr:
        expr = self._parse_additive()
        if self._peek().kind in _REL_OPS:
            tok = self._advance()
            rhs = self._parse_additive()
            expr = ast.BinOp(_REL_OPS[tok.kind], expr, rhs, location=tok.location)
        return expr

    def _parse_additive(self) -> ast.Expr:
        expr = self._parse_multiplicative()
        while self._at(TokenKind.PLUS, TokenKind.MINUS):
            tok = self._advance()
            op = "+" if tok.kind is TokenKind.PLUS else "-"
            expr = ast.BinOp(
                op, expr, self._parse_multiplicative(), location=tok.location
            )
        return expr

    def _parse_multiplicative(self) -> ast.Expr:
        expr = self._parse_unary()
        while self._at(TokenKind.STAR, TokenKind.SLASH):
            tok = self._advance()
            op = "*" if tok.kind is TokenKind.STAR else "/"
            expr = ast.BinOp(op, expr, self._parse_unary(), location=tok.location)
        return expr

    def _parse_unary(self) -> ast.Expr:
        if self._at(TokenKind.MINUS) and self._peek(1).kind is not TokenKind.REDUCE:
            loc = self._advance().location
            return ast.UnOp("-", self._parse_unary(), location=loc)
        return self._parse_power()

    def _parse_power(self) -> ast.Expr:
        base = self._parse_primary()
        if self._at(TokenKind.CARET):
            loc = self._advance().location
            # right-associative
            return ast.BinOp("^", base, self._parse_unary(), location=loc)
        return base

    def _parse_primary(self) -> ast.Expr:
        tok = self._peek()
        # reductions: '+<<', '*<<', 'max<<', 'min<<'
        if (
            tok.kind in (TokenKind.PLUS, TokenKind.STAR)
            and self._peek(1).kind is TokenKind.REDUCE
        ):
            self._advance()
            self._advance()
            op = "+" if tok.kind is TokenKind.PLUS else "*"
            return ast.Reduce(op, self._parse_additive(), location=tok.location)
        if (
            tok.kind is TokenKind.IDENT
            and tok.value in ("max", "min")
            and self._peek(1).kind is TokenKind.REDUCE
        ):
            self._advance()
            self._advance()
            return ast.Reduce(tok.value, self._parse_additive(), location=tok.location)

        if tok.kind is TokenKind.INTLIT:
            self._advance()
            return ast.IntLit(int(tok.value), location=tok.location)
        if tok.kind is TokenKind.FLOATLIT:
            self._advance()
            return ast.FloatLit(float(tok.value), location=tok.location)
        if tok.kind is TokenKind.TRUE:
            self._advance()
            return ast.BoolLit(True, location=tok.location)
        if tok.kind is TokenKind.FALSE:
            self._advance()
            return ast.BoolLit(False, location=tok.location)
        if tok.kind is TokenKind.LPAREN:
            self._advance()
            expr = self.parse_expr()
            self._expect(TokenKind.RPAREN)
            return expr
        if tok.kind is TokenKind.IDENT:
            self._advance()
            if self._at(TokenKind.AT, TokenKind.WRAPAT):
                wrap = self._peek().kind is TokenKind.WRAPAT
                self._advance()
                dir_tok = self._expect_ident("direction name")
                return ast.ShiftRef(
                    tok.value, dir_tok.value, wrap=wrap, location=tok.location
                )
            if self._at(TokenKind.LPAREN):
                self._advance()
                args: List[ast.Expr] = []
                if not self._at(TokenKind.RPAREN):
                    args.append(self.parse_expr())
                    while self._at(TokenKind.COMMA):
                        self._advance()
                        args.append(self.parse_expr())
                self._expect(TokenKind.RPAREN)
                return ast.Call(tok.value, args, location=tok.location)
            return ast.NameRef(tok.value, location=tok.location)
        raise ParseError(f"expected an expression, found {tok}", tok.location)


def parse(text: str, filename: str = "<string>") -> ast.Program:
    """Parse ZL source text into an (unchecked) :class:`~repro.frontend.ast.Program`.

    Raises
    ------
    LexError, ParseError
        On malformed input; errors carry source locations.
    """
    parser = _Parser(tokenize(text, filename))
    program = parser.parse_program()
    return program
