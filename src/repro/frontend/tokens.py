"""Token kinds and the token value type for the ZL lexer."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Union

from repro.frontend.source import SourceLocation


class TokenKind(enum.Enum):
    """Lexical categories of ZL.

    Keywords are lexed as their own kinds (not as IDENT with a flag) so the
    parser can match them directly.
    """

    # literals / names
    IDENT = "identifier"
    INTLIT = "integer literal"
    FLOATLIT = "float literal"

    # keywords
    PROGRAM = "program"
    CONFIG = "config"
    REGION = "region"
    DIRECTION = "direction"
    VAR = "var"
    PROCEDURE = "procedure"
    BEGIN = "begin"
    END = "end"
    FOR = "for"
    TO = "to"
    BY = "by"
    DO = "do"
    REPEAT = "repeat"
    UNTIL = "until"
    IF = "if"
    THEN = "then"
    ELSE = "else"
    ELSIF = "elsif"
    DOUBLE = "double"
    INTEGER = "integer"
    BOOLEAN = "boolean"
    TRUE = "true"
    FALSE = "false"
    AND = "and"
    OR = "or"
    NOT = "not"

    # punctuation / operators
    SEMI = ";"
    COLON = ":"
    COMMA = ","
    LPAREN = "("
    RPAREN = ")"
    LBRACKET = "["
    RBRACKET = "]"
    ASSIGN = ":="
    WRAPAT = "@@"
    DOTDOT = ".."
    AT = "@"
    PLUS = "+"
    MINUS = "-"
    STAR = "*"
    SLASH = "/"
    CARET = "^"
    REDUCE = "<<"
    EQ = "="
    NE = "!="
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="

    EOF = "end of input"


KEYWORDS = {
    "program": TokenKind.PROGRAM,
    "config": TokenKind.CONFIG,
    "region": TokenKind.REGION,
    "direction": TokenKind.DIRECTION,
    "var": TokenKind.VAR,
    "procedure": TokenKind.PROCEDURE,
    "begin": TokenKind.BEGIN,
    "end": TokenKind.END,
    "for": TokenKind.FOR,
    "to": TokenKind.TO,
    "by": TokenKind.BY,
    "do": TokenKind.DO,
    "repeat": TokenKind.REPEAT,
    "until": TokenKind.UNTIL,
    "if": TokenKind.IF,
    "then": TokenKind.THEN,
    "else": TokenKind.ELSE,
    "elsif": TokenKind.ELSIF,
    "double": TokenKind.DOUBLE,
    "integer": TokenKind.INTEGER,
    "boolean": TokenKind.BOOLEAN,
    "true": TokenKind.TRUE,
    "false": TokenKind.FALSE,
    "and": TokenKind.AND,
    "or": TokenKind.OR,
    "not": TokenKind.NOT,
}


@dataclass(frozen=True)
class Token:
    """A single lexeme.

    ``value`` holds the identifier text for IDENT, the parsed numeric value
    for INTLIT/FLOATLIT, and the lexeme text otherwise.
    """

    kind: TokenKind
    value: Union[str, int, float]
    location: SourceLocation

    def __str__(self) -> str:
        if self.kind in (TokenKind.IDENT, TokenKind.INTLIT, TokenKind.FLOATLIT):
            return f"{self.kind.name}({self.value})"
        return self.kind.value
