"""Machine-parameter calibration: fit cost fields to measured curves.

The paper's cost models (Figure 3) came from microbenchmarks on real
hardware.  ``repro fit`` inverts that: given *measured* (or target)
execution times per ``benchmark x experiment`` cell, recover the
machine cost parameters — any :mod:`repro.machine.variants` override
path (``net.latency``, ``prim.*.per_byte``, ``reduction.stage_cost``,
...) — that make the simulator reproduce them.  This is the
measure-then-tune loop of modern communication benchmarks, run against
the simulator itself.

The optimizer is a bracketed batched **coordinate descent**: every
round samples each free path's bracket, evaluates *all* candidate
machines in one :func:`repro.simulate_many` call per cell (thousands of
variants cost little more than one thanks to the batched evaluator and
its incremental-append cache), takes the best single-coordinate move,
and shrinks that coordinate's bracket around the winner.  Derivative
free, monotone in loss, and embarrassingly batched.

:func:`synthesize_target` generates ground-truth observations from a
known parameter set, so recovery is testable end to end; see
``tests/fit/`` and ``docs/SWEEPS.md``.
"""

from __future__ import annotations

import itertools
import json
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.engine.worker import compile_cached
from repro.errors import MachineError
from repro.experiments_registry import experiment_spec
from repro.machine import (
    apply_overrides,
    default_bounds,
    machine_by_name,
    override_value,
    validate_override_path,
)
from repro.obs import core as obs
from repro.programs.registry import default_config
from repro.runtime import ExecutionMode, SimOptions, simulate_many

__all__ = [
    "FIT_SCHEMA",
    "FitObservation",
    "FitResult",
    "FitTarget",
    "fit_machine",
    "load_target",
    "synthesize_target",
]

#: Schema version of fit target/result JSON documents.
FIT_SCHEMA = 1


@dataclass(frozen=True)
class FitObservation:
    """One measured cell: the execution time of ``benchmark`` under
    ``experiment`` on the machine being calibrated."""

    benchmark: str
    experiment: str
    time: float


@dataclass
class FitTarget:
    """What calibration fits against: a machine identity plus measured
    times.

    ``overrides`` pins known parameters (they apply to every candidate,
    exactly like sweep overrides); ``config`` optionally overrides each
    benchmark's problem configuration (synthetic targets use small
    ones so tests run in seconds).
    """

    machine: str
    nprocs: int
    observations: Tuple[FitObservation, ...]
    library: Optional[str] = None
    overrides: Dict[str, float] = field(default_factory=dict)
    config: Dict[str, Dict[str, int]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.observations:
            raise MachineError("fit target has no observations")
        seen = set()
        for ob in self.observations:
            cell = (ob.benchmark, ob.experiment)
            if cell in seen:
                raise MachineError(
                    f"duplicate observation for {cell} in fit target"
                )
            seen.add(cell)
            if not ob.time > 0:
                raise MachineError(
                    f"observation {cell} has non-positive time {ob.time!r}"
                )

    def as_dict(self) -> dict:
        return {
            "schema": FIT_SCHEMA,
            "machine": self.machine,
            "nprocs": self.nprocs,
            "library": self.library,
            "overrides": dict(self.overrides),
            "config": {b: dict(c) for b, c in self.config.items()},
            "observations": [asdict(ob) for ob in self.observations],
        }

    def write_json(self, path: Union[str, Path]) -> Path:
        path = Path(path)
        path.write_text(
            json.dumps(self.as_dict(), indent=1, sort_keys=True) + "\n"
        )
        return path


def load_target(path: Union[str, Path]) -> FitTarget:
    """Read a versioned fit-target JSON document."""
    doc = json.loads(Path(path).read_text())
    schema = doc.get("schema")
    if schema != FIT_SCHEMA:
        raise MachineError(
            f"fit target {path} has schema {schema!r}; this build reads "
            f"schema {FIT_SCHEMA}"
        )
    return FitTarget(
        machine=doc["machine"],
        nprocs=int(doc["nprocs"]),
        library=doc.get("library"),
        overrides=dict(doc.get("overrides") or {}),
        config={
            b: dict(c) for b, c in (doc.get("config") or {}).items()
        },
        observations=tuple(
            FitObservation(
                benchmark=ob["benchmark"],
                experiment=ob["experiment"],
                time=float(ob["time"]),
            )
            for ob in doc["observations"]
        ),
    )


# ---------------------------------------------------------------------------
# evaluation cells
# ---------------------------------------------------------------------------


@dataclass
class _Cell:
    """One (benchmark, experiment) group of observations, compiled."""

    benchmark: str
    experiment: str
    library: str
    program: object
    obs_index: int  # row of the observation vector
    measured: float


def _build_cells(target: FitTarget) -> List[_Cell]:
    cells: List[_Cell] = []
    for i, ob in enumerate(target.observations):
        spec = experiment_spec(ob.experiment)
        library = target.library or spec.library
        merged = default_config(ob.benchmark)
        merged.update(target.config.get(ob.benchmark, {}))
        config_items = tuple(sorted(merged.items()))
        program, _, _, _, _, _ = compile_cached(
            ob.benchmark, config_items, spec.opt
        )
        cells.append(
            _Cell(
                benchmark=ob.benchmark,
                experiment=ob.experiment,
                library=library,
                program=program,
                obs_index=i,
                measured=ob.time,
            )
        )
    return cells


def _evaluate(
    target: FitTarget,
    cells: Sequence[_Cell],
    candidates: Sequence[Mapping[str, float]],
) -> np.ndarray:
    """Simulated times, shape ``(len(candidates), len(cells))`` — one
    batched call per cell, every candidate a variant row."""
    times = np.empty((len(candidates), len(cells)), dtype=np.float64)
    machines_by_lib: Dict[str, list] = {}
    for j, cell in enumerate(cells):
        if cell.library not in machines_by_lib:
            base = machine_by_name(
                target.machine, target.nprocs, cell.library
            )
            machines_by_lib[cell.library] = [
                apply_overrides(base, {**target.overrides, **cand})
                for cand in candidates
            ]
        batch = simulate_many(
            cell.program,
            machines_by_lib[cell.library],
            options=SimOptions(mode=ExecutionMode.TIMING),
        )
        times[:, j] = batch.times_for(cell.program.name)
    return times


def _loss_vector(times: np.ndarray, measured: np.ndarray) -> np.ndarray:
    """Mean squared *relative* error per candidate row."""
    rel = (times - measured[None, :]) / measured[None, :]
    return np.mean(rel * rel, axis=1)


class _Coordinate:
    """One fitted path's search state: a bracket that *recenters on the
    current value every round* and shrinks only when the winner lands in
    its interior (or nothing improves).

    Positive-bounded parameters search multiplicatively (cost fields
    are scale-free: a latency is as likely 1e-6 as 1e-4); parameters
    whose lower bound is 0 search linearly.  Edge wins slide the
    bracket instead of shrinking it, so a bad initial guess walks to
    the optimum at constant resolution instead of fencing itself in —
    the standard compass-search escape for coordinate descent valleys.
    """

    def __init__(
        self, path: str, lo: float, hi: float, integral: bool
    ) -> None:
        self.path = path
        self.lo = lo
        self.hi = hi
        self.integral = integral
        self.multiplicative = lo > 0
        if self.multiplicative:
            self.span = (hi / lo) ** 0.5  # factor: bracket = c/span..c*span
        else:
            self.span = (hi - lo) / 2.0  # half-width
        self._last: List[float] = []

    def sample(self, center: float, samples: int) -> List[float]:
        if self.multiplicative:
            a = max(self.lo, center / self.span)
            b = min(self.hi, center * self.span)
            vals = np.geomspace(a, b, samples) if a < b else np.array([a])
        else:
            a = max(self.lo, center - self.span)
            b = min(self.hi, center + self.span)
            vals = np.linspace(a, b, samples) if a < b else np.array([a])
        out: List[float] = []
        for v in vals:
            v = float(v)
            if self.integral:
                v = float(int(round(v)))
            if not out or v != out[-1]:
                out.append(v)
        self._last = out
        return out

    def won(self, value: float) -> None:
        """The accepted point landed on this coordinate's grid: shrink
        to ~2 sample spacings around interior winners; edge winners
        keep their resolution (the bracket slides with the new center,
        so a bad initial guess walks toward the optimum instead of
        fencing itself in)."""
        vals = self._last
        i = vals.index(value)
        if 0 < i < len(vals) - 1 and len(vals) > 2:
            if self.multiplicative:
                spacing = (vals[-1] / vals[0]) ** (1.0 / (len(vals) - 1))
                self.span = max(spacing**2, 1.0 + 1e-12)
            else:
                spacing = (vals[-1] - vals[0]) / (len(vals) - 1)
                self.span = spacing * 2.0

    def shrink(self) -> None:
        """No single-coordinate move improved: contract toward the
        current center."""
        self.span = self.span**0.5 if self.multiplicative else self.span / 2.0

    def resolved(self, center: float, rel_tol: float) -> bool:
        if self.multiplicative:
            return self.span <= 1.0 + rel_tol
        return self.span <= rel_tol * max(abs(center), (self.hi - self.lo) * 1e-12, 1e-300)


# ---------------------------------------------------------------------------
# results
# ---------------------------------------------------------------------------


@dataclass
class FitResult:
    """A calibration run: the fitted parameters and how we got there."""

    target: FitTarget
    paths: Tuple[str, ...]
    fitted: Dict[str, float]
    loss: float
    initial_loss: float
    rounds: int
    evaluations: int
    #: per accepted move: ``{"round", "path", "value", "loss"}``
    history: List[dict] = field(default_factory=list)

    def as_dict(self) -> dict:
        return {
            "schema": FIT_SCHEMA,
            "machine": self.target.machine,
            "nprocs": self.target.nprocs,
            "library": self.target.library,
            "paths": list(self.paths),
            "fitted": dict(self.fitted),
            "loss": self.loss,
            "initial_loss": self.initial_loss,
            "rounds": self.rounds,
            "evaluations": self.evaluations,
            "history": list(self.history),
        }

    def write_json(self, path: Union[str, Path]) -> Path:
        path = Path(path)
        path.write_text(
            json.dumps(self.as_dict(), indent=1, sort_keys=True) + "\n"
        )
        return path

    def describe(self) -> str:
        # lazy: repro.fit is reachable from the repro facade, which the
        # engine layer must be importable without dragging analysis in
        from repro.analysis.report import format_table

        rows = [
            [path, self.fitted[path]] for path in self.paths
        ]
        table = format_table(
            ["path", "fitted"],
            rows,
            float_fmt=".6g",
            title=f"Fitted {self.target.machine}/{self.target.nprocs} — "
            f"loss {self.loss:.3g} (from {self.initial_loss:.3g}) in "
            f"{self.rounds} rounds, {self.evaluations} evaluations",
        )
        return table


# ---------------------------------------------------------------------------
# the optimizer
# ---------------------------------------------------------------------------


def fit_machine(
    target: FitTarget,
    paths: Iterable[str],
    *,
    bounds: Optional[Mapping[str, Tuple[float, float]]] = None,
    rounds: int = 16,
    samples: int = 9,
    max_candidates: int = 4096,
    loss_tol: float = 1e-10,
    rel_tol: float = 1e-4,
) -> FitResult:
    """Fit ``paths`` so the simulator reproduces ``target``.

    Parameters
    ----------
    target:
        The measured cells and machine identity.
    paths:
        The override paths to free (everything else stays at the base
        machine's values, plus ``target.overrides``).
    bounds:
        Optional ``{path: (lo, hi)}`` search brackets; defaults come
        from :func:`repro.machine.default_bounds` around the base
        machine's current value.
    rounds / samples / max_candidates:
        At most ``rounds`` grid-refinement rounds.  Each round samples
        ``samples`` values per free path and evaluates the **full
        cartesian product** — every joint combination, up to
        ``max_candidates`` of them — in one batched call per
        observation cell; joint sampling separates coupled parameters
        (latency vs per-byte cost) that per-coordinate line searches
        conflate.  When ``samples ** len(paths)`` exceeds
        ``max_candidates``, per-path sampling density is reduced to
        fit.
    loss_tol / rel_tol:
        Stop when the mean squared relative error falls to
        ``loss_tol``, or when every bracket's relative width falls to
        ``rel_tol``.

    Loss is the mean over observations of the squared relative time
    error, so cells of very different magnitudes weigh equally.
    """
    paths = tuple(paths)
    if not paths:
        raise MachineError("fit_machine needs at least one path to fit")
    if samples < 3:
        raise MachineError(f"samples must be >= 3, got {samples}")
    per_path = samples
    while per_path > 3 and per_path ** len(paths) > max_candidates:
        per_path -= 1
    spec_lib = target.library or experiment_spec(
        target.observations[0].experiment
    ).library
    probe = apply_overrides(
        machine_by_name(target.machine, target.nprocs, spec_lib),
        dict(target.overrides),
    )
    coords: Dict[str, _Coordinate] = {}
    current: Dict[str, float] = {}
    for path in paths:
        validate_override_path(path)
        integral = path.rsplit(".", 1)[-1] == "knee_bytes"
        if bounds and path in bounds:
            lo, hi = bounds[path]
            lo, hi = float(lo), float(hi)
            if not lo < hi:
                raise MachineError(
                    f"bound for {path} is empty: [{lo:g}, {hi:g}]"
                )
        else:
            lo, hi = default_bounds(probe, path)
        coords[path] = _Coordinate(path, lo, hi, integral)
        cur = float(override_value(probe, path))
        current[path] = min(max(cur, lo), hi)

    cells = _build_cells(target)
    measured = np.array([c.measured for c in cells], dtype=np.float64)

    evaluations = 0
    history: List[dict] = []

    def loss_of(candidates: List[Dict[str, float]]) -> np.ndarray:
        nonlocal evaluations
        times = _evaluate(target, cells, candidates)
        evaluations += len(candidates)
        if obs.enabled():
            obs.add("fit.evaluations", len(candidates))
        return _loss_vector(times, measured)

    with obs.span(
        "fit:machine",
        machine=target.machine,
        nprocs=target.nprocs,
        paths=" ".join(paths),
        cells=len(cells),
    ):
        current_loss = float(loss_of([dict(current)])[0])
        initial_loss = current_loss
        done_rounds = 0
        for _ in range(rounds):
            if current_loss <= loss_tol:
                break
            if all(
                coords[p].resolved(current[p], rel_tol) for p in paths
            ):
                break
            # the full cartesian grid over every coordinate's bracket,
            # evaluated in ONE batched pass per cell — joint sampling
            # is what separates coupled parameters (latency vs
            # per-byte) that per-coordinate line searches cannot
            candidates: List[Dict[str, float]] = []
            grids = [
                coords[p].sample(current[p], per_path) for p in paths
            ]
            for combo in itertools.product(*grids):
                candidates.append(dict(zip(paths, combo)))
            losses = loss_of(candidates)
            best = int(np.argmin(losses))
            done_rounds += 1
            if losses[best] < current_loss:
                current = dict(candidates[best])
                current_loss = float(losses[best])
                for path in paths:
                    coords[path].won(current[path])
                history.append(
                    {
                        "round": done_rounds,
                        "point": dict(current),
                        "loss": current_loss,
                    }
                )
                if obs.enabled():
                    obs.add("fit.improvements", 1)
            else:
                # the optimum sits between grid points: contract every
                # bracket toward the current point and resample
                for path in paths:
                    coords[path].shrink()
            if obs.enabled():
                obs.add("fit.rounds", 1)

    result = FitResult(
        target=target,
        paths=paths,
        fitted=dict(current),
        loss=current_loss,
        initial_loss=initial_loss,
        rounds=done_rounds,
        evaluations=evaluations,
        history=history,
    )
    return result


# ---------------------------------------------------------------------------
# synthetic targets
# ---------------------------------------------------------------------------


def synthesize_target(
    *,
    machine: str,
    nprocs: int,
    truth: Mapping[str, float],
    benchmarks: Union[str, Iterable[str]],
    keys: Iterable[str],
    library: Optional[str] = None,
    overrides: Optional[Mapping[str, float]] = None,
    config: Optional[Mapping[str, Mapping[str, int]]] = None,
) -> FitTarget:
    """A :class:`FitTarget` whose observations come from simulating the
    machine with ``truth`` applied — ground truth for recovery tests:
    fitting the ``truth`` paths against this target must drive the loss
    to ~0 at the known values."""
    if isinstance(benchmarks, str):
        benchmarks = (benchmarks,)
    target = FitTarget(
        machine=machine,
        nprocs=nprocs,
        library=library,
        overrides=dict(overrides or {}),
        config={b: dict(c) for b, c in (config or {}).items()},
        observations=tuple(
            FitObservation(benchmark=b, experiment=k, time=1.0)
            for b in benchmarks
            for k in keys
        ),
    )
    cells = _build_cells(target)
    times = _evaluate(target, cells, [dict(truth)])[0]
    target.observations = tuple(
        FitObservation(
            benchmark=cell.benchmark,
            experiment=cell.experiment,
            time=float(times[i]),
        )
        for i, cell in enumerate(cells)
    )
    return target
