"""Adaptive refinement of one cost axis toward its crossovers.

A dense sweep spends almost all of its batched-simulation work on
variants far from any win/loss flip.  :func:`run_refined_sweep` spends
it only where the answer changes: evaluate a coarse grid in one batched
pass per ``benchmark x experiment`` cell, find every interval where an
incremental ratio crosses the threshold (:func:`find_crossings` sign
changes) **or** the best key flips (the 1-D Pareto-membership change:
which experiment owns the minimum time), then bisect only those
intervals until each is narrower than the requested tolerance.

Every round is one :func:`repro.sweep.run_sweep` call over just the new
axis values, so it rides the batched evaluator, the incremental
:class:`repro.runtime.BatchEvaluator` append path, the memoized
variant packing, and the engine's content-addressed result cache —
re-running a refinement (or tightening its tolerance) only simulates
the genuinely new points.  Evaluated points are bit-identical to a
dense grid containing the same values: refinement changes *which*
variants run, never *how*.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

from repro.engine.core import ConfigOverride, JobOutcome
from repro.engine.jobs import MachineSpec
from repro.errors import MachineError
from repro.experiments_registry import EXPERIMENT_KEYS
from repro.machine import variants as machine_variants
from repro.obs import core as obs
from repro.programs import BENCHMARKS
from repro.sweep.axes import NPROCS_AXIS, SweepAxis
from repro.sweep.core import SweepResult, run_sweep

if TYPE_CHECKING:  # sweep <-> analysis import cycle: resolved lazily
    from repro.analysis.scaling import Crossover

__all__ = ["RefinedSweep", "WinnerFlip", "run_refined_sweep"]


@dataclass(frozen=True)
class WinnerFlip:
    """Between two adjacent evaluated axis values, a different
    experiment key owns the minimum time — the 1-D Pareto-front
    membership change."""

    benchmark: str
    x_low: float
    x_high: float
    from_key: str
    to_key: str


@dataclass
class RefinedSweep:
    """A refinement run: the merged sweep plus what drove it.

    ``sweep`` holds every evaluated point in axis order and is a plain
    :class:`~repro.sweep.SweepResult` — the whole scaling/figures
    surface applies unchanged.
    """

    sweep: SweepResult
    axis: str
    lo: float
    hi: float
    tol: float
    threshold: float
    rounds: int
    #: axis values evaluated per round, in evaluation order
    round_values: List[List[float]]
    #: per-round content fingerprint (sha256 over the round's inputs)
    round_fingerprints: List[str]
    crossovers: List[Crossover] = field(default_factory=list)
    winner_flips: List[WinnerFlip] = field(default_factory=list)

    @property
    def points_evaluated(self) -> int:
        return len(self.sweep.points)

    @property
    def dense_points(self) -> int:
        """Points an equivalent dense grid (step ``tol`` over
        ``[lo, hi]``) would have evaluated."""
        span = self.hi - self.lo
        steps = max(1, int(-(-span // self.tol)))  # ceil
        return steps + 1

    @property
    def savings(self) -> float:
        """Dense-grid evaluations per refined evaluation (>1 means the
        refinement did less work than the dense grid)."""
        return self.dense_points / max(1, self.points_evaluated)


def _round_fingerprint(
    axis: str,
    values: Sequence[float],
    benchmarks: Sequence[str],
    keys: Sequence[str],
    machine: MachineSpec,
    threshold: float,
) -> str:
    payload = json.dumps(
        {
            "axis": axis,
            "values": list(values),
            "benchmarks": list(benchmarks),
            "keys": list(keys),
            "machine": machine.name,
            "nprocs": machine.nprocs,
            "library": machine.library,
            "overrides": list(machine.overrides),
            "threshold": threshold,
        },
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


def _merge_rounds(
    axis: str,
    rounds: Sequence[SweepResult],
) -> SweepResult:
    """One :class:`SweepResult` over every round, points in axis order
    with each point's outcome block carried along."""
    pairs: List[Tuple[object, List[JobOutcome]]] = []
    for sweep in rounds:
        pairs.extend(sweep.iter_points())
    pairs.sort(key=lambda pb: pb[0].coord(axis))
    first = rounds[0]
    return SweepResult(
        axes=(
            SweepAxis(axis, tuple(p.coord(axis) for p, _ in pairs)),
        ),
        points=tuple(p for p, _ in pairs),
        benchmarks=first.benchmarks,
        keys=first.keys,
        outcomes=[o for _, block in pairs for o in block],
        cache_info=rounds[-1].cache_info,
    )


def _winner_flips(sweep: SweepResult, axis: str) -> List[WinnerFlip]:
    """Adjacent evaluated values where the fastest key changes."""
    flips: List[WinnerFlip] = []
    for bench in sweep.benchmarks:
        winners: List[Tuple[float, str]] = []
        for point, block in sweep.iter_points():
            times = {
                o.job.experiment: o.result.execution_time
                for o in block
                if o.job.benchmark == bench
            }
            if not times:
                continue
            best = min(sweep.keys, key=lambda k: times.get(k, float("inf")))
            winners.append((float(point.coord(axis)), best))
        for (x0, w0), (x1, w1) in zip(winners, winners[1:]):
            if w0 != w1:
                flips.append(
                    WinnerFlip(
                        benchmark=bench,
                        x_low=x0,
                        x_high=x1,
                        from_key=w0,
                        to_key=w1,
                    )
                )
    return flips


def _active_intervals(
    sweep: SweepResult, axis: str, threshold: float
) -> List[Tuple[float, float]]:
    """Every bracket, over every benchmark, where an incremental ratio
    crosses ``threshold`` or the winning key flips."""
    from repro.analysis.scaling import find_crossings, speedup_curve

    intervals: set = set()
    keys = list(sweep.keys)
    for bench in sweep.benchmarks:
        for prev, key in zip(keys, keys[1:]):
            for _, curve in speedup_curve(
                sweep, axis, bench, key, reference=prev
            ):
                for x0, x1, _, _, _ in find_crossings(curve, threshold):
                    intervals.add((float(x0), float(x1)))
    for flip in _winner_flips(sweep, axis):
        intervals.add((flip.x_low, flip.x_high))
    return sorted(intervals)


def run_refined_sweep(
    *,
    axis: str,
    lo: float,
    hi: float,
    tol: float,
    coarse: int = 9,
    threshold: float = 1.0,
    benchmarks: Union[str, Iterable[str]] = BENCHMARKS,
    keys: Iterable[str] = EXPERIMENT_KEYS,
    machine: Union[MachineSpec, str, None] = None,
    library: Optional[str] = None,
    overrides: Optional[Mapping[str, object]] = None,
    config_overrides: Optional[Mapping[str, ConfigOverride]] = None,
    max_rounds: int = 32,
    jobs: Optional[int] = None,
    cache: bool = True,
    cache_dir=None,
    cache_backend: Optional[str] = None,
    cache_url: Optional[str] = None,
    dispatcher=None,
) -> RefinedSweep:
    """Localize every crossover of ``axis`` on ``[lo, hi]`` to ``tol``.

    Starts from a ``coarse``-point uniform grid, then repeatedly bisects
    only the intervals still containing a threshold crossing or a
    winner flip, stopping when every such interval is narrower than
    ``tol`` (or after ``max_rounds`` bisection rounds).  All sweep
    keywords (machine, overrides, caching, ...) match
    :func:`repro.sweep.run_sweep`; the mode is always batched TIMING.

    Integral axes (``knee_bytes``) bisect on integers and stop when a
    bracket has no interior integer left, whatever ``tol`` says.
    """
    if axis == NPROCS_AXIS:
        raise MachineError(
            "refinement bisects machine-cost values; nprocs is discrete "
            "— sweep it densely with run_sweep"
        )
    lo, hi = float(lo), float(hi)
    if not lo < hi:
        raise MachineError(f"refinement range is empty: [{lo:g}, {hi:g}]")
    if not tol > 0:
        raise MachineError(f"tolerance must be positive, got {tol:g}")
    if coarse < 2:
        raise MachineError(f"coarse grid needs >= 2 points, got {coarse}")
    base = MachineSpec.coerce(machine, library=library, overrides=overrides)

    integral = (
        axis.rsplit(".", 1)[-1] in machine_variants._INTEGRAL
    )

    def _snap(value: float) -> float:
        return float(int(round(value))) if integral else value

    step = (hi - lo) / (coarse - 1)
    values = [_snap(lo + i * step) for i in range(coarse - 1)] + [_snap(hi)]
    evaluated: set = set()
    rounds: List[SweepResult] = []
    round_values: List[List[float]] = []
    round_fingerprints: List[str] = []
    merged: Optional[SweepResult] = None

    with obs.span(
        "sweep:refine",
        axis=axis,
        lo=lo,
        hi=hi,
        tol=tol,
        machine=base.name,
    ):
        while True:
            new = sorted(
                {v for v in values if v not in evaluated}
            )
            if not new or len(rounds) >= max_rounds:
                break
            fp = _round_fingerprint(
                axis, new, tuple(benchmarks) if not isinstance(benchmarks, str)
                else (benchmarks,), tuple(keys), base, threshold
            )
            obs.event(
                "sweep.refine.round",
                round=len(rounds),
                fingerprint=fp,
                new_points=len(new),
            )
            sweep = run_sweep(
                axes=[SweepAxis(axis, tuple(new))],
                benchmarks=benchmarks,
                keys=keys,
                machine=base,
                config_overrides=config_overrides,
                batched=None,
                jobs=jobs,
                cache=cache,
                cache_dir=cache_dir,
                cache_backend=cache_backend,
                cache_url=cache_url,
                dispatcher=dispatcher,
            )
            evaluated.update(new)
            rounds.append(sweep)
            round_values.append(new)
            round_fingerprints.append(fp)
            obs.add("sweep.refine.rounds", 1)
            obs.add("sweep.refine.points", len(new))

            merged = _merge_rounds(axis, rounds)
            intervals = _active_intervals(merged, axis, threshold)
            obs.add("sweep.refine.active_intervals", len(intervals))
            values = []
            for a, b in intervals:
                if b - a <= tol:
                    continue
                mid = _snap((a + b) / 2.0)
                if mid <= a or mid >= b:
                    continue  # float / integer exhaustion: localized
                values.append(mid)

    from repro.analysis.scaling import detect_crossovers

    assert merged is not None  # coarse >= 2 guarantees one round
    crossovers = detect_crossovers(merged)
    flips = _winner_flips(merged, axis)
    result = RefinedSweep(
        sweep=merged,
        axis=axis,
        lo=lo,
        hi=hi,
        tol=tol,
        threshold=threshold,
        rounds=len(rounds),
        round_values=round_values,
        round_fingerprints=round_fingerprints,
        crossovers=crossovers,
        winner_flips=flips,
    )
    obs.add("sweep.refine.crossovers", len(crossovers))
    obs.add("sweep.refine.winner_flips", len(flips))
    return result
